//! Reproduce one data point of the paper's evaluation in a few seconds:
//! run the airline workload on a simulated cluster (default 40 nodes)
//! for all three systems and print the Figure 5/6 metrics side by side.
//!
//! ```text
//! cargo run --release --example simulated_cluster [nodes]
//! ```

use hlock::core::ProtocolConfig;
use hlock::sim::LatencyModel;
use hlock::workload::{run_experiment, ProtocolKind, WorkloadConfig};

fn main() {
    let nodes: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(40);
    let workload = WorkloadConfig::default();
    let latency = LatencyModel::paper();
    let base = latency.mean();

    println!(
        "airline workload on {nodes} simulated nodes ({} table entries, {} ops/node,\n\
         mode mix IR/R/U/IW/W = 80/10/4/5/1 %, cs ~15 ms, idle ~150 ms, net ~150 ms)\n",
        workload.entries, workload.ops_per_node
    );
    println!(
        "{:<20} {:>14} {:>16} {:>10} {:>10}",
        "system", "msgs/request", "latency factor", "requests", "messages"
    );
    for kind in [
        ProtocolKind::Hierarchical(ProtocolConfig::default()),
        ProtocolKind::NaimiSameWork,
        ProtocolKind::NaimiPure,
    ] {
        let report =
            run_experiment(kind, nodes, &workload, latency, 0).expect("simulation completes");
        assert!(report.quiescent, "all requests served");
        let m = report.metrics;
        println!(
            "{:<20} {:>14.2} {:>15.1}x {:>10} {:>10}",
            kind.label(),
            m.messages_per_request(),
            m.latency_factor(base),
            m.total_requests(),
            m.total_messages(),
        );
    }
    println!(
        "\nthe hierarchical protocol serves compatible requests concurrently and\n\
         absorbs requests into local queues — fewer messages *and* it provides\n\
         multi-granularity modes the baseline cannot."
    );
}
