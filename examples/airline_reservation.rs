//! The paper's motivating application, live on a real TCP mesh: a
//! multi-airline reservation system where agents on different nodes
//! concurrently query fares, update fares, book seats (upgrade locks!)
//! and bulk-reprice the whole table — all arbitrated by the hierarchical
//! locking protocol over localhost sockets.
//!
//! ```text
//! cargo run --example airline_reservation
//! ```

use hlock::app::{AppError, ReservationSystem};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

fn main() {
    const NODES: usize = 5;
    const FLIGHTS: usize = 6;
    const SEATS: u32 = 8;

    println!("launching {NODES} booking agents over TCP, {FLIGHTS} flights × {SEATS} seats…");
    let sys =
        Arc::new(ReservationSystem::launch(NODES, FLIGHTS, 100.0, SEATS).expect("cluster boots"));

    // Every agent hammers the hot flight 0 plus a random other flight.
    let booked = Arc::new(AtomicU32::new(0));
    let denied = Arc::new(AtomicU32::new(0));
    let mut agents = Vec::new();
    for node in 0..NODES {
        let sys = Arc::clone(&sys);
        let booked = Arc::clone(&booked);
        let denied = Arc::clone(&denied);
        agents.push(std::thread::spawn(move || {
            let agent = sys.agent(node);
            for round in 0..4 {
                // Read a fare (table IR + entry R).
                let fare = agent.query_fare((node + round) % FLIGHTS).expect("query");
                assert!(fare > 0.0);
                // Book a seat on the hot flight (table IW + entry U→W).
                match agent.book_seat(0) {
                    Ok(b) => {
                        booked.fetch_add(1, Ordering::Relaxed);
                        println!("node {node}: booked flight 0, {} seats left", b.seats_left);
                    }
                    Err(AppError::SoldOut { .. }) => {
                        denied.fetch_add(1, Ordering::Relaxed);
                        println!("node {node}: flight 0 sold out");
                    }
                    Err(e) => panic!("booking failed: {e}"),
                }
                // Occasionally reprice an entry (table IW + entry W).
                if round == 2 {
                    agent.update_fare(node % FLIGHTS, 90.0 + node as f64).expect("update");
                }
            }
        }));
    }
    // One concurrent bulk repricing (table W) while bookings run.
    {
        let sys = Arc::clone(&sys);
        agents.push(std::thread::spawn(move || {
            sys.agent(0).bulk_reprice(1.05).expect("bulk reprice");
            println!("node 0: bulk repriced the whole table by +5%");
        }));
    }
    for a in agents {
        a.join().expect("agent finished");
    }

    let snapshot = sys.agent(1).snapshot().expect("snapshot");
    let sold = SEATS - snapshot[0].seats;
    println!("\nfinal state of flight 0: {} seats left", snapshot[0].seats);
    println!(
        "bookings accepted: {}, denied: {}",
        booked.load(Ordering::Relaxed),
        denied.load(Ordering::Relaxed)
    );
    assert_eq!(
        booked.load(Ordering::Relaxed),
        sold,
        "upgrade locks prevented every lost update and oversale"
    );
    let gen = snapshot[0].generation;
    assert!(
        snapshot.iter().all(|e| e.generation == gen),
        "bulk repricing was atomic under table-level W"
    );

    println!("\nprotocol messages sent, by kind:");
    let mut stats: Vec<_> = sys.message_stats().into_iter().collect();
    stats.sort_by_key(|(k, _)| k.label());
    for (kind, count) in stats {
        if count > 0 {
            println!("  {kind:>8}: {count}");
        }
    }
    match Arc::try_unwrap(sys) {
        Ok(s) => s.shutdown(),
        Err(_) => unreachable!("all agents joined"),
    }
    println!("done.");
}
