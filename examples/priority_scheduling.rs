//! Strict priority arbitration (the paper's §1, after Mueller's
//! prioritized token protocols): an urgent administrative operation
//! overtakes a backlog of normal-priority work that queued up first.
//!
//! Eight worker nodes keep a writer backlog on one lock; at some point an
//! operator node submits an URGENT write. We measure how long the urgent
//! request waits compared to what a normal-priority request submitted at
//! the same moment would have waited.
//!
//! ```text
//! cargo run --release --example priority_scheduling
//! ```

use hlock::core::{LockId, LockSpace, Mode, NodeId, Priority, ProtocolConfig, Ticket};
use hlock::sim::{Driver, Duration, Sim, SimApi, SimConfig};
use std::sync::{Arc, Mutex};

const WORKERS: usize = 8;
const OPS_PER_WORKER: u32 = 6;
const LOCK: LockId = LockId(0);
const T_NEXT: u64 = 1;
const T_DONE: u64 = 2;
const T_SUBMIT: u64 = 3;

struct Backlog {
    remaining: Vec<u32>,
    tickets: Vec<u64>,
    holding: Vec<Option<Ticket>>,
    operator: NodeId,
    priority: Priority,
    submitted_at: f64,
    /// The operator's measured wait, shared with the caller.
    wait_ms: Arc<Mutex<Option<f64>>>,
}

impl Backlog {
    fn new(priority: Priority, wait_ms: Arc<Mutex<Option<f64>>>) -> Self {
        Backlog {
            remaining: vec![OPS_PER_WORKER; WORKERS + 1],
            tickets: vec![0; WORKERS + 1],
            holding: vec![None; WORKERS + 1],
            operator: NodeId(WORKERS as u32),
            priority,
            submitted_at: 0.0,
            wait_ms,
        }
    }
}

impl Driver for Backlog {
    fn start(&mut self, node: NodeId, api: &mut SimApi) {
        if node == self.operator {
            api.set_timer(Duration::from_millis(500), T_SUBMIT);
        } else {
            api.set_timer(Duration(7_000 * (node.0 as u64 + 1)), T_NEXT);
        }
    }

    fn on_granted(&mut self, node: NodeId, _l: LockId, t: Ticket, _m: Mode, api: &mut SimApi) {
        if node == self.operator {
            let wait = api.now().as_millis_f64() - self.submitted_at;
            *self.wait_ms.lock().expect("not poisoned") = Some(wait);
        }
        self.holding[node.index()] = Some(t);
        api.set_timer(Duration::from_millis(20), T_DONE);
    }

    fn on_timer(&mut self, node: NodeId, timer: u64, api: &mut SimApi) {
        let i = node.index();
        match timer {
            T_NEXT => {
                if self.remaining[i] == 0 {
                    return;
                }
                self.remaining[i] -= 1;
                self.tickets[i] += 1;
                api.request(LOCK, Mode::Write, Ticket(self.tickets[i]));
            }
            T_SUBMIT => {
                self.submitted_at = api.now().as_millis_f64();
                self.tickets[i] += 1;
                api.request_with_priority(
                    LOCK,
                    Mode::Write,
                    Ticket(self.tickets[i]),
                    self.priority,
                );
            }
            T_DONE => {
                if let Some(t) = self.holding[i].take() {
                    api.release(LOCK, t);
                }
                if node != self.operator {
                    api.set_timer(Duration::from_millis(25), T_NEXT);
                }
            }
            _ => unreachable!(),
        }
    }
}

fn run(priority: Priority) -> f64 {
    let wait_ms = Arc::new(Mutex::new(None));
    let nodes: Vec<LockSpace> = (0..WORKERS as u32 + 1)
        .map(|i| LockSpace::new(NodeId(i), 1, NodeId(0), ProtocolConfig::default()))
        .collect();
    let cfg = SimConfig { seed: 31, check_every: 50, ..Default::default() };
    let driver = Backlog::new(priority, Arc::clone(&wait_ms));
    let report = Sim::new(nodes, driver, cfg).run().expect("invariants hold");
    assert!(report.quiescent);
    let wait = wait_ms.lock().expect("not poisoned").expect("operator was served");
    wait
}

fn main() {
    println!(
        "{WORKERS} workers keep an exclusive-write backlog; an operator submits one more\n\
         write at t=500 ms, NORMAL vs URGENT:\n"
    );
    let normal = run(Priority::NORMAL);
    let urgent = run(Priority::URGENT);
    println!("operator wait at NORMAL priority: {normal:>7.0} ms (waits out the backlog, FIFO)");
    println!("operator wait at URGENT priority: {urgent:>7.0} ms (overtakes queued work)");
    assert!(urgent < normal, "priority must shorten the wait");
    println!(
        "\nURGENT was served {:.1}x sooner; FIFO order is preserved within each priority.",
        normal / urgent.max(1.0)
    );
}
