//! Why Rule 6 (mode freezing) exists: without it, a writer can starve
//! behind an endless stream of compatible readers.
//!
//! Eight reader nodes keep overlapping `R` holds on one lock while one
//! writer asks for `W`. With freezing ON, queuing the writer at the token
//! freezes `R`, readers drain, and the writer is served promptly. With
//! freezing OFF, fresh `R` grants keep bypassing the queued writer and it
//! waits almost until the readers run out of work.
//!
//! ```text
//! cargo run --release --example fairness_freezing
//! ```

use hlock::core::{LockId, LockSpace, Mode, NodeId, ProtocolConfig, Ticket};
use hlock::sim::{Driver, Duration, Sim, SimApi, SimConfig, SimTime};

const LOCK: LockId = LockId(0);
const READERS: usize = 8;
const READS_PER_NODE: u32 = 60;
const T_NEXT: u64 = 1;
const T_RELEASE: u64 = 2;
const T_WRITE: u64 = 3;

struct ReadersVsWriter {
    remaining: Vec<u32>,
    tickets: Vec<u64>,
    writer: NodeId,
    write_requested_at: SimTime,
    write_granted_at: Option<SimTime>,
    current: Vec<Option<Ticket>>,
}

impl ReadersVsWriter {
    fn new(nodes: usize) -> Self {
        ReadersVsWriter {
            remaining: vec![READS_PER_NODE; nodes],
            tickets: vec![0; nodes],
            writer: NodeId(nodes as u32 - 1),
            write_requested_at: SimTime::ZERO,
            write_granted_at: None,
            current: vec![None; nodes],
        }
    }
}

impl Driver for ReadersVsWriter {
    fn start(&mut self, node: NodeId, api: &mut SimApi) {
        if node == self.writer {
            // Let the reader stream establish itself first.
            api.set_timer(Duration::from_millis(400), T_WRITE);
        } else {
            // Stagger readers so their holds overlap continuously.
            api.set_timer(Duration(node.0 as u64 * 7_000), T_NEXT);
        }
    }

    fn on_granted(&mut self, node: NodeId, _l: LockId, t: Ticket, mode: Mode, api: &mut SimApi) {
        if node == self.writer && mode == Mode::Write {
            self.write_granted_at = Some(api.now());
            api.release(LOCK, t);
            return;
        }
        self.current[node.index()] = Some(t);
        api.set_timer(Duration::from_millis(40), T_RELEASE);
    }

    fn on_timer(&mut self, node: NodeId, timer: u64, api: &mut SimApi) {
        match timer {
            T_NEXT => {
                if self.remaining[node.index()] == 0 {
                    return;
                }
                self.remaining[node.index()] -= 1;
                self.tickets[node.index()] += 1;
                api.request(LOCK, Mode::Read, Ticket(self.tickets[node.index()]));
            }
            T_RELEASE => {
                if let Some(t) = self.current[node.index()].take() {
                    api.release(LOCK, t);
                }
                // Re-request quickly: the readers overlap each other.
                api.set_timer(Duration::from_millis(10), T_NEXT);
            }
            T_WRITE => {
                self.write_requested_at = api.now();
                api.request(LOCK, Mode::Write, Ticket(999_999));
            }
            _ => unreachable!(),
        }
    }
}

/// Runs the scenario and returns (writer wait in ms, run end in ms).
/// The writer's wait is read from the per-mode latency metrics.
fn run(freezing: bool) -> (f64, f64) {
    let cfg =
        if freezing { ProtocolConfig::paper() } else { ProtocolConfig::paper().without_freezing() };
    let nodes: Vec<LockSpace> =
        (0..READERS as u32 + 1).map(|i| LockSpace::new(NodeId(i), 1, NodeId(0), cfg)).collect();
    let driver = ReadersVsWriter::new(READERS + 1);
    let sim_cfg = SimConfig { seed: 7, check_every: 100, ..SimConfig::default() };
    let report = Sim::new(nodes, driver, sim_cfg).run().expect("safe");
    assert!(report.quiescent, "writer was eventually served");
    let w =
        report.metrics.mean_latency_for(Mode::Write).expect("writer got its grant").as_millis_f64();
    (w, report.end_time.as_millis_f64())
}

fn main() {
    println!("{READERS} readers keep overlapping R holds; one writer requests W at t=400 ms.\n");
    let (with_freeze, end1) = run(true);
    let (without_freeze, end2) = run(false);
    println!(
        "writer wait WITH freezing (Rule 6):     {with_freeze:>9.0} ms  (run ends {end1:.0} ms)"
    );
    println!(
        "writer wait WITHOUT freezing (ablated): {without_freeze:>9.0} ms  (run ends {end2:.0} ms)"
    );
    let speedup = without_freeze / with_freeze.max(1.0);
    println!("\nfreezing served the writer {speedup:.1}x sooner — FIFO fairness restored.");
    assert!(without_freeze > with_freeze, "starvation should be visible without freezing");
}
