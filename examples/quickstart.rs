//! Quickstart: drive the sans-I/O protocol by hand.
//!
//! Three nodes share one lock. We play the network ourselves: every
//! `Effect::Send` the protocol emits is delivered by calling
//! `on_message` on the destination. Watch the paper's machinery appear:
//! a token transfer, a concurrent copy grant, release suppression, and a
//! zero-message local acquisition.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hlock::core::{
    ConcurrencyProtocol, Effect, EffectSink, Envelope, LockId, LockSpace, Mode, NodeId,
    ProtocolConfig, Ticket,
};
use std::collections::VecDeque;

fn main() {
    // Literal Rule 3.2 transfers, to showcase the token moving.
    let cfg = ProtocolConfig::default().with_eager_transfers();
    const LOCK: LockId = LockId(0);
    // Node 0 is the initial token holder for every lock.
    let mut nodes: Vec<LockSpace> =
        (0..3).map(|i| LockSpace::new(NodeId(i), 1, NodeId(0), cfg)).collect();
    let mut fx = EffectSink::new();
    let mut wire: VecDeque<(NodeId, NodeId, Envelope)> = VecDeque::new();

    // A tiny helper delivering all in-flight messages FIFO.
    macro_rules! pump {
        () => {
            while let Some((from, to, msg)) = wire.pop_front() {
                println!("   wire: {from} -> {to}: {msg}");
                nodes[to.index()].on_message(from, msg, &mut fx);
                drain(&mut fx, &mut wire, NodeId(to.0));
            }
        };
    }

    println!("1) node 1 requests a READ lock — the request travels to the token (node 0),");
    println!("   which owns nothing, so the token itself moves (Rule 3.2, transfer):");
    nodes[1].request(LOCK, Mode::Read, Ticket(1), &mut fx).expect("fresh ticket");
    drain(&mut fx, &mut wire, NodeId(1));
    pump!();

    println!("\n2) node 2 requests INTENT-READ — IR is compatible with R and weaker,");
    println!("   so the new token node (1) grants a *copy* and keeps the token:");
    nodes[2].request(LOCK, Mode::IntentRead, Ticket(2), &mut fx).expect("fresh ticket");
    drain(&mut fx, &mut wire, NodeId(2));
    pump!();

    println!("\n3) node 2 requests IR again while already owning IR:");
    println!("   Rule 2 — the critical section is entered with ZERO messages:");
    nodes[2].request(LOCK, Mode::IntentRead, Ticket(3), &mut fx).expect("fresh ticket");
    drain(&mut fx, &mut wire, NodeId(2));
    assert!(wire.is_empty(), "no messages were needed");

    println!("\n4) node 2 releases one of its IR holds — still owns IR, so Rule 5.2");
    println!("   suppresses the release message entirely:");
    nodes[2].release(LOCK, Ticket(3), &mut fx).expect("held");
    drain(&mut fx, &mut wire, NodeId(2));
    assert!(wire.is_empty(), "release was suppressed");

    println!("\n5) final releases propagate exactly one release message each:");
    nodes[2].release(LOCK, Ticket(2), &mut fx).expect("held");
    drain(&mut fx, &mut wire, NodeId(2));
    pump!();
    nodes[1].release(LOCK, Ticket(1), &mut fx).expect("held");
    drain(&mut fx, &mut wire, NodeId(1));
    pump!();

    assert!(nodes.iter().all(|n| n.is_quiescent()));
    println!("\nall quiescent; the token now rests at node 1.");
}

/// Moves `Send` effects onto the wire and prints grants.
fn drain(
    fx: &mut EffectSink<Envelope>,
    wire: &mut VecDeque<(NodeId, NodeId, Envelope)>,
    from: NodeId,
) {
    for e in fx.drain() {
        match e {
            Effect::Send { to, message } => wire.push_back((from, to, message)),
            Effect::SetTimer { .. } => {}
            Effect::Granted { lock, ticket, mode } => {
                println!("   GRANTED {lock} in mode {mode} to {from} ({ticket})");
            }
        }
    }
}
