//! Distributed web-cache coherence — the paper's introduction motivates
//! the protocol for "web caching or embedded computing with distributed
//! objects". Here, cache nodes keep local copies of origin objects:
//!
//! * a **read-through** takes `R` on the object's lock, refreshing the
//!   local copy if its version is stale — many caches may do this
//!   concurrently;
//! * an **origin update** takes `W`, bumping version and content
//!   atomically — the lock excludes all readers, so no cache can ever
//!   observe a *torn* (version, content) pair.
//!
//! The run asserts coherence at every single read, across thousands of
//! interleaved reads and updates on a simulated 12-node cluster.
//!
//! ```text
//! cargo run --release --example web_cache
//! ```

use hlock::core::{LockId, LockSpace, Mode, NodeId, ProtocolConfig, Ticket};
use hlock::sim::{Driver, Duration, Sim, SimApi, SimConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CACHES: usize = 12;
const OBJECTS: usize = 6;
const OPS_PER_NODE: u32 = 30;
const T_NEXT: u64 = 1;
const T_DONE: u64 = 2;

/// An origin object: content is derived from version, so a torn pair is
/// detectable (`content != version * 1000`).
#[derive(Debug, Clone, Copy)]
struct Object {
    version: u64,
    content: u64,
}

#[derive(Debug, Clone, Copy)]
struct CurrentOp {
    object: usize,
    ticket: Ticket,
    is_update: bool,
}

struct CacheDriver {
    origin: Vec<Object>,
    /// Per-cache local copies (None = cold).
    caches: Vec<Vec<Option<Object>>>,
    rng: Vec<SmallRng>,
    remaining: Vec<u32>,
    current: Vec<Option<CurrentOp>>,
    next_ticket: Vec<u64>,
    reads: u64,
    refreshes: u64,
    updates: u64,
}

impl CacheDriver {
    fn new() -> Self {
        CacheDriver {
            origin: vec![Object { version: 1, content: 1000 }; OBJECTS],
            caches: vec![vec![None; OBJECTS]; CACHES],
            rng: (0..CACHES as u64).map(|i| SmallRng::seed_from_u64(77 + i)).collect(),
            remaining: vec![OPS_PER_NODE; CACHES],
            current: vec![None; CACHES],
            next_ticket: vec![1; CACHES],
            reads: 0,
            refreshes: 0,
            updates: 0,
        }
    }
}

impl Driver for CacheDriver {
    fn start(&mut self, node: NodeId, api: &mut SimApi) {
        api.set_timer(Duration(1_000 * (node.0 as u64 + 1)), T_NEXT);
    }

    fn on_granted(&mut self, node: NodeId, _l: LockId, _t: Ticket, _m: Mode, api: &mut SimApi) {
        let op = self.current[node.index()].expect("grant matches the op in flight");
        if op.is_update {
            // Origin update under W: bump version and content together.
            let obj = &mut self.origin[op.object];
            obj.version += 1;
            obj.content = obj.version * 1000;
            self.updates += 1;
        } else {
            // Read-through under R: refresh if stale, then verify
            // coherence. A torn pair here would mean the lock failed.
            let origin = self.origin[op.object];
            let slot = &mut self.caches[node.index()][op.object];
            match slot {
                Some(copy) if copy.version == origin.version => {}
                _ => {
                    *slot = Some(origin);
                    self.refreshes += 1;
                }
            }
            let copy = slot.expect("filled above");
            assert_eq!(
                copy.content,
                copy.version * 1000,
                "torn read observed at cache {node} for object {}",
                op.object
            );
            self.reads += 1;
        }
        // Hold briefly (serving the cached object / writing the origin).
        api.set_timer(Duration::from_millis(5), T_DONE);
    }

    fn on_timer(&mut self, node: NodeId, timer: u64, api: &mut SimApi) {
        let i = node.index();
        match timer {
            T_NEXT => {
                if self.remaining[i] == 0 {
                    return;
                }
                self.remaining[i] -= 1;
                let object = self.rng[i].gen_range(0..OBJECTS);
                let is_update = self.rng[i].gen_bool(0.15);
                let ticket = Ticket(self.next_ticket[i]);
                self.next_ticket[i] += 1;
                self.current[i] = Some(CurrentOp { object, ticket, is_update });
                let mode = if is_update { Mode::Write } else { Mode::Read };
                api.request(LockId(object as u32), mode, ticket);
            }
            T_DONE => {
                let op = self.current[i].take().expect("op in flight");
                api.release(LockId(op.object as u32), op.ticket);
                api.set_timer(Duration::from_millis(30), T_NEXT);
            }
            _ => unreachable!(),
        }
    }
}

fn main() {
    println!(
        "{CACHES} cache nodes × {OBJECTS} objects, {OPS_PER_NODE} ops each \
         (85% reads / 15% origin updates)…"
    );
    let nodes: Vec<LockSpace> = (0..CACHES as u32)
        .map(|i| LockSpace::new(NodeId(i), OBJECTS, NodeId(0), ProtocolConfig::default()))
        .collect();
    let cfg = SimConfig { seed: 2024, lock_count: OBJECTS, check_every: 10, ..Default::default() };
    let (report, _nodes) = Sim::new(nodes, CacheDriver::new(), cfg)
        .run_with_nodes()
        .expect("coherence and protocol invariants hold");
    assert!(report.quiescent);
    println!(
        "\ncompleted {} lock requests in {:.1}s simulated time ({} messages, {:.2}/request)",
        report.metrics.total_requests(),
        report.end_time.as_millis_f64() / 1000.0,
        report.metrics.total_messages(),
        report.metrics.messages_per_request(),
    );
    println!("every read observed a coherent (version, content) pair — no torn reads.");
    println!(
        "R-mode sharing let caches read concurrently; W-mode updates excluded them all.\n\
         (rerun with ProtocolConfig::without_freezing() and heavy read load to watch\n\
         updates starve — see examples/fairness_freezing.rs)"
    );
}
