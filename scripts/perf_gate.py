#!/usr/bin/env python3
"""CI perf gate: compare a fresh perf_baseline run against the committed
BENCH_perf.json and fail on regressions.

Usage:
    perf_gate.py --baseline BENCH_perf.json --current BENCH_perf.current.json
                 [--throughput-drop 0.15] [--p99-inflate 0.20]
                 [--max-cell-drop 0.40] [--normalize]

Per-cell numbers from a 2-second matrix run are noisy (a single unlucky
scheduler episode can inflate one cell's p99 by 50%), so the gate applies
the documented thresholds to *noise-robust aggregates* across the whole
sharded matrix rather than to individual cells:

- The geometric mean of sharded-row throughput must not drop by more
  than ``--throughput-drop`` (default 15%).
- The geometric mean of sharded-row p99 request-to-grant latency must
  not inflate by more than ``--p99-inflate`` (default 20%).
- No single sharded cell may lose more than ``--max-cell-drop``
  (default 40%) of its throughput — the catastrophic-regression
  backstop that aggregates could otherwise average away.
- The current run's own 4-shard read-heavy throughput must stay at
  least 1.5x its 1-shard row (the committed baseline records >=2x; CI
  allows slack for small runners).

Comparisons are raw by default: CI always benches on the same runner
class, and the committed baseline must be refreshed from the bench-perf
CI artifact (docs/PERFORMANCE.md), never from a developer machine. Pass
``--normalize`` to divide each run by its own Naimi calibration row
first when comparing runs from different machines.
"""

import argparse
import json
import math
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    assert doc.get("schema") == "hlock-perf-baseline/v1", f"{path}: unknown schema"
    return doc


def key(entry):
    return (entry["protocol"], entry["shards"], entry["mix"])


def calibration(doc):
    for e in doc["entries"]:
        if e["protocol"] == "naimi":
            return e
    raise SystemExit("no naimi calibration row in run")


def geomean(xs):
    assert xs
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--throughput-drop", type=float, default=0.15)
    ap.add_argument("--p99-inflate", type=float, default=0.20)
    ap.add_argument("--max-cell-drop", type=float, default=0.40)
    ap.add_argument("--normalize", action="store_true")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    base_by_key = {key(e): e for e in base["entries"]}
    cur_by_key = {key(e): e for e in cur["entries"]}

    if args.normalize:
        base_cal, cur_cal = calibration(base), calibration(cur)
        base_tput_ref = base_cal["throughput_ops_per_sec"]
        cur_tput_ref = cur_cal["throughput_ops_per_sec"]
        base_p99_ref = float(base_cal["latency_micros"]["p99"])
        cur_p99_ref = float(cur_cal["latency_micros"]["p99"])
    else:
        base_tput_ref = cur_tput_ref = 1.0
        base_p99_ref = cur_p99_ref = 1.0

    failures = []
    b_tputs, c_tputs, b_p99s, c_p99s = [], [], [], []
    for k, b in sorted(base_by_key.items()):
        c = cur_by_key.get(k)
        if c is None:
            failures.append(f"{k}: entry missing from current run")
            continue
        if b["protocol"] in ("mux-hierarchical", "mux-hierarchical-flight"):
            # Connection-scaling and flight-recorder cells: a different
            # regime (cold dials,
            # hundreds of links) than the sharded matrix, so it stays
            # out of the geomean aggregates and gets only a
            # catastrophic-regression backstop. Cold-connect timing is
            # dominated by kernel accept/scheduling noise (rep-to-rep
            # spread near 2x even on an idle box), hence the 60%
            # threshold: the backstop exists to catch the cell wedging
            # or collapsing by an order of magnitude, not to referee
            # connect-storm jitter.
            b_t = b["throughput_ops_per_sec"] / base_tput_ref
            c_t = c["throughput_ops_per_sec"] / cur_tput_ref
            if c_t < b_t * 0.4:
                failures.append(
                    f"{k}: connection-scaling throughput collapsed "
                    f"{100 * (1 - c_t / b_t):.1f}% ({b_t:.0f} -> {c_t:.0f})"
                )
            continue
        if b["protocol"] != "sharded-hierarchical":
            continue  # naimi/raymond rows are scale references, not gated
        b_tput = b["throughput_ops_per_sec"] / base_tput_ref
        c_tput = c["throughput_ops_per_sec"] / cur_tput_ref
        b_tputs.append(b_tput)
        c_tputs.append(c_tput)
        b_p99s.append(max(1.0, b["latency_micros"]["p99"] / base_p99_ref))
        c_p99s.append(max(1.0, c["latency_micros"]["p99"] / cur_p99_ref))
        if c_tput < b_tput * (1.0 - args.max_cell_drop):
            failures.append(
                f"{k}: cell throughput collapsed {100 * (1 - c_tput / b_tput):.1f}% "
                f"({b_tput:.0f} -> {c_tput:.0f})"
            )

    if b_tputs:
        b_gm, c_gm = geomean(b_tputs), geomean(c_tputs)
        print(f"throughput geomean: {b_gm:.0f} -> {c_gm:.0f} ({100 * (c_gm / b_gm - 1):+.1f}%)")
        if c_gm < b_gm * (1.0 - args.throughput_drop):
            failures.append(
                f"matrix throughput geomean regressed {100 * (1 - c_gm / b_gm):.1f}% "
                f"({b_gm:.0f} -> {c_gm:.0f})"
            )
        b_gm, c_gm = geomean(b_p99s), geomean(c_p99s)
        print(f"p99 geomean: {b_gm:.1f} -> {c_gm:.1f} ({100 * (c_gm / b_gm - 1):+.1f}%)")
        if c_gm > b_gm * (1.0 + args.p99_inflate):
            failures.append(
                f"matrix p99 geomean inflated {100 * (c_gm / b_gm - 1):.1f}% "
                f"({b_gm:.1f} -> {c_gm:.1f})"
            )

    def tput(doc, shards, mix):
        for e in doc["entries"]:
            if e["protocol"] == "sharded-hierarchical" and e["shards"] == shards and e["mix"] == mix:
                return e["throughput_ops_per_sec"]
        raise SystemExit(f"missing sharded-hierarchical shards={shards} mix={mix} row")

    speedup = tput(cur, 4, "read_heavy") / tput(cur, 1, "read_heavy")
    print(f"current 4-shard read_heavy speedup: {speedup:.2f}x")
    if speedup < 1.5:
        failures.append(f"4-shard read_heavy speedup {speedup:.2f}x < 1.5x")

    if failures:
        print(f"PERF GATE FAILED ({len(failures)} regressions):")
        for f in failures:
            print(f"  - {f}")
        print("If this change intentionally trades performance, refresh the")
        print("baseline per docs/PERFORMANCE.md or apply the perf-exempt label.")
        return 1
    print(f"perf gate passed: {len(b_tputs)} sharded cells within thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
