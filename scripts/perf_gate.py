#!/usr/bin/env python3
"""CI perf gate: compare a fresh perf_baseline run against the committed
BENCH_perf.json and fail on regressions.

Usage:
    perf_gate.py --baseline BENCH_perf.json --current BENCH_perf.current.json
                 [--cells {wall,scenarios,all}]
                 [--throughput-drop 0.15] [--p99-inflate 0.20]
                 [--max-cell-drop 0.40] [--normalize]
                 [--scenario-tput-drop 0.10] [--scenario-p999-inflate 0.25]
                 [--scenario-mpg-inflate 0.20]

The artifact has two kinds of cells, gated very differently:

**Wall-clock cells** (``entries``): the sharded-runtime matrix measured
on the real TCP transport. Per-cell numbers from a 2-second run are
noisy (a single unlucky scheduler episode can inflate one cell's p99 by
50%), so the gate applies the documented thresholds to *noise-robust
aggregates* across the whole sharded matrix:

- The geometric mean of sharded-row throughput must not drop by more
  than ``--throughput-drop`` (default 15%).
- The geometric mean of sharded-row p99 request-to-grant latency must
  not inflate by more than ``--p99-inflate`` (default 20%).
- No single sharded cell may lose more than ``--max-cell-drop``
  (default 40%) of its throughput — the catastrophic-regression
  backstop that aggregates could otherwise average away.
- The current run's own 4-shard read-heavy throughput must stay at
  least 1.5x its 1-shard row (the committed baseline records >=2x; CI
  allows slack for small runners).

**Scenario cells** (``scenarios``): the open-loop scenario library run
in the deterministic simulator — virtual time, fixed seeds, so a cell's
numbers are bit-identical across machines and runs. No noise means the
per-cell backstops can be tight:

- achieved throughput must not drop more than ``--scenario-tput-drop``
  (default 10%),
- p99.9 sojourn must not inflate more than ``--scenario-p999-inflate``
  (default 25%),
- messages-per-grant must not inflate more than
  ``--scenario-mpg-inflate`` (default 20%),

plus two structural invariants checked on the current run alone: the
``saturation`` cell must actually saturate (achieved < 90% of offered —
if it stops saturating, the open-loop driver has gone closed-loop), and
the hierarchical ``zipf_read_heavy`` cell must beat its flat-exclusive
twin on messages per grant (the paper's headline advantage).

``--cells`` scopes which sections are gated (CI runs the wall matrix
and the scenario matrix as separate jobs, each producing a partial
artifact); missing-cell failures apply only within the selected
sections. A per-cell table (baseline vs current vs limit, pass/fail) is
always printed so any regression is diagnosable from the CI log alone.

Comparisons of wall cells are raw by default: CI always benches on the
same runner class, and the committed baseline must be refreshed from the
bench-perf CI artifact (docs/PERFORMANCE.md), never from a developer
machine. Pass ``--normalize`` to divide each run by its own Naimi
calibration row first when comparing runs from different machines.
(Scenario cells never need normalizing — they are machine-independent.)
"""

import argparse
import json
import math
import sys

SCHEMAS = ("hlock-perf-baseline/v1", "hlock-perf-baseline/v2")


def load(path):
    with open(path) as f:
        doc = json.load(f)
    assert doc.get("schema") in SCHEMAS, f"{path}: unknown schema {doc.get('schema')!r}"
    doc.setdefault("scenarios", [])  # v1 artifacts predate scenario cells
    return doc


def key(entry):
    return (entry["protocol"], entry["shards"], entry["mix"])


def calibration(doc):
    for e in doc["entries"]:
        if e["protocol"] == "naimi":
            return e
    raise SystemExit("no naimi calibration row in run")


def geomean(xs):
    assert xs
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


class Table:
    """Per-cell comparison rows, printed pass or fail — a regression must
    be diagnosable from the CI log without downloading artifacts."""

    def __init__(self):
        self.rows = []

    def add(self, cell, metric, base, cur, limit, ok):
        self.rows.append((cell, metric, base, cur, limit, "ok" if ok else "FAIL"))

    def print(self):
        if not self.rows:
            return
        widths = [
            max(len(str(r[i])) for r in self.rows + [self.header()]) for i in range(6)
        ]
        for row in [self.header(), None] + self.rows:
            if row is None:
                print("  " + "-+-".join("-" * w for w in widths))
                continue
            print(
                "  "
                + " | ".join(str(v).ljust(w) for v, w in zip(row, widths)).rstrip()
            )

    @staticmethod
    def header():
        return ("cell", "metric", "baseline", "current", "limit", "status")


def gate_wall(base, cur, args, table, failures):
    base_by_key = {key(e): e for e in base["entries"]}
    cur_by_key = {key(e): e for e in cur["entries"]}

    if args.normalize:
        base_cal, cur_cal = calibration(base), calibration(cur)
        base_tput_ref = base_cal["throughput_ops_per_sec"]
        cur_tput_ref = cur_cal["throughput_ops_per_sec"]
        base_p99_ref = float(base_cal["latency_micros"]["p99"])
        cur_p99_ref = float(cur_cal["latency_micros"]["p99"])
    else:
        base_tput_ref = cur_tput_ref = 1.0
        base_p99_ref = cur_p99_ref = 1.0

    b_tputs, c_tputs, b_p99s, c_p99s = [], [], [], []
    for k, b in sorted(base_by_key.items()):
        cell = "/".join(str(p) for p in k)
        c = cur_by_key.get(k)
        if c is None:
            failures.append(f"{cell}: entry missing from current run")
            table.add(cell, "tput", f"{b['throughput_ops_per_sec']:.0f}", "missing", "-", False)
            continue
        if b["protocol"] in ("mux-hierarchical", "mux-hierarchical-flight"):
            # Connection-scaling and flight-recorder cells: a different
            # regime (cold dials, hundreds of links) than the sharded
            # matrix, so they stay out of the geomean aggregates and get
            # only a catastrophic-regression backstop. Cold-connect
            # timing is dominated by kernel accept/scheduling noise
            # (rep-to-rep spread near 2x even on an idle box), hence the
            # 60% threshold: the backstop exists to catch the cell
            # wedging or collapsing by an order of magnitude, not to
            # referee connect-storm jitter.
            b_t = b["throughput_ops_per_sec"] / base_tput_ref
            c_t = c["throughput_ops_per_sec"] / cur_tput_ref
            ok = c_t >= b_t * 0.4
            table.add(cell, "tput", f"{b_t:.0f}", f"{c_t:.0f}", f">={b_t * 0.4:.0f}", ok)
            if not ok:
                failures.append(
                    f"{cell}: connection-scaling throughput collapsed "
                    f"{100 * (1 - c_t / b_t):.1f}% ({b_t:.0f} -> {c_t:.0f})"
                )
            continue
        if b["protocol"] != "sharded-hierarchical":
            continue  # naimi/raymond rows are scale references, not gated
        b_tput = b["throughput_ops_per_sec"] / base_tput_ref
        c_tput = c["throughput_ops_per_sec"] / cur_tput_ref
        b_tputs.append(b_tput)
        c_tputs.append(c_tput)
        b_p99s.append(max(1.0, b["latency_micros"]["p99"] / base_p99_ref))
        c_p99s.append(max(1.0, c["latency_micros"]["p99"] / cur_p99_ref))
        floor = b_tput * (1.0 - args.max_cell_drop)
        ok = c_tput >= floor
        table.add(cell, "tput", f"{b_tput:.0f}", f"{c_tput:.0f}", f">={floor:.0f}", ok)
        if not ok:
            failures.append(
                f"{cell}: cell throughput collapsed {100 * (1 - c_tput / b_tput):.1f}% "
                f"({b_tput:.0f} -> {c_tput:.0f})"
            )

    if b_tputs:
        b_gm, c_gm = geomean(b_tputs), geomean(c_tputs)
        print(f"throughput geomean: {b_gm:.0f} -> {c_gm:.0f} ({100 * (c_gm / b_gm - 1):+.1f}%)")
        if c_gm < b_gm * (1.0 - args.throughput_drop):
            failures.append(
                f"matrix throughput geomean regressed {100 * (1 - c_gm / b_gm):.1f}% "
                f"({b_gm:.0f} -> {c_gm:.0f})"
            )
        b_gm, c_gm = geomean(b_p99s), geomean(c_p99s)
        print(f"p99 geomean: {b_gm:.1f} -> {c_gm:.1f} ({100 * (c_gm / b_gm - 1):+.1f}%)")
        if c_gm > b_gm * (1.0 + args.p99_inflate):
            failures.append(
                f"matrix p99 geomean inflated {100 * (c_gm / b_gm - 1):.1f}% "
                f"({b_gm:.1f} -> {c_gm:.1f})"
            )

    def tput(doc, shards, mix):
        for e in doc["entries"]:
            if e["protocol"] == "sharded-hierarchical" and e["shards"] == shards and e["mix"] == mix:
                return e["throughput_ops_per_sec"]
        raise SystemExit(f"missing sharded-hierarchical shards={shards} mix={mix} row")

    speedup = tput(cur, 4, "read_heavy") / tput(cur, 1, "read_heavy")
    print(f"current 4-shard read_heavy speedup: {speedup:.2f}x")
    if speedup < 1.5:
        failures.append(f"4-shard read_heavy speedup {speedup:.2f}x < 1.5x")

    return len(b_tputs)


def gate_scenarios(base, cur, args, table, failures):
    base_by_name = {s["name"]: s for s in base["scenarios"]}
    cur_by_name = {s["name"]: s for s in cur["scenarios"]}

    gated = 0
    for name, b in sorted(base_by_name.items()):
        c = cur_by_name.get(name)
        if c is None:
            failures.append(f"scenario {name}: cell missing from current run")
            table.add(name, "achieved", f"{b['achieved_rate']:.0f}", "missing", "-", False)
            continue
        gated += 1

        floor = b["achieved_rate"] * (1.0 - args.scenario_tput_drop)
        ok = c["achieved_rate"] >= floor
        table.add(
            name, "achieved/s", f"{b['achieved_rate']:.0f}", f"{c['achieved_rate']:.0f}",
            f">={floor:.0f}", ok,
        )
        if not ok:
            failures.append(
                f"scenario {name}: achieved throughput dropped "
                f"{100 * (1 - c['achieved_rate'] / b['achieved_rate']):.1f}% "
                f"({b['achieved_rate']:.0f}/s -> {c['achieved_rate']:.0f}/s)"
            )

        b_p999 = b["sojourn_micros"]["p999"]
        c_p999 = c["sojourn_micros"]["p999"]
        ceil = b_p999 * (1.0 + args.scenario_p999_inflate)
        ok = c_p999 <= ceil
        table.add(name, "p999_us", b_p999, c_p999, f"<={ceil:.0f}", ok)
        if not ok:
            failures.append(
                f"scenario {name}: p99.9 sojourn inflated "
                f"{100 * (c_p999 / b_p999 - 1):.1f}% ({b_p999}us -> {c_p999}us)"
            )

        b_mpg = b["messages_per_grant"]
        c_mpg = c["messages_per_grant"]
        ceil = b_mpg * (1.0 + args.scenario_mpg_inflate)
        ok = c_mpg <= ceil
        table.add(name, "msgs/grant", f"{b_mpg:.2f}", f"{c_mpg:.2f}", f"<={ceil:.2f}", ok)
        if not ok:
            failures.append(
                f"scenario {name}: messages per grant inflated "
                f"{100 * (c_mpg / b_mpg - 1):.1f}% ({b_mpg:.2f} -> {c_mpg:.2f})"
            )

    # Structural invariants on the current run alone: these hold for any
    # correct open-loop implementation, so a violation means the harness
    # (not the protocol) regressed.
    sat = cur_by_name.get("saturation")
    if sat is not None:
        knee = sat["achieved_rate"] / max(sat["offered_rate"], 1e-9)
        ok = knee < 0.9
        table.add("saturation", "achieved/offered", "-", f"{knee:.2f}", "<0.90", ok)
        if not ok:
            failures.append(
                f"saturation cell no longer saturates (achieved/offered {knee:.2f} >= 0.9): "
                "the open-loop driver is self-throttling into closed-loop behavior"
            )
    hier = cur_by_name.get("zipf_read_heavy")
    flat = cur_by_name.get("zipf_read_heavy_flat")
    if hier is not None and flat is not None:
        ratio = flat["messages_per_grant"] / max(hier["messages_per_grant"], 1e-9)
        ok = ratio > 1.0
        table.add("zipf_read_heavy", "flat/hier mpg", "-", f"{ratio:.3f}", ">1.000", ok)
        if not ok:
            failures.append(
                f"hierarchical protocol lost its messages-per-grant advantage under Zipf skew "
                f"(flat/hier ratio {ratio:.3f} <= 1)"
            )
    return gated


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument(
        "--cells",
        choices=("wall", "scenarios", "all"),
        default="all",
        help="which artifact sections to gate (CI jobs produce partial artifacts)",
    )
    ap.add_argument("--throughput-drop", type=float, default=0.15)
    ap.add_argument("--p99-inflate", type=float, default=0.20)
    ap.add_argument("--max-cell-drop", type=float, default=0.40)
    ap.add_argument("--normalize", action="store_true")
    ap.add_argument("--scenario-tput-drop", type=float, default=0.10)
    ap.add_argument("--scenario-p999-inflate", type=float, default=0.25)
    ap.add_argument("--scenario-mpg-inflate", type=float, default=0.20)
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    failures = []
    table = Table()
    wall_cells = scenario_cells = 0
    if args.cells in ("wall", "all"):
        wall_cells = gate_wall(base, cur, args, table, failures)
    if args.cells in ("scenarios", "all"):
        scenario_cells = gate_scenarios(base, cur, args, table, failures)

    print("per-cell comparison:")
    table.print()

    if failures:
        print(f"PERF GATE FAILED ({len(failures)} regressions):")
        for f in failures:
            print(f"  - {f}")
        print("If this change intentionally trades performance, refresh the")
        print("baseline per docs/PERFORMANCE.md or apply the perf-exempt label.")
        return 1
    print(
        f"perf gate passed: {wall_cells} sharded cells, "
        f"{scenario_cells} scenario cells within thresholds"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
