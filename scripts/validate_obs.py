#!/usr/bin/env python3
"""Validate an observability JSONL export: every line parses, every
request span opens exactly once and closes at most once.

A span closes on ``granted``, ``request_cancelled`` or
``request_aborted`` (crash/fence). Re-opening a still-open span is
tolerated once a ``recovery_started`` has been seen since the open:
token regeneration wipes the wait queues, so survivors legitimately
re-issue a wiped request under the same span id.

Usage: validate_obs.py [path/to/events.jsonl]

Used by the obs-smoke CI job against the stream `obs_smoke` writes; run
it locally the same way after `cargo run --release -p hlock-bench --bin
obs_smoke`.
"""

import json
import sys

CLOSERS = ("granted", "request_cancelled", "request_aborted")


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "target/experiments/obs_smoke.jsonl"
    # span -> [net open count, recovery generation at last open]
    state: dict = {}
    closes = 0
    gen = 0
    with open(path) as f:
        events = [json.loads(line) for line in f]
    assert events, "empty event stream"
    for e in events:
        assert {"at", "event", "node"} <= e.keys(), e
        if e["event"] == "recovery_started":
            gen += 1
        if "span_origin" not in e:
            continue
        span = (e["span_origin"], e["span_ticket"])
        if e["event"] == "request_issued":
            c, g = state.get(span, (0, gen))
            assert not (c > 0 and g == gen), f"span {span} opened twice"
            state[span] = (1, gen)
        elif e["event"] in CLOSERS:
            c, g = state.get(span, (0, gen))
            assert c > 0, f"span {span} closed ({e['event']}) without an open"
            state[span] = (c - 1, g)
            closes += 1
    dangling = [s for s, (c, _) in state.items() if c != 0]
    assert not dangling, f"spans left open: {sorted(dangling)}"
    print(f"{len(events)} events, {len(state)} spans, {closes} closes, balanced")
    return 0


if __name__ == "__main__":
    sys.exit(main())
