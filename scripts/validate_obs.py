#!/usr/bin/env python3
"""Validate an observability JSONL export: every line parses, every
request span opens exactly once and closes at most once.

Usage: validate_obs.py [path/to/events.jsonl]

Used by the obs-smoke CI job against the stream `obs_smoke` writes; run
it locally the same way after `cargo run --release -p hlock-bench --bin
obs_smoke`.
"""

import json
import sys


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "target/experiments/obs_smoke.jsonl"
    opened: dict = {}
    closed: dict = {}
    with open(path) as f:
        events = [json.loads(line) for line in f]
    assert events, "empty event stream"
    for e in events:
        assert {"at", "event", "node"} <= e.keys(), e
        span = (e.get("span_origin"), e.get("span_ticket"))
        if e["event"] == "request_issued":
            opened[span] = opened.get(span, 0) + 1
        elif e["event"] in ("granted", "request_cancelled"):
            closed[span] = closed.get(span, 0) + 1
    assert all(n == 1 for n in opened.values()), "span opened twice"
    assert all(n == 1 for n in closed.values()), "span closed twice"
    assert set(closed) <= set(opened), "closed a span that never opened"
    print(f"{len(events)} events, {len(opened)} spans, balanced")
    return 0


if __name__ == "__main__":
    sys.exit(main())
