//! Virtual time.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from whole milliseconds.
    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000)
    }

    /// This time expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Raw microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.as_millis_f64())
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Duration {
    /// Zero duration.
    pub const ZERO: Duration = Duration(0);

    /// Builds a duration from whole milliseconds.
    pub fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000)
    }

    /// Builds a duration from fractional milliseconds.
    pub fn from_millis_f64(ms: f64) -> Duration {
        Duration((ms.max(0.0) * 1_000.0).round() as u64)
    }

    /// This duration in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Raw microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10);
        let t2 = t + Duration::from_millis(5);
        assert_eq!(t2, SimTime(15_000));
        assert_eq!(t2 - t, Duration(5_000));
        assert_eq!(t - t2, Duration::ZERO, "saturating");
        let mut t3 = t;
        t3 += Duration(1);
        assert_eq!(t3.as_micros(), 10_001);
    }

    #[test]
    fn conversions() {
        assert_eq!(Duration::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(Duration::from_millis_f64(-3.0), Duration::ZERO);
        assert!((SimTime(2_500).as_millis_f64() - 2.5).abs() < 1e-9);
        assert_eq!(Duration::from_millis(2) + Duration(500), Duration(2_500));
    }
}
