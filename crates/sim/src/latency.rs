//! Network latency models.
//!
//! The paper randomizes the latency experienced by messages with a mean
//! of 150 ms; [`LatencyModel::Exponential`] with that mean is the default
//! used by the benchmark harness.

use crate::time::Duration;
use rand::Rng;

/// How long a message takes from send to delivery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Fixed(Duration),
    /// Exponentially distributed with the given mean (memoryless, the
    /// classic simulation choice for "randomized with mean X").
    Exponential {
        /// Mean latency.
        mean: Duration,
    },
    /// Uniformly distributed in `[lo, hi]`.
    Uniform {
        /// Minimum latency.
        lo: Duration,
        /// Maximum latency.
        hi: Duration,
    },
}

impl LatencyModel {
    /// The paper's network model: exponential with a 150 ms mean.
    pub fn paper() -> LatencyModel {
        LatencyModel::Exponential { mean: Duration::from_millis(150) }
    }

    /// Samples one latency.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Exponential { mean } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                Duration::from_millis_f64(-mean.as_millis_f64() * u.ln())
            }
            LatencyModel::Uniform { lo, hi } => {
                Duration(rng.gen_range(lo.as_micros()..=hi.as_micros()))
            }
        }
    }

    /// The distribution mean, used as the "base latency" unit of the
    /// paper's Figure 6.
    pub fn mean(&self) -> Duration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Exponential { mean } => mean,
            LatencyModel::Uniform { lo, hi } => Duration((lo.as_micros() + hi.as_micros()) / 2),
        }
    }
}

/// Samples an exponentially distributed duration with the given mean.
/// Utility shared with the workload generator (critical-section lengths,
/// idle times).
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, mean: Duration) -> Duration {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    Duration::from_millis_f64(-mean.as_millis_f64() * u.ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn fixed_is_deterministic() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = LatencyModel::Fixed(Duration::from_millis(150));
        assert_eq!(m.sample(&mut rng), Duration::from_millis(150));
        assert_eq!(m.mean(), Duration::from_millis(150));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SmallRng::seed_from_u64(42);
        let m = LatencyModel::paper();
        let n = 20_000;
        let total: u64 = (0..n).map(|_| m.sample(&mut rng).as_micros()).sum();
        let mean_ms = total as f64 / n as f64 / 1_000.0;
        assert!((mean_ms - 150.0).abs() < 5.0, "measured mean {mean_ms}");
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        let lo = Duration::from_millis(10);
        let hi = Duration::from_millis(20);
        let m = LatencyModel::Uniform { lo, hi };
        for _ in 0..1_000 {
            let s = m.sample(&mut rng);
            assert!(s >= lo && s <= hi);
        }
        assert_eq!(m.mean(), Duration::from_millis(15));
    }

    #[test]
    fn exponential_helper_positive() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let d = sample_exponential(&mut rng, Duration::from_millis(15));
            assert!(d.as_micros() < 10_000_000, "no absurd outliers: {d}");
        }
    }
}
