//! # hlock-sim
//!
//! Deterministic discrete-event simulator for the locking protocols in
//! this workspace. It substitutes for the Linux cluster of the paper's
//! evaluation (see `DESIGN.md`): the paper's own experiments randomize
//! message latency in software (mean 150 ms), so a seeded simulation of
//! the same latency process reproduces the protocol-level metrics —
//! messages per request and request latency — that Figures 5–7 report.
//!
//! * [`Sim`] — the engine: virtual time, per-link FIFO delivery with a
//!   sampled [`LatencyModel`], driver timers, effect execution, metrics
//!   and optional global safety checking.
//! * [`Driver`] — the application model (issues requests, holds critical
//!   sections, releases); implemented by `hlock-workload` for the
//!   paper's airline-reservation experiment.
//! * [`Metrics`] — everything needed to regenerate Figures 5, 6 and 7.
//!
//! ```
//! use hlock_core::{LockSpace, NodeId, ProtocolConfig};
//! use hlock_sim::{Driver, LatencyModel, Sim, SimApi, SimConfig};
//! # use hlock_core::{LockId, Mode, Ticket};
//!
//! // A driver where node 1 takes one read lock and releases it.
//! struct OneShot;
//! impl Driver for OneShot {
//!     fn start(&mut self, node: NodeId, api: &mut SimApi) {
//!         if node == NodeId(1) {
//!             api.request(LockId(0), Mode::Read, Ticket(1));
//!         }
//!     }
//!     fn on_granted(&mut self, _: NodeId, lock: LockId, t: Ticket, _: Mode, api: &mut SimApi) {
//!         api.release(lock, t);
//!     }
//!     fn on_timer(&mut self, _: NodeId, _: u64, _: &mut SimApi) {}
//! }
//!
//! let cfg = ProtocolConfig::default();
//! let nodes = (0..2).map(|i| LockSpace::new(NodeId(i), 1, NodeId(0), cfg)).collect();
//! let report = Sim::new(nodes, OneShot, SimConfig::default()).run().unwrap();
//! assert!(report.quiescent);
//! assert_eq!(report.metrics.total_grants(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod engine;
mod latency;
mod metrics;
mod time;
mod trace;

pub use engine::{
    Driver, InvariantViolation, NodeCrash, NodePause, Partition, Sim, SimApi, SimConfig, SimReport,
};
pub use latency::{sample_exponential, LatencyModel};
pub use metrics::Metrics;
pub use time::{Duration, SimTime};
pub use trace::{NullTracer, RingTracer, StderrTracer, TraceRecord, Tracer, TracerObserver};

// The simulator speaks the workspace-wide observability vocabulary;
// re-export it so `Sim::with_observer` users need only this crate.
pub use hlock_core::{Observer, ProtocolEvent};

#[cfg(test)]
mod tests {
    use super::*;
    use hlock_core::{LockId, LockSpace, Mode, NodeId, ProtocolConfig, Ticket};
    use hlock_naimi::NaimiSpace;

    /// Every node performs `ops` exclusive lock-hold-release cycles on a
    /// single lock, with think time and critical-section time.
    struct ExclusiveLoop {
        ops: u32,
        remaining: Vec<u32>,
        cs: Duration,
        idle: Duration,
    }

    impl ExclusiveLoop {
        fn new(nodes: usize, ops: u32) -> Self {
            ExclusiveLoop {
                ops,
                remaining: vec![ops; nodes],
                cs: Duration::from_millis(15),
                idle: Duration::from_millis(150),
            }
        }
        fn ticket(&self, node: NodeId, op: u32) -> Ticket {
            Ticket(u64::from(node.0) * 10_000 + u64::from(op))
        }
    }

    const TIMER_NEXT_OP: u64 = 1;
    const TIMER_RELEASE_BASE: u64 = 1_000;

    impl Driver for ExclusiveLoop {
        fn start(&mut self, _node: NodeId, api: &mut SimApi) {
            api.set_timer(self.idle, TIMER_NEXT_OP);
        }

        fn on_granted(
            &mut self,
            _node: NodeId,
            _lock: LockId,
            t: Ticket,
            _m: Mode,
            api: &mut SimApi,
        ) {
            api.set_timer(self.cs, TIMER_RELEASE_BASE + t.0);
        }

        fn on_timer(&mut self, node: NodeId, timer: u64, api: &mut SimApi) {
            if timer == TIMER_NEXT_OP {
                let left = self.remaining[node.index()];
                if left == 0 {
                    return;
                }
                self.remaining[node.index()] = left - 1;
                let op = self.ops - left;
                api.request(LockId(0), Mode::Write, self.ticket(node, op));
            } else {
                let ticket = Ticket(timer - TIMER_RELEASE_BASE);
                api.release(LockId(0), ticket);
                api.set_timer(self.idle, TIMER_NEXT_OP);
            }
        }
    }

    fn run_ours(nodes: usize, ops: u32, seed: u64) -> SimReport {
        let cfg = ProtocolConfig::default();
        let spaces =
            (0..nodes).map(|i| LockSpace::new(NodeId(i as u32), 1, NodeId(0), cfg)).collect();
        let sim_cfg = SimConfig { seed, check_every: 1, ..SimConfig::default() };
        Sim::new(spaces, ExclusiveLoop::new(nodes, ops), sim_cfg).run().expect("invariants hold")
    }

    fn run_naimi(nodes: usize, ops: u32, seed: u64) -> SimReport {
        let spaces = (0..nodes).map(|i| NaimiSpace::new(NodeId(i as u32), 1, NodeId(0))).collect();
        let sim_cfg = SimConfig { seed, check_every: 1, ..SimConfig::default() };
        Sim::new(spaces, ExclusiveLoop::new(nodes, ops), sim_cfg).run().expect("invariants hold")
    }

    #[test]
    fn ours_exclusive_loop_completes_and_is_safe() {
        let report = run_ours(6, 5, 42);
        assert!(report.quiescent);
        assert_eq!(report.metrics.total_grants(), 30);
        assert_eq!(report.metrics.total_requests(), 30);
    }

    #[test]
    fn naimi_exclusive_loop_completes_and_is_safe() {
        let report = run_naimi(6, 5, 42);
        assert!(report.quiescent);
        assert_eq!(report.metrics.total_grants(), 30);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_ours(5, 4, 7);
        let b = run_ours(5, 4, 7);
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.events, b.events);
        assert_eq!(a.metrics.total_messages(), b.metrics.total_messages());
        let c = run_ours(5, 4, 8);
        assert!(
            c.end_time != a.end_time || c.metrics.total_messages() != a.metrics.total_messages(),
            "different seed should perturb the run"
        );
    }

    #[test]
    fn message_overhead_is_modest_for_exclusive_ours() {
        // For W-only workloads our protocol degenerates to token passing
        // like Naimi's; overhead per request should stay modest.
        let r = run_ours(10, 6, 3);
        let mpr = r.metrics.messages_per_request();
        assert!(mpr > 0.5 && mpr < 10.0, "messages/request = {mpr}");
    }

    #[test]
    fn naimi_latency_grows_with_contention() {
        let small = run_naimi(2, 6, 9);
        let large = run_naimi(12, 6, 9);
        assert!(
            large.metrics.mean_latency() > small.metrics.mean_latency(),
            "more nodes, more queueing: {} vs {}",
            large.metrics.mean_latency(),
            small.metrics.mean_latency()
        );
    }

    #[test]
    fn observer_sees_balanced_spans_and_transport_events() {
        use hlock_core::check_span_balance;
        use std::cell::RefCell;
        use std::rc::Rc;

        let events: Rc<RefCell<Vec<(u64, ProtocolEvent)>>> = Rc::default();
        let sink = Rc::clone(&events);
        let cfg = ProtocolConfig::default();
        let spaces = (0..4).map(|i| LockSpace::new(NodeId(i), 1, NodeId(0), cfg)).collect();
        let sim_cfg = SimConfig { seed: 5, check_every: 1, ..SimConfig::default() };
        let report = Sim::new(spaces, ExclusiveLoop::new(4, 3), sim_cfg)
            .with_observer(move |at: u64, e: &ProtocolEvent| {
                sink.borrow_mut().push((at, e.clone()));
            })
            .run()
            .expect("invariants hold");
        assert!(report.quiescent);

        let events = events.borrow();
        let count = |name: &str| events.iter().filter(|(_, e)| e.name() == name).count();
        // Every request opens a span, every grant closes one.
        assert_eq!(count("request_issued") as u64, report.metrics.total_requests());
        assert_eq!(count("granted") as u64, report.metrics.total_grants());
        // Transport activity is visible with both legs accounted:
        // everything sent was delivered (no fault injection configured).
        assert!(count("message_sent") > 0, "no message_sent events");
        assert_eq!(count("message_sent"), count("delivered"));
        assert_eq!(count("dropped"), 0);
        check_span_balance(events.iter().map(|(_, e)| e)).expect("spans balance");
        // Timestamps are the virtual clock, which never runs backwards.
        assert!(events.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn unobserved_run_matches_observed_run() {
        // Attaching an observer must not perturb the simulation itself.
        let plain = run_ours(5, 4, 21);
        let cfg = ProtocolConfig::default();
        let spaces = (0..5).map(|i| LockSpace::new(NodeId(i), 1, NodeId(0), cfg)).collect();
        let sim_cfg = SimConfig { seed: 21, check_every: 1, ..SimConfig::default() };
        let observed = Sim::new(spaces, ExclusiveLoop::new(5, 4), sim_cfg)
            .with_observer(|_: u64, _: &ProtocolEvent| {})
            .run()
            .expect("invariants hold");
        assert_eq!(plain.end_time, observed.end_time);
        assert_eq!(plain.metrics.total_messages(), observed.metrics.total_messages());
        assert_eq!(plain.metrics.total_grants(), observed.metrics.total_grants());
    }

    #[test]
    fn non_fifo_links_still_safe_for_naimi() {
        let spaces =
            (0..5).map(|i| NaimiSpace::new(NodeId(i as u32), 1, NodeId(0))).collect::<Vec<_>>();
        let sim_cfg =
            SimConfig { seed: 11, fifo_links: false, check_every: 1, ..SimConfig::default() };
        let report = Sim::new(spaces, ExclusiveLoop::new(5, 4), sim_cfg).run().unwrap();
        assert!(report.quiescent);
    }
}
