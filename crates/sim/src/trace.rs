//! Structured run tracing.
//!
//! A [`Tracer`] receives one [`TraceRecord`] per interesting simulator
//! event — deliveries, API calls, grants, timer fires, drops. Records are
//! plain data (messages pre-rendered to strings) so tracers need no
//! knowledge of the protocol's message type.

use crate::time::SimTime;
use hlock_core::{LockId, MessageKind, Mode, NodeId, Ticket};
use std::fmt;

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message was delivered to `to`.
    Deliver {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Message classification.
        kind: MessageKind,
        /// Rendered message contents.
        message: String,
    },
    /// A message was dropped by fault injection.
    Drop {
        /// Sender.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
        /// Message classification.
        kind: MessageKind,
    },
    /// The application issued a lock request.
    Request {
        /// Requesting node.
        node: NodeId,
        /// Lock requested.
        lock: LockId,
        /// Mode requested.
        mode: Mode,
        /// Correlation ticket.
        ticket: Ticket,
    },
    /// A request was granted.
    Grant {
        /// Node receiving the grant.
        node: NodeId,
        /// Lock granted.
        lock: LockId,
        /// Granted mode.
        mode: Mode,
        /// Correlation ticket.
        ticket: Ticket,
    },
    /// The application released a lock.
    Release {
        /// Releasing node.
        node: NodeId,
        /// Lock released.
        lock: LockId,
        /// Correlation ticket.
        ticket: Ticket,
    },
    /// The application requested an upgrade.
    Upgrade {
        /// Upgrading node.
        node: NodeId,
        /// Lock upgraded.
        lock: LockId,
        /// Correlation ticket.
        ticket: Ticket,
    },
    /// A driver timer fired.
    Timer {
        /// The timer's node.
        node: NodeId,
        /// Driver-chosen timer id.
        timer: u64,
    },
}

/// A timestamped [`TraceEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time of the event.
    pub at: SimTime,
    /// The event.
    pub event: TraceEvent,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ", self.at)?;
        match &self.event {
            TraceEvent::Deliver { from, to, kind, message } => {
                write!(f, "deliver {kind} {from}->{to}: {message}")
            }
            TraceEvent::Drop { from, to, kind } => write!(f, "DROP {kind} {from}->{to}"),
            TraceEvent::Request { node, lock, mode, ticket } => {
                write!(f, "{node} request {lock} {mode} ({ticket})")
            }
            TraceEvent::Grant { node, lock, mode, ticket } => {
                write!(f, "{node} granted {lock} {mode} ({ticket})")
            }
            TraceEvent::Release { node, lock, ticket } => {
                write!(f, "{node} release {lock} ({ticket})")
            }
            TraceEvent::Upgrade { node, lock, ticket } => {
                write!(f, "{node} upgrade {lock} ({ticket})")
            }
            TraceEvent::Timer { node, timer } => write!(f, "{node} timer {timer}"),
        }
    }
}

/// Receives trace records during a run.
pub trait Tracer {
    /// Called once per simulator event, in virtual-time order.
    fn record(&mut self, record: TraceRecord);
}

/// Discards everything (the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn record(&mut self, _record: TraceRecord) {}
}

/// Keeps the last `capacity` records in memory — handy for post-mortem
/// debugging of a failed run.
#[derive(Debug, Clone)]
pub struct RingTracer {
    capacity: usize,
    records: std::collections::VecDeque<TraceRecord>,
    total: u64,
}

impl RingTracer {
    /// A ring holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        RingTracer { capacity, records: std::collections::VecDeque::new(), total: 0 }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Total records ever seen (≥ retained count).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Renders the retained records, one per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        out
    }
}

impl Tracer for RingTracer {
    fn record(&mut self, record: TraceRecord) {
        self.total += 1;
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(record);
    }
}

/// Writes every record to stderr as it happens.
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrTracer;

impl Tracer for StderrTracer {
    fn record(&mut self, record: TraceRecord) {
        eprintln!("{record}");
    }
}

/// Forwards to a closure.
impl<F: FnMut(TraceRecord)> Tracer for F {
    fn record(&mut self, record: TraceRecord) {
        self(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64) -> TraceRecord {
        TraceRecord { at: SimTime(t), event: TraceEvent::Timer { node: NodeId(0), timer: t } }
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut ring = RingTracer::new(3);
        for t in 0..5 {
            ring.record(rec(t));
        }
        assert_eq!(ring.total(), 5);
        let kept: Vec<u64> = ring.records().map(|r| r.at.0).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(ring.dump().lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_ring_panics() {
        let _ = RingTracer::new(0);
    }

    #[test]
    fn closures_are_tracers() {
        let mut seen = 0u32;
        {
            let mut f = |_r: TraceRecord| seen += 1;
            f.record(rec(1));
            f.record(rec(2));
        }
        assert_eq!(seen, 2);
    }

    #[test]
    fn records_render_human_readably() {
        let r = TraceRecord {
            at: SimTime::from_millis(5),
            event: TraceEvent::Grant {
                node: NodeId(3),
                lock: LockId(0),
                mode: Mode::Read,
                ticket: Ticket(9),
            },
        };
        let s = r.to_string();
        assert!(s.contains("n3"));
        assert!(s.contains("granted"));
        assert!(s.contains('R'));
        let d = TraceRecord {
            at: SimTime::ZERO,
            event: TraceEvent::Drop { from: NodeId(0), to: NodeId(1), kind: MessageKind::Token },
        };
        assert!(d.to_string().contains("DROP"));
    }
}
