//! Structured tracing over the shared protocol-event vocabulary.
//!
//! A [`Tracer`] receives one [`TraceRecord`] per observed event. Since
//! the observability rework the simulator no longer has a bespoke event
//! enum: a record carries a [`ProtocolEvent`] — the exact vocabulary the
//! model checker and the TCP transport emit — stamped with simulated
//! time. [`TracerObserver`] adapts any `Tracer` to the core
//! [`Observer`] interface, which is how [`Sim::with_tracer`] plugs
//! tracers into the shared event pipeline.
//!
//! [`Sim::with_tracer`]: crate::Sim::with_tracer

use std::fmt;

use hlock_core::{Observer, ProtocolEvent};

use crate::time::SimTime;

/// A timestamped [`ProtocolEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time at which the event was observed.
    pub at: SimTime,
    /// What happened.
    pub event: ProtocolEvent,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} at {}", self.at, self.event.name(), self.event.node())?;
        if let Some(span) = self.event.span() {
            write!(f, " span {}:{}", span.origin, span.ticket.0)?;
        }
        Ok(())
    }
}

/// Consumes trace records during a simulation run.
pub trait Tracer {
    /// Called once per record, in observation order.
    fn record(&mut self, record: TraceRecord);
}

/// Discards every record (the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn record(&mut self, _record: TraceRecord) {}
}

/// Keeps the last `capacity` records in memory — cheap enough to leave
/// on, complete enough to explain a failure post-mortem.
#[derive(Debug)]
pub struct RingTracer {
    capacity: usize,
    records: std::collections::VecDeque<TraceRecord>,
    total: u64,
}

impl RingTracer {
    /// Creates a ring holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingTracer { capacity, records: std::collections::VecDeque::new(), total: 0 }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Total number of records ever received (including evicted ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Formats the retained records, one per line.
    pub fn dump(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for r in &self.records {
            let _ = writeln!(out, "{r}");
        }
        out
    }
}

impl Tracer for RingTracer {
    fn record(&mut self, record: TraceRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(record);
        self.total += 1;
    }
}

/// Prints every record to stderr (debugging aid; very verbose).
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrTracer;

impl Tracer for StderrTracer {
    fn record(&mut self, record: TraceRecord) {
        eprintln!("{record}");
    }
}

/// Any closure taking a record is a tracer.
impl<F: FnMut(TraceRecord)> Tracer for F {
    fn record(&mut self, record: TraceRecord) {
        self(record);
    }
}

/// Adapts a [`Tracer`] to the core [`Observer`] interface: each event is
/// wrapped in a [`TraceRecord`] whose timestamp reinterprets the
/// observer's microsecond clock as [`SimTime`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TracerObserver<T> {
    tracer: T,
}

impl<T: Tracer> TracerObserver<T> {
    /// Wraps `tracer`.
    pub fn new(tracer: T) -> Self {
        TracerObserver { tracer }
    }

    /// Returns the wrapped tracer.
    pub fn into_inner(self) -> T {
        self.tracer
    }
}

impl<T: Tracer> Observer for TracerObserver<T> {
    fn on_event(&mut self, at_micros: u64, event: &ProtocolEvent) {
        self.tracer.record(TraceRecord { at: SimTime(at_micros), event: event.clone() });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlock_core::NodeId;

    fn rec(t: u64) -> TraceRecord {
        TraceRecord {
            at: SimTime(t),
            event: ProtocolEvent::TimerFired { node: NodeId(0), token: t },
        }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_all() {
        let mut ring = RingTracer::new(3);
        for t in 0..5 {
            ring.record(rec(t));
        }
        assert_eq!(ring.total(), 5);
        let kept: Vec<u64> = ring.records().map(|r| r.at.0).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(ring.dump().lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ring_rejects_zero_capacity() {
        let _ = RingTracer::new(0);
    }

    #[test]
    fn closures_are_tracers() {
        let mut seen = 0;
        {
            let mut f = |_r: TraceRecord| seen += 1;
            f.record(rec(1));
            f.record(rec(2));
        }
        assert_eq!(seen, 2);
    }

    #[test]
    fn display_names_event_and_node() {
        let r = TraceRecord {
            at: SimTime(1_500_000),
            event: ProtocolEvent::TimerFired { node: NodeId(3), token: 9 },
        };
        let s = r.to_string();
        assert!(s.contains("timer_fired"), "{s}");
        assert!(s.contains("n3"), "{s}");
    }

    #[test]
    fn tracer_observer_bridges_events_to_records() {
        let mut seen: Vec<TraceRecord> = Vec::new();
        {
            let mut obs = TracerObserver::new(|r: TraceRecord| seen.push(r));
            let event = ProtocolEvent::TimerFired { node: NodeId(1), token: 4 };
            obs.on_event(250, &event);
        }
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].at, SimTime(250));
        assert_eq!(seen[0].event, ProtocolEvent::TimerFired { node: NodeId(1), token: 4 });
    }
}
