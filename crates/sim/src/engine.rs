//! The discrete-event simulation engine.
//!
//! Substitutes for the paper's 120-node Linux cluster: virtual time, a
//! randomized-latency network (per-link FIFO by default, like the TCP
//! links of the original testbed), seeded and fully deterministic.
//!
//! The engine is generic over the protocol (`hlock-core`'s [`LockSpace`]
//! or `hlock-naimi`'s `NaimiSpace`) and over a [`Driver`] that models the
//! application: the driver issues requests, holds critical sections for
//! sampled durations via timers, and releases.
//!
//! [`LockSpace`]: hlock_core::LockSpace

use crate::latency::LatencyModel;
use crate::metrics::Metrics;
use crate::time::{Duration, SimTime};
use crate::trace::{Tracer, TracerObserver};
use hlock_core::{
    BatchHost, Classify, ConcurrencyProtocol, EffectSink, HostRuntime, Inspect, LockId, Mode,
    NodeId, NullObserver, Observer, Priority, ProtocolEvent, SpanId, Ticket,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed: identical seeds reproduce identical runs bit-for-bit.
    pub seed: u64,
    /// Network latency model (the paper: exponential, mean 150 ms).
    pub latency: LatencyModel,
    /// Deliver messages per-link FIFO (models the paper's TCP links).
    pub fifo_links: bool,
    /// Number of locks in the system (for invariant checks).
    pub lock_count: usize,
    /// Check global safety invariants every N delivered events
    /// (0 disables checking; checking is `O(nodes × locks)` per check).
    pub check_every: u64,
    /// Hard stop: abort the run if virtual time exceeds this bound.
    pub max_virtual_time: SimTime,
    /// Fault injection: probability that a sent message is silently
    /// dropped. The protocol assumes reliable links (like the paper's
    /// TCP testbed); dropping messages must never violate *safety*, but
    /// liveness is forfeited — useful for assumption-validation tests.
    pub drop_probability: f64,
    /// Fault injection: probability that a sent message is delivered
    /// twice (with independent latencies).
    pub duplicate_probability: f64,
    /// Fault injection: probability that a sent message bypasses the
    /// per-link FIFO clock and gains an extra uniform latency in
    /// `[0, reorder_max_skew]`, letting it overtake (or fall behind)
    /// neighboring messages on the same link.
    pub reorder_probability: f64,
    /// Maximum extra skew a reordered message can gain.
    pub reorder_max_skew: Duration,
    /// Fault injection: timed network partitions. While a partition is
    /// active, messages crossing its cut are dropped at send time;
    /// partitions heal when their window closes.
    pub partitions: Vec<Partition>,
    /// Fault injection: node pause windows (crash-stop with resume).
    /// Messages arriving at a paused node are lost; the node's timers
    /// freeze and fire after resume with their remaining delay intact.
    pub pauses: Vec<NodePause>,
    /// Fault injection: permanent crash-stop schedules. From its crash
    /// time on, a node receives nothing (arriving frames are dropped on
    /// the floor), its timers are discarded, and it is excluded from the
    /// watchdog, the end-of-run safety invariants and the quiescence
    /// check. Messages it sent *before* crashing stay in flight — the
    /// network does not retract them.
    pub crashes: Vec<NodeCrash>,
    /// Liveness watchdog: if set, the run fails with a stuck-state
    /// report when requests are outstanding but no request or grant has
    /// happened for this long — instead of spinning silently until
    /// `max_virtual_time`, or draining the queue with wedged requests.
    pub watchdog: Option<Duration>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            latency: LatencyModel::paper(),
            fifo_links: true,
            lock_count: 1,
            check_every: 0,
            max_virtual_time: SimTime(u64::MAX),
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            reorder_probability: 0.0,
            reorder_max_skew: Duration::ZERO,
            partitions: Vec::new(),
            pauses: Vec::new(),
            crashes: Vec::new(),
            watchdog: None,
        }
    }
}

impl SimConfig {
    /// Checks the fault knobs for consistency: probabilities must be
    /// finite and within `[0, 1]` (feeding NaN or an out-of-range value
    /// to the RNG would otherwise panic deep inside the run, or worse,
    /// silently misbehave), and every partition or pause window must
    /// close after it opens.
    ///
    /// # Errors
    ///
    /// Names the offending knob and its value.
    pub fn validate(&self) -> Result<(), String> {
        let probabilities = [
            ("drop_probability", self.drop_probability),
            ("duplicate_probability", self.duplicate_probability),
            ("reorder_probability", self.reorder_probability),
        ];
        for (name, p) in probabilities {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a finite probability in [0, 1], got {p}"));
            }
        }
        for p in &self.partitions {
            if p.until <= p.from {
                return Err(format!(
                    "partition window must close after it opens (from {}, until {})",
                    p.from, p.until
                ));
            }
            if p.island.is_empty() {
                return Err("partition island must name at least one node".into());
            }
        }
        for p in &self.pauses {
            if p.until <= p.from {
                return Err(format!(
                    "pause window for {} must close after it opens (from {}, until {})",
                    p.node, p.from, p.until
                ));
            }
        }
        let mut crashed: Vec<NodeId> = Vec::new();
        for c in &self.crashes {
            if crashed.contains(&c.node) {
                return Err(format!("node {} has more than one crash scheduled", c.node));
            }
            crashed.push(c.node);
        }
        Ok(())
    }
}

/// A timed network partition separating `island` from everyone else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Nodes on one side of the cut.
    pub island: Vec<NodeId>,
    /// Virtual time at which the partition opens.
    pub from: SimTime,
    /// Virtual time at which the partition heals (exclusive).
    pub until: SimTime,
}

impl Partition {
    /// Whether a message from `a` to `b` sent at `at` crosses the cut.
    pub fn severs(&self, a: NodeId, b: NodeId, at: SimTime) -> bool {
        at >= self.from && at < self.until && (self.island.contains(&a) != self.island.contains(&b))
    }
}

/// A timed pause of one node (crash-stop that later resumes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodePause {
    /// The paused node.
    pub node: NodeId,
    /// Virtual time at which the node stops.
    pub from: SimTime,
    /// Virtual time at which the node resumes (exclusive).
    pub until: SimTime,
}

impl NodePause {
    /// Whether `node` is paused at `at`.
    pub fn covers(&self, node: NodeId, at: SimTime) -> bool {
        node == self.node && at >= self.from && at < self.until
    }
}

/// A permanent crash-stop of one node (never resumes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCrash {
    /// The crashing node.
    pub node: NodeId,
    /// Virtual time at which the node dies (inclusive).
    pub at: SimTime,
}

impl NodeCrash {
    /// Whether `node` is dead at `at`.
    pub fn covers(&self, node: NodeId, at: SimTime) -> bool {
        node == self.node && at >= self.at
    }
}

/// Commands a [`Driver`] can issue from its callbacks.
///
/// Accumulated in [`SimApi`] and executed by the engine after the
/// callback returns.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Command {
    Request { lock: LockId, mode: Mode, ticket: Ticket, priority: Priority },
    Release { lock: LockId, ticket: Ticket },
    Upgrade { lock: LockId, ticket: Ticket },
    Downgrade { lock: LockId, ticket: Ticket, mode: Mode },
    Timer { delay: Duration, timer: u64 },
}

/// The driver's handle to the simulation during a callback.
#[derive(Debug)]
pub struct SimApi {
    now: SimTime,
    commands: Vec<Command>,
}

impl SimApi {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Issues a lock request (the grant arrives via `Driver::on_granted`).
    pub fn request(&mut self, lock: LockId, mode: Mode, ticket: Ticket) {
        self.request_with_priority(lock, mode, ticket, Priority::NORMAL);
    }

    /// Issues a lock request with an explicit priority.
    pub fn request_with_priority(
        &mut self,
        lock: LockId,
        mode: Mode,
        ticket: Ticket,
        priority: Priority,
    ) {
        self.commands.push(Command::Request { lock, mode, ticket, priority });
    }

    /// Releases a granted lock.
    pub fn release(&mut self, lock: LockId, ticket: Ticket) {
        self.commands.push(Command::Release { lock, ticket });
    }

    /// Upgrades a held `U` lock to `W`.
    pub fn upgrade(&mut self, lock: LockId, ticket: Ticket) {
        self.commands.push(Command::Upgrade { lock, ticket });
    }

    /// Downgrades a held lock to a weaker mode.
    pub fn downgrade(&mut self, lock: LockId, ticket: Ticket, mode: Mode) {
        self.commands.push(Command::Downgrade { lock, ticket, mode });
    }

    /// Schedules `Driver::on_timer(node, timer)` after `delay`.
    pub fn set_timer(&mut self, delay: Duration, timer: u64) {
        self.commands.push(Command::Timer { delay, timer });
    }
}

/// The application model running on top of the protocol.
///
/// One driver instance models *all* nodes (callbacks carry the node id),
/// which keeps per-node state in one place and the engine simple.
pub trait Driver {
    /// Called once per node at time zero.
    fn start(&mut self, node: NodeId, api: &mut SimApi);

    /// A request previously issued with `ticket` was granted `mode`.
    fn on_granted(
        &mut self,
        node: NodeId,
        lock: LockId,
        ticket: Ticket,
        mode: Mode,
        api: &mut SimApi,
    );

    /// A timer set via [`SimApi::set_timer`] fired.
    fn on_timer(&mut self, node: NodeId, timer: u64, api: &mut SimApi);
}

#[derive(Debug)]
enum EventKind<M> {
    /// One network hop: a whole per-destination batch (one wire frame)
    /// arriving atomically, messages in per-link emission order.
    Deliver { from: NodeId, to: NodeId, messages: Vec<M> },
    /// A driver (application) timer, set via [`SimApi::set_timer`].
    Timer { node: NodeId, timer: u64 },
    /// A protocol timer, requested via [`hlock_core::Effect::SetTimer`].
    ProtocolTimer { node: NodeId, token: u64 },
}

struct Event<M> {
    time: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Result of a completed simulation run.
#[derive(Debug)]
pub struct SimReport {
    /// Collected measurements.
    pub metrics: Metrics,
    /// Virtual time when the event queue drained.
    pub end_time: SimTime,
    /// Whether every node reported protocol quiescence at the end.
    pub quiescent: bool,
    /// Number of events processed.
    pub events: u64,
}

/// A violated safety invariant; carries a human-readable explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation(pub String);

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invariant violated: {}", self.0)
    }
}

impl std::error::Error for InvariantViolation {}

/// The discrete-event simulator.
pub struct Sim<P: ConcurrencyProtocol, D> {
    config: SimConfig,
    nodes: Vec<P>,
    driver: D,
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Reverse<Event<P::Message>>>,
    rng: StdRng,
    link_clock: HashMap<(NodeId, NodeId), SimTime>,
    outstanding: HashMap<(NodeId, LockId, Ticket), (SimTime, Mode)>,
    metrics: Metrics,
    fx: EffectSink<P::Message>,
    runtime: HostRuntime<P::Message>,
    /// Computes the encoded size of one outgoing batch (one wire frame),
    /// for wire-byte accounting; `None` counts frames but zero bytes.
    frame_sizer: Option<Box<dyn Fn(&[P::Message]) -> u64>>,
    delivered: u64,
    observer: Box<dyn Observer>,
    /// Whether an observer is attached. Protocol-event emission is
    /// enabled only then, so an unobserved run constructs no events.
    observing: bool,
    /// Host-level events recorded while the observer is checked out
    /// during [`HostRuntime::dispatch_observed`] (the step host borrows
    /// the whole simulator); flushed right after the dispatch returns.
    host_events: Vec<ProtocolEvent>,
    /// Virtual time of the last request or grant, for the watchdog.
    last_progress: SimTime,
    /// The suspect set the watchdog last reported via
    /// [`ConcurrencyProtocol::on_suspect`]; a wedged run fails only once
    /// suspicion has been raised and a full window passed without progress.
    last_suspects: BTreeSet<NodeId>,
    /// Nodes whose scheduled crash has already closed its open request
    /// spans (each crash aborts exactly once).
    crash_aborted: BTreeSet<NodeId>,
}

impl<P, D> Sim<P, D>
where
    P: ConcurrencyProtocol + Inspect,
    D: Driver,
{
    /// Creates a simulator over `nodes` (indexed by [`NodeId`]) and an
    /// application `driver`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty, node ids are not dense `0..n`, or the
    /// config fails [`SimConfig::validate`] (NaN / out-of-range fault
    /// probabilities, inverted fault windows).
    pub fn new(nodes: Vec<P>, driver: D, config: SimConfig) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(n.node_id().index(), i, "node ids must be dense 0..n");
        }
        if let Err(e) = config.validate() {
            panic!("invalid SimConfig: {e}");
        }
        let rng = StdRng::seed_from_u64(config.seed);
        Sim {
            config,
            nodes,
            driver,
            now: SimTime::ZERO,
            seq: 0,
            events: BinaryHeap::new(),
            rng,
            link_clock: HashMap::new(),
            outstanding: HashMap::new(),
            metrics: Metrics::new(),
            fx: EffectSink::new(),
            runtime: HostRuntime::new(),
            frame_sizer: None,
            delivered: 0,
            observer: Box::new(NullObserver),
            observing: false,
            host_events: Vec::new(),
            last_progress: SimTime::ZERO,
            last_suspects: BTreeSet::new(),
            crash_aborted: BTreeSet::new(),
        }
    }

    /// Attaches an [`Observer`] receiving every [`ProtocolEvent`] of the
    /// run — protocol lifecycle transitions from the nodes, transport
    /// events from the engine — stamped with virtual time in
    /// microseconds. Attach a `hlock_core::JsonlObserver`,
    /// `ChromeTraceObserver` or `MetricsRegistry` (or a plain closure)
    /// to export the run.
    #[must_use]
    pub fn with_observer(mut self, observer: impl Observer + 'static) -> Self {
        self.observer = Box::new(observer);
        self.observing = true;
        self.fx.set_observing(true);
        self
    }

    /// Attaches a [`Tracer`] receiving a structured record per event
    /// (adapter over [`Sim::with_observer`]).
    #[must_use]
    pub fn with_tracer(self, tracer: impl Tracer + 'static) -> Self {
        self.with_observer(TracerObserver::new(tracer))
    }

    /// Attaches a frame sizer: given the messages of one outgoing batch
    /// (delivered as one wire frame), returns its encoded size in bytes.
    /// Enables [`Metrics::wire_bytes`] accounting; without it frames are
    /// still counted but bytes stay zero.
    #[must_use]
    pub fn with_frame_sizer(mut self, sizer: impl Fn(&[P::Message]) -> u64 + 'static) -> Self {
        self.frame_sizer = Some(Box::new(sizer));
        self
    }

    /// Closes the open request spans of every node whose scheduled
    /// crash time has now passed: each still-outstanding request of a
    /// dead node gets a terminal [`ProtocolEvent::RequestAborted`], so
    /// span balance holds across crash-recovery runs. Runs once per
    /// crash (tracked in `crash_aborted`).
    fn flush_crash_aborts(&mut self) {
        if self.crash_aborted.len() == self.config.crashes.len() {
            return;
        }
        let now = self.now;
        let newly: Vec<NodeId> = self
            .config
            .crashes
            .iter()
            .filter(|c| now >= c.at && !self.crash_aborted.contains(&c.node))
            .map(|c| c.node)
            .collect();
        for node in newly {
            self.crash_aborted.insert(node);
            let mut dead: Vec<(LockId, Ticket)> = self
                .outstanding
                .keys()
                .filter(|&&(n, _, _)| n == node)
                .map(|&(_, lock, ticket)| (lock, ticket))
                .collect();
            dead.sort_unstable();
            for (lock, ticket) in dead {
                self.outstanding.remove(&(node, lock, ticket));
                self.observe_with(|| ProtocolEvent::RequestAborted {
                    node,
                    lock,
                    span: SpanId::new(node, ticket),
                });
            }
        }
    }

    /// Records a host-level event; like `EffectSink::emit_with`, the
    /// closure never runs when no observer is attached.
    fn observe_with(&mut self, event: impl FnOnce() -> ProtocolEvent) {
        if self.observing {
            let event = event();
            self.observer.on_event(self.now.0, &event);
        }
    }

    /// Delivers events buffered by [`SimStepHost`] while the observer
    /// was checked out for a dispatch.
    fn flush_host_events(&mut self) {
        if self.host_events.is_empty() {
            return;
        }
        let mut events = std::mem::take(&mut self.host_events);
        for event in events.drain(..) {
            self.observer.on_event(self.now.0, &event);
        }
        self.host_events = events;
    }

    /// Runs to completion (event queue drained) and reports.
    ///
    /// # Errors
    ///
    /// Returns an [`InvariantViolation`] if safety checking is enabled and
    /// a check fails, or if virtual time exceeds the configured bound
    /// (which indicates livelock).
    pub fn run(self) -> Result<SimReport, InvariantViolation> {
        self.run_with_nodes().map(|(report, _)| report)
    }

    /// Like [`Sim::run`] but also hands back the final protocol states,
    /// for post-mortem inspection in tests and debugging.
    ///
    /// # Errors
    ///
    /// Same as [`Sim::run`].
    pub fn run_with_nodes(mut self) -> Result<(SimReport, Vec<P>), InvariantViolation> {
        // Time zero: give every node's application a chance to start.
        for i in 0..self.nodes.len() {
            let node = NodeId(i as u32);
            let mut api = SimApi { now: self.now, commands: Vec::new() };
            self.driver.start(node, &mut api);
            self.execute(node, api.commands)?;
        }
        loop {
            let Some(Reverse(ev)) = self.events.pop() else {
                // Queue drained. If live requests are wedged behind a
                // dead or paused node, raise suspicion — the recovery
                // traffic refills the queue and the run continues.
                if let Some(window) = self.config.watchdog {
                    if self.has_live_outstanding() && self.raise_suspicion(window)? {
                        continue;
                    }
                }
                break;
            };
            debug_assert!(ev.time >= self.now, "time must not go backwards");
            self.now = ev.time;
            self.flush_crash_aborts();
            if self.now > self.config.max_virtual_time {
                return Err(InvariantViolation(format!(
                    "virtual time bound exceeded at {} ({} events): likely livelock",
                    self.now, self.delivered
                )));
            }
            self.check_watchdog()?;
            let event_node = match &ev.kind {
                EventKind::Deliver { to, .. } => *to,
                EventKind::Timer { node, .. } | EventKind::ProtocolTimer { node, .. } => *node,
            };
            // Crash-stop: a dead node loses arriving messages and its
            // timers are discarded outright — it never runs again.
            if self.is_crashed(event_node, ev.time) {
                if let EventKind::Deliver { from, to, messages } = ev.kind {
                    for message in &messages {
                        let kind = message.kind();
                        self.observe_with(|| ProtocolEvent::Dropped { node: to, from, kind });
                    }
                }
                continue;
            }
            // Node pauses: a paused node loses arriving messages
            // (crash-stop) but keeps its timers frozen — they fire after
            // resume with their remaining delay intact.
            if let Some(pause) =
                self.config.pauses.iter().find(|p| p.covers(event_node, ev.time)).copied()
            {
                match ev.kind {
                    EventKind::Deliver { from, to, messages } => {
                        for message in &messages {
                            let kind = message.kind();
                            self.observe_with(|| ProtocolEvent::Dropped { node: to, from, kind });
                        }
                    }
                    kind => {
                        let resume_at = pause.until + (ev.time - pause.from);
                        self.push_event(resume_at, kind);
                    }
                }
                continue;
            }
            match ev.kind {
                EventKind::Deliver { from, to, messages } => {
                    for message in &messages {
                        let kind = message.kind();
                        self.observe_with(|| ProtocolEvent::Delivered { node: to, from, kind });
                    }
                    let before = self.delivered;
                    self.delivered += messages.len() as u64;
                    // Delivery goes through the runtime so stale-epoch
                    // messages are fenced before the protocol sees them.
                    self.runtime.deliver(&mut self.nodes[to.index()], from, messages, &mut self.fx);
                    self.process_effects(to)?;
                    // `delivered` counts logical messages; a batch checks
                    // once when it crosses a `check_every` boundary.
                    if self.config.check_every > 0
                        && before / self.config.check_every
                            != self.delivered / self.config.check_every
                    {
                        self.check_invariants()?;
                    }
                }
                EventKind::Timer { node, timer } => {
                    self.observe_with(|| ProtocolEvent::TimerFired { node, token: timer });
                    let mut api = SimApi { now: self.now, commands: Vec::new() };
                    self.driver.on_timer(node, timer, &mut api);
                    self.execute(node, api.commands)?;
                }
                EventKind::ProtocolTimer { node, token } => {
                    self.observe_with(|| ProtocolEvent::TimerFired { node, token });
                    self.nodes[node.index()].on_timer(token, &mut self.fx);
                    self.process_effects(node)?;
                }
            }
        }
        if let Some(report) = self.stuck_report() {
            if self.config.watchdog.is_some() {
                return Err(InvariantViolation(format!(
                    "liveness watchdog: event queue drained with wedged requests: {report}"
                )));
            }
        }
        if self.config.check_every > 0 {
            self.check_invariants()?;
            self.audit_quiescent()?;
        }
        // A crashed node is out of the system; only survivors owe
        // quiescence.
        let quiescent = self
            .nodes
            .iter()
            .filter(|n| !self.is_crashed(n.node_id(), self.now))
            .all(|n| n.is_quiescent());
        Ok((
            SimReport {
                metrics: self.metrics,
                end_time: self.now,
                quiescent,
                events: self.delivered,
            },
            self.nodes,
        ))
    }

    fn execute(&mut self, node: NodeId, commands: Vec<Command>) -> Result<(), InvariantViolation> {
        self.execute_inner(node, commands)?;
        self.process_effects(node)
    }

    /// Drains the effect sink after any protocol step at `node` through
    /// the shared [`HostRuntime`]: sends coalesce per destination into one
    /// simulated hop (one wire frame), grants dispatch to the driver
    /// (which may enqueue further commands, processed in the same instant).
    fn process_effects(&mut self, node: NodeId) -> Result<(), InvariantViolation> {
        loop {
            if self.fx.is_empty() && self.fx.events().is_empty() {
                return Ok(());
            }
            let mut fx = std::mem::replace(&mut self.fx, EffectSink::new());
            let mut runtime = std::mem::take(&mut self.runtime);
            let mut commands: Vec<(NodeId, Vec<Command>)> = Vec::new();
            if self.observing {
                // The step host borrows the whole simulator, so the
                // observer is checked out for the duration of the
                // dispatch; host-side drops land in `host_events`.
                let mut observer = std::mem::replace(&mut self.observer, Box::new(NullObserver));
                let now = self.now.0;
                runtime.dispatch_observed(
                    &mut fx,
                    &mut SimStepHost { sim: self, node, commands: &mut commands },
                    node,
                    &mut *observer,
                    now,
                );
                self.observer = observer;
                self.flush_host_events();
            } else {
                runtime.dispatch(
                    &mut fx,
                    &mut SimStepHost { sim: self, node, commands: &mut commands },
                );
            }
            self.runtime = runtime;
            self.fx = fx;
            for (n, cmds) in commands {
                // Execute driver reactions; their effects are picked up by
                // the next loop iteration.
                self.execute_inner(n, cmds)?;
            }
        }
    }

    /// Like `execute` but without draining effects (the caller loops).
    fn execute_inner(
        &mut self,
        node: NodeId,
        commands: Vec<Command>,
    ) -> Result<(), InvariantViolation> {
        for cmd in commands {
            match cmd {
                Command::Request { lock, mode, ticket, priority } => {
                    // The node itself emits `RequestIssued` (span open).
                    self.metrics.count_request();
                    self.last_progress = self.now;
                    self.outstanding.insert((node, lock, ticket), (self.now, mode));
                    self.nodes[node.index()]
                        .request_with_priority(lock, mode, ticket, priority, &mut self.fx)
                        .map_err(|e| InvariantViolation(format!("driver misuse at {node}: {e}")))?;
                }
                Command::Release { lock, ticket } => {
                    self.nodes[node.index()]
                        .release(lock, ticket, &mut self.fx)
                        .map_err(|e| InvariantViolation(format!("driver misuse at {node}: {e}")))?;
                }
                Command::Upgrade { lock, ticket } => {
                    // An upgrade is itself a lock request (for W).
                    self.metrics.count_request();
                    self.last_progress = self.now;
                    self.outstanding.insert((node, lock, ticket), (self.now, Mode::Write));
                    self.nodes[node.index()]
                        .upgrade(lock, ticket, &mut self.fx)
                        .map_err(|e| InvariantViolation(format!("driver misuse at {node}: {e}")))?;
                }
                Command::Downgrade { lock, ticket, mode } => {
                    self.nodes[node.index()]
                        .downgrade(lock, ticket, mode, &mut self.fx)
                        .map_err(|e| InvariantViolation(format!("driver misuse at {node}: {e}")))?;
                }
                Command::Timer { delay, timer } => {
                    let time = self.now + delay;
                    self.push_event(time, EventKind::Timer { node, timer });
                }
            }
        }
        Ok(())
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind<P::Message>) {
        self.seq += 1;
        self.events.push(Reverse(Event { time, seq: self.seq, kind }));
    }

    /// Whether `node` has crash-stopped at or before `at`.
    fn is_crashed(&self, node: NodeId, at: SimTime) -> bool {
        self.config.crashes.iter().any(|c| c.covers(node, at))
    }

    /// Whether `node` is currently inside a pause window.
    fn is_paused(&self, node: NodeId) -> bool {
        self.config.pauses.iter().any(|p| p.covers(node, self.now))
    }

    /// Whether any still-live node has a request outstanding.
    fn has_live_outstanding(&self) -> bool {
        self.outstanding.keys().any(|&(n, _, _)| !self.is_crashed(n, self.now))
    }

    /// Describes every wedged request from a still-live node (node, lock,
    /// ticket, mode, age), or `None` when nothing live is outstanding.
    /// A crashed node's requests die with it and are not wedged.
    fn stuck_report(&self) -> Option<String> {
        let mut entries: Vec<(&(NodeId, LockId, Ticket), &(SimTime, Mode))> = self
            .outstanding
            .iter()
            .filter(|((n, _, _), _)| !self.is_crashed(*n, self.now))
            .collect();
        if entries.is_empty() {
            return None;
        }
        entries.sort_by_key(|((n, l, t), _)| (n.0, l.0, t.0));
        let listed = entries
            .iter()
            .map(|((node, lock, ticket), (since, mode))| {
                format!("{node} waits for {lock} {mode} ({ticket}, {} old)", self.now - *since)
            })
            .collect::<Vec<_>>()
            .join("; ");
        Some(format!("{} outstanding: {listed}", entries.len()))
    }

    /// Acts when the watchdog window elapses with live requests
    /// outstanding and no progress. If some node is dead or paused, the
    /// watchdog first *suspects* it (via [`Sim::raise_suspicion`]) and
    /// re-arms, giving a recovery-capable protocol one full window to
    /// regenerate state and grant the survivors. Only when suspicion has
    /// already been raised (or there is nobody to suspect) does the run
    /// fail with a stuck-state report.
    fn check_watchdog(&mut self) -> Result<(), InvariantViolation> {
        let Some(window) = self.config.watchdog else { return Ok(()) };
        if !self.has_live_outstanding() || self.now - self.last_progress <= window {
            return Ok(());
        }
        if self.raise_suspicion(window)? {
            return Ok(());
        }
        let report = self.stuck_report().unwrap_or_default();
        Err(InvariantViolation(format!(
            "liveness watchdog: no request or grant for {} (> {window}): {report}",
            self.now - self.last_progress
        )))
    }

    /// Reports every node that was dead or paused at the virtual moment
    /// the watchdog would have fired (`last_progress + window`) to the
    /// live nodes via [`ConcurrencyProtocol::on_suspect`]. Evaluating
    /// fault coverage at the *deadline* rather than the current event
    /// time matters when virtual time jumps over a long fault window:
    /// the watchdog of a real deployment would have fired inside it.
    ///
    /// Returns `true` if any node started recovering — the watchdog then
    /// re-arms for a full window of recovery traffic. A suspect set that
    /// was already reported is not reported again: if recovery itself
    /// stalls, the run must fail rather than spin.
    fn raise_suspicion(&mut self, window: Duration) -> Result<bool, InvariantViolation> {
        let deadline = self.last_progress + window;
        let suspects: BTreeSet<NodeId> = (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|&n| {
                self.is_crashed(n, deadline)
                    || self.is_crashed(n, self.now)
                    || self.config.pauses.iter().any(|p| p.covers(n, deadline))
            })
            .collect();
        if suspects.is_empty() || suspects == self.last_suspects {
            return Ok(false);
        }
        self.last_suspects = suspects.clone();
        let dead: Vec<NodeId> = suspects.iter().copied().collect();
        let mut recovering = false;
        for i in 0..self.nodes.len() {
            let node = NodeId(i as u32);
            if suspects.contains(&node) || self.is_crashed(node, self.now) || self.is_paused(node) {
                continue;
            }
            recovering |= self.nodes[i].on_suspect(&dead, &mut self.fx);
            self.process_effects(node)?;
        }
        if recovering {
            // Recovery traffic is in flight; give it a full window.
            self.last_progress = self.now;
        }
        Ok(recovering)
    }

    /// Global audit at quiescence: copyset/parent agreement, single
    /// accounting, acyclicity, dominance and drained frozen state (only
    /// for protocols exposing their lock nodes; see `hlock_core::audit`).
    fn audit_quiescent(&mut self) -> Result<(), InvariantViolation> {
        if !self.config.crashes.is_empty() {
            // A crashed node's frozen pre-crash state would trip the
            // cross-node agreement checks; the epoch-scoped safety
            // invariants in `check_invariants` cover crashed runs.
            return Ok(());
        }
        if !self.nodes.iter().all(|n| n.is_quiescent()) {
            return Ok(()); // a faulted run may legitimately be wedged
        }
        for l in 0..self.config.lock_count {
            let lock = LockId(l as u32);
            let findings: Vec<String> = {
                let states: Vec<&hlock_core::LockNode> =
                    self.nodes.iter().filter_map(|n| n.lock_node(lock)).collect();
                if states.len() != self.nodes.len() {
                    return Ok(()); // not the hierarchical protocol
                }
                hlock_core::audit_lock(states).iter().map(ToString::to_string).collect()
            };
            if findings.is_empty() {
                continue;
            }
            // Surface every finding on the event stream before failing,
            // so an exported log or metrics dump records the audit too.
            for detail in &findings {
                self.observe_with(|| ProtocolEvent::AuditViolation {
                    node: NodeId(0),
                    lock,
                    detail: detail.clone(),
                });
            }
            return Err(InvariantViolation(format!(
                "quiescent-state audit failed ({} findings): {}",
                findings.len(),
                findings[0]
            )));
        }
        Ok(())
    }

    /// Global safety: for every lock, all concurrently held modes must be
    /// pairwise compatible and at most one node may hold the token.
    ///
    /// Safety is claimed over live nodes at the newest recovery epoch any
    /// live node has installed: a crashed node is out of the system, and
    /// a live node still at an older epoch is logically fenced — its
    /// holds are expired leases that every current-epoch node will refuse
    /// to honor (see `hlock_core::RecoverySpace`). Without recovery all
    /// nodes report epoch 0 and this reduces to the plain global check.
    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let max_epoch = self
            .nodes
            .iter()
            .filter(|n| !self.is_crashed(n.node_id(), self.now))
            .map(Inspect::epoch)
            .max()
            .unwrap_or(0);
        for l in 0..self.config.lock_count {
            let lock = LockId(l as u32);
            let mut held: Vec<(NodeId, Mode)> = Vec::new();
            let mut tokens = 0usize;
            for n in &self.nodes {
                if self.is_crashed(n.node_id(), self.now) || n.epoch() != max_epoch {
                    continue;
                }
                for m in n.held_modes(lock) {
                    held.push((n.node_id(), m));
                }
                if n.holds_token(lock) {
                    tokens += 1;
                }
            }
            if tokens > 1 {
                return Err(InvariantViolation(format!("{tokens} tokens exist for {lock}")));
            }
            for i in 0..held.len() {
                for j in i + 1..held.len() {
                    let (na, ma) = held[i];
                    let (nb, mb) = held[j];
                    if na != nb && !ma.compatible(mb) {
                        return Err(InvariantViolation(format!(
                            "incompatible holders on {lock}: {na} holds {ma}, {nb} holds {mb} at {}",
                            self.now
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// One effect-step's host adapter: borrows the simulator and routes the
/// shared runtime's step effects into the event queue, the metrics and
/// the driver. `node` is the node whose protocol step produced the sink.
struct SimStepHost<'a, P: ConcurrencyProtocol, D> {
    sim: &'a mut Sim<P, D>,
    node: NodeId,
    /// Driver reactions to grants, executed by the caller after dispatch
    /// (their effects belong to the *next* step, never this batch).
    commands: &'a mut Vec<(NodeId, Vec<Command>)>,
}

impl<P, D> BatchHost<P::Message> for SimStepHost<'_, P, D>
where
    P: ConcurrencyProtocol + Inspect,
    D: Driver,
{
    fn on_batch(&mut self, to: NodeId, messages: Vec<P::Message>) {
        let sim = &mut *self.sim;
        let from = self.node;
        for message in &messages {
            sim.metrics.count_message_from(from, message.kind());
        }
        let bytes = sim.frame_sizer.as_ref().map_or(0, |sizer| sizer(&messages));
        sim.metrics.count_frame(messages.len(), bytes);
        // Fault injection applies to the frame — the network transfer
        // unit — so a fault hits or spares the whole batch, exactly as a
        // lost or duplicated TCP segment would.
        if sim.config.partitions.iter().any(|p| p.severs(from, to, sim.now)) {
            if sim.observing {
                for message in &messages {
                    sim.host_events.push(ProtocolEvent::Dropped {
                        node: to,
                        from,
                        kind: message.kind(),
                    });
                }
            }
            return;
        }
        if sim.config.drop_probability > 0.0 && sim.rng.gen_bool(sim.config.drop_probability) {
            if sim.observing {
                for message in &messages {
                    sim.host_events.push(ProtocolEvent::Dropped {
                        node: to,
                        from,
                        kind: message.kind(),
                    });
                }
            }
            return;
        }
        let copies = if sim.config.duplicate_probability > 0.0
            && sim.rng.gen_bool(sim.config.duplicate_probability)
        {
            2
        } else {
            1
        };
        let mut remaining = Some(messages);
        for copy in 0..copies {
            let latency = sim.config.latency.sample(&mut sim.rng);
            let mut at = sim.now + latency;
            // A reordered frame skips the FIFO clock and gains bounded
            // extra skew, so it can overtake (or fall behind) its link
            // neighbors.
            let reordered = sim.config.reorder_probability > 0.0
                && sim.rng.gen_bool(sim.config.reorder_probability);
            if reordered {
                let skew = sim.config.reorder_max_skew.as_micros();
                if skew > 0 {
                    at = at + Duration(sim.rng.gen_range(0..=skew));
                }
            } else if sim.config.fifo_links {
                let clock = sim.link_clock.entry((from, to)).or_insert(SimTime::ZERO);
                if at <= *clock {
                    at = SimTime(clock.0 + 1);
                }
                *clock = at;
            }
            // The common single-copy case moves the batch without cloning;
            // only a duplicated frame pays for a copy.
            let batch = if copy + 1 == copies {
                remaining.take().expect("one batch per copy")
            } else {
                remaining.as_ref().expect("one batch per copy").clone()
            };
            sim.push_event(at, EventKind::Deliver { from, to, messages: batch });
        }
    }

    fn on_granted(&mut self, lock: LockId, ticket: Ticket, mode: Mode) {
        let sim = &mut *self.sim;
        let node = self.node;
        sim.last_progress = sim.now;
        // The node itself emits `Granted` (span close).
        if let Some((start, req_mode)) = sim.outstanding.remove(&(node, lock, ticket)) {
            debug_assert!(
                req_mode == mode || mode == Mode::Write,
                "grant mode matches request (or upgraded to W)"
            );
            sim.metrics.record_grant(req_mode, sim.now - start);
        }
        let mut api = SimApi { now: sim.now, commands: Vec::new() };
        sim.driver.on_granted(node, lock, ticket, mode, &mut api);
        self.commands.push((node, api.commands));
    }

    fn on_set_timer(&mut self, token: u64, delay_micros: u64) {
        let at = self.sim.now + Duration(delay_micros);
        let node = self.node;
        self.sim.push_event(at, EventKind::ProtocolTimer { node, token });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_bad_probabilities() {
        for bad in [f64::NAN, -0.1, 1.5, f64::INFINITY] {
            let cfg = SimConfig { drop_probability: bad, ..SimConfig::default() };
            let err = cfg.validate().unwrap_err();
            assert!(err.contains("drop_probability"), "{err}");
            let cfg = SimConfig { duplicate_probability: bad, ..SimConfig::default() };
            assert!(cfg.validate().unwrap_err().contains("duplicate_probability"));
            let cfg = SimConfig { reorder_probability: bad, ..SimConfig::default() };
            assert!(cfg.validate().unwrap_err().contains("reorder_probability"));
        }
        assert!(SimConfig::default().validate().is_ok());
        let full =
            SimConfig { drop_probability: 1.0, duplicate_probability: 0.0, ..SimConfig::default() };
        assert!(full.validate().is_ok(), "boundary values are legal");
    }

    #[test]
    fn validate_rejects_inverted_windows() {
        let cfg = SimConfig {
            partitions: vec![Partition {
                island: vec![NodeId(0)],
                from: SimTime(100),
                until: SimTime(100),
            }],
            ..SimConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("partition"));
        let cfg = SimConfig {
            pauses: vec![NodePause { node: NodeId(1), from: SimTime(9), until: SimTime(3) }],
            ..SimConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("pause"));
        let cfg = SimConfig {
            partitions: vec![Partition { island: vec![], from: SimTime(0), until: SimTime(1) }],
            ..SimConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("island"));
    }

    #[test]
    fn validate_rejects_double_crash() {
        let cfg = SimConfig {
            crashes: vec![
                NodeCrash { node: NodeId(2), at: SimTime(5) },
                NodeCrash { node: NodeId(2), at: SimTime(9) },
            ],
            ..SimConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("more than one crash"));
        let cfg = SimConfig {
            crashes: vec![
                NodeCrash { node: NodeId(2), at: SimTime(5) },
                NodeCrash { node: NodeId(3), at: SimTime(5) },
            ],
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_ok(), "distinct nodes may share a crash time");
    }

    #[test]
    fn crash_covers_everything_after_its_time() {
        let c = NodeCrash { node: NodeId(1), at: SimTime(10) };
        assert!(!c.covers(NodeId(1), SimTime(9)));
        assert!(c.covers(NodeId(1), SimTime(10)));
        assert!(c.covers(NodeId(1), SimTime(u64::MAX)));
        assert!(!c.covers(NodeId(0), SimTime(50)));
    }

    #[test]
    fn partition_severs_only_across_the_cut_during_the_window() {
        let p =
            Partition { island: vec![NodeId(0), NodeId(1)], from: SimTime(10), until: SimTime(20) };
        // Crossing the cut, inside the window.
        assert!(p.severs(NodeId(0), NodeId(2), SimTime(10)));
        assert!(p.severs(NodeId(2), NodeId(1), SimTime(19)));
        // Same side: never severed.
        assert!(!p.severs(NodeId(0), NodeId(1), SimTime(15)));
        assert!(!p.severs(NodeId(2), NodeId(3), SimTime(15)));
        // Outside the window: healed.
        assert!(!p.severs(NodeId(0), NodeId(2), SimTime(9)));
        assert!(!p.severs(NodeId(0), NodeId(2), SimTime(20)));
    }

    #[test]
    fn pause_covers_its_node_and_window() {
        let p = NodePause { node: NodeId(3), from: SimTime(5), until: SimTime(8) };
        assert!(p.covers(NodeId(3), SimTime(5)));
        assert!(p.covers(NodeId(3), SimTime(7)));
        assert!(!p.covers(NodeId(3), SimTime(8)));
        assert!(!p.covers(NodeId(2), SimTime(6)));
    }
}
