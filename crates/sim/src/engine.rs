//! The discrete-event simulation engine.
//!
//! Substitutes for the paper's 120-node Linux cluster: virtual time, a
//! randomized-latency network (per-link FIFO by default, like the TCP
//! links of the original testbed), seeded and fully deterministic.
//!
//! The engine is generic over the protocol (`hlock-core`'s [`LockSpace`]
//! or `hlock-naimi`'s `NaimiSpace`) and over a [`Driver`] that models the
//! application: the driver issues requests, holds critical sections for
//! sampled durations via timers, and releases.
//!
//! [`LockSpace`]: hlock_core::LockSpace

use crate::latency::LatencyModel;
use crate::metrics::Metrics;
use crate::time::{Duration, SimTime};
use crate::trace::{NullTracer, TraceEvent, TraceRecord, Tracer};
use hlock_core::{
    Classify, ConcurrencyProtocol, Effect, EffectSink, Inspect, LockId, Mode, NodeId, Priority,
    Ticket,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed: identical seeds reproduce identical runs bit-for-bit.
    pub seed: u64,
    /// Network latency model (the paper: exponential, mean 150 ms).
    pub latency: LatencyModel,
    /// Deliver messages per-link FIFO (models the paper's TCP links).
    pub fifo_links: bool,
    /// Number of locks in the system (for invariant checks).
    pub lock_count: usize,
    /// Check global safety invariants every N delivered events
    /// (0 disables checking; checking is `O(nodes × locks)` per check).
    pub check_every: u64,
    /// Hard stop: abort the run if virtual time exceeds this bound.
    pub max_virtual_time: SimTime,
    /// Fault injection: probability that a sent message is silently
    /// dropped. The protocol assumes reliable links (like the paper's
    /// TCP testbed); dropping messages must never violate *safety*, but
    /// liveness is forfeited — useful for assumption-validation tests.
    pub drop_probability: f64,
    /// Fault injection: probability that a sent message is delivered
    /// twice (with independent latencies).
    pub duplicate_probability: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            latency: LatencyModel::paper(),
            fifo_links: true,
            lock_count: 1,
            check_every: 0,
            max_virtual_time: SimTime(u64::MAX),
            drop_probability: 0.0,
            duplicate_probability: 0.0,
        }
    }
}

/// Commands a [`Driver`] can issue from its callbacks.
///
/// Accumulated in [`SimApi`] and executed by the engine after the
/// callback returns.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Command {
    Request { lock: LockId, mode: Mode, ticket: Ticket, priority: Priority },
    Release { lock: LockId, ticket: Ticket },
    Upgrade { lock: LockId, ticket: Ticket },
    Downgrade { lock: LockId, ticket: Ticket, mode: Mode },
    Timer { delay: Duration, timer: u64 },
}

/// The driver's handle to the simulation during a callback.
#[derive(Debug)]
pub struct SimApi {
    now: SimTime,
    commands: Vec<Command>,
}

impl SimApi {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Issues a lock request (the grant arrives via `Driver::on_granted`).
    pub fn request(&mut self, lock: LockId, mode: Mode, ticket: Ticket) {
        self.request_with_priority(lock, mode, ticket, Priority::NORMAL);
    }

    /// Issues a lock request with an explicit priority.
    pub fn request_with_priority(
        &mut self,
        lock: LockId,
        mode: Mode,
        ticket: Ticket,
        priority: Priority,
    ) {
        self.commands.push(Command::Request { lock, mode, ticket, priority });
    }

    /// Releases a granted lock.
    pub fn release(&mut self, lock: LockId, ticket: Ticket) {
        self.commands.push(Command::Release { lock, ticket });
    }

    /// Upgrades a held `U` lock to `W`.
    pub fn upgrade(&mut self, lock: LockId, ticket: Ticket) {
        self.commands.push(Command::Upgrade { lock, ticket });
    }

    /// Downgrades a held lock to a weaker mode.
    pub fn downgrade(&mut self, lock: LockId, ticket: Ticket, mode: Mode) {
        self.commands.push(Command::Downgrade { lock, ticket, mode });
    }

    /// Schedules `Driver::on_timer(node, timer)` after `delay`.
    pub fn set_timer(&mut self, delay: Duration, timer: u64) {
        self.commands.push(Command::Timer { delay, timer });
    }
}

/// The application model running on top of the protocol.
///
/// One driver instance models *all* nodes (callbacks carry the node id),
/// which keeps per-node state in one place and the engine simple.
pub trait Driver {
    /// Called once per node at time zero.
    fn start(&mut self, node: NodeId, api: &mut SimApi);

    /// A request previously issued with `ticket` was granted `mode`.
    fn on_granted(&mut self, node: NodeId, lock: LockId, ticket: Ticket, mode: Mode, api: &mut SimApi);

    /// A timer set via [`SimApi::set_timer`] fired.
    fn on_timer(&mut self, node: NodeId, timer: u64, api: &mut SimApi);
}

#[derive(Debug)]
enum EventKind<M> {
    Deliver { from: NodeId, to: NodeId, message: M },
    Timer { node: NodeId, timer: u64 },
}

struct Event<M> {
    time: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Result of a completed simulation run.
#[derive(Debug)]
pub struct SimReport {
    /// Collected measurements.
    pub metrics: Metrics,
    /// Virtual time when the event queue drained.
    pub end_time: SimTime,
    /// Whether every node reported protocol quiescence at the end.
    pub quiescent: bool,
    /// Number of events processed.
    pub events: u64,
}

/// A violated safety invariant; carries a human-readable explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation(pub String);

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invariant violated: {}", self.0)
    }
}

impl std::error::Error for InvariantViolation {}

/// The discrete-event simulator.
pub struct Sim<P: ConcurrencyProtocol, D> {
    config: SimConfig,
    nodes: Vec<P>,
    driver: D,
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Reverse<Event<P::Message>>>,
    rng: StdRng,
    link_clock: HashMap<(NodeId, NodeId), SimTime>,
    outstanding: HashMap<(NodeId, LockId, Ticket), (SimTime, Mode)>,
    metrics: Metrics,
    fx: EffectSink<P::Message>,
    delivered: u64,
    tracer: Box<dyn Tracer>,
}

impl<P, D> Sim<P, D>
where
    P: ConcurrencyProtocol + Inspect,
    D: Driver,
{
    /// Creates a simulator over `nodes` (indexed by [`NodeId`]) and an
    /// application `driver`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty or node ids are not dense `0..n`.
    pub fn new(nodes: Vec<P>, driver: D, config: SimConfig) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(n.node_id().index(), i, "node ids must be dense 0..n");
        }
        let rng = StdRng::seed_from_u64(config.seed);
        Sim {
            config,
            nodes,
            driver,
            now: SimTime::ZERO,
            seq: 0,
            events: BinaryHeap::new(),
            rng,
            link_clock: HashMap::new(),
            outstanding: HashMap::new(),
            metrics: Metrics::new(),
            fx: EffectSink::new(),
            delivered: 0,
            tracer: Box::new(NullTracer),
        }
    }

    /// Attaches a [`Tracer`] receiving a structured record per event.
    #[must_use]
    pub fn with_tracer(mut self, tracer: impl Tracer + 'static) -> Self {
        self.tracer = Box::new(tracer);
        self
    }

    fn trace(&mut self, event: TraceEvent) {
        self.tracer.record(TraceRecord { at: self.now, event });
    }

    /// Runs to completion (event queue drained) and reports.
    ///
    /// # Errors
    ///
    /// Returns an [`InvariantViolation`] if safety checking is enabled and
    /// a check fails, or if virtual time exceeds the configured bound
    /// (which indicates livelock).
    pub fn run(self) -> Result<SimReport, InvariantViolation> {
        self.run_with_nodes().map(|(report, _)| report)
    }

    /// Like [`Sim::run`] but also hands back the final protocol states,
    /// for post-mortem inspection in tests and debugging.
    ///
    /// # Errors
    ///
    /// Same as [`Sim::run`].
    pub fn run_with_nodes(mut self) -> Result<(SimReport, Vec<P>), InvariantViolation> {
        // Time zero: give every node's application a chance to start.
        for i in 0..self.nodes.len() {
            let node = NodeId(i as u32);
            let mut api = SimApi { now: self.now, commands: Vec::new() };
            self.driver.start(node, &mut api);
            self.execute(node, api.commands)?;
        }
        while let Some(Reverse(ev)) = self.events.pop() {
            debug_assert!(ev.time >= self.now, "time must not go backwards");
            self.now = ev.time;
            if self.now > self.config.max_virtual_time {
                return Err(InvariantViolation(format!(
                    "virtual time bound exceeded at {} ({} events): likely livelock",
                    self.now, self.delivered
                )));
            }
            match ev.kind {
                EventKind::Deliver { from, to, message } => {
                    self.trace(TraceEvent::Deliver {
                        from,
                        to,
                        kind: message.kind(),
                        message: format!("{message:?}"),
                    });
                    self.nodes[to.index()].on_message(from, message, &mut self.fx);
                    self.process_effects(to)?;
                    self.delivered += 1;
                    if self.config.check_every > 0
                        && self.delivered.is_multiple_of(self.config.check_every)
                    {
                        self.check_invariants()?;
                    }
                }
                EventKind::Timer { node, timer } => {
                    self.trace(TraceEvent::Timer { node, timer });
                    let mut api = SimApi { now: self.now, commands: Vec::new() };
                    self.driver.on_timer(node, timer, &mut api);
                    self.execute(node, api.commands)?;
                }
            }
        }
        if self.config.check_every > 0 {
            self.check_invariants()?;
            self.audit_quiescent()?;
        }
        let quiescent = self.nodes.iter().all(|n| n.is_quiescent());
        Ok((
            SimReport {
                metrics: self.metrics,
                end_time: self.now,
                quiescent,
                events: self.delivered,
            },
            self.nodes,
        ))
    }

    fn execute(&mut self, node: NodeId, commands: Vec<Command>) -> Result<(), InvariantViolation> {
        self.execute_inner(node, commands)?;
        self.process_effects(node)
    }

    /// Drains the effect sink after any protocol step at `node`:
    /// schedules sends and dispatches grants to the driver (which may
    /// enqueue further commands, processed in the same instant).
    fn process_effects(&mut self, node: NodeId) -> Result<(), InvariantViolation> {
        loop {
            let effects: Vec<Effect<P::Message>> = self.fx.drain().collect();
            if effects.is_empty() {
                return Ok(());
            }
            let mut commands: Vec<(NodeId, Vec<Command>)> = Vec::new();
            for effect in effects {
                match effect {
                    Effect::Send { to, message } => {
                        self.metrics.count_message_from(node, message.kind());
                        if self.config.drop_probability > 0.0
                            && self.rng.gen_bool(self.config.drop_probability)
                        {
                            self.trace(TraceEvent::Drop { from: node, to, kind: message.kind() });
                            continue;
                        }
                        let copies = if self.config.duplicate_probability > 0.0
                            && self.rng.gen_bool(self.config.duplicate_probability)
                        {
                            2
                        } else {
                            1
                        };
                        for _ in 0..copies {
                            let latency = self.config.latency.sample(&mut self.rng);
                            let mut at = self.now + latency;
                            if self.config.fifo_links {
                                let clock =
                                    self.link_clock.entry((node, to)).or_insert(SimTime::ZERO);
                                if at <= *clock {
                                    at = SimTime(clock.0 + 1);
                                }
                                *clock = at;
                            }
                            self.push_event(
                                at,
                                EventKind::Deliver { from: node, to, message: message.clone() },
                            );
                        }
                    }
                    Effect::Granted { lock, ticket, mode } => {
                        self.trace(TraceEvent::Grant { node, lock, mode, ticket });
                        if let Some((start, req_mode)) =
                            self.outstanding.remove(&(node, lock, ticket))
                        {
                            debug_assert!(
                                req_mode == mode || mode == Mode::Write,
                                "grant mode matches request (or upgraded to W)"
                            );
                            self.metrics.record_grant(req_mode, self.now - start);
                        }
                        let mut api = SimApi { now: self.now, commands: Vec::new() };
                        self.driver.on_granted(node, lock, ticket, mode, &mut api);
                        commands.push((node, api.commands));
                    }
                }
            }
            for (n, cmds) in commands {
                // Execute driver reactions; their effects are picked up by
                // the next loop iteration.
                self.execute_inner(n, cmds)?;
            }
        }
    }

    /// Like `execute` but without draining effects (the caller loops).
    fn execute_inner(
        &mut self,
        node: NodeId,
        commands: Vec<Command>,
    ) -> Result<(), InvariantViolation> {
        for cmd in commands {
            match cmd {
                Command::Request { lock, mode, ticket, priority } => {
                    self.trace(TraceEvent::Request { node, lock, mode, ticket });
                    self.metrics.count_request();
                    self.outstanding.insert((node, lock, ticket), (self.now, mode));
                    self.nodes[node.index()]
                        .request_with_priority(lock, mode, ticket, priority, &mut self.fx)
                        .map_err(|e| {
                            InvariantViolation(format!("driver misuse at {node}: {e}"))
                        })?;
                }
                Command::Release { lock, ticket } => {
                    self.trace(TraceEvent::Release { node, lock, ticket });
                    self.nodes[node.index()]
                        .release(lock, ticket, &mut self.fx)
                        .map_err(|e| {
                            InvariantViolation(format!("driver misuse at {node}: {e}"))
                        })?;
                }
                Command::Upgrade { lock, ticket } => {
                    self.trace(TraceEvent::Upgrade { node, lock, ticket });
                    // An upgrade is itself a lock request (for W).
                    self.metrics.count_request();
                    self.outstanding
                        .insert((node, lock, ticket), (self.now, Mode::Write));
                    self.nodes[node.index()]
                        .upgrade(lock, ticket, &mut self.fx)
                        .map_err(|e| {
                            InvariantViolation(format!("driver misuse at {node}: {e}"))
                        })?;
                }
                Command::Downgrade { lock, ticket, mode } => {
                    self.nodes[node.index()]
                        .downgrade(lock, ticket, mode, &mut self.fx)
                        .map_err(|e| {
                            InvariantViolation(format!("driver misuse at {node}: {e}"))
                        })?;
                }
                Command::Timer { delay, timer } => {
                    let time = self.now + delay;
                    self.push_event(time, EventKind::Timer { node, timer });
                }
            }
        }
        Ok(())
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind<P::Message>) {
        self.seq += 1;
        self.events.push(Reverse(Event { time, seq: self.seq, kind }));
    }

    /// Global audit at quiescence: copyset/parent agreement, single
    /// accounting, acyclicity, dominance and drained frozen state (only
    /// for protocols exposing their lock nodes; see `hlock_core::audit`).
    fn audit_quiescent(&self) -> Result<(), InvariantViolation> {
        if !self.nodes.iter().all(|n| n.is_quiescent()) {
            return Ok(()); // a faulted run may legitimately be wedged
        }
        for l in 0..self.config.lock_count {
            let lock = LockId(l as u32);
            let states: Vec<&hlock_core::LockNode> =
                self.nodes.iter().filter_map(|n| n.lock_node(lock)).collect();
            if states.len() != self.nodes.len() {
                return Ok(()); // not the hierarchical protocol
            }
            let findings = hlock_core::audit_lock(states);
            if let Some(first) = findings.first() {
                return Err(InvariantViolation(format!(
                    "quiescent-state audit failed ({} findings): {first}",
                    findings.len()
                )));
            }
        }
        Ok(())
    }

    /// Global safety: for every lock, all concurrently held modes must be
    /// pairwise compatible and at most one node may hold the token.
    fn check_invariants(&self) -> Result<(), InvariantViolation> {
        for l in 0..self.config.lock_count {
            let lock = LockId(l as u32);
            let mut held: Vec<(NodeId, Mode)> = Vec::new();
            let mut tokens = 0usize;
            for n in &self.nodes {
                for m in n.held_modes(lock) {
                    held.push((n.node_id(), m));
                }
                if n.holds_token(lock) {
                    tokens += 1;
                }
            }
            if tokens > 1 {
                return Err(InvariantViolation(format!("{tokens} tokens exist for {lock}")));
            }
            for i in 0..held.len() {
                for j in i + 1..held.len() {
                    let (na, ma) = held[i];
                    let (nb, mb) = held[j];
                    if na != nb && !ma.compatible(mb) {
                        return Err(InvariantViolation(format!(
                            "incompatible holders on {lock}: {na} holds {ma}, {nb} holds {mb} at {}",
                            self.now
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}
