//! Measurement collection: everything needed to regenerate the paper's
//! Figures 5–7.

use crate::time::Duration;
use hlock_core::{MessageKind, Mode, NodeId, Reservoir, ALL_MODES};
use std::collections::HashMap;

/// Aggregated measurements of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Messages sent, by kind (Figure 7).
    message_counts: HashMap<MessageKind, u64>,
    /// Messages sent, by sender (hotspot analysis).
    sent_by_node: HashMap<NodeId, u64>,
    /// Total lock requests issued.
    requests: u64,
    /// Total grants observed.
    grants: u64,
    /// Wire frames sent (one frame carries a whole per-destination batch).
    frames: u64,
    /// Logical messages carried inside counted frames (for the coalesce
    /// ratio; equals `total_messages()` when every send is frame-counted).
    frame_messages: u64,
    /// Encoded bytes of all counted frames (0 without a frame sizer).
    wire_bytes: u64,
    /// Request-to-grant latency samples, per requested mode. Each entry
    /// is a bounded [`Reservoir`]: exact sum/count/max forever, with a
    /// fixed-size uniform sample for percentile queries — memory stays
    /// constant no matter how long the run is.
    latency: HashMap<ModeKey, Reservoir>,
}

/// Latencies are keyed by mode; exclusive baselines use `Write` for all.
type ModeKey = Mode;

impl Metrics {
    /// Fresh, empty metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one sent message.
    pub fn count_message(&mut self, kind: MessageKind) {
        *self.message_counts.entry(kind).or_insert(0) += 1;
    }

    /// Records one sent message with its sender (for load analysis).
    pub fn count_message_from(&mut self, from: NodeId, kind: MessageKind) {
        self.count_message(kind);
        *self.sent_by_node.entry(from).or_insert(0) += 1;
    }

    /// Messages sent by one node.
    pub fn messages_sent_by(&self, node: NodeId) -> u64 {
        self.sent_by_node.get(&node).copied().unwrap_or(0)
    }

    /// The busiest sender and its message count, if any messages flowed.
    pub fn hottest_node(&self) -> Option<(NodeId, u64)> {
        self.sent_by_node
            .iter()
            .max_by_key(|&(n, c)| (*c, std::cmp::Reverse(n.0)))
            .map(|(n, c)| (*n, *c))
    }

    /// Load imbalance: busiest sender's share divided by the mean share
    /// (1.0 = perfectly balanced). Returns 0 with no traffic.
    pub fn load_imbalance(&self) -> f64 {
        let total: u64 = self.sent_by_node.values().sum();
        let nodes = self.sent_by_node.len();
        if total == 0 || nodes == 0 {
            return 0.0;
        }
        let max = self.sent_by_node.values().max().copied().unwrap_or(0);
        max as f64 / (total as f64 / nodes as f64)
    }

    /// Records one wire frame carrying `logical` coalesced messages and
    /// occupying `bytes` on the wire (pass 0 when no sizer is available).
    pub fn count_frame(&mut self, logical: usize, bytes: u64) {
        self.frames += 1;
        self.frame_messages += logical as u64;
        self.wire_bytes += bytes;
    }

    /// Wire frames sent.
    pub fn total_frames(&self) -> u64 {
        self.frames
    }

    /// Encoded wire bytes of all counted frames.
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes
    }

    /// Logical messages per wire frame — 1.0 when nothing coalesced (or
    /// nothing was frame-counted), higher when batching amortized frames.
    pub fn coalesce_ratio(&self) -> f64 {
        if self.frames == 0 {
            1.0
        } else {
            self.frame_messages as f64 / self.frames as f64
        }
    }

    /// Encoded wire bytes per grant (0 with no grants).
    pub fn bytes_per_grant(&self) -> f64 {
        if self.grants == 0 {
            0.0
        } else {
            self.wire_bytes as f64 / self.grants as f64
        }
    }

    /// Records that a request was issued.
    pub fn count_request(&mut self) {
        self.requests += 1;
    }

    /// Records a grant and its request-to-grant latency.
    pub fn record_grant(&mut self, mode: Mode, latency: Duration) {
        self.grants += 1;
        self.latency.entry(mode).or_default().record(latency.as_micros());
    }

    /// Total messages of one kind.
    pub fn messages_of_kind(&self, kind: MessageKind) -> u64 {
        self.message_counts.get(&kind).copied().unwrap_or(0)
    }

    /// Total messages of all kinds.
    pub fn total_messages(&self) -> u64 {
        self.message_counts.values().sum()
    }

    /// Total requests issued.
    pub fn total_requests(&self) -> u64 {
        self.requests
    }

    /// Total grants observed.
    pub fn total_grants(&self) -> u64 {
        self.grants
    }

    /// Figure 5 metric: average messages per lock request.
    pub fn messages_per_request(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.total_messages() as f64 / self.requests as f64
    }

    /// Per-kind average messages per request (Figure 7 series).
    pub fn messages_per_request_of_kind(&self, kind: MessageKind) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.messages_of_kind(kind) as f64 / self.requests as f64
    }

    /// Average request-to-grant latency over all modes (Figure 6 metric).
    pub fn mean_latency(&self) -> Duration {
        let (sum, count) =
            self.latency.values().fold((0u128, 0u64), |(s, c), a| (s + a.sum(), c + a.count()));
        if count == 0 {
            Duration::ZERO
        } else {
            Duration((sum / u128::from(count)) as u64)
        }
    }

    /// Average latency for one requested mode, if any samples exist.
    pub fn mean_latency_for(&self, mode: Mode) -> Option<Duration> {
        self.latency.get(&mode).and_then(|a| {
            (!a.is_empty()).then(|| Duration((a.sum() / u128::from(a.count())) as u64))
        })
    }

    /// Worst observed latency across all modes.
    pub fn max_latency(&self) -> Duration {
        Duration(self.latency.values().map(Reservoir::max).max().unwrap_or(0))
    }

    /// Latency percentile over all modes (`p` in `0.0..=1.0`, e.g. `0.99`).
    /// Returns zero with no samples. Exact while total samples fit in the
    /// per-mode reservoirs; an unbiased estimate beyond that.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn latency_percentile(&self, p: f64) -> Duration {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
        let mut all = Reservoir::default();
        for a in self.latency.values() {
            all.merge(a);
        }
        Duration(all.percentile(p).unwrap_or(0))
    }

    /// The per-mode latency reservoir, if any samples were recorded.
    pub fn latency_reservoir(&self, mode: Mode) -> Option<&Reservoir> {
        self.latency.get(&mode)
    }

    /// Figure 6 metric: mean latency as a multiple of `base`.
    pub fn latency_factor(&self, base: Duration) -> f64 {
        if base == Duration::ZERO {
            return 0.0;
        }
        self.mean_latency().as_millis_f64() / base.as_millis_f64()
    }

    /// One-line human-readable summary.
    pub fn summary(&self, base_latency: Duration) -> String {
        let mut parts = vec![
            format!("requests={}", self.requests),
            format!("grants={}", self.grants),
            format!("msgs/req={:.2}", self.messages_per_request()),
            format!("latency_factor={:.1}", self.latency_factor(base_latency)),
        ];
        for kind in MessageKind::ALL {
            let n = self.messages_of_kind(kind);
            if n > 0 {
                parts.push(format!("{}={}", kind.label(), n));
            }
        }
        parts.join(" ")
    }

    /// Per-mode latency table rows `(mode, mean, samples)`.
    pub fn latency_by_mode(&self) -> Vec<(Mode, Duration, u64)> {
        ALL_MODES
            .into_iter()
            .filter_map(|m| {
                self.latency.get(&m).and_then(|a| {
                    (!a.is_empty())
                        .then(|| (m, Duration((a.sum() / u128::from(a.count())) as u64), a.count()))
                })
            })
            .collect()
    }

    /// Merges another run's metrics into this one (for averaging across
    /// seeds).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.message_counts {
            *self.message_counts.entry(*k).or_insert(0) += v;
        }
        for (n, v) in &other.sent_by_node {
            *self.sent_by_node.entry(*n).or_insert(0) += v;
        }
        self.requests += other.requests;
        self.grants += other.grants;
        self.frames += other.frames;
        self.frame_messages += other.frame_messages;
        self.wire_bytes += other.wire_bytes;
        for (m, a) in &other.latency {
            self.latency.entry(*m).or_default().merge(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_node_load_accounting() {
        let mut m = Metrics::new();
        m.count_message_from(NodeId(0), MessageKind::Request);
        m.count_message_from(NodeId(0), MessageKind::Grant);
        m.count_message_from(NodeId(0), MessageKind::Grant);
        m.count_message_from(NodeId(1), MessageKind::Request);
        assert_eq!(m.messages_sent_by(NodeId(0)), 3);
        assert_eq!(m.messages_sent_by(NodeId(2)), 0);
        assert_eq!(m.hottest_node(), Some((NodeId(0), 3)));
        // mean = 2, max = 3 → imbalance 1.5
        assert!((m.load_imbalance() - 1.5).abs() < 1e-9);
        assert_eq!(m.total_messages(), 4);
        let empty = Metrics::new();
        assert_eq!(empty.hottest_node(), None);
        assert_eq!(empty.load_imbalance(), 0.0);
    }

    #[test]
    fn message_accounting() {
        let mut m = Metrics::new();
        m.count_message(MessageKind::Request);
        m.count_message(MessageKind::Request);
        m.count_message(MessageKind::Token);
        m.count_request();
        assert_eq!(m.messages_of_kind(MessageKind::Request), 2);
        assert_eq!(m.total_messages(), 3);
        assert!((m.messages_per_request() - 3.0).abs() < 1e-9);
        assert!((m.messages_per_request_of_kind(MessageKind::Token) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn latency_accounting() {
        let mut m = Metrics::new();
        m.record_grant(Mode::Read, Duration::from_millis(100));
        m.record_grant(Mode::Read, Duration::from_millis(300));
        m.record_grant(Mode::Write, Duration::from_millis(500));
        assert_eq!(m.mean_latency(), Duration::from_millis(300));
        assert_eq!(m.mean_latency_for(Mode::Read), Some(Duration::from_millis(200)));
        assert_eq!(m.mean_latency_for(Mode::Upgrade), None);
        assert_eq!(m.max_latency(), Duration::from_millis(500));
        assert!((m.latency_factor(Duration::from_millis(150)) - 2.0).abs() < 1e-9);
        assert_eq!(m.total_grants(), 3);
    }

    #[test]
    fn percentiles() {
        let mut m = Metrics::new();
        for ms in 1..=100u64 {
            m.record_grant(Mode::Read, Duration::from_millis(ms));
        }
        assert_eq!(m.latency_percentile(0.0), Duration::from_millis(1));
        assert_eq!(m.latency_percentile(1.0), Duration::from_millis(100));
        let p50 = m.latency_percentile(0.5).as_millis_f64();
        assert!((p50 - 50.0).abs() <= 1.0, "{p50}");
        let p99 = m.latency_percentile(0.99).as_millis_f64();
        assert!((p99 - 99.0).abs() <= 1.0, "{p99}");
        assert_eq!(Metrics::new().latency_percentile(0.5), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_out_of_range_panics() {
        let _ = Metrics::new().latency_percentile(1.5);
    }

    /// Long runs no longer grow memory per grant: aggregates stay exact
    /// and percentiles stay plausible past the reservoir capacity.
    #[test]
    fn latency_memory_stays_bounded() {
        let mut m = Metrics::new();
        for ms in 1..=10_000u64 {
            m.record_grant(Mode::Read, Duration::from_millis(ms));
        }
        assert_eq!(m.total_grants(), 10_000);
        assert_eq!(m.mean_latency(), Duration(5_000_500));
        assert_eq!(m.max_latency(), Duration::from_millis(10_000));
        let p50 = m.latency_percentile(0.5).as_millis_f64();
        assert!((p50 - 5_000.0).abs() < 1_000.0, "{p50}");
        let p99 = m.latency_percentile(0.99).as_millis_f64();
        assert!(p99 > 9_000.0, "{p99}");
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::new();
        assert_eq!(m.messages_per_request(), 0.0);
        assert_eq!(m.mean_latency(), Duration::ZERO);
        assert_eq!(m.latency_factor(Duration::ZERO), 0.0);
        assert!(m.latency_by_mode().is_empty());
    }

    #[test]
    fn frame_accounting() {
        let mut m = Metrics::new();
        assert_eq!(m.coalesce_ratio(), 1.0, "no frames counted yet");
        // Three logical messages in two frames: one coalesced pair, one single.
        m.count_frame(2, 40);
        m.count_frame(1, 28);
        m.record_grant(Mode::Read, Duration::from_millis(10));
        assert_eq!(m.total_frames(), 2);
        assert_eq!(m.wire_bytes(), 68);
        assert!((m.coalesce_ratio() - 1.5).abs() < 1e-9);
        assert!((m.bytes_per_grant() - 68.0).abs() < 1e-9);
        assert_eq!(Metrics::new().bytes_per_grant(), 0.0);
        let mut other = Metrics::new();
        other.count_frame(3, 12);
        m.merge(&other);
        assert_eq!(m.total_frames(), 3);
        assert_eq!(m.wire_bytes(), 80);
        assert!((m.coalesce_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_runs() {
        let mut a = Metrics::new();
        a.count_request();
        a.count_message(MessageKind::Grant);
        a.record_grant(Mode::Read, Duration::from_millis(100));
        let mut b = Metrics::new();
        b.count_request();
        b.count_message(MessageKind::Grant);
        b.record_grant(Mode::Read, Duration::from_millis(300));
        a.merge(&b);
        assert_eq!(a.total_requests(), 2);
        assert_eq!(a.messages_of_kind(MessageKind::Grant), 2);
        assert_eq!(a.mean_latency_for(Mode::Read), Some(Duration::from_millis(200)));
    }

    #[test]
    fn summary_mentions_counts() {
        let mut m = Metrics::new();
        m.count_request();
        m.count_message(MessageKind::Freeze);
        let s = m.summary(Duration::from_millis(150));
        assert!(s.contains("requests=1"));
        assert!(s.contains("freeze=1"));
    }
}
