//! Reliable-delivery session layer for hlock protocols.
//!
//! The protocols in this workspace assume what the paper assumes:
//! reliable, per-link-FIFO channels (TCP). The simulator can violate
//! that assumption (drops, duplicates, reordering, partitions), and on
//! raw links the protocols stay *safe* but forfeit *liveness* — a lost
//! token is lost forever. [`SessionSpace`] restores liveness by wrapping
//! any [`ConcurrencyProtocol`] in a sans-I/O Go-Back-N session:
//!
//! - every outgoing message gets a per-link sequence number and carries
//!   a piggybacked cumulative ack ([`SessionFrame::Data`]);
//! - received traffic is acknowledged on the next frame to that peer,
//!   or with a standalone [`SessionFrame::Ack`] when there is none;
//! - unacknowledged frames are retransmitted on a timer
//!   ([`hlock_core::Effect::SetTimer`]) with exponential backoff,
//!   bounded jitter and an optional retry cap;
//! - duplicates are dropped and reordered frames are buffered in a
//!   bounded receive window, so the wrapped protocol still observes a
//!   reliable FIFO link.
//!
//! The layer is pure state: it runs unchanged under the discrete-event
//! simulator, the exhaustive model checker and the TCP transport.
//!
//! ```
//! use hlock_core::{ConcurrencyProtocol, EffectSink, LockId, LockSpace, Mode, NodeId,
//!                  ProtocolConfig, Ticket};
//! use hlock_session::{SessionConfig, SessionSpace};
//!
//! let inner = LockSpace::new(NodeId(0), 1, NodeId(0), ProtocolConfig::default());
//! let mut node = SessionSpace::new(inner, SessionConfig::default());
//! let mut fx = EffectSink::new();
//! // Token home grants locally: no frames, no timers.
//! node.request(LockId(0), Mode::Write, Ticket(1), &mut fx).unwrap();
//! assert_eq!(fx.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hlock_core::{
    CancelOutcome, Classify, ConcurrencyProtocol, Effect, EffectSink, Inspect, LockId, MessageKind,
    Mode, NodeId, Priority, ProtocolError, Ticket,
};
use std::collections::{BTreeMap, VecDeque};
use std::hash::{Hash, Hasher};

/// Namespace prefix for the session layer's timer tokens.
///
/// The low 32 bits carry the peer's [`NodeId`]; wrapped protocols must
/// not request timers with tokens in this namespace (the base protocols
/// request none at all).
pub const TIMER_NAMESPACE: u64 = 0x5E55_0000 << 32;

fn timer_token(peer: NodeId) -> u64 {
    TIMER_NAMESPACE | u64::from(peer.0)
}

fn timer_peer(token: u64) -> Option<NodeId> {
    (token & !0xFFFF_FFFF == TIMER_NAMESPACE).then(|| NodeId((token & 0xFFFF_FFFF) as u32))
}

/// One frame on a session-wrapped link.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SessionFrame<M> {
    /// A protocol message with reliability metadata.
    Data {
        /// Per-link sequence number of this frame (first frame is 1).
        seq: u64,
        /// Cumulative ack: every frame from the receiver with sequence
        /// number `<= ack` has been accepted by the sender of this frame.
        ack: u64,
        /// The wrapped protocol message.
        message: M,
    },
    /// A standalone cumulative acknowledgement, sent when a received
    /// frame is not answered by protocol traffic it could piggyback on.
    Ack {
        /// Cumulative ack, as in [`SessionFrame::Data`].
        ack: u64,
    },
}

impl<M: Classify> Classify for SessionFrame<M> {
    fn kind(&self) -> MessageKind {
        match self {
            SessionFrame::Data { message, .. } => message.kind(),
            SessionFrame::Ack { .. } => MessageKind::Ack,
        }
    }
}

/// Tuning knobs of the session layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionConfig {
    /// Base retransmission timeout, in host microseconds.
    pub rto_micros: u64,
    /// Ceiling of the exponential backoff, in host microseconds. No
    /// armed retransmission delay ever exceeds this plus `jitter_micros`,
    /// so backoff growth can never silently outlast a liveness-watchdog
    /// window and mimic a crash.
    pub max_backoff_micros: u64,
    /// Uniform jitter added to every (re)transmission timer, in
    /// `[0, jitter_micros]` host microseconds. Zero disables jitter and
    /// makes the layer fully deterministic (required for model checking).
    /// Must be at most `rto_micros`: jitter wider than the base RTO makes
    /// the effective timeout distribution meaningless.
    pub jitter_micros: u64,
    /// Retransmission rounds without ack progress before a link is
    /// declared failed (`None` = retry forever).
    pub max_retransmits: Option<u32>,
    /// Receive-window size: a frame more than this many sequence numbers
    /// ahead of the next expected one is dropped rather than buffered.
    pub recv_window: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            rto_micros: 10_000,
            max_backoff_micros: 160_000,
            jitter_micros: 1_000,
            max_retransmits: None,
            recv_window: 1024,
        }
    }
}

impl SessionConfig {
    /// A deterministic, minimal-delay configuration for the model
    /// checker: zero jitter (no hidden randomness in the state space)
    /// and unit timeouts (the checker fires timers nondeterministically
    /// anyway).
    pub fn for_model_checking() -> Self {
        SessionConfig {
            rto_micros: 1,
            max_backoff_micros: 1,
            jitter_micros: 0,
            max_retransmits: None,
            recv_window: 64,
        }
    }

    /// Checks the knobs for internal consistency.
    ///
    /// # Errors
    ///
    /// Describes the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.rto_micros == 0 {
            return Err("rto_micros must be positive".into());
        }
        if self.max_backoff_micros < self.rto_micros {
            return Err(format!(
                "max_backoff_micros ({}) must be >= rto_micros ({})",
                self.max_backoff_micros, self.rto_micros
            ));
        }
        if self.jitter_micros > self.rto_micros {
            return Err(format!(
                "jitter_micros ({}) must be <= rto_micros ({})",
                self.jitter_micros, self.rto_micros
            ));
        }
        if self.recv_window == 0 {
            return Err("recv_window must be positive".into());
        }
        Ok(())
    }
}

/// Counters exposed by [`SessionSpace::stats`]; excluded from state
/// fingerprints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Data frames sent (first transmissions only).
    pub data_frames: u64,
    /// Standalone ack frames sent.
    pub acks: u64,
    /// Data frames retransmitted.
    pub retransmits: u64,
    /// Received frames dropped as duplicates.
    pub duplicates_dropped: u64,
    /// Received frames dropped for falling outside the receive window.
    pub out_of_window_dropped: u64,
    /// Received frames buffered because they arrived ahead of a gap.
    pub reordered_buffered: u64,
    /// Links declared failed after exhausting the retry cap.
    pub link_failures: u64,
}

impl SessionStats {
    /// Accumulates `other` into `self` — used to aggregate per-node
    /// counters into a cluster-wide total.
    pub fn merge(&mut self, other: &SessionStats) {
        self.data_frames += other.data_frames;
        self.acks += other.acks;
        self.retransmits += other.retransmits;
        self.duplicates_dropped += other.duplicates_dropped;
        self.out_of_window_dropped += other.out_of_window_dropped;
        self.reordered_buffered += other.reordered_buffered;
        self.link_failures += other.link_failures;
    }
}

/// Per-peer reliability state.
#[derive(Debug, Clone)]
struct LinkState<M> {
    /// Sequence number the next outgoing frame will carry.
    next_seq: u64,
    /// Sent but unacknowledged frames, in sequence order.
    unacked: VecDeque<(u64, M)>,
    /// Retransmission rounds since the last ack progress.
    attempts: u32,
    /// Whether a retransmission timer is outstanding for this link.
    timer_armed: bool,
    /// Sequence number of the oldest unacked frame when the timer was
    /// armed. If acks progressed past it by the time the timer fires,
    /// the younger frames have not yet waited a full RTO — the fire
    /// defers (re-arms fresh) instead of retransmitting prematurely.
    timer_oldest: u64,
    /// Set when the retry cap was exhausted; cleared by ack progress or
    /// a link reset.
    failed: bool,
    /// Sequence number of the next in-order frame we will accept.
    next_expected: u64,
    /// Frames received ahead of a gap, keyed by sequence number.
    reorder: BTreeMap<u64, M>,
}

impl<M> Default for LinkState<M> {
    fn default() -> Self {
        LinkState {
            next_seq: 1,
            unacked: VecDeque::new(),
            attempts: 0,
            timer_armed: false,
            timer_oldest: 0,
            failed: false,
            next_expected: 1,
            reorder: BTreeMap::new(),
        }
    }
}

impl<M> LinkState<M> {
    /// The cumulative ack we currently owe this peer.
    fn ack_level(&self) -> u64 {
        self.next_expected - 1
    }
}

/// A [`ConcurrencyProtocol`] wrapped in a reliable session per link.
///
/// `SessionSpace` is itself a `ConcurrencyProtocol` (with message type
/// [`SessionFrame`]), so every host — simulator, model checker, TCP
/// cluster — drives it exactly like the raw protocol it wraps.
#[derive(Debug, Clone)]
pub struct SessionSpace<P: ConcurrencyProtocol> {
    inner: P,
    cfg: SessionConfig,
    links: BTreeMap<NodeId, LinkState<P::Message>>,
    stats: SessionStats,
    scratch: EffectSink<P::Message>,
    /// xorshift64 state for timer jitter; untouched when jitter is zero.
    rng: u64,
}

impl<P: ConcurrencyProtocol> SessionSpace<P> {
    /// Wraps `inner` with session reliability configured by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SessionConfig::validate`].
    pub fn new(inner: P, cfg: SessionConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid SessionConfig: {e}");
        }
        let rng = 0x9E37_79B9_7F4A_7C15 ^ (u64::from(inner.node_id().0) << 17 | 1);
        SessionSpace {
            inner,
            cfg,
            links: BTreeMap::new(),
            stats: SessionStats::default(),
            scratch: EffectSink::new(),
            rng,
        }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// Reliability counters accumulated so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Peers whose links were declared failed (retry cap exhausted).
    pub fn failed_links(&self) -> Vec<NodeId> {
        self.links.iter().filter(|(_, l)| l.failed).map(|(n, _)| *n).collect()
    }

    /// Total frames currently awaiting acknowledgement, across links.
    pub fn unacked_frames(&self) -> usize {
        self.links.values().map(|l| l.unacked.len()).sum()
    }

    fn next_jitter(&mut self) -> u64 {
        if self.cfg.jitter_micros == 0 {
            return 0;
        }
        // xorshift64: cheap, deterministic, state explicitly seeded.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x % (self.cfg.jitter_micros + 1)
    }

    fn backoff_delay(&mut self, attempts: u32) -> u64 {
        let shift = attempts.min(16);
        let base =
            self.cfg.rto_micros.saturating_mul(1u64 << shift).min(self.cfg.max_backoff_micros);
        base + self.next_jitter()
    }

    /// Sends `message` to `to` as a sequenced `Data` frame, arming the
    /// retransmission timer if this link has none outstanding.
    fn send_data(
        &mut self,
        to: NodeId,
        message: P::Message,
        fx: &mut EffectSink<SessionFrame<P::Message>>,
    ) {
        let link = self.links.entry(to).or_default();
        let seq = link.next_seq;
        link.next_seq += 1;
        link.unacked.push_back((seq, message.clone()));
        let ack = link.ack_level();
        let arm = if link.timer_armed {
            None
        } else {
            link.timer_armed = true;
            link.timer_oldest = seq;
            Some(link.attempts)
        };
        self.stats.data_frames += 1;
        fx.send(to, SessionFrame::Data { seq, ack, message });
        if let Some(attempts) = arm {
            let delay = self.backoff_delay(attempts);
            fx.set_timer(timer_token(to), delay);
        }
    }

    /// Runs `f` with the wrapped protocol and the scratch sink, then
    /// flushes the results into `fx`. The scratch sink inherits `fx`'s
    /// observing flag so protocol events ([`hlock_core::ProtocolEvent`])
    /// emitted by the inner state machine survive the session wrapper.
    fn with_inner<R>(
        &mut self,
        fx: &mut EffectSink<SessionFrame<P::Message>>,
        f: impl FnOnce(&mut P, &mut EffectSink<P::Message>) -> R,
    ) -> R {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.set_observing(fx.observing());
        let out = f(&mut self.inner, &mut scratch);
        self.scratch = scratch;
        self.flush_inner(fx);
        out
    }

    /// Translates the wrapped protocol's queued effects into session
    /// frames, passing grants, inner timers and protocol events through.
    fn flush_inner(&mut self, fx: &mut EffectSink<SessionFrame<P::Message>>) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.forward_events_into(fx);
        for effect in scratch.drain() {
            match effect {
                Effect::Send { to, message } => self.send_data(to, message, fx),
                Effect::Granted { lock, ticket, mode } => fx.granted(lock, ticket, mode),
                Effect::SetTimer { token, delay_micros } => {
                    debug_assert!(
                        timer_peer(token).is_none(),
                        "wrapped protocol used a session-namespace timer token"
                    );
                    fx.set_timer(token, delay_micros);
                }
            }
        }
        self.scratch = scratch;
    }

    /// Accepts one incoming frame: applies its cumulative ack, delivers
    /// in-order `Data` (plus anything it unblocks in the reorder buffer)
    /// to the wrapped protocol and flushes the results into `fx`.
    /// Returns whether the frame was `Data` — i.e. whether the peer is
    /// now owed an acknowledgement. The ack itself is *not* emitted
    /// here: callers decide once per delivery unit (message or batch),
    /// so a whole batch costs at most one standalone `Ack`.
    fn accept_frame(
        &mut self,
        from: NodeId,
        message: SessionFrame<P::Message>,
        fx: &mut EffectSink<SessionFrame<P::Message>>,
    ) -> bool {
        match message {
            SessionFrame::Ack { ack } => {
                self.process_ack(from, ack);
                false
            }
            SessionFrame::Data { seq, ack, message } => {
                self.process_ack(from, ack);
                // Accept in-order traffic (including anything it unblocks
                // in the reorder buffer); stash or drop the rest.
                let mut deliver = Vec::new();
                {
                    let link = self.links.entry(from).or_default();
                    if seq == link.next_expected {
                        link.next_expected += 1;
                        deliver.push(message);
                        while let Some(m) = link.reorder.remove(&link.next_expected) {
                            link.next_expected += 1;
                            deliver.push(m);
                        }
                    } else if seq < link.next_expected {
                        self.stats.duplicates_dropped += 1;
                    } else if seq - link.next_expected < self.cfg.recv_window {
                        if link.reorder.insert(seq, message).is_some() {
                            self.stats.duplicates_dropped += 1;
                        } else {
                            self.stats.reordered_buffered += 1;
                        }
                    } else {
                        self.stats.out_of_window_dropped += 1;
                    }
                }
                for m in deliver {
                    self.with_inner(fx, |inner, scratch| inner.on_message(from, m, scratch));
                }
                true
            }
        }
    }

    /// Emits the acknowledgement owed to `from` after a delivery unit:
    /// piggybacked if the effects since `before` already carry a `Data`
    /// frame to that peer, standalone otherwise.
    fn ack_if_needed(
        &mut self,
        from: NodeId,
        need_ack: bool,
        before: usize,
        fx: &mut EffectSink<SessionFrame<P::Message>>,
    ) {
        if !need_ack {
            return;
        }
        let piggybacked = fx.as_slice()[before..].iter().any(
            |e| matches!(e, Effect::Send { to, message: SessionFrame::Data { .. } } if *to == from),
        );
        if !piggybacked {
            let ack = self.links.entry(from).or_default().ack_level();
            self.stats.acks += 1;
            fx.send(from, SessionFrame::Ack { ack });
        }
    }

    /// Applies a cumulative ack from `from`, releasing covered frames.
    fn process_ack(&mut self, from: NodeId, ack: u64) {
        let link = self.links.entry(from).or_default();
        let mut progressed = false;
        while link.unacked.front().is_some_and(|(seq, _)| *seq <= ack) {
            link.unacked.pop_front();
            progressed = true;
        }
        if progressed {
            link.attempts = 0;
            link.failed = false;
        }
    }
}

impl<P: ConcurrencyProtocol> ConcurrencyProtocol for SessionSpace<P> {
    type Message = SessionFrame<P::Message>;

    fn node_id(&self) -> NodeId {
        self.inner.node_id()
    }

    fn request(
        &mut self,
        lock: LockId,
        mode: Mode,
        ticket: Ticket,
        fx: &mut EffectSink<Self::Message>,
    ) -> Result<(), ProtocolError> {
        self.with_inner(fx, |inner, scratch| inner.request(lock, mode, ticket, scratch))
    }

    fn request_with_priority(
        &mut self,
        lock: LockId,
        mode: Mode,
        ticket: Ticket,
        priority: Priority,
        fx: &mut EffectSink<Self::Message>,
    ) -> Result<(), ProtocolError> {
        self.with_inner(fx, |inner, scratch| {
            inner.request_with_priority(lock, mode, ticket, priority, scratch)
        })
    }

    fn release(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        fx: &mut EffectSink<Self::Message>,
    ) -> Result<(), ProtocolError> {
        self.with_inner(fx, |inner, scratch| inner.release(lock, ticket, scratch))
    }

    fn upgrade(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        fx: &mut EffectSink<Self::Message>,
    ) -> Result<(), ProtocolError> {
        self.with_inner(fx, |inner, scratch| inner.upgrade(lock, ticket, scratch))
    }

    fn try_request(
        &mut self,
        lock: LockId,
        mode: Mode,
        ticket: Ticket,
        fx: &mut EffectSink<Self::Message>,
    ) -> Result<bool, ProtocolError> {
        self.with_inner(fx, |inner, scratch| inner.try_request(lock, mode, ticket, scratch))
    }

    fn downgrade(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        new_mode: Mode,
        fx: &mut EffectSink<Self::Message>,
    ) -> Result<(), ProtocolError> {
        self.with_inner(fx, |inner, scratch| inner.downgrade(lock, ticket, new_mode, scratch))
    }

    fn cancel(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        fx: &mut EffectSink<Self::Message>,
    ) -> Result<CancelOutcome, ProtocolError> {
        self.with_inner(fx, |inner, scratch| inner.cancel(lock, ticket, scratch))
    }

    fn on_message(
        &mut self,
        from: NodeId,
        message: Self::Message,
        fx: &mut EffectSink<Self::Message>,
    ) {
        let before = fx.len();
        let need_ack = self.accept_frame(from, message, fx);
        self.ack_if_needed(from, need_ack, before, fx);
    }

    /// A batch is one sequenced unit: every frame is accepted in order,
    /// but the acknowledgement decision is made **once** for the whole
    /// batch — so `n` coalesced `Data` frames cost at most one standalone
    /// `Ack` instead of `n`, and any reply traffic the batch provokes
    /// piggybacks the ack for all of them.
    fn on_message_batch(
        &mut self,
        from: NodeId,
        messages: Vec<Self::Message>,
        fx: &mut EffectSink<Self::Message>,
    ) {
        let before = fx.len();
        let mut need_ack = false;
        for message in messages {
            need_ack |= self.accept_frame(from, message, fx);
        }
        self.ack_if_needed(from, need_ack, before, fx);
    }

    fn on_timer(&mut self, token: u64, fx: &mut EffectSink<Self::Message>) {
        let Some(peer) = timer_peer(token) else {
            // An inner-protocol timer: forward it.
            self.with_inner(fx, |inner, scratch| inner.on_timer(token, scratch));
            return;
        };
        let Some(link) = self.links.get_mut(&peer) else { return };
        link.timer_armed = false;
        if link.unacked.is_empty() || link.failed {
            return;
        }
        let oldest = link.unacked.front().map(|(seq, _)| *seq).unwrap_or(0);
        if oldest != link.timer_oldest {
            // Acks progressed while the timer was pending: the frames
            // still in flight are younger than one RTO. Re-arm fresh
            // rather than retransmitting prematurely.
            link.timer_oldest = oldest;
            link.timer_armed = true;
            let attempts = link.attempts;
            let delay = self.backoff_delay(attempts);
            fx.set_timer(token, delay);
            return;
        }
        if self.cfg.max_retransmits.is_some_and(|cap| link.attempts >= cap) {
            link.failed = true;
            self.stats.link_failures += 1;
            return;
        }
        link.attempts = link.attempts.saturating_add(1);
        let attempts = link.attempts;
        let ack = link.ack_level();
        let frames: Vec<SessionFrame<P::Message>> = link
            .unacked
            .iter()
            .map(|(seq, m)| SessionFrame::Data { seq: *seq, ack, message: m.clone() })
            .collect();
        link.timer_armed = true;
        self.stats.retransmits += frames.len() as u64;
        for frame in frames {
            fx.send(peer, frame);
        }
        fx.set_timer(token, self.backoff_delay(attempts));
    }

    fn on_link_reset(&mut self, peer: NodeId, fx: &mut EffectSink<Self::Message>) {
        self.with_inner(fx, |inner, scratch| inner.on_link_reset(peer, scratch));
        let Some(link) = self.links.get_mut(&peer) else { return };
        link.attempts = 0;
        link.failed = false;
        if link.unacked.is_empty() {
            return;
        }
        let ack = link.ack_level();
        let frames: Vec<SessionFrame<P::Message>> = link
            .unacked
            .iter()
            .map(|(seq, m)| SessionFrame::Data { seq: *seq, ack, message: m.clone() })
            .collect();
        let arm = !link.timer_armed;
        link.timer_armed = true;
        link.timer_oldest = link.unacked.front().map(|(seq, _)| *seq).unwrap_or(0);
        self.stats.retransmits += frames.len() as u64;
        for frame in frames {
            fx.send(peer, frame);
        }
        if arm {
            let delay = self.backoff_delay(0);
            fx.set_timer(timer_token(peer), delay);
        }
    }

    fn is_quiescent(&self) -> bool {
        self.inner.is_quiescent()
            && self
                .links
                .values()
                .all(|l| l.unacked.is_empty() && l.reorder.is_empty() && !l.failed)
    }
}

impl<P: ConcurrencyProtocol + Inspect> Inspect for SessionSpace<P> {
    fn held_modes(&self, lock: LockId) -> Vec<Mode> {
        self.inner.held_modes(lock)
    }

    fn holds_token(&self, lock: LockId) -> bool {
        self.inner.holds_token(lock)
    }

    fn lock_node(&self, lock: LockId) -> Option<&hlock_core::LockNode> {
        self.inner.lock_node(lock)
    }

    fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    fn suspects(&self, peer: NodeId) -> bool {
        self.inner.suspects(peer)
    }

    fn frozen(&self) -> bool {
        self.inner.frozen()
    }

    fn open_requests(&self) -> Vec<(LockId, Ticket)> {
        self.inner.open_requests()
    }
}

/// Fingerprint support for the model checker.
///
/// Stats and the jitter rng are deliberately excluded: they do not
/// influence future behavior. `attempts` is included only when a retry
/// cap is configured (without one it affects nothing but backoff delay,
/// which the checker ignores), keeping the checked state space finite.
impl<P: ConcurrencyProtocol + Hash> Hash for SessionSpace<P>
where
    P::Message: Hash,
{
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.inner.hash(state);
        self.links.len().hash(state);
        for (peer, link) in &self.links {
            peer.hash(state);
            link.next_seq.hash(state);
            link.unacked.hash(state);
            if self.cfg.max_retransmits.is_some() {
                link.attempts.hash(state);
            }
            link.timer_armed.hash(state);
            if link.timer_armed {
                // Dead state while disarmed (overwritten on the next
                // arm), so hashing it then would only split states.
                link.timer_oldest.hash(state);
            }
            link.failed.hash(state);
            link.next_expected.hash(state);
            link.reorder.hash(state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlock_core::{LockSpace, ProtocolConfig};

    const L: LockId = LockId(0);

    /// Two session-wrapped nodes over one lock whose token home is node 0.
    fn pair() -> (SessionSpace<LockSpace>, SessionSpace<LockSpace>) {
        let cfg = SessionConfig { jitter_micros: 0, ..SessionConfig::default() };
        let a = SessionSpace::new(
            LockSpace::new(NodeId(0), 1, NodeId(0), ProtocolConfig::default()),
            cfg,
        );
        let b = SessionSpace::new(
            LockSpace::new(NodeId(1), 1, NodeId(0), ProtocolConfig::default()),
            cfg,
        );
        (a, b)
    }

    type Frame = SessionFrame<hlock_core::Envelope>;

    fn sends(fx: &mut EffectSink<Frame>) -> Vec<(NodeId, Frame)> {
        fx.drain()
            .filter_map(|e| match e {
                Effect::Send { to, message } => Some((to, message)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn inner_protocol_events_survive_the_wrapper() {
        // The session layer must pass the wrapped protocol's observability
        // stream through: a local request + grant at the token home shows
        // up as `request_issued` / `granted` on the *outer* sink.
        let (mut a, _) = pair();
        let mut fx = EffectSink::new();
        fx.set_observing(true);
        a.request(L, Mode::Write, Ticket(1), &mut fx).unwrap();
        let names: Vec<&str> = fx.events().iter().map(|e| e.name()).collect();
        assert!(names.contains(&"request_issued"), "{names:?}");
        assert!(names.contains(&"granted"), "{names:?}");
    }

    #[test]
    fn config_validation() {
        assert!(SessionConfig::default().validate().is_ok());
        assert!(SessionConfig::for_model_checking().validate().is_ok());
        let zero_rto = SessionConfig { rto_micros: 0, ..SessionConfig::default() };
        assert!(zero_rto.validate().unwrap_err().contains("rto"));
        let bad_backoff =
            SessionConfig { rto_micros: 100, max_backoff_micros: 50, ..SessionConfig::default() };
        assert!(bad_backoff.validate().unwrap_err().contains("max_backoff"));
        let zero_window = SessionConfig { recv_window: 0, ..SessionConfig::default() };
        assert!(zero_window.validate().unwrap_err().contains("recv_window"));
        let wild_jitter =
            SessionConfig { rto_micros: 100, jitter_micros: 101, ..SessionConfig::default() };
        assert!(wild_jitter.validate().unwrap_err().contains("jitter"));
    }

    #[test]
    fn backoff_is_capped_with_bounded_jitter() {
        // Regression: backoff growth must saturate at the configured
        // ceiling (plus at most one jitter quantum) no matter how many
        // retransmission rounds have elapsed — unbounded growth would
        // eventually exceed a recovery watchdog window and make a slow
        // link indistinguishable from a crash.
        let cfg = SessionConfig::default();
        let ceiling = cfg.max_backoff_micros + cfg.jitter_micros;
        let mut s = SessionSpace::new(
            LockSpace::new(NodeId(0), 1, NodeId(0), ProtocolConfig::default()),
            cfg,
        );
        let mut prev = 0;
        for attempts in 0..64 {
            let d = s.backoff_delay(attempts);
            assert!(d <= ceiling, "attempt {attempts}: delay {d} exceeds cap {ceiling}");
            if attempts <= 4 {
                // Early rounds genuinely back off (modulo jitter width).
                assert!(d + s.config().jitter_micros >= prev, "backoff shrank early");
            }
            prev = d;
        }
    }

    #[test]
    #[should_panic(expected = "invalid SessionConfig")]
    fn constructor_rejects_bad_config() {
        let cfg = SessionConfig { rto_micros: 0, ..SessionConfig::default() };
        let _ = SessionSpace::new(
            LockSpace::new(NodeId(0), 1, NodeId(0), ProtocolConfig::default()),
            cfg,
        );
    }

    #[test]
    fn remote_request_is_sequenced_and_timed() {
        let (_, mut b) = pair();
        let mut fx = EffectSink::new();
        // b requests the lock whose token home is node 0 → one Data frame
        // (seq 1) plus a retransmission timer.
        b.request(L, Mode::Write, Ticket(1), &mut fx).unwrap();
        let effects: Vec<_> = fx.drain().collect();
        assert_eq!(effects.len(), 2, "{effects:?}");
        assert!(matches!(
            &effects[0],
            Effect::Send { to: NodeId(0), message: SessionFrame::Data { seq: 1, ack: 0, .. } }
        ));
        assert!(matches!(
            &effects[1],
            Effect::SetTimer { token, .. } if timer_peer(*token) == Some(NodeId(0))
        ));
        assert_eq!(b.unacked_frames(), 1);
        assert!(!b.is_quiescent());
    }

    #[test]
    fn duplicate_data_is_dropped_and_acked() {
        let (mut a, mut b) = pair();
        let mut fx = EffectSink::new();
        b.request(L, Mode::Write, Ticket(1), &mut fx).unwrap();
        let (_, frame) = sends(&mut fx).remove(0);
        // First copy: delivered; a answers with a Data frame (the grant)
        // carrying a piggybacked ack.
        a.on_message(NodeId(1), frame.clone(), &mut fx);
        let replies = sends(&mut fx);
        assert_eq!(replies.len(), 1);
        assert!(matches!(&replies[0].1, SessionFrame::Data { seq: 1, ack: 1, .. }));
        // Second copy: duplicate → dropped, re-acked standalone.
        a.on_message(NodeId(1), frame, &mut fx);
        let replies = sends(&mut fx);
        assert_eq!(replies.len(), 1);
        assert!(matches!(&replies[0].1, SessionFrame::Ack { ack: 1 }));
        assert_eq!(a.stats().duplicates_dropped, 1);
    }

    #[test]
    fn ack_releases_unacked_frames() {
        let (mut a, mut b) = pair();
        let mut fx = EffectSink::new();
        b.request(L, Mode::Write, Ticket(1), &mut fx).unwrap();
        let (_, frame) = sends(&mut fx).remove(0);
        a.on_message(NodeId(1), frame, &mut fx);
        let (_, reply) = sends(&mut fx).remove(0);
        assert_eq!(b.unacked_frames(), 1);
        b.on_message(NodeId(0), reply, &mut fx);
        // The grant's piggybacked ack released b's request frame; b's
        // standalone ack releases a's grant frame.
        assert_eq!(b.unacked_frames(), 0);
        let (_, ack) = sends(&mut fx).remove(0);
        assert!(matches!(ack, SessionFrame::Ack { ack: 1 }));
        a.on_message(NodeId(1), ack, &mut fx);
        assert_eq!(a.unacked_frames(), 0);
        assert!(a.is_quiescent() && b.is_quiescent());
    }

    #[test]
    fn reordered_frames_are_buffered_and_drained_in_order() {
        let (mut a, mut b) = pair();
        let mut fx = EffectSink::new();
        // b sends two frames: a read request (seq 1), then — after the
        // copy grant arrives — the matching release (seq 2). Read mode
        // keeps the token at a, so the release really crosses the link.
        b.request(L, Mode::Read, Ticket(1), &mut fx).unwrap();
        let (_, req) = sends(&mut fx).remove(0);
        // Obtain the grant from a side copy of a, leaving the real a
        // ignorant of the request.
        let mut a_side = a.clone();
        a_side.on_message(NodeId(1), req.clone(), &mut fx);
        let (_, grant) = sends(&mut fx).remove(0);
        b.on_message(NodeId(0), grant, &mut fx);
        fx.drain().count();
        b.release(L, Ticket(1), &mut fx).unwrap();
        let (_, rel) = sends(&mut fx).remove(0);
        assert!(matches!(rel, SessionFrame::Data { seq: 2, .. }));
        // Deliver to the *real* a in the wrong order: seq 2, then 1.
        a.on_message(NodeId(1), rel, &mut fx);
        assert_eq!(a.stats().reordered_buffered, 1);
        // Nothing reached the protocol yet: a release must not precede
        // its request.
        assert!(a.inner().is_quiescent());
        fx.drain().count();
        a.on_message(NodeId(1), req, &mut fx);
        // Both frames drained in order: a granted a copy to b, then the
        // buffered release removed b from the copyset again.
        let replies = sends(&mut fx);
        assert!(
            replies
                .iter()
                .any(|(to, f)| *to == NodeId(1) && matches!(f, SessionFrame::Data { seq: 1, .. })),
            "the request was served: {replies:?}"
        );
        assert!(a.inner().holds_token(L));
        assert!(
            a.inner().lock_state(L).children().is_empty(),
            "the buffered release was applied after the request"
        );
    }

    #[test]
    fn retransmit_timer_resends_all_unacked() {
        let (_, mut b) = pair();
        let mut fx = EffectSink::new();
        b.request(L, Mode::Write, Ticket(1), &mut fx).unwrap();
        let effects: Vec<_> = fx.drain().collect();
        let token = effects
            .iter()
            .find_map(|e| match e {
                Effect::SetTimer { token, .. } => Some(*token),
                _ => None,
            })
            .unwrap();
        b.on_timer(token, &mut fx);
        let effects: Vec<_> = fx.drain().collect();
        assert!(matches!(
            &effects[0],
            Effect::Send { to: NodeId(0), message: SessionFrame::Data { seq: 1, .. } }
        ));
        // Backoff doubled: base rto is 10ms, second round waits 20ms.
        assert!(matches!(&effects[1], Effect::SetTimer { delay_micros: 20_000, .. }));
        assert_eq!(b.stats().retransmits, 1);
    }

    #[test]
    fn retry_cap_marks_link_failed() {
        let cfg = SessionConfig {
            jitter_micros: 0,
            max_retransmits: Some(2),
            ..SessionConfig::default()
        };
        let mut b = SessionSpace::new(
            LockSpace::new(NodeId(1), 1, NodeId(0), ProtocolConfig::default()),
            cfg,
        );
        let mut fx = EffectSink::new();
        b.request(L, Mode::Write, Ticket(1), &mut fx).unwrap();
        fx.drain().count();
        let token = timer_token(NodeId(0));
        b.on_timer(token, &mut fx); // attempt 1
        b.on_timer(token, &mut fx); // attempt 2
        b.on_timer(token, &mut fx); // cap reached → failed
        fx.drain().count();
        assert_eq!(b.failed_links(), vec![NodeId(0)]);
        assert_eq!(b.stats().link_failures, 1);
        assert!(!b.is_quiescent());
        // A later timer on the failed link stays silent.
        b.on_timer(token, &mut fx);
        assert!(fx.is_empty());
    }

    #[test]
    fn link_reset_resends_unacked_and_revives_failed_link() {
        let cfg = SessionConfig {
            jitter_micros: 0,
            max_retransmits: Some(1),
            ..SessionConfig::default()
        };
        let mut b = SessionSpace::new(
            LockSpace::new(NodeId(1), 1, NodeId(0), ProtocolConfig::default()),
            cfg,
        );
        let mut fx = EffectSink::new();
        b.request(L, Mode::Write, Ticket(1), &mut fx).unwrap();
        fx.drain().count();
        let token = timer_token(NodeId(0));
        b.on_timer(token, &mut fx);
        b.on_timer(token, &mut fx);
        fx.drain().count();
        assert_eq!(b.failed_links(), vec![NodeId(0)]);
        b.on_link_reset(NodeId(0), &mut fx);
        assert!(b.failed_links().is_empty());
        let frames = sends(&mut fx);
        assert_eq!(frames.len(), 1);
        assert!(matches!(frames[0].1, SessionFrame::Data { seq: 1, .. }));
    }

    #[test]
    fn out_of_window_frames_are_dropped() {
        let cfg = SessionConfig { jitter_micros: 0, recv_window: 2, ..SessionConfig::default() };
        let mut a = SessionSpace::new(
            LockSpace::new(NodeId(0), 1, NodeId(0), ProtocolConfig::default()),
            cfg,
        );
        let mut b = SessionSpace::new(
            LockSpace::new(NodeId(1), 1, NodeId(0), ProtocolConfig::default()),
            cfg,
        );
        let mut fx = EffectSink::new();
        b.request(L, Mode::Write, Ticket(1), &mut fx).unwrap();
        let (_, frame) = sends(&mut fx).remove(0);
        let SessionFrame::Data { ack, message, .. } = frame else { panic!() };
        // A frame claiming seq 10 is far beyond the window of 2.
        a.on_message(NodeId(1), SessionFrame::Data { seq: 10, ack, message }, &mut fx);
        assert_eq!(a.stats().out_of_window_dropped, 1);
        assert!(a.inner().is_quiescent(), "frame must not reach the protocol");
    }

    #[test]
    fn quiescence_tracks_reorder_buffer() {
        let (mut a, mut b) = pair();
        let mut fx = EffectSink::new();
        b.request(L, Mode::Write, Ticket(1), &mut fx).unwrap();
        let (_, frame) = sends(&mut fx).remove(0);
        let SessionFrame::Data { ack, message, .. } = frame else { panic!() };
        a.on_message(NodeId(1), SessionFrame::Data { seq: 2, ack, message }, &mut fx);
        assert!(!a.is_quiescent(), "a gap is outstanding");
    }

    #[test]
    fn fingerprint_ignores_stats_but_sees_link_state() {
        use std::collections::hash_map::DefaultHasher;
        fn fp<P: ConcurrencyProtocol + Hash>(s: &SessionSpace<P>) -> u64
        where
            P::Message: Hash,
        {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        }
        let (_, b0) = pair();
        let mut b1 = b0.clone();
        assert_eq!(fp(&b0), fp(&b1));
        b1.stats.acks += 1;
        assert_eq!(fp(&b0), fp(&b1), "stats are not part of the fingerprint");
        let mut fx = EffectSink::new();
        // A remote request creates link state (seq, unacked) → new print.
        b1.request(L, Mode::Write, Ticket(9), &mut fx).unwrap();
        assert_ne!(fp(&b0), fp(&b1), "link state is");
    }

    #[test]
    fn batch_delivery_acks_once_for_all_frames() {
        // Two locks, both with token home node 0: two requests in one
        // step yield two Data frames that travel to node 0 as one batch.
        let cfg = SessionConfig { jitter_micros: 0, ..SessionConfig::default() };
        let mut a = SessionSpace::new(
            LockSpace::new(NodeId(0), 2, NodeId(0), ProtocolConfig::default()),
            cfg,
        );
        let mut b = SessionSpace::new(
            LockSpace::new(NodeId(1), 2, NodeId(0), ProtocolConfig::default()),
            cfg,
        );
        let mut fx = EffectSink::new();
        b.request(LockId(0), Mode::Read, Ticket(1), &mut fx).unwrap();
        b.request(LockId(1), Mode::Read, Ticket(2), &mut fx).unwrap();
        let frames: Vec<_> = sends(&mut fx).into_iter().map(|(_, f)| f).collect();
        assert_eq!(frames.len(), 2);
        a.on_message_batch(NodeId(1), frames, &mut fx);
        // a replies with grants (Data frames carrying piggybacked acks) —
        // and must NOT add a standalone Ack on top.
        let replies = sends(&mut fx);
        assert!(replies.iter().all(|(_, f)| matches!(f, SessionFrame::Data { .. })), "{replies:?}");
        assert_eq!(a.stats().acks, 0, "batch ack rode on the replies");
        // The last reply's cumulative ack covers the whole batch.
        let Some((_, SessionFrame::Data { ack, .. })) = replies.last() else { panic!() };
        assert_eq!(*ack, 2);
    }

    #[test]
    fn batch_of_pure_acks_sends_nothing_back() {
        let (mut a, mut b) = pair();
        let mut fx = EffectSink::new();
        b.request(L, Mode::Write, Ticket(1), &mut fx).unwrap();
        let (_, frame) = sends(&mut fx).remove(0);
        a.on_message(NodeId(1), frame, &mut fx);
        let (_, reply) = sends(&mut fx).remove(0);
        b.on_message(NodeId(0), reply, &mut fx);
        let (_, standalone) = sends(&mut fx).remove(0);
        assert!(matches!(standalone, SessionFrame::Ack { .. }));
        // Delivering the standalone ack as a (degenerate) batch must not
        // provoke an ack-of-an-ack loop.
        a.on_message_batch(NodeId(1), vec![standalone], &mut fx);
        assert!(fx.is_empty(), "acks are never acked");
    }

    #[test]
    fn batch_and_singles_deliver_identically() {
        let cfg = SessionConfig { jitter_micros: 0, ..SessionConfig::default() };
        let a0 = SessionSpace::new(
            LockSpace::new(NodeId(0), 2, NodeId(0), ProtocolConfig::default()),
            cfg,
        );
        let mut b = SessionSpace::new(
            LockSpace::new(NodeId(1), 2, NodeId(0), ProtocolConfig::default()),
            cfg,
        );
        let mut fx = EffectSink::new();
        b.request(LockId(0), Mode::Read, Ticket(1), &mut fx).unwrap();
        b.request(LockId(1), Mode::Write, Ticket(2), &mut fx).unwrap();
        let frames: Vec<_> = sends(&mut fx).into_iter().map(|(_, f)| f).collect();
        assert_eq!(frames.len(), 2);
        let mut a_batch = a0.clone();
        let mut a_single = a0;
        let mut fx_b = EffectSink::new();
        let mut fx_s = EffectSink::new();
        a_batch.on_message_batch(NodeId(1), frames.clone(), &mut fx_b);
        for f in frames {
            a_single.on_message(NodeId(1), f, &mut fx_s);
        }
        // Same protocol state either way (only ack traffic may differ).
        assert_eq!(a_batch.inner(), a_single.inner());
        let data = |fx: &mut EffectSink<Frame>| {
            sends(fx)
                .into_iter()
                .filter(|(_, f)| matches!(f, SessionFrame::Data { .. }))
                .collect::<Vec<_>>()
        };
        assert_eq!(data(&mut fx_b), data(&mut fx_s));
    }

    #[test]
    fn timer_tokens_roundtrip() {
        assert_eq!(timer_peer(timer_token(NodeId(0))), Some(NodeId(0)));
        assert_eq!(timer_peer(timer_token(NodeId(4_000_000_000))), Some(NodeId(4_000_000_000)));
        assert_eq!(timer_peer(7), None);
        assert_eq!(timer_peer(0), None);
    }
}
