//! # hlock-naimi
//!
//! The comparison baseline of the paper's evaluation: the token-based
//! distributed mutual-exclusion algorithm of **Naimi, Trehel and Arnold**
//! (*A log(N) distributed mutual exclusion algorithm based on path
//! reversal*, JPDC 34(1), 1996) — reference \[14\] of the paper.
//!
//! Each lock is exclusive (no modes). Nodes keep two pointers:
//!
//! * `last` — the *probable owner*: where requests are sent; every node a
//!   request passes through repoints `last` to the requester (path
//!   reversal), which compresses future request paths to `O(log n)`
//!   hops on average;
//! * `next` — the distributed FIFO queue: the root that cannot serve a
//!   request immediately remembers the requester and hands the token
//!   over on release.
//!
//! The crate is sans-I/O like `hlock-core` and implements the same
//! [`ConcurrencyProtocol`] trait, so the simulator and transports can run
//! either protocol. Lock modes are accepted but ignored (every grant is
//! exclusive); [`NaimiSpace::upgrade`] is an immediate no-op grant since
//! the holder is already exclusive.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use hlock_core::{
    CancelOutcome, Classify, ConcurrencyProtocol, EffectSink, Inspect, LockId, MessageKind, Mode,
    NodeId, ProtocolError, Ticket,
};
use std::collections::VecDeque;

/// A Naimi–Trehel protocol message about one lock.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NaimiPayload {
    /// `origin` wants the token; forwarded along `last` pointers.
    Request {
        /// The requesting node.
        origin: NodeId,
    },
    /// The token moves to the receiver.
    Token,
}

impl Classify for NaimiPayload {
    fn kind(&self) -> MessageKind {
        match self {
            NaimiPayload::Request { .. } => MessageKind::Request,
            NaimiPayload::Token => MessageKind::Token,
        }
    }
}

/// A [`NaimiPayload`] addressed to one lock instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NaimiEnvelope {
    /// The lock concerned.
    pub lock: LockId,
    /// The protocol message.
    pub payload: NaimiPayload,
}

impl Classify for NaimiEnvelope {
    fn kind(&self) -> MessageKind {
        self.payload.kind()
    }
}

/// Per-lock state of the Naimi–Trehel algorithm at one node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct NaimiLock {
    /// Probable owner; `None` means this node believes it is the root.
    last: Option<NodeId>,
    /// Successor in the distributed queue.
    next: Option<NodeId>,
    has_token: bool,
    /// Ticket currently inside the critical section.
    in_cs: Option<Ticket>,
    /// Ticket whose request is travelling toward the token.
    requesting: Option<Ticket>,
    /// Whether the requesting ticket was cancelled (token is absorbed and
    /// passed on without entering the critical section).
    request_cancelled: bool,
    /// Additional local tickets waiting their turn.
    waiting: VecDeque<Ticket>,
}

impl NaimiLock {
    fn new(id: NodeId, token_home: NodeId) -> Self {
        NaimiLock {
            last: if id == token_home { None } else { Some(token_home) },
            next: None,
            has_token: id == token_home,
            in_cs: None,
            requesting: None,
            request_cancelled: false,
            waiting: VecDeque::new(),
        }
    }

    fn busy(&self) -> bool {
        self.in_cs.is_some() || self.requesting.is_some()
    }
}

/// All per-lock Naimi–Trehel state of one node.
///
/// ```
/// use hlock_core::{ConcurrencyProtocol, Effect, EffectSink, LockId, Mode, NodeId, Ticket};
/// use hlock_naimi::NaimiSpace;
///
/// # fn main() -> Result<(), hlock_core::ProtocolError> {
/// let mut home = NaimiSpace::new(NodeId(0), 1, NodeId(0));
/// let mut fx = EffectSink::new();
/// // The token home enters its critical section without messages.
/// home.request(LockId(0), Mode::Write, Ticket(1), &mut fx)?;
/// assert!(matches!(fx.drain().next(), Some(Effect::Granted { .. })));
/// home.release(LockId(0), Ticket(1), &mut fx)?;
/// # Ok(()) }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NaimiSpace {
    id: NodeId,
    locks: Vec<NaimiLock>,
}

impl NaimiSpace {
    /// Creates the state for `lock_count` locks at node `id`, with
    /// `token_home` initially holding every token (and being every
    /// node's initial probable owner).
    pub fn new(id: NodeId, lock_count: usize, token_home: NodeId) -> Self {
        NaimiSpace { id, locks: (0..lock_count).map(|_| NaimiLock::new(id, token_home)).collect() }
    }

    /// Number of locks managed.
    pub fn lock_count(&self) -> usize {
        self.locks.len()
    }

    /// Whether this node currently possesses the token for `lock`.
    ///
    /// # Panics
    ///
    /// Panics if `lock` is out of range.
    pub fn has_token(&self, lock: LockId) -> bool {
        self.locks[lock.index()].has_token
    }

    /// The ticket currently inside the critical section of `lock`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `lock` is out of range.
    pub fn in_critical_section(&self, lock: LockId) -> Option<Ticket> {
        self.locks[lock.index()].in_cs
    }

    fn lock_mut(&mut self, lock: LockId) -> Result<&mut NaimiLock, ProtocolError> {
        self.locks.get_mut(lock.index()).ok_or(ProtocolError::UnknownLock { lock })
    }

    fn enter_cs(
        lock: LockId,
        state: &mut NaimiLock,
        ticket: Ticket,
        fx: &mut EffectSink<NaimiEnvelope>,
    ) {
        debug_assert!(state.has_token && state.in_cs.is_none());
        state.in_cs = Some(ticket);
        fx.granted(lock, ticket, Mode::Write);
    }

    fn send_request(
        id: NodeId,
        lock: LockId,
        state: &mut NaimiLock,
        ticket: Ticket,
        fx: &mut EffectSink<NaimiEnvelope>,
    ) {
        let to = state.last.expect("non-root node has a probable owner");
        state.requesting = Some(ticket);
        // Path reversal at the requester: it will own the token next, so
        // it becomes (its own view of) the root.
        state.last = None;
        fx.send(to, NaimiEnvelope { lock, payload: NaimiPayload::Request { origin: id } });
    }
}

impl Inspect for NaimiSpace {
    fn held_modes(&self, lock: LockId) -> Vec<Mode> {
        self.locks
            .get(lock.index())
            .and_then(|s| s.in_cs)
            .map(|_| vec![Mode::Write])
            .unwrap_or_default()
    }

    fn holds_token(&self, lock: LockId) -> bool {
        self.locks.get(lock.index()).is_some_and(|s| s.has_token)
    }

    fn open_requests(&self) -> Vec<(LockId, Ticket)> {
        let mut out = Vec::new();
        for (i, s) in self.locks.iter().enumerate() {
            let lock = LockId(i as u32);
            if !s.request_cancelled {
                out.extend(s.requesting.map(|t| (lock, t)));
            }
            out.extend(s.waiting.iter().map(|&t| (lock, t)));
        }
        out
    }
}

impl ConcurrencyProtocol for NaimiSpace {
    type Message = NaimiEnvelope;

    fn node_id(&self) -> NodeId {
        self.id
    }

    fn request(
        &mut self,
        lock: LockId,
        _mode: Mode,
        ticket: Ticket,
        fx: &mut EffectSink<NaimiEnvelope>,
    ) -> Result<(), ProtocolError> {
        let id = self.id;
        let state = self.lock_mut(lock)?;
        let dup = state.in_cs == Some(ticket)
            || state.requesting == Some(ticket)
            || state.waiting.contains(&ticket);
        if dup {
            return Err(ProtocolError::DuplicateTicket { ticket });
        }
        if state.busy() {
            state.waiting.push_back(ticket);
        } else if state.has_token {
            Self::enter_cs(lock, state, ticket, fx);
        } else {
            Self::send_request(id, lock, state, ticket, fx);
        }
        Ok(())
    }

    fn release(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        fx: &mut EffectSink<NaimiEnvelope>,
    ) -> Result<(), ProtocolError> {
        let id = self.id;
        let state = self.lock_mut(lock)?;
        if state.in_cs != Some(ticket) {
            return Err(ProtocolError::NotHeld { ticket });
        }
        state.in_cs = None;
        // Pass the token along the distributed queue.
        if let Some(successor) = state.next.take() {
            state.has_token = false;
            fx.send(successor, NaimiEnvelope { lock, payload: NaimiPayload::Token });
        }
        // Serve further local requests.
        if let Some(next_ticket) = state.waiting.pop_front() {
            if state.has_token {
                Self::enter_cs(lock, state, next_ticket, fx);
            } else {
                Self::send_request(id, lock, state, next_ticket, fx);
            }
        }
        Ok(())
    }

    fn upgrade(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        fx: &mut EffectSink<NaimiEnvelope>,
    ) -> Result<(), ProtocolError> {
        let state = self.lock_mut(lock)?;
        if state.in_cs != Some(ticket) {
            return Err(ProtocolError::NotHeld { ticket });
        }
        // Already exclusive: the upgrade is trivially granted.
        fx.granted(lock, ticket, Mode::Write);
        Ok(())
    }

    fn try_request(
        &mut self,
        lock: LockId,
        _mode: Mode,
        ticket: Ticket,
        fx: &mut EffectSink<NaimiEnvelope>,
    ) -> Result<bool, ProtocolError> {
        let state = self.lock_mut(lock)?;
        let dup = state.in_cs == Some(ticket)
            || state.requesting == Some(ticket)
            || state.waiting.contains(&ticket);
        if dup {
            return Err(ProtocolError::DuplicateTicket { ticket });
        }
        if state.has_token && !state.busy() {
            Self::enter_cs(lock, state, ticket, fx);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn downgrade(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        _new_mode: Mode,
        _fx: &mut EffectSink<NaimiEnvelope>,
    ) -> Result<(), ProtocolError> {
        // Exclusive-only: nothing to weaken; validate the ticket only.
        let state = self.lock_mut(lock)?;
        if state.in_cs != Some(ticket) {
            return Err(ProtocolError::NotHeld { ticket });
        }
        Ok(())
    }

    fn cancel(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        fx: &mut EffectSink<NaimiEnvelope>,
    ) -> Result<CancelOutcome, ProtocolError> {
        let _ = &fx;
        let state = self.lock_mut(lock)?;
        if state.in_cs == Some(ticket) {
            return Err(ProtocolError::NotCancellable { ticket });
        }
        let before = state.waiting.len();
        state.waiting.retain(|&t| t != ticket);
        if state.waiting.len() < before {
            return Ok(CancelOutcome::Cancelled);
        }
        if state.requesting == Some(ticket) {
            state.request_cancelled = true;
            return Ok(CancelOutcome::WillAbort);
        }
        Err(ProtocolError::NotHeld { ticket })
    }

    fn on_message(
        &mut self,
        _from: NodeId,
        message: NaimiEnvelope,
        fx: &mut EffectSink<NaimiEnvelope>,
    ) {
        let id = self.id;
        let lock = message.lock;
        let Some(state) = self.locks.get_mut(lock.index()) else {
            debug_assert!(false, "message for unknown lock {lock}");
            return;
        };
        match message.payload {
            NaimiPayload::Request { origin } => {
                match state.last {
                    None => {
                        // We are the root of the pointer graph.
                        if state.has_token && !state.busy() {
                            state.has_token = false;
                            fx.send(origin, NaimiEnvelope { lock, payload: NaimiPayload::Token });
                        } else {
                            // Token busy here (or on its way to us):
                            // origin becomes our successor.
                            debug_assert!(state.next.is_none(), "single successor slot");
                            state.next = Some(origin);
                        }
                    }
                    Some(probable) => {
                        fx.send(
                            probable,
                            NaimiEnvelope { lock, payload: NaimiPayload::Request { origin } },
                        );
                    }
                }
                // Path reversal: the requester is the new probable owner.
                state.last = Some(origin);
            }
            NaimiPayload::Token => {
                debug_assert!(!state.has_token, "duplicate token");
                state.has_token = true;
                let ticket =
                    state.requesting.take().expect("token arrives only in response to a request");
                if state.request_cancelled {
                    // The caller gave up: skip the critical section and
                    // hand the token to the successor (or keep it idle).
                    state.request_cancelled = false;
                    if let Some(successor) = state.next.take() {
                        state.has_token = false;
                        fx.send(successor, NaimiEnvelope { lock, payload: NaimiPayload::Token });
                    }
                    if let Some(next_ticket) = state.waiting.pop_front() {
                        if state.has_token {
                            Self::enter_cs(lock, state, next_ticket, fx);
                        } else {
                            Self::send_request(id, lock, state, next_ticket, fx);
                        }
                    }
                } else {
                    Self::enter_cs(lock, state, ticket, fx);
                }
            }
        }
    }

    fn is_quiescent(&self) -> bool {
        self.locks.iter().all(|s| s.requesting.is_none() && s.waiting.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlock_core::Effect;

    const L: LockId = LockId(0);

    fn sends(fx: &mut EffectSink<NaimiEnvelope>) -> Vec<(NodeId, NaimiEnvelope)> {
        fx.drain()
            .filter_map(|e| match e {
                Effect::Send { to, message } => Some((to, message)),
                _ => None,
            })
            .collect()
    }

    fn grants(fx: &mut EffectSink<NaimiEnvelope>) -> Vec<Ticket> {
        fx.drain()
            .filter_map(|e| match e {
                Effect::Granted { ticket, .. } => Some(ticket),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn token_home_enters_without_messages() {
        let mut a = NaimiSpace::new(NodeId(0), 1, NodeId(0));
        let mut fx = EffectSink::new();
        a.request(L, Mode::Write, Ticket(1), &mut fx).unwrap();
        assert_eq!(grants(&mut fx), vec![Ticket(1)]);
        assert_eq!(a.in_critical_section(L), Some(Ticket(1)));
    }

    #[test]
    fn remote_request_gets_token() {
        let mut a = NaimiSpace::new(NodeId(0), 1, NodeId(0));
        let mut b = NaimiSpace::new(NodeId(1), 1, NodeId(0));
        let mut fx = EffectSink::new();
        b.request(L, Mode::Write, Ticket(1), &mut fx).unwrap();
        let m = sends(&mut fx);
        assert_eq!(m[0].0, NodeId(0));
        a.on_message(NodeId(1), m[0].1.clone(), &mut fx);
        let m = sends(&mut fx);
        assert_eq!(m.len(), 1);
        assert!(matches!(m[0].1.payload, NaimiPayload::Token));
        assert!(!a.has_token(L));
        b.on_message(NodeId(0), m[0].1.clone(), &mut fx);
        assert_eq!(grants(&mut fx), vec![Ticket(1)]);
        assert!(b.has_token(L));
    }

    /// The paper's Figure 1 scenario: requests chain through probable
    /// owners with path reversal, releases follow `next` pointers.
    #[test]
    fn figure_1_path_reversal_and_next_chain() {
        // T = node 0 (token, in CS); A = 1, C = 2, both request via B = 3.
        let mut t = NaimiSpace::new(NodeId(0), 1, NodeId(0));
        let mut a = NaimiSpace::new(NodeId(1), 1, NodeId(0));
        let mut b = NaimiSpace::new(NodeId(3), 1, NodeId(0));
        let mut c = NaimiSpace::new(NodeId(2), 1, NodeId(0));
        let mut fx = EffectSink::new();
        t.request(L, Mode::Write, Ticket(0), &mut fx).unwrap();
        fx.drain().count();

        // A requests; route it through B (B's probable owner is T).
        a.request(L, Mode::Write, Ticket(1), &mut fx).unwrap();
        let m = sends(&mut fx);
        b.on_message(NodeId(1), m[0].1.clone(), &mut fx);
        let fwd = sends(&mut fx);
        assert_eq!(fwd[0].0, NodeId(0), "B forwards along probable owner to T");
        t.on_message(NodeId(3), fwd[0].1.clone(), &mut fx);
        assert!(sends(&mut fx).is_empty(), "T is in its CS: A becomes next");

        // C requests via B; B now points to A (path reversal).
        c.request(L, Mode::Write, Ticket(2), &mut fx).unwrap();
        let m = sends(&mut fx);
        b.on_message(NodeId(2), m[0].1.clone(), &mut fx);
        let fwd = sends(&mut fx);
        assert_eq!(fwd[0].0, NodeId(1), "B forwards to A after reversal");
        a.on_message(NodeId(3), fwd[0].1.clone(), &mut fx);
        assert!(sends(&mut fx).is_empty(), "A is waiting: C becomes A's next");

        // T releases: token to A; A enters and releases: token to C.
        t.release(L, Ticket(0), &mut fx).unwrap();
        let m = sends(&mut fx);
        assert_eq!(m[0].0, NodeId(1));
        a.on_message(NodeId(0), m[0].1.clone(), &mut fx);
        assert_eq!(grants(&mut fx), vec![Ticket(1)]);
        a.release(L, Ticket(1), &mut fx).unwrap();
        let m = sends(&mut fx);
        assert_eq!(m[0].0, NodeId(2));
        c.on_message(NodeId(1), m[0].1.clone(), &mut fx);
        assert_eq!(grants(&mut fx), vec![Ticket(2)]);
        assert!(c.has_token(L));
    }

    #[test]
    fn local_requests_queue_fifo() {
        let mut a = NaimiSpace::new(NodeId(0), 1, NodeId(0));
        let mut fx = EffectSink::new();
        a.request(L, Mode::Write, Ticket(1), &mut fx).unwrap();
        a.request(L, Mode::Write, Ticket(2), &mut fx).unwrap();
        a.request(L, Mode::Write, Ticket(3), &mut fx).unwrap();
        assert_eq!(grants(&mut fx), vec![Ticket(1)]);
        a.release(L, Ticket(1), &mut fx).unwrap();
        assert_eq!(grants(&mut fx), vec![Ticket(2)]);
        a.release(L, Ticket(2), &mut fx).unwrap();
        assert_eq!(grants(&mut fx), vec![Ticket(3)]);
        a.release(L, Ticket(3), &mut fx).unwrap();
        assert!(a.is_quiescent());
    }

    #[test]
    fn duplicate_and_unknown_tickets_rejected() {
        let mut a = NaimiSpace::new(NodeId(0), 1, NodeId(0));
        let mut fx = EffectSink::new();
        a.request(L, Mode::Write, Ticket(1), &mut fx).unwrap();
        assert_eq!(
            a.request(L, Mode::Write, Ticket(1), &mut fx).unwrap_err(),
            ProtocolError::DuplicateTicket { ticket: Ticket(1) }
        );
        assert_eq!(
            a.release(L, Ticket(9), &mut fx).unwrap_err(),
            ProtocolError::NotHeld { ticket: Ticket(9) }
        );
        assert_eq!(
            a.request(LockId(4), Mode::Write, Ticket(1), &mut fx).unwrap_err(),
            ProtocolError::UnknownLock { lock: LockId(4) }
        );
    }

    #[test]
    fn upgrade_is_trivially_granted() {
        let mut a = NaimiSpace::new(NodeId(0), 1, NodeId(0));
        let mut fx = EffectSink::new();
        a.request(L, Mode::Upgrade, Ticket(1), &mut fx).unwrap();
        fx.drain().count();
        a.upgrade(L, Ticket(1), &mut fx).unwrap();
        assert_eq!(grants(&mut fx), vec![Ticket(1)]);
        assert_eq!(
            a.upgrade(L, Ticket(2), &mut fx).unwrap_err(),
            ProtocolError::NotHeld { ticket: Ticket(2) }
        );
    }

    #[test]
    fn message_kinds() {
        assert_eq!(
            NaimiEnvelope { lock: L, payload: NaimiPayload::Token }.kind(),
            MessageKind::Token
        );
        assert_eq!(NaimiPayload::Request { origin: NodeId(0) }.kind(), MessageKind::Request);
    }

    #[test]
    fn release_after_passing_token_rerequests() {
        // Node A holds the token in CS; B is queued as next; A also has a
        // waiting local ticket. On release, A passes the token to B and
        // immediately re-requests for its waiting ticket.
        let mut a = NaimiSpace::new(NodeId(0), 1, NodeId(0));
        let mut fx = EffectSink::new();
        a.request(L, Mode::Write, Ticket(1), &mut fx).unwrap();
        a.request(L, Mode::Write, Ticket(2), &mut fx).unwrap();
        fx.drain().count();
        a.on_message(
            NodeId(1),
            NaimiEnvelope { lock: L, payload: NaimiPayload::Request { origin: NodeId(1) } },
            &mut fx,
        );
        assert!(sends(&mut fx).is_empty(), "B queued as next");
        a.release(L, Ticket(1), &mut fx).unwrap();
        let m = sends(&mut fx);
        assert_eq!(m.len(), 2, "token to B plus a fresh request for ticket 2");
        assert!(matches!(m[0].1.payload, NaimiPayload::Token));
        assert_eq!(m[0].0, NodeId(1));
        assert!(matches!(m[1].1.payload, NaimiPayload::Request { origin: NodeId(0) }));
        assert_eq!(m[1].0, NodeId(1), "request follows the reversed pointer to B");
    }
}
