//! One-call experiment runners: build nodes + driver + simulator and run.

use crate::drivers::{HierarchicalDriver, NaimiPureDriver, NaimiSameWorkDriver};
use crate::mix::WorkloadConfig;
use hlock_core::{
    ConcurrencyProtocol, Inspect, LockSpace, NodeId, ProtocolConfig, Recoverable, RecoverySpace,
    ShardSpec, ShardedSpace,
};
use hlock_naimi::NaimiSpace;
use hlock_raymond::RaymondSpace;
use hlock_session::{SessionConfig, SessionSpace, SessionStats};
use hlock_sim::{
    Driver, InvariantViolation, LatencyModel, Observer, ProtocolEvent, Sim, SimConfig, SimReport,
};
use hlock_suzuki::SuzukiSpace;
use hlock_wire::{frame, BytesMut, WireCodec};

/// Sizes a frame exactly as the TCP transport encodes it, so the
/// simulator's byte metrics (`wire_bytes`, `bytes_per_grant`) match the
/// real wire format instead of a per-message guess.
fn wire_frame_size<M: WireCodec>(messages: &[M]) -> u64 {
    let mut buf = BytesMut::new();
    frame::write_batch(&mut buf, NodeId(0), messages);
    buf.len() as u64
}

/// Which system runs the workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProtocolKind {
    /// The paper's hierarchical protocol with the given configuration.
    Hierarchical(ProtocolConfig),
    /// The hierarchical protocol with each node's lock space partitioned
    /// into the given number of shards ([`hlock_core::ShardedSpace`]).
    /// Deterministic round-robin shard draining under virtual time — the
    /// model-checkable twin of the threaded sharded runtime.
    ShardedHierarchical(ProtocolConfig, usize),
    /// Naimi–Trehel performing the same work (one lock per entry, table
    /// ops acquire all of them in order).
    NaimiSameWork,
    /// Naimi–Trehel with a single global lock ("pure").
    NaimiPure,
    /// Raymond's static-tree algorithm with a single global lock
    /// (extension: the other O(log n) baseline the paper's related work
    /// discusses — non-adaptive structure, no path compression).
    RaymondPure,
    /// Suzuki–Kasami broadcast algorithm with a single global lock
    /// (extension: the O(n) broadcast baseline the paper's §2 dismisses).
    SuzukiPure,
}

impl ProtocolKind {
    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            ProtocolKind::Hierarchical(_) => "Our Protocol",
            ProtocolKind::ShardedHierarchical(..) => "Our Protocol (sharded)",
            ProtocolKind::NaimiSameWork => "Naimi - Same work",
            ProtocolKind::NaimiPure => "Naimi - Pure",
            ProtocolKind::RaymondPure => "Raymond - Pure",
            ProtocolKind::SuzukiPure => "Suzuki-Kasami - Pure",
        }
    }
}

/// Seed perturbation shared by every runner so that identical workloads
/// on different systems still see the same latency process.
fn derive_seed(workload: &WorkloadConfig, nodes: usize) -> u64 {
    workload.seed.wrapping_mul(0xD134_2543_DE82_EF95).wrapping_add(nodes as u64)
}

/// Token-home placement for the hierarchical lock tree.
fn token_homes(workload: &WorkloadConfig, nodes: usize, lock_count: usize) -> Vec<NodeId> {
    (0..lock_count)
        .map(|l| {
            if workload.spread_token_homes && l > 0 && nodes > 1 {
                NodeId((1 + (l - 1) % (nodes - 1)) as u32)
            } else {
                NodeId(0)
            }
        })
        .collect()
}

/// Runs the airline workload for `nodes` nodes under `kind`.
///
/// `check_every` enables global safety checking every N delivered
/// messages (0 = off; turn it on in tests, off in large sweeps).
///
/// # Errors
///
/// Propagates [`InvariantViolation`] from the simulator — which would
/// indicate a protocol bug, so callers usually `expect` it.
pub fn run_experiment(
    kind: ProtocolKind,
    nodes: usize,
    workload: &WorkloadConfig,
    latency: LatencyModel,
    check_every: u64,
) -> Result<SimReport, InvariantViolation> {
    run_observed_experiment(kind, nodes, workload, latency, check_every, None)
}

/// Adapts a boxed observer to `Sim::with_observer`'s `impl Observer`
/// parameter (a bare `Box<dyn Observer>` cannot implement [`Observer`]
/// here without clashing with the closure blanket impl).
struct BoxedObserver(Box<dyn Observer>);

impl Observer for BoxedObserver {
    fn on_event(&mut self, at_micros: u64, event: &ProtocolEvent) {
        self.0.on_event(at_micros, event);
    }
}

/// Applies the optional observer and runs — the shared tail of every
/// [`run_observed_experiment`] arm. Without an observer the simulation
/// takes the unobserved fast path (no event construction at all).
fn finish<P, D>(
    sim: Sim<P, D>,
    observer: Option<Box<dyn Observer>>,
) -> Result<SimReport, InvariantViolation>
where
    P: ConcurrencyProtocol + Inspect,
    D: Driver,
{
    match observer {
        Some(obs) => sim.with_observer(BoxedObserver(obs)).run(),
        None => sim.run(),
    }
}

/// Like [`run_experiment`], additionally streaming every
/// [`ProtocolEvent`] of the run into `observer` (stamped with virtual
/// time in microseconds). Attach a `hlock_core::JsonlObserver`,
/// `ChromeTraceObserver` or `MetricsRegistry` to export the run.
///
/// # Errors
///
/// Propagates [`InvariantViolation`] from the simulator — which would
/// indicate a protocol bug, so callers usually `expect` it.
pub fn run_observed_experiment(
    kind: ProtocolKind,
    nodes: usize,
    workload: &WorkloadConfig,
    latency: LatencyModel,
    check_every: u64,
    observer: Option<Box<dyn Observer>>,
) -> Result<SimReport, InvariantViolation> {
    let seed = derive_seed(workload, nodes);
    match kind {
        ProtocolKind::Hierarchical(cfg) => {
            let lock_count = workload.hierarchical_lock_count();
            let homes = token_homes(workload, nodes, lock_count);
            let spaces =
                (0..nodes).map(|i| LockSpace::with_homes(NodeId(i as u32), &homes, cfg)).collect();
            let sim_cfg =
                SimConfig { seed, latency, lock_count, check_every, ..SimConfig::default() };
            let sim = Sim::new(spaces, HierarchicalDriver::new(workload, nodes), sim_cfg)
                .with_frame_sizer(wire_frame_size);
            finish(sim, observer)
        }
        ProtocolKind::ShardedHierarchical(cfg, shards) => {
            let lock_count = workload.hierarchical_lock_count();
            let homes = token_homes(workload, nodes, lock_count);
            let spec = ShardSpec::new(shards);
            let spaces = (0..nodes)
                .map(|i| ShardedSpace::with_homes(NodeId(i as u32), &homes, cfg, spec))
                .collect();
            let sim_cfg =
                SimConfig { seed, latency, lock_count, check_every, ..SimConfig::default() };
            let sim = Sim::new(spaces, HierarchicalDriver::new(workload, nodes), sim_cfg)
                .with_frame_sizer(wire_frame_size);
            finish(sim, observer)
        }
        ProtocolKind::NaimiSameWork => {
            let lock_count = workload.naimi_lock_count();
            let spaces = (0..nodes)
                .map(|i| NaimiSpace::new(NodeId(i as u32), lock_count, NodeId(0)))
                .collect();
            let sim_cfg =
                SimConfig { seed, latency, lock_count, check_every, ..SimConfig::default() };
            let sim = Sim::new(spaces, NaimiSameWorkDriver::new(workload, nodes), sim_cfg)
                .with_frame_sizer(wire_frame_size);
            finish(sim, observer)
        }
        ProtocolKind::NaimiPure => {
            let spaces =
                (0..nodes).map(|i| NaimiSpace::new(NodeId(i as u32), 1, NodeId(0))).collect();
            let sim_cfg =
                SimConfig { seed, latency, lock_count: 1, check_every, ..SimConfig::default() };
            let sim = Sim::new(spaces, NaimiPureDriver::new(workload, nodes), sim_cfg)
                .with_frame_sizer(wire_frame_size);
            finish(sim, observer)
        }
        ProtocolKind::RaymondPure => {
            let spaces = (0..nodes)
                .map(|i| RaymondSpace::new(NodeId(i as u32), nodes, 1, NodeId(0)))
                .collect();
            let sim_cfg =
                SimConfig { seed, latency, lock_count: 1, check_every, ..SimConfig::default() };
            let sim = Sim::new(spaces, NaimiPureDriver::new(workload, nodes), sim_cfg)
                .with_frame_sizer(wire_frame_size);
            finish(sim, observer)
        }
        ProtocolKind::SuzukiPure => {
            let spaces = (0..nodes)
                .map(|i| SuzukiSpace::new(NodeId(i as u32), nodes, 1, NodeId(0)))
                .collect();
            let sim_cfg =
                SimConfig { seed, latency, lock_count: 1, check_every, ..SimConfig::default() };
            let sim = Sim::new(spaces, NaimiPureDriver::new(workload, nodes), sim_cfg)
                .with_frame_sizer(wire_frame_size);
            finish(sim, observer)
        }
    }
}

/// Result of [`run_session_experiment`]: the simulator report plus the
/// session layer's reliability counters summed over every node.
#[derive(Debug)]
pub struct SessionExperimentReport {
    /// Metrics, end time and quiescence from the simulator.
    pub report: SimReport,
    /// Cluster-wide session counters (retransmits, acks, dedups, …).
    pub session: SessionStats,
}

/// Runs the airline workload on the hierarchical protocol wrapped in
/// reliable sessions, under the fault model carried by `sim`.
///
/// Unlike [`run_experiment`], this takes a full [`SimConfig`] so callers
/// can dial in drop/duplicate/reorder probabilities, partitions, node
/// pauses and the liveness watchdog. The `seed` (derived from the
/// workload exactly as [`run_experiment`] derives it, so raw and
/// session-wrapped runs face the same latency process) and `lock_count`
/// fields are overwritten; every other field is honoured.
///
/// # Errors
///
/// Propagates [`InvariantViolation`] from the simulator — either a
/// protocol bug or, with `sim.watchdog` set, a liveness stall.
pub fn run_session_experiment(
    cfg: ProtocolConfig,
    session: SessionConfig,
    nodes: usize,
    workload: &WorkloadConfig,
    sim: SimConfig,
) -> Result<SessionExperimentReport, InvariantViolation> {
    let lock_count = workload.hierarchical_lock_count();
    let homes = token_homes(workload, nodes, lock_count);
    let spaces: Vec<SessionSpace<LockSpace>> = (0..nodes)
        .map(|i| SessionSpace::new(LockSpace::with_homes(NodeId(i as u32), &homes, cfg), session))
        .collect();
    let sim_cfg = SimConfig { seed: derive_seed(workload, nodes), lock_count, ..sim };
    let (report, spaces) = Sim::new(spaces, HierarchicalDriver::new(workload, nodes), sim_cfg)
        .with_frame_sizer(wire_frame_size)
        .run_with_nodes()?;
    let mut stats = SessionStats::default();
    for space in &spaces {
        stats.merge(&space.stats());
    }
    Ok(SessionExperimentReport { report, session: stats })
}

/// Result of [`run_recovery_experiment`] (flat, the default `P`) or
/// [`run_sharded_recovery_experiment`] (`P = ShardedSpace`): the
/// simulator report plus the final recovery epoch and the surviving
/// protocol states.
#[derive(Debug)]
pub struct RecoveryExperimentReport<P: Recoverable = LockSpace> {
    /// Metrics, end time and quiescence from the simulator.
    pub report: SimReport,
    /// The highest recovery epoch any surviving node installed (0 means
    /// no recovery round ran).
    pub max_epoch: u64,
    /// Final per-node states, for post-mortem inspection.
    pub spaces: Vec<RecoverySpace<P>>,
}

/// Runs the airline workload on the hierarchical protocol wrapped in the
/// crash-recovery layer, under the fault model carried by `sim` —
/// typically with [`hlock_sim::NodeCrash`] schedules and the liveness
/// watchdog armed, so that crash-stops of token homes are detected,
/// survivors elect and install a new epoch, and every surviving request
/// is still granted.
///
/// Like [`run_session_experiment`], the `seed` and `lock_count` fields
/// of `sim` are overwritten; every other field is honoured.
///
/// # Errors
///
/// Propagates [`InvariantViolation`] from the simulator — either a
/// protocol bug or, with `sim.watchdog` set, a liveness stall that
/// recovery failed to clear.
pub fn run_recovery_experiment(
    cfg: ProtocolConfig,
    nodes: usize,
    workload: &WorkloadConfig,
    sim: SimConfig,
) -> Result<RecoveryExperimentReport, InvariantViolation> {
    run_observed_recovery_experiment(cfg, nodes, workload, sim, None)
}

/// Like [`run_recovery_experiment`], additionally streaming every
/// [`ProtocolEvent`] of the run — including the crash-time
/// `request_aborted` span closers and the recovery/fencing events —
/// into `observer`. Attach a `hlock_core::ClusterRecorder` or
/// `RecordingAuditor` to flight-record and live-audit a faulty run.
///
/// # Errors
///
/// Propagates [`InvariantViolation`] from the simulator — either a
/// protocol bug or, with `sim.watchdog` set, a liveness stall that
/// recovery failed to clear.
pub fn run_observed_recovery_experiment(
    cfg: ProtocolConfig,
    nodes: usize,
    workload: &WorkloadConfig,
    sim: SimConfig,
    observer: Option<Box<dyn Observer>>,
) -> Result<RecoveryExperimentReport, InvariantViolation> {
    // Keepalive probes let a falsely-suspected node announce itself
    // after resuming, so it gets fenced, taught the new epoch, and its
    // outstanding requests are re-issued.
    const PROBE_INTERVAL_MICROS: u64 = 5_000_000;
    let lock_count = workload.hierarchical_lock_count();
    let homes = token_homes(workload, nodes, lock_count);
    let spaces: Vec<RecoverySpace<LockSpace>> = (0..nodes)
        .map(|i| {
            RecoverySpace::with_homes(NodeId(i as u32), &homes, nodes as u32, cfg)
                .with_probe_interval(PROBE_INTERVAL_MICROS)
        })
        .collect();
    let crashed: Vec<NodeId> = sim.crashes.iter().map(|c| c.node).collect();
    let sim_cfg = SimConfig { seed: derive_seed(workload, nodes), lock_count, ..sim };
    let sim = Sim::new(spaces, HierarchicalDriver::new(workload, nodes), sim_cfg)
        .with_frame_sizer(wire_frame_size);
    let (report, spaces) = match observer {
        Some(obs) => sim.with_observer(BoxedObserver(obs)).run_with_nodes()?,
        None => sim.run_with_nodes()?,
    };
    let max_epoch = spaces
        .iter()
        .filter(|s| !crashed.contains(&s.node_id()))
        .map(RecoverySpace::epoch)
        .max()
        .unwrap_or(0);
    Ok(RecoveryExperimentReport { report, max_epoch, spaces })
}

/// Like [`run_recovery_experiment`], but on the sharded lock-space
/// runtime: every node runs a [`ShardedSpace`] split into `shards`
/// shards, wrapped in the crash-recovery layer. A crash (and the
/// recovery round it triggers) lands on *one* epoch for the whole node,
/// but grants on shards that never lost a token must neither be dropped
/// nor reordered — the simulator's per-step invariant checks and the
/// live-scoped quiescence audit enforce exactly that.
///
/// # Errors
///
/// Propagates [`InvariantViolation`] from the simulator — either a
/// protocol bug or, with `sim.watchdog` set, a liveness stall that
/// recovery failed to clear.
pub fn run_sharded_recovery_experiment(
    cfg: ProtocolConfig,
    nodes: usize,
    shards: usize,
    workload: &WorkloadConfig,
    sim: SimConfig,
) -> Result<RecoveryExperimentReport<ShardedSpace>, InvariantViolation> {
    const PROBE_INTERVAL_MICROS: u64 = 5_000_000;
    let lock_count = workload.hierarchical_lock_count();
    let homes = token_homes(workload, nodes, lock_count);
    let spec = ShardSpec::new(shards);
    let spaces: Vec<RecoverySpace<ShardedSpace>> = (0..nodes)
        .map(|i| {
            RecoverySpace::wrap(
                ShardedSpace::with_homes(NodeId(i as u32), &homes, cfg, spec),
                (0..nodes as u32).map(NodeId),
            )
            .with_probe_interval(PROBE_INTERVAL_MICROS)
        })
        .collect();
    let crashed: Vec<NodeId> = sim.crashes.iter().map(|c| c.node).collect();
    let sim_cfg = SimConfig { seed: derive_seed(workload, nodes), lock_count, ..sim };
    let (report, spaces) = Sim::new(spaces, HierarchicalDriver::new(workload, nodes), sim_cfg)
        .with_frame_sizer(wire_frame_size)
        .run_with_nodes()?;
    let max_epoch = spaces
        .iter()
        .filter(|s| !crashed.contains(&s.node_id()))
        .map(RecoverySpace::epoch)
        .max()
        .unwrap_or(0);
    Ok(RecoveryExperimentReport { report, max_epoch, spaces })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlock_sim::Duration;

    fn small_workload() -> WorkloadConfig {
        WorkloadConfig { entries: 4, ops_per_node: 6, seed: 11, ..WorkloadConfig::default() }
    }

    #[test]
    fn hierarchical_runs_to_quiescence_with_checks() {
        let r = run_experiment(
            ProtocolKind::Hierarchical(ProtocolConfig::default()),
            6,
            &small_workload(),
            LatencyModel::paper(),
            1,
        )
        .expect("safe");
        assert!(r.quiescent);
        assert!(r.metrics.total_grants() >= 6 * 6, "every op granted at least once");
    }

    #[test]
    fn naimi_same_work_runs_to_quiescence() {
        let r = run_experiment(
            ProtocolKind::NaimiSameWork,
            5,
            &small_workload(),
            LatencyModel::paper(),
            1,
        )
        .expect("safe");
        assert!(r.quiescent);
    }

    #[test]
    fn naimi_pure_runs_to_quiescence() {
        let r =
            run_experiment(ProtocolKind::NaimiPure, 5, &small_workload(), LatencyModel::paper(), 1)
                .expect("safe");
        assert!(r.quiescent);
        // Pure: exactly one request per op.
        assert_eq!(r.metrics.total_requests(), 5 * 6);
    }

    #[test]
    fn hierarchical_beats_same_work_on_messages() {
        let wl = WorkloadConfig { entries: 8, ops_per_node: 10, seed: 5, ..Default::default() };
        let ours = run_experiment(
            ProtocolKind::Hierarchical(ProtocolConfig::default()),
            8,
            &wl,
            LatencyModel::paper(),
            0,
        )
        .unwrap();
        let same =
            run_experiment(ProtocolKind::NaimiSameWork, 8, &wl, LatencyModel::paper(), 0).unwrap();
        assert!(
            ours.metrics.messages_per_request() < same.metrics.messages_per_request() + 2.0,
            "ours {:.2} vs same-work {:.2}",
            ours.metrics.messages_per_request(),
            same.metrics.messages_per_request()
        );
    }

    #[test]
    fn session_wrapped_run_is_lossless_noop() {
        // Without faults the session layer must not change the outcome:
        // same grants as requests, nothing retransmitted, no dedup work.
        // The RTO must clear the paper's 150 ms mean RTT, otherwise the
        // layer retransmits spuriously (correct, but not a no-op).
        let wl = small_workload();
        let sim =
            SimConfig { latency: LatencyModel::paper(), check_every: 1, ..Default::default() };
        let session = SessionConfig {
            rto_micros: 2_000_000,
            max_backoff_micros: 8_000_000,
            ..SessionConfig::default()
        };
        let r =
            run_session_experiment(ProtocolConfig::default(), session, 5, &wl, sim).expect("safe");
        assert!(r.report.quiescent);
        assert_eq!(r.report.metrics.total_grants(), r.report.metrics.total_requests());
        assert_eq!(r.session.retransmits, 0);
        assert_eq!(r.session.duplicates_dropped, 0);
        assert!(r.session.data_frames > 0);
    }

    #[test]
    fn session_wrapped_run_completes_under_heavy_drops() {
        let wl = small_workload();
        let sim = SimConfig {
            latency: LatencyModel::paper(),
            drop_probability: 0.2,
            check_every: 1,
            ..Default::default()
        };
        let r = run_session_experiment(
            ProtocolConfig::default(),
            SessionConfig::default(),
            4,
            &wl,
            sim,
        )
        .expect("safe despite 20% loss");
        assert!(r.report.quiescent, "all ops must finish despite drops");
        assert_eq!(r.report.metrics.total_grants(), r.report.metrics.total_requests());
        assert!(r.session.retransmits > 0, "loss must have forced retransmissions");
    }

    #[test]
    fn observed_experiment_feeds_a_metrics_registry() {
        use hlock_core::MetricsRegistry;
        use std::cell::RefCell;
        use std::rc::Rc;

        let registry = Rc::new(RefCell::new(MetricsRegistry::new()));
        let sink = Rc::clone(&registry);
        let obs = move |at: u64, e: &ProtocolEvent| sink.borrow_mut().on_event(at, e);
        let r = run_observed_experiment(
            ProtocolKind::Hierarchical(ProtocolConfig::default()),
            4,
            &small_workload(),
            LatencyModel::paper(),
            0,
            Some(Box::new(obs)),
        )
        .expect("safe");
        assert!(r.quiescent);
        let registry = registry.borrow();
        // The registry's view agrees with the simulator's own metrics.
        assert_eq!(registry.grants_total(), r.metrics.total_grants());
        let text = registry.render();
        assert!(text.contains("hlock_request_to_grant_micros"), "{text}");
        assert!(text.contains("hlock_grants_total"), "{text}");
    }

    #[test]
    fn upgrade_ops_complete_under_contention() {
        // Force many upgrades to exercise Rule 7 under load.
        let wl = WorkloadConfig {
            entries: 4,
            ops_per_node: 8,
            seed: 3,
            mix: crate::ModeMix { weights: [40, 10, 30, 15, 5] },
            cs_mean: Duration::from_millis(5),
            idle_mean: Duration::from_millis(50),
            spread_token_homes: false,
        };
        let r = run_experiment(
            ProtocolKind::Hierarchical(ProtocolConfig::default()),
            5,
            &wl,
            LatencyModel::paper(),
            1,
        )
        .expect("safe under upgrade-heavy load");
        assert!(r.quiescent);
    }
}
