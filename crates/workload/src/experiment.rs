//! One-call experiment runners: build nodes + driver + simulator and run.

use crate::drivers::{HierarchicalDriver, NaimiPureDriver, NaimiSameWorkDriver};
use crate::mix::WorkloadConfig;
use hlock_core::{LockSpace, NodeId, ProtocolConfig};
use hlock_naimi::NaimiSpace;
use hlock_raymond::RaymondSpace;
use hlock_suzuki::SuzukiSpace;
use hlock_sim::{InvariantViolation, LatencyModel, Sim, SimConfig, SimReport};

/// Which system runs the workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProtocolKind {
    /// The paper's hierarchical protocol with the given configuration.
    Hierarchical(ProtocolConfig),
    /// Naimi–Trehel performing the same work (one lock per entry, table
    /// ops acquire all of them in order).
    NaimiSameWork,
    /// Naimi–Trehel with a single global lock ("pure").
    NaimiPure,
    /// Raymond's static-tree algorithm with a single global lock
    /// (extension: the other O(log n) baseline the paper's related work
    /// discusses — non-adaptive structure, no path compression).
    RaymondPure,
    /// Suzuki–Kasami broadcast algorithm with a single global lock
    /// (extension: the O(n) broadcast baseline the paper's §2 dismisses).
    SuzukiPure,
}

impl ProtocolKind {
    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            ProtocolKind::Hierarchical(_) => "Our Protocol",
            ProtocolKind::NaimiSameWork => "Naimi - Same work",
            ProtocolKind::NaimiPure => "Naimi - Pure",
            ProtocolKind::RaymondPure => "Raymond - Pure",
            ProtocolKind::SuzukiPure => "Suzuki-Kasami - Pure",
        }
    }
}

/// Runs the airline workload for `nodes` nodes under `kind`.
///
/// `check_every` enables global safety checking every N delivered
/// messages (0 = off; turn it on in tests, off in large sweeps).
///
/// # Errors
///
/// Propagates [`InvariantViolation`] from the simulator — which would
/// indicate a protocol bug, so callers usually `expect` it.
pub fn run_experiment(
    kind: ProtocolKind,
    nodes: usize,
    workload: &WorkloadConfig,
    latency: LatencyModel,
    check_every: u64,
) -> Result<SimReport, InvariantViolation> {
    let seed = workload
        .seed
        .wrapping_mul(0xD134_2543_DE82_EF95)
        .wrapping_add(nodes as u64);
    match kind {
        ProtocolKind::Hierarchical(cfg) => {
            let lock_count = workload.hierarchical_lock_count();
            let homes: Vec<NodeId> = (0..lock_count)
                .map(|l| {
                    if workload.spread_token_homes && l > 0 && nodes > 1 {
                        NodeId((1 + (l - 1) % (nodes - 1)) as u32)
                    } else {
                        NodeId(0)
                    }
                })
                .collect();
            let spaces = (0..nodes)
                .map(|i| LockSpace::with_homes(NodeId(i as u32), &homes, cfg))
                .collect();
            let sim_cfg = SimConfig { seed, latency, lock_count, check_every, ..SimConfig::default() };
            Sim::new(spaces, HierarchicalDriver::new(workload, nodes), sim_cfg).run()
        }
        ProtocolKind::NaimiSameWork => {
            let lock_count = workload.naimi_lock_count();
            let spaces = (0..nodes)
                .map(|i| NaimiSpace::new(NodeId(i as u32), lock_count, NodeId(0)))
                .collect();
            let sim_cfg = SimConfig { seed, latency, lock_count, check_every, ..SimConfig::default() };
            Sim::new(spaces, NaimiSameWorkDriver::new(workload, nodes), sim_cfg).run()
        }
        ProtocolKind::NaimiPure => {
            let spaces = (0..nodes)
                .map(|i| NaimiSpace::new(NodeId(i as u32), 1, NodeId(0)))
                .collect();
            let sim_cfg =
                SimConfig { seed, latency, lock_count: 1, check_every, ..SimConfig::default() };
            Sim::new(spaces, NaimiPureDriver::new(workload, nodes), sim_cfg).run()
        }
        ProtocolKind::RaymondPure => {
            let spaces = (0..nodes)
                .map(|i| RaymondSpace::new(NodeId(i as u32), nodes, 1, NodeId(0)))
                .collect();
            let sim_cfg =
                SimConfig { seed, latency, lock_count: 1, check_every, ..SimConfig::default() };
            Sim::new(spaces, NaimiPureDriver::new(workload, nodes), sim_cfg).run()
        }
        ProtocolKind::SuzukiPure => {
            let spaces = (0..nodes)
                .map(|i| SuzukiSpace::new(NodeId(i as u32), nodes, 1, NodeId(0)))
                .collect();
            let sim_cfg =
                SimConfig { seed, latency, lock_count: 1, check_every, ..SimConfig::default() };
            Sim::new(spaces, NaimiPureDriver::new(workload, nodes), sim_cfg).run()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlock_sim::Duration;

    fn small_workload() -> WorkloadConfig {
        WorkloadConfig { entries: 4, ops_per_node: 6, seed: 11, ..WorkloadConfig::default() }
    }

    #[test]
    fn hierarchical_runs_to_quiescence_with_checks() {
        let r = run_experiment(
            ProtocolKind::Hierarchical(ProtocolConfig::default()),
            6,
            &small_workload(),
            LatencyModel::paper(),
            1,
        )
        .expect("safe");
        assert!(r.quiescent);
        assert!(r.metrics.total_grants() >= 6 * 6, "every op granted at least once");
    }

    #[test]
    fn naimi_same_work_runs_to_quiescence() {
        let r = run_experiment(
            ProtocolKind::NaimiSameWork,
            5,
            &small_workload(),
            LatencyModel::paper(),
            1,
        )
        .expect("safe");
        assert!(r.quiescent);
    }

    #[test]
    fn naimi_pure_runs_to_quiescence() {
        let r =
            run_experiment(ProtocolKind::NaimiPure, 5, &small_workload(), LatencyModel::paper(), 1)
                .expect("safe");
        assert!(r.quiescent);
        // Pure: exactly one request per op.
        assert_eq!(r.metrics.total_requests(), 5 * 6);
    }

    #[test]
    fn hierarchical_beats_same_work_on_messages() {
        let wl = WorkloadConfig { entries: 8, ops_per_node: 10, seed: 5, ..Default::default() };
        let ours = run_experiment(
            ProtocolKind::Hierarchical(ProtocolConfig::default()),
            8,
            &wl,
            LatencyModel::paper(),
            0,
        )
        .unwrap();
        let same = run_experiment(ProtocolKind::NaimiSameWork, 8, &wl, LatencyModel::paper(), 0)
            .unwrap();
        assert!(
            ours.metrics.messages_per_request() < same.metrics.messages_per_request() + 2.0,
            "ours {:.2} vs same-work {:.2}",
            ours.metrics.messages_per_request(),
            same.metrics.messages_per_request()
        );
    }

    #[test]
    fn upgrade_ops_complete_under_contention() {
        // Force many upgrades to exercise Rule 7 under load.
        let wl = WorkloadConfig {
            entries: 4,
            ops_per_node: 8,
            seed: 3,
            mix: crate::ModeMix { weights: [40, 10, 30, 15, 5] },
            cs_mean: Duration::from_millis(5),
            idle_mean: Duration::from_millis(50),
            spread_token_homes: false,
        };
        let r = run_experiment(
            ProtocolKind::Hierarchical(ProtocolConfig::default()),
            5,
            &wl,
            LatencyModel::paper(),
            1,
        )
        .expect("safe under upgrade-heavy load");
        assert!(r.quiescent);
    }
}
