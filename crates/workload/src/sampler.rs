//! Seeded samplers for open-loop scenario generation: a Zipfian rank
//! sampler (skewed key popularity, the contention shape that dominates
//! real lock services) and a Poisson arrival-schedule generator
//! (think-time-free open-loop load).
//!
//! Both are deterministic given their seed/RNG: equal seeds produce
//! byte-identical schedules, which is what lets the CI scenario matrix
//! gate on exact virtual-time behavior instead of wall-clock noise.

use hlock_sim::{sample_exponential, Duration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A Zipfian distribution over ranks `0..n` (rank 0 is the hottest):
/// rank `i` is drawn with probability proportional to `1 / (i + 1)^theta`.
///
/// `theta = 0` degenerates to uniform; `theta ≈ 0.99` is the classic
/// YCSB-style skew where the top rank absorbs ~20% of a 64-key draw.
/// The cumulative table is precomputed, so sampling is one uniform draw
/// plus a binary search — cheap enough for multi-thousand-key tenant
/// spaces.
///
/// ```
/// use hlock_workload::Zipfian;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let z = Zipfian::new(64, 0.99);
/// let mut rng = SmallRng::seed_from_u64(7);
/// let rank = z.sample(&mut rng);
/// assert!(rank < 64);
/// ```
#[derive(Debug, Clone)]
pub struct Zipfian {
    /// Cumulative probabilities; `cdf[i]` is `P(rank <= i)`.
    cdf: Vec<f64>,
}

impl Zipfian {
    /// A Zipfian sampler over `0..n` with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Zipfian {
        assert!(n > 0, "zipfian needs at least one rank");
        assert!(theta.is_finite() && theta >= 0.0, "theta must be finite and >= 0, got {theta}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipfian { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the rank space is empty (never true: `new` rejects 0).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The theoretical probability of drawing `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn probability(&self, rank: usize) -> f64 {
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - lo
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        // partition_point: first index whose cumulative weight exceeds u.
        self.cdf.partition_point(|&c| c <= u).min(self.cdf.len() - 1)
    }
}

/// Generates a Poisson arrival schedule: event times in `[0, duration)`
/// with exponentially distributed inter-arrival gaps of mean
/// `1 / rate_per_sec`. The returned times are strictly sorted.
///
/// Deterministic in `(seed, rate, duration)`; equal inputs produce
/// byte-identical schedules.
///
/// # Panics
///
/// Panics if `rate_per_sec` is non-positive or non-finite.
pub fn poisson_schedule(rate_per_sec: f64, duration: Duration, seed: u64) -> Vec<SimTime> {
    assert!(
        rate_per_sec.is_finite() && rate_per_sec > 0.0,
        "arrival rate must be positive, got {rate_per_sec}"
    );
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xA076_1D64_78BD_642F);
    let mean_gap = Duration::from_millis_f64(1_000.0 / rate_per_sec);
    let mut at = SimTime::ZERO;
    let mut schedule =
        Vec::with_capacity((rate_per_sec * duration.as_micros() as f64 / 1e6) as usize);
    loop {
        // Gaps of at least one microsecond keep times strictly sorted
        // (two timers at the identical instant would still be fine, but
        // strict ordering makes schedules easier to reason about).
        let gap = sample_exponential(&mut rng, mean_gap).as_micros().max(1);
        at += Duration(gap);
        if at.as_micros() >= duration.as_micros() {
            return schedule;
        }
        schedule.push(at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipfian_matches_theoretical_rank_frequencies() {
        let n = 64;
        let z = Zipfian::new(n, 0.99);
        let mut rng = SmallRng::seed_from_u64(11);
        let draws = 200_000;
        let mut counts = vec![0u64; n];
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        // The head ranks carry enough mass for tight relative bounds.
        for rank in 0..8 {
            let expected = z.probability(rank) * draws as f64;
            let got = counts[rank] as f64;
            assert!(
                (got - expected).abs() / expected < 0.05,
                "rank {rank}: expected ~{expected:.0}, got {got}"
            );
        }
        // Aggregate tail mass matches too (individual tail ranks are noisy).
        let tail_expected: f64 = (32..n).map(|r| z.probability(r)).sum::<f64>() * draws as f64;
        let tail_got: f64 = counts[32..].iter().sum::<u64>() as f64;
        assert!((tail_got - tail_expected).abs() / tail_expected < 0.05);
        // Rank popularity is (statistically) non-increasing at the head.
        assert!(counts[0] > counts[1] && counts[1] > counts[3] && counts[3] > counts[7]);
    }

    #[test]
    fn zipfian_theta_zero_is_uniform() {
        let z = Zipfian::new(10, 0.0);
        for rank in 0..10 {
            assert!((z.probability(rank) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipfian_probabilities_sum_to_one() {
        let z = Zipfian::new(100, 1.2);
        let total: f64 = (0..100).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.len(), 100);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipfian_empty_panics() {
        let _ = Zipfian::new(0, 1.0);
    }

    #[test]
    fn poisson_mean_and_variance_are_sane() {
        // 200 arrivals/s over 100 s: ~20k samples. For an exponential
        // distribution the inter-arrival variance equals mean², so the
        // coefficient of variation must be ~1 — that is what separates
        // Poisson arrivals from a fixed-rate (CV 0) schedule.
        let rate = 200.0;
        let schedule = poisson_schedule(rate, Duration::from_millis(100_000), 17);
        let n = schedule.len() as f64;
        assert!((n - 20_000.0).abs() < 600.0, "got {n} arrivals");
        let gaps: Vec<f64> = std::iter::once(SimTime::ZERO)
            .chain(schedule.iter().copied())
            .zip(schedule.iter().copied())
            .map(|(a, b)| (b - a).as_micros() as f64)
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean - 5_000.0).abs() < 150.0, "mean gap {mean}us, expected ~5000us");
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "coefficient of variation {cv}, expected ~1");
    }

    #[test]
    fn poisson_schedules_are_byte_identical_for_equal_seeds() {
        let a = poisson_schedule(500.0, Duration::from_millis(5_000), 42);
        let b = poisson_schedule(500.0, Duration::from_millis(5_000), 42);
        assert_eq!(a, b, "equal seeds must reproduce the identical schedule");
        let c = poisson_schedule(500.0, Duration::from_millis(5_000), 43);
        assert_ne!(a, c, "different seeds must perturb the schedule");
    }

    #[test]
    fn poisson_times_sorted_and_bounded() {
        let s = poisson_schedule(1_000.0, Duration::from_millis(2_000), 3);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "strictly sorted");
        assert!(s.iter().all(|t| t.as_micros() < 2_000_000));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn poisson_rejects_zero_rate() {
        let _ = poisson_schedule(0.0, Duration::from_millis(1_000), 1);
    }
}
