//! # hlock-workload
//!
//! The paper's evaluation workload: a **multi-airline reservation
//! system** whose fare table is shared by all nodes. The table is one
//! coarse-granularity lock; each of its `E` entries has its own lock.
//! Every node iterates: think (exponential idle, mean 150 ms), pick an
//! operation (the paper's 80/10/4/5/1 IR/R/U/IW/W mode mix), acquire the
//! locks the operation needs, hold them (exponential critical section,
//! mean 15 ms) and release.
//!
//! Three drivers execute the *identical* operation sequence on the three
//! systems compared in §4: the hierarchical protocol, "Naimi same work"
//! and "Naimi pure" — see [`HierarchicalDriver`], [`NaimiSameWorkDriver`]
//! and [`NaimiPureDriver`], or just call [`run_experiment`]:
//!
//! ```
//! use hlock_core::ProtocolConfig;
//! use hlock_sim::LatencyModel;
//! use hlock_workload::{run_experiment, ProtocolKind, WorkloadConfig};
//!
//! let wl = WorkloadConfig { entries: 4, ops_per_node: 3, ..Default::default() };
//! let report = run_experiment(
//!     ProtocolKind::Hierarchical(ProtocolConfig::default()),
//!     4,                       // nodes
//!     &wl,
//!     LatencyModel::paper(),   // exponential, mean 150 ms
//!     0,                       // invariant checking off
//! ).expect("run completes");
//! assert!(report.quiescent);
//! println!("messages/request = {:.2}", report.metrics.messages_per_request());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod drivers;
mod experiment;
mod mix;
mod open_loop;
mod ops;
mod plan_driver;
mod sampler;
mod scenario;

pub use drivers::{HierarchicalDriver, NaimiPureDriver, NaimiSameWorkDriver};
pub use experiment::{
    run_experiment, run_observed_experiment, run_observed_recovery_experiment,
    run_recovery_experiment, run_session_experiment, run_sharded_recovery_experiment, ProtocolKind,
    RecoveryExperimentReport, SessionExperimentReport,
};
pub use mix::{ModeMix, WorkloadConfig};
pub use open_loop::{OpenLoopDriver, OpenLoopOp, OpenLoopStats, OpenLoopWindow};
pub use ops::{plan_for_node, OpKind, OpPlan};
pub use plan_driver::PlanDriver;
pub use sampler::{poisson_schedule, Zipfian};
pub use scenario::{
    run_observed_scenario, run_scenario, scenario_presets, Scenario, ScenarioProtocol,
    ScenarioReport, ScenarioWindow,
};
