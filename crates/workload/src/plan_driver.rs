//! A generic driver executing scripted [`LockPlan`] sequences — the glue
//! between `hlock_core::PlanTracker` (multi-granularity acquisition
//! plans) and the simulator. Useful for writing custom scenarios without
//! a bespoke driver.

use hlock_core::{LockId, LockPlan, Mode, NodeId, PlanTracker, Ticket};
use hlock_sim::{Driver, Duration, SimApi};

const T_START: u64 = 0;
const T_HOLD_DONE: u64 = 1;

#[derive(Debug)]
struct NodeScript {
    plans: Vec<LockPlan>,
    next_plan: usize,
    tracker: Option<PlanTracker>,
    ticket_base: u64,
}

/// Executes, per node, a list of [`LockPlan`]s in order: acquire all
/// steps root-first, hold for `hold`, release leaf-first, idle for
/// `idle`, repeat.
///
/// ```
/// use hlock_core::{LockId, LockPlan, LockSpace, Mode, NodeId, ProtocolConfig};
/// use hlock_sim::{Duration, Sim, SimConfig};
/// use hlock_workload::PlanDriver;
///
/// let plans = vec![
///     vec![], // node 0: idle token home
///     vec![LockPlan::for_leaf(&[LockId(0)], LockId(1), Mode::Read)],
/// ];
/// let driver = PlanDriver::new(plans, Duration::from_millis(10), Duration::from_millis(5));
/// let nodes = (0..2)
///     .map(|i| LockSpace::new(NodeId(i), 2, NodeId(0), ProtocolConfig::default()))
///     .collect();
/// let report = Sim::new(nodes, driver, SimConfig { lock_count: 2, check_every: 1, ..Default::default() })
///     .run()
///     .unwrap();
/// assert!(report.quiescent);
/// assert_eq!(report.metrics.total_grants(), 2); // IR on the table + R on the entry
/// ```
#[derive(Debug)]
pub struct PlanDriver {
    scripts: Vec<NodeScript>,
    hold: Duration,
    idle: Duration,
    pipelined: bool,
}

impl PlanDriver {
    /// One entry in `plans` per node, in node-id order.
    pub fn new(plans: Vec<Vec<LockPlan>>, hold: Duration, idle: Duration) -> Self {
        PlanDriver {
            scripts: plans
                .into_iter()
                .map(|p| NodeScript { plans: p, next_plan: 0, tracker: None, ticket_base: 1 })
                .collect(),
            hold,
            idle,
            pipelined: false,
        }
    }

    /// Issue every step of a plan in one effect step instead of waiting
    /// for each grant before requesting the next lock.
    ///
    /// All requests of a plan then leave the node in the same batch, so
    /// requests sharing a token home coalesce into one wire frame — the
    /// whole point of the batched runtime. Grants may arrive in any
    /// order; the plan counts as held once all of them are in.
    ///
    /// **Caveat (why this is opt-in):** pipelining gives up the
    /// root-first acquisition discipline, which is what rules out
    /// hold-and-wait cycles across plans. It is only safe when any two
    /// concurrent plans conflict on at most one lock — e.g. the standard
    /// multi-granularity shape ([`LockPlan::for_leaf`]) where ancestors
    /// are taken in mutually compatible intention modes and only leaves
    /// conflict. Two plans taking the same two locks in exclusive modes
    /// in opposite orders can deadlock under pipelining.
    #[must_use]
    pub fn pipelined(mut self) -> Self {
        self.pipelined = true;
        self
    }

    fn start_next_plan(&mut self, node: NodeId, api: &mut SimApi) {
        let s = &mut self.scripts[node.index()];
        let Some(plan) = s.plans.get(s.next_plan) else { return };
        let base = s.ticket_base;
        let tracker = PlanTracker::new(plan.clone(), base);
        s.ticket_base += plan.steps().len() as u64;
        if self.pipelined {
            for (i, step) in tracker.plan().steps().iter().enumerate() {
                api.request(step.lock, step.mode, Ticket(base + i as u64));
            }
        } else {
            let (lock, mode, ticket) = tracker.current().expect("plans are nonempty");
            api.request(lock, mode, ticket);
        }
        s.tracker = Some(tracker);
    }
}

impl Driver for PlanDriver {
    fn start(&mut self, node: NodeId, api: &mut SimApi) {
        if !self.scripts[node.index()].plans.is_empty() {
            api.set_timer(self.idle, T_START);
        }
    }

    fn on_granted(&mut self, node: NodeId, _l: LockId, _t: Ticket, _m: Mode, api: &mut SimApi) {
        let s = &mut self.scripts[node.index()];
        let tracker = s.tracker.as_mut().expect("grant implies an active plan");
        if tracker.advance() {
            api.set_timer(self.hold, T_HOLD_DONE);
        } else if !self.pipelined {
            let (lock, mode, ticket) = tracker.current().expect("not complete");
            api.request(lock, mode, ticket);
        }
    }

    fn on_timer(&mut self, node: NodeId, timer: u64, api: &mut SimApi) {
        match timer {
            T_START => self.start_next_plan(node, api),
            T_HOLD_DONE => {
                let s = &mut self.scripts[node.index()];
                let tracker = s.tracker.take().expect("hold implies an active plan");
                for (lock, ticket) in tracker.release_order() {
                    api.release(lock, ticket);
                }
                s.next_plan += 1;
                if s.next_plan < s.plans.len() {
                    api.set_timer(self.idle, T_START);
                }
            }
            other => unreachable!("unknown timer {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlock_core::{LockSpace, ProtocolConfig};
    use hlock_sim::{Sim, SimConfig};

    fn run(plans: Vec<Vec<LockPlan>>, locks: usize) -> hlock_sim::SimReport {
        let nodes: Vec<LockSpace> = (0..plans.len())
            .map(|i| LockSpace::new(NodeId(i as u32), locks, NodeId(0), ProtocolConfig::default()))
            .collect();
        let driver = PlanDriver::new(plans, Duration::from_millis(10), Duration::from_millis(20));
        let cfg = SimConfig { seed: 5, lock_count: locks, check_every: 1, ..Default::default() };
        Sim::new(nodes, driver, cfg).run().expect("safe")
    }

    #[test]
    fn hierarchical_plans_complete() {
        let table = LockId(0);
        let plans = vec![
            vec![LockPlan::for_leaf(&[table], LockId(1), Mode::Write)],
            vec![
                LockPlan::for_leaf(&[table], LockId(2), Mode::Read),
                LockPlan::for_leaf(&[table], LockId(1), Mode::Read),
            ],
            vec![LockPlan::single(table, Mode::Read)],
        ];
        let report = run(plans, 3);
        assert!(report.quiescent);
        // 2 + (2 + 2) + 1 grants.
        assert_eq!(report.metrics.total_grants(), 7);
    }

    #[test]
    fn conflicting_plans_serialize_safely() {
        let plans = vec![
            vec![LockPlan::single(LockId(0), Mode::Write); 3],
            vec![LockPlan::single(LockId(0), Mode::Write); 3],
            vec![LockPlan::single(LockId(0), Mode::Read); 3],
        ];
        let report = run(plans, 1);
        assert!(report.quiescent);
        assert_eq!(report.metrics.total_grants(), 9);
    }

    #[test]
    fn pipelined_plans_coalesce_requests() {
        // Both steps of each multi-granularity plan leave in one effect
        // step; with a shared token home they must share a wire frame,
        // so the run averages more than one logical message per frame.
        let table = LockId(0);
        let plans = vec![
            vec![],
            vec![LockPlan::for_leaf(&[table], LockId(1), Mode::Read)],
            vec![LockPlan::for_leaf(&[table], LockId(2), Mode::Write)],
        ];
        let nodes: Vec<LockSpace> = (0..plans.len())
            .map(|i| LockSpace::new(NodeId(i as u32), 3, NodeId(0), ProtocolConfig::default()))
            .collect();
        let driver = PlanDriver::new(plans, Duration::from_millis(10), Duration::from_millis(20))
            .pipelined();
        let cfg = SimConfig { seed: 5, lock_count: 3, check_every: 1, ..Default::default() };
        let report = Sim::new(nodes, driver, cfg).run().expect("safe");
        assert!(report.quiescent);
        assert_eq!(report.metrics.total_grants(), 4);
        assert!(
            report.metrics.coalesce_ratio() > 1.0,
            "pipelined plan steps must share frames: ratio {}",
            report.metrics.coalesce_ratio()
        );
        assert!(report.metrics.total_frames() < report.metrics.total_messages());
    }

    #[test]
    fn empty_scripts_are_fine() {
        let report = run(vec![vec![], vec![]], 1);
        assert!(report.quiescent);
        assert_eq!(report.metrics.total_grants(), 0);
    }
}
