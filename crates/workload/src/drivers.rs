//! Simulation drivers executing the airline workload on each protocol.
//!
//! Three variants, matching §4 of the paper:
//!
//! * [`HierarchicalDriver`] — our protocol: entry accesses take the table
//!   lock in intention mode plus the entry lock; whole-table accesses take
//!   the single table lock; upgrades use `U` → `W`.
//! * [`NaimiSameWorkDriver`] — the baseline doing the *same work*: entry
//!   accesses take the entry's (exclusive) lock; whole-table accesses must
//!   acquire **all** entry locks one by one in ascending order (the
//!   deadlock-avoidance ordering the paper describes).
//! * [`NaimiPureDriver`] — the baseline in its original form: a single
//!   global lock for everything (no multi-granularity functionality).

use crate::mix::WorkloadConfig;
use crate::ops::{plan_for_node, OpKind, OpPlan};
use hlock_core::{LockId, Mode, NodeId, Ticket};
use hlock_sim::{Driver, SimApi};

const T_START: u64 = 0;
const T_CS_DONE: u64 = 1;
const T_UPGRADE: u64 = 2;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    AcquiringTable,
    AcquiringEntry,
    AcquiringAll(usize),
    Holding,
    UpgradeReading,
    UpgradeWaiting,
}

#[derive(Debug)]
struct NodeRun {
    plan: Vec<OpPlan>,
    next_op: usize,
    phase: Phase,
    /// Locks acquired for the current op, in acquisition order.
    held: Vec<(LockId, Ticket)>,
    next_ticket: u64,
}

impl NodeRun {
    fn new(plan: Vec<OpPlan>) -> Self {
        NodeRun { plan, next_op: 0, phase: Phase::Idle, held: Vec::new(), next_ticket: 1 }
    }

    fn current(&self) -> OpPlan {
        self.plan[self.next_op]
    }

    fn fresh_ticket(&mut self) -> Ticket {
        let t = Ticket(self.next_ticket);
        self.next_ticket += 1;
        t
    }

    /// Releases all held locks leaf-first and schedules the next op.
    fn finish_op(&mut self, api: &mut SimApi) {
        for &(lock, ticket) in self.held.iter().rev() {
            api.release(lock, ticket);
        }
        self.held.clear();
        self.phase = Phase::Idle;
        self.next_op += 1;
        if self.next_op < self.plan.len() {
            api.set_timer(self.plan[self.next_op].idle, T_START);
        }
    }
}

fn per_node_runs(config: &WorkloadConfig, nodes: usize) -> Vec<NodeRun> {
    (0..nodes as u32).map(|n| NodeRun::new(plan_for_node(config, n))).collect()
}

// ---------------------------------------------------------------------
// Hierarchical (our protocol)
// ---------------------------------------------------------------------

/// Drives the hierarchical protocol: lock 0 is the table, lock `1 + e`
/// guards entry `e`.
#[derive(Debug)]
pub struct HierarchicalDriver {
    runs: Vec<NodeRun>,
}

impl HierarchicalDriver {
    /// Builds the driver for `nodes` nodes.
    pub fn new(config: &WorkloadConfig, nodes: usize) -> Self {
        HierarchicalDriver { runs: per_node_runs(config, nodes) }
    }

    const TABLE: LockId = LockId(0);

    fn entry_lock(entry: usize) -> LockId {
        LockId(entry as u32 + 1)
    }
}

impl Driver for HierarchicalDriver {
    fn start(&mut self, node: NodeId, api: &mut SimApi) {
        let run = &mut self.runs[node.index()];
        if !run.plan.is_empty() {
            api.set_timer(run.plan[0].idle, T_START);
        }
    }

    fn on_granted(&mut self, node: NodeId, lock: LockId, _t: Ticket, _m: Mode, api: &mut SimApi) {
        let run = &mut self.runs[node.index()];
        let op = run.current();
        match (run.phase, op.kind) {
            (Phase::AcquiringTable, OpKind::EntryRead(e)) => {
                debug_assert_eq!(lock, Self::TABLE);
                let t = run.fresh_ticket();
                run.held.push((Self::entry_lock(e), t));
                run.phase = Phase::AcquiringEntry;
                api.request(Self::entry_lock(e), Mode::Read, t);
            }
            (Phase::AcquiringTable, OpKind::EntryWrite(e)) => {
                let t = run.fresh_ticket();
                run.held.push((Self::entry_lock(e), t));
                run.phase = Phase::AcquiringEntry;
                api.request(Self::entry_lock(e), Mode::Write, t);
            }
            (Phase::AcquiringEntry, _) => {
                run.phase = Phase::Holding;
                api.set_timer(op.cs, T_CS_DONE);
            }
            (Phase::AcquiringTable, OpKind::TableRead | OpKind::TableWrite) => {
                run.phase = Phase::Holding;
                api.set_timer(op.cs, T_CS_DONE);
            }
            (Phase::AcquiringTable, OpKind::TableUpgrade) => {
                run.phase = Phase::UpgradeReading;
                api.set_timer(op.cs, T_UPGRADE);
            }
            (Phase::UpgradeWaiting, OpKind::TableUpgrade) => {
                run.phase = Phase::Holding;
                api.set_timer(op.cs2, T_CS_DONE);
            }
            (phase, kind) => {
                debug_assert!(false, "unexpected grant in phase {phase:?} for {kind:?}");
            }
        }
    }

    fn on_timer(&mut self, node: NodeId, timer: u64, api: &mut SimApi) {
        let run = &mut self.runs[node.index()];
        match timer {
            T_START => {
                let op = run.current();
                let t = run.fresh_ticket();
                run.held.push((Self::TABLE, t));
                run.phase = Phase::AcquiringTable;
                let table_mode = match op.kind {
                    OpKind::EntryRead(_) => Mode::IntentRead,
                    OpKind::EntryWrite(_) => Mode::IntentWrite,
                    OpKind::TableRead => Mode::Read,
                    OpKind::TableWrite => Mode::Write,
                    OpKind::TableUpgrade => Mode::Upgrade,
                };
                api.request(Self::TABLE, table_mode, t);
            }
            T_CS_DONE => run.finish_op(api),
            T_UPGRADE => {
                let (lock, ticket) = run.held[0];
                debug_assert_eq!(lock, Self::TABLE);
                run.phase = Phase::UpgradeWaiting;
                api.upgrade(lock, ticket);
            }
            other => debug_assert!(false, "unknown timer {other}"),
        }
    }
}

// ---------------------------------------------------------------------
// Naimi, same work
// ---------------------------------------------------------------------

/// Drives the Naimi–Trehel baseline doing the same work: lock `e` guards
/// entry `e`; whole-table operations acquire all entry locks in ascending
/// order (the deadlock-free ordering the paper charges the baseline for).
#[derive(Debug)]
pub struct NaimiSameWorkDriver {
    runs: Vec<NodeRun>,
    entries: usize,
}

impl NaimiSameWorkDriver {
    /// Builds the driver for `nodes` nodes.
    pub fn new(config: &WorkloadConfig, nodes: usize) -> Self {
        NaimiSameWorkDriver { runs: per_node_runs(config, nodes), entries: config.entries }
    }
}

impl Driver for NaimiSameWorkDriver {
    fn start(&mut self, node: NodeId, api: &mut SimApi) {
        let run = &mut self.runs[node.index()];
        if !run.plan.is_empty() {
            api.set_timer(run.plan[0].idle, T_START);
        }
    }

    fn on_granted(&mut self, node: NodeId, _lock: LockId, _t: Ticket, _m: Mode, api: &mut SimApi) {
        let entries = self.entries;
        let run = &mut self.runs[node.index()];
        let op = run.current();
        match run.phase {
            Phase::AcquiringEntry => {
                run.phase = Phase::Holding;
                api.set_timer(op.cs, T_CS_DONE);
            }
            Phase::AcquiringAll(next) => {
                if next < entries {
                    let t = run.fresh_ticket();
                    run.held.push((LockId(next as u32), t));
                    run.phase = Phase::AcquiringAll(next + 1);
                    api.request(LockId(next as u32), Mode::Write, t);
                } else {
                    run.phase = Phase::Holding;
                    // An upgrade's read+write phases are one exclusive hold.
                    let hold = if op.kind == OpKind::TableUpgrade { op.cs + op.cs2 } else { op.cs };
                    api.set_timer(hold, T_CS_DONE);
                }
            }
            phase => debug_assert!(false, "unexpected grant in phase {phase:?}"),
        }
    }

    fn on_timer(&mut self, node: NodeId, timer: u64, api: &mut SimApi) {
        let run = &mut self.runs[node.index()];
        match timer {
            T_START => {
                let op = run.current();
                match op.kind {
                    OpKind::EntryRead(e) | OpKind::EntryWrite(e) => {
                        let t = run.fresh_ticket();
                        run.held.push((LockId(e as u32), t));
                        run.phase = Phase::AcquiringEntry;
                        api.request(LockId(e as u32), Mode::Write, t);
                    }
                    OpKind::TableRead | OpKind::TableWrite | OpKind::TableUpgrade => {
                        // Acquire every entry lock, in order, one by one.
                        let t = run.fresh_ticket();
                        run.held.push((LockId(0), t));
                        run.phase = Phase::AcquiringAll(1);
                        api.request(LockId(0), Mode::Write, t);
                    }
                }
            }
            T_CS_DONE => run.finish_op(api),
            other => debug_assert!(false, "unknown timer {other}"),
        }
    }
}

// ---------------------------------------------------------------------
// Naimi, pure
// ---------------------------------------------------------------------

/// Drives the Naimi–Trehel baseline in its original single-lock form:
/// every operation acquires the one global lock. This is the paper's
/// "Naimi pure" series, the baseline's best case (but it provides none of
/// the multi-granularity functionality).
#[derive(Debug)]
pub struct NaimiPureDriver {
    runs: Vec<NodeRun>,
}

impl NaimiPureDriver {
    /// Builds the driver for `nodes` nodes.
    pub fn new(config: &WorkloadConfig, nodes: usize) -> Self {
        NaimiPureDriver { runs: per_node_runs(config, nodes) }
    }
}

impl Driver for NaimiPureDriver {
    fn start(&mut self, node: NodeId, api: &mut SimApi) {
        let run = &mut self.runs[node.index()];
        if !run.plan.is_empty() {
            api.set_timer(run.plan[0].idle, T_START);
        }
    }

    fn on_granted(&mut self, node: NodeId, _lock: LockId, _t: Ticket, _m: Mode, api: &mut SimApi) {
        let run = &mut self.runs[node.index()];
        let op = run.current();
        run.phase = Phase::Holding;
        let hold = if op.kind == OpKind::TableUpgrade { op.cs + op.cs2 } else { op.cs };
        api.set_timer(hold, T_CS_DONE);
    }

    fn on_timer(&mut self, node: NodeId, timer: u64, api: &mut SimApi) {
        let run = &mut self.runs[node.index()];
        match timer {
            T_START => {
                let t = run.fresh_ticket();
                run.held.push((LockId(0), t));
                run.phase = Phase::AcquiringEntry;
                api.request(LockId(0), Mode::Write, t);
            }
            T_CS_DONE => run.finish_op(api),
            other => debug_assert!(false, "unknown timer {other}"),
        }
    }
}
