//! Scenario presets: named open-loop workloads over the lock hierarchy.
//!
//! Each [`Scenario`] fixes a lock topology, an arrival process (Poisson,
//! seeded), a key-popularity distribution (usually [`Zipfian`]) and a
//! protocol, and [`run_scenario`] executes it in the deterministic
//! simulator — so every cell of the CI scenario matrix is a pure
//! function of its seed and compares exactly across machines. The
//! library covers the contention shapes closed-loop benchmarks cannot
//! produce: Zipfian-skewed hot locks, a flash crowd (mid-run write
//! burst on one subtree), multi-tenant namespaces (thousands of
//! independent hierarchies on the sharded runtime), a
//! filesystem-metadata tree, and a deliberately saturated cell whose
//! achieved throughput sits well below its offered load (the knee).
//!
//! Get the presets with [`scenario_presets`]; run one with
//! [`run_scenario`]:
//!
//! ```
//! use hlock_workload::{run_scenario, scenario_presets};
//!
//! let preset = scenario_presets().into_iter().find(|s| s.name == "saturation").unwrap();
//! let report = run_scenario(&preset.quick());
//! assert!(report.achieved_rate < report.offered_rate);
//! ```

use crate::open_loop::{OpenLoopDriver, OpenLoopOp, OpenLoopStats, OpenLoopWindow};
use crate::sampler::{poisson_schedule, Zipfian};
use hlock_core::{
    LockId, LockPlan, LockSpace, Mode, NodeId, ProtocolConfig, ShardSpec, ShardedSpace,
};
use hlock_naimi::NaimiSpace;
use hlock_sim::Duration;
use hlock_sim::{
    sample_exponential, Driver, LatencyModel, Observer, Sim, SimConfig, SimReport, SimTime,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which runtime executes a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioProtocol {
    /// The paper's hierarchical protocol ([`LockSpace`]).
    Hierarchical,
    /// The hierarchical protocol on the sharded runtime with this many
    /// shards per node ([`ShardedSpace`]).
    Sharded(usize),
    /// Flat exclusive-only baseline ([`NaimiSpace`]): one lock per leaf,
    /// no intention modes, every access exclusive — the "same work"
    /// yardstick the hierarchical protocol is measured against.
    FlatExclusive,
}

impl ScenarioProtocol {
    /// Short label for artifacts and tables.
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioProtocol::Hierarchical => "hierarchical",
            ScenarioProtocol::Sharded(_) => "sharded",
            ScenarioProtocol::FlatExclusive => "flat-exclusive",
        }
    }
}

/// The workload shape; private so presets stay the single source of
/// scenario truth (the bench bin and CI select by name).
#[derive(Debug, Clone)]
enum Kind {
    /// Reads/writes over `entries` leaves of one table, leaf popularity
    /// Zipfian(`theta`), `write_pct`% of ops exclusive.
    ZipfHot { entries: usize, theta: f64, write_pct: u32 },
    /// Uniform reads over `entries` leaves, plus a write burst on leaf 0
    /// from every node during `[burst_from, burst_until)`.
    FlashCrowd { entries: usize, burst_from: SimTime, burst_until: SimTime, burst_rate: f64 },
    /// `tenants` independent root+leaves hierarchies; tenant popularity
    /// mildly Zipfian, 10% writes.
    MultiTenant { tenants: usize, leaves: usize },
    /// Filesystem-metadata tree: root / `dirs` directories /
    /// `files_per_dir` files each; stat/readdir/create/rename mix with
    /// directory popularity Zipfian(`theta`).
    FsMetadata { dirs: usize, files_per_dir: usize, theta: f64 },
    /// Every op an exclusive write on the single leaf of a one-entry
    /// table — offered load deliberately past capacity.
    Saturation,
}

/// A named open-loop workload: topology + arrival process + protocol.
///
/// Construct via [`scenario_presets`]; tune with the builder methods.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Unique preset name (the CI matrix and gate key cells by it).
    pub name: String,
    /// Which runtime executes the workload.
    pub protocol: ScenarioProtocol,
    /// Cluster size.
    pub nodes: usize,
    /// Arrival window: ops are scheduled in `[0, duration)` of virtual
    /// time (completions may land later — that is the backlog draining).
    pub duration: Duration,
    /// Poisson arrival rate per node, ops/second.
    pub rate_per_node: f64,
    /// Base seed; every derived RNG (schedules, keys, holds, network)
    /// is a pure function of it.
    pub seed: u64,
    /// Mean critical-section hold time (exponential).
    pub hold_mean: Duration,
    /// Mean one-way network latency (exponential).
    pub net_mean: Duration,
    /// Tail-regression injection: multiply the hold time of roughly one
    /// op in 256 by this factor. `1.0` = off. Exists so the perf gate's
    /// p99.9 backstop can be validated end-to-end (a seeded tail
    /// regression must fail the gate).
    pub tail_inject: f64,
    kind: Kind,
}

impl Scenario {
    /// Shrinks the run (shorter window, lower rate) to CI-smoke size
    /// while keeping the workload shape. Used by `--quick`.
    pub fn quick(mut self) -> Scenario {
        self.duration = Duration(self.duration.as_micros() / 4);
        if let Kind::FlashCrowd { burst_from, burst_until, .. } = &mut self.kind {
            *burst_from = SimTime(burst_from.as_micros() / 4);
            *burst_until = SimTime(burst_until.as_micros() / 4);
        }
        self
    }

    /// Sets the tail-injection multiplier (see [`Scenario::tail_inject`]).
    pub fn with_tail_injection(mut self, mult: f64) -> Scenario {
        assert!(mult.is_finite() && mult >= 1.0, "tail multiplier must be >= 1, got {mult}");
        self.tail_inject = mult;
        self
    }

    /// One-line description for docs and `--list`.
    pub fn describe(&self) -> String {
        let what = match &self.kind {
            Kind::ZipfHot { entries, theta, write_pct } => {
                format!("Zipfian(theta={theta}) over {entries} entries, {write_pct}% writes")
            }
            Kind::FlashCrowd { entries, burst_from, burst_until, burst_rate } => format!(
                "uniform reads over {entries} entries + {burst_rate}/s/node write burst on one leaf in [{}ms,{}ms)",
                burst_from.as_micros() / 1_000,
                burst_until.as_micros() / 1_000
            ),
            Kind::MultiTenant { tenants, leaves } => {
                format!("{tenants} independent hierarchies x {leaves} leaves, 10% writes")
            }
            Kind::FsMetadata { dirs, files_per_dir, theta } => format!(
                "fs tree root/{dirs} dirs/{files_per_dir} files, stat/readdir/create/rename mix, dir skew theta={theta}"
            ),
            Kind::Saturation => "exclusive writes on a single leaf, offered >> capacity".into(),
        };
        format!(
            "{} [{}] {} nodes, {:.0} ops/s/node for {} ms: {what}",
            self.name,
            self.protocol.label(),
            self.nodes,
            self.rate_per_node,
            self.duration.as_micros() / 1_000
        )
    }

    /// Total locks in the scenario's topology.
    pub fn lock_count(&self) -> usize {
        match (&self.kind, self.protocol) {
            // Flat baseline: one lock per leaf, no table/root locks.
            (Kind::ZipfHot { entries, .. }, ScenarioProtocol::FlatExclusive) => *entries,
            (Kind::ZipfHot { entries, .. }, _) => 1 + entries,
            (Kind::FlashCrowd { entries, .. }, _) => 1 + entries,
            (Kind::MultiTenant { tenants, leaves }, _) => tenants * (1 + leaves),
            (Kind::FsMetadata { dirs, files_per_dir, .. }, _) => 1 + dirs + dirs * files_per_dir,
            (Kind::Saturation, _) => 2,
        }
    }

    /// Initial token-home placement: roots at node 0, finer granules
    /// spread over the other nodes (multi-tenant spreads whole tenants).
    fn token_homes(&self) -> Vec<NodeId> {
        let n = self.nodes;
        if let Kind::MultiTenant { tenants: _, leaves } = &self.kind {
            return (0..self.lock_count()).map(|l| NodeId((l / (1 + leaves) % n) as u32)).collect();
        }
        (0..self.lock_count())
            .map(
                |l| {
                    if l > 0 && n > 1 {
                        NodeId((1 + (l - 1) % (n - 1)) as u32)
                    } else {
                        NodeId(0)
                    }
                },
            )
            .collect()
    }

    /// Materializes the per-node open-loop scripts. Pure in `self`:
    /// equal scenarios produce byte-identical scripts, and the
    /// `FlatExclusive` twin of a preset samples the *same* arrival times
    /// and keys (the RNG streams do not depend on the protocol), so
    /// protocol comparisons see identical offered work.
    fn scripts(&self) -> Vec<Vec<OpenLoopOp>> {
        (0..self.nodes).map(|n| self.node_script(n)).collect()
    }

    fn node_script(&self, node: usize) -> Vec<OpenLoopOp> {
        let node_seed = self.seed ^ ((node as u64 + 1) << 20);
        let arrivals = poisson_schedule(self.rate_per_node, self.duration, node_seed);
        // Separate streams for key choice and hold times, so adding a
        // sampler never perturbs the arrival process.
        let mut keys = SmallRng::seed_from_u64(node_seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut holds = SmallRng::seed_from_u64(node_seed ^ 0x5851_F42D_4C95_7F2D);
        let flat = self.protocol == ScenarioProtocol::FlatExclusive;
        let mut ops: Vec<OpenLoopOp> = arrivals
            .into_iter()
            .map(|at| {
                let plan = self.sample_plan(&mut keys, flat);
                let hold = Duration(sample_exponential(&mut holds, self.hold_mean).as_micros());
                OpenLoopOp { at, plan, hold }
            })
            .collect();
        if let Kind::FlashCrowd { burst_from, burst_until, burst_rate, .. } = self.kind {
            // The crowd: every node hammers leaf 0 with writes for the
            // burst window, on top of its baseline read stream.
            let window = Duration(burst_until.as_micros() - burst_from.as_micros());
            let burst = poisson_schedule(burst_rate, window, node_seed ^ 0xB5_15_7E_42);
            ops.extend(burst.into_iter().map(|at| OpenLoopOp {
                at: burst_from + (at - SimTime::ZERO),
                plan: if flat {
                    LockPlan::single(LockId(0), Mode::Write)
                } else {
                    LockPlan::for_leaf(&[LockId(0)], LockId(1), Mode::Write)
                },
                hold: Duration(sample_exponential(&mut holds, self.hold_mean).as_micros()),
            }));
            ops.sort_by_key(|op| op.at);
        }
        if self.tail_inject > 1.0 {
            // A seeded tail regression: one op in ~128 becomes a
            // straggler *writer* holding its leaf exclusively for
            // `tail_inject` times the normal hold. Everything queued
            // behind it inherits the delay, so the p99.9 sojourn
            // inflates while medians barely move — exactly the
            // regression shape the gate's tail backstop exists to
            // catch. (Forcing Write matters: in read-heavy cells a slow
            // *reader* blocks almost nobody.)
            for (i, op) in ops.iter_mut().enumerate() {
                if i % 128 == 17 {
                    op.hold = Duration((op.hold.as_micros() as f64 * self.tail_inject) as u64);
                    let steps = op.plan.steps();
                    let leaf = steps.last().expect("plans are non-empty").lock;
                    let ancestors: Vec<LockId> =
                        steps[..steps.len() - 1].iter().map(|s| s.lock).collect();
                    op.plan = LockPlan::for_leaf(&ancestors, leaf, Mode::Write);
                }
            }
        }
        ops
    }

    /// Draws one operation's lock plan. `flat` collapses it to a single
    /// exclusive lock on the leaf (the baseline's "same work").
    fn sample_plan<R: Rng>(&self, rng: &mut R, flat: bool) -> LockPlan {
        match &self.kind {
            Kind::ZipfHot { entries, theta, write_pct } => {
                let zipf = Zipfian::new(*entries, *theta);
                let entry = zipf.sample(rng);
                let write = rng.gen_range(0..100u32) < *write_pct;
                if flat {
                    LockPlan::single(LockId(entry as u32), Mode::Write)
                } else {
                    let mode = if write { Mode::Write } else { Mode::Read };
                    LockPlan::for_leaf(&[LockId(0)], LockId(1 + entry as u32), mode)
                }
            }
            Kind::FlashCrowd { entries, .. } => {
                let entry = rng.gen_range(0..*entries);
                if flat {
                    LockPlan::single(LockId(entry as u32), Mode::Write)
                } else {
                    LockPlan::for_leaf(&[LockId(0)], LockId(1 + entry as u32), Mode::Read)
                }
            }
            Kind::MultiTenant { tenants, leaves } => {
                // Mild tenant skew: some tenants are busier, none dominates.
                let zipf = Zipfian::new(*tenants, 0.5);
                let tenant = zipf.sample(rng);
                let leaf = rng.gen_range(0..*leaves);
                let write = rng.gen_range(0..100u32) < 10;
                let base = (tenant * (1 + leaves)) as u32;
                let mode = if write { Mode::Write } else { Mode::Read };
                if flat {
                    LockPlan::single(LockId(base + 1 + leaf as u32), Mode::Write)
                } else {
                    LockPlan::for_leaf(&[LockId(base)], LockId(base + 1 + leaf as u32), mode)
                }
            }
            Kind::FsMetadata { dirs, files_per_dir, theta } => {
                let zipf = Zipfian::new(*dirs, *theta);
                let dir = zipf.sample(rng);
                let file = rng.gen_range(0..*files_per_dir);
                let root = LockId(0);
                let dir_lock = LockId(1 + dir as u32);
                let file_lock = LockId((1 + dirs + dir * files_per_dir + file) as u32);
                let op = rng.gen_range(0..100u32);
                if flat {
                    let leaf = if op < 85 { file_lock } else { dir_lock };
                    return LockPlan::single(leaf, Mode::Write);
                }
                if op < 70 {
                    // stat: read one file's metadata
                    LockPlan::for_leaf(&[root, dir_lock], file_lock, Mode::Read)
                } else if op < 85 {
                    // readdir: read the directory itself
                    LockPlan::for_leaf(&[root], dir_lock, Mode::Read)
                } else if op < 95 {
                    // create/write: exclusive on the file
                    LockPlan::for_leaf(&[root, dir_lock], file_lock, Mode::Write)
                } else {
                    // rename/rmdir: exclusive on the whole directory
                    LockPlan::for_leaf(&[root], dir_lock, Mode::Write)
                }
            }
            Kind::Saturation => {
                if flat {
                    LockPlan::single(LockId(0), Mode::Write)
                } else {
                    LockPlan::for_leaf(&[LockId(0)], LockId(1), Mode::Write)
                }
            }
        }
    }
}

/// One per-second window of a [`ScenarioReport`]'s offered-vs-achieved
/// time series (re-exported view of [`OpenLoopWindow`]).
pub type ScenarioWindow = OpenLoopWindow;

/// The measured outcome of one scenario cell.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Preset name.
    pub name: String,
    /// Protocol label ([`ScenarioProtocol::label`]).
    pub protocol: String,
    /// Cluster size.
    pub nodes: usize,
    /// Locks in the topology.
    pub locks: usize,
    /// Ops whose arrival fired (scheduled offered load).
    pub offered_ops: u64,
    /// Ops fully granted.
    pub completed_ops: u64,
    /// Offered rate over the arrival window, ops/s.
    pub offered_rate: f64,
    /// Achieved throughput to the last completion, ops/s. Below
    /// `offered_rate` when the cell saturates (the knee).
    pub achieved_rate: f64,
    /// Sojourn (arrival → fully granted) percentiles, microseconds.
    pub sojourn_p50: u64,
    /// 90th-percentile sojourn, microseconds.
    pub sojourn_p90: u64,
    /// 99th-percentile sojourn, microseconds.
    pub sojourn_p99: u64,
    /// 99.9th-percentile sojourn, microseconds.
    pub sojourn_p999: u64,
    /// Mean sojourn, microseconds.
    pub sojourn_mean: f64,
    /// Maximum sojourn, microseconds.
    pub sojourn_max: u64,
    /// Total protocol messages on the wire.
    pub messages: u64,
    /// Total grants (lock-level, not op-level).
    pub grants: u64,
    /// Messages per lock-level grant — the paper's efficiency metric;
    /// release suppression and intention coalescing push it down.
    pub messages_per_grant: f64,
    /// Messages per completed operation (plans differ in step count
    /// across protocols; this normalizes to application work).
    pub messages_per_op: f64,
    /// Largest number of ops simultaneously in flight (backlog depth).
    pub max_in_flight: u64,
    /// Virtual end time of the run, microseconds.
    pub end_time_micros: u64,
    /// Per-second arrivals/completions time series.
    pub windows: Vec<ScenarioWindow>,
}

impl ScenarioReport {
    fn new(s: &Scenario, report: &SimReport, stats: &OpenLoopStats) -> ScenarioReport {
        let duration_s = s.duration.as_micros() as f64 / 1e6;
        ScenarioReport {
            name: s.name.clone(),
            protocol: s.protocol.label().to_string(),
            nodes: s.nodes,
            locks: s.lock_count(),
            offered_ops: stats.offered,
            completed_ops: stats.completed,
            offered_rate: stats.offered as f64 / duration_s,
            achieved_rate: stats.achieved_ops_per_sec(),
            sojourn_p50: stats.sojourn_percentile(0.50),
            sojourn_p90: stats.sojourn_percentile(0.90),
            sojourn_p99: stats.sojourn_percentile(0.99),
            sojourn_p999: stats.sojourn_percentile(0.999),
            sojourn_mean: stats.sojourn_micros.mean(),
            sojourn_max: stats.sojourn_micros.max(),
            messages: report.metrics.total_messages(),
            grants: report.metrics.total_grants(),
            messages_per_grant: report.metrics.total_messages() as f64
                / report.metrics.total_grants().max(1) as f64,
            messages_per_op: report.metrics.total_messages() as f64 / stats.completed.max(1) as f64,
            max_in_flight: stats.max_in_flight,
            end_time_micros: report.end_time.as_micros(),
            windows: stats.windows.clone(),
        }
    }
}

/// The stats window length for the offered-vs-achieved time series.
const WINDOW: Duration = Duration(1_000_000);

/// Runs a scenario to quiescence in the deterministic simulator.
///
/// # Panics
///
/// Panics if the run violates a protocol invariant or fails to quiesce —
/// either is a bug, not a measurement.
pub fn run_scenario(scenario: &Scenario) -> ScenarioReport {
    run_observed_scenario(scenario, None)
}

/// Like [`run_scenario`], streaming every protocol event into `observer`
/// (attach a `hlock_core::ClusterRecorder` to flight-record the run).
///
/// # Panics
///
/// Panics if the run violates a protocol invariant or fails to quiesce.
pub fn run_observed_scenario(
    scenario: &Scenario,
    observer: Option<Box<dyn Observer>>,
) -> ScenarioReport {
    let (driver, stats) = OpenLoopDriver::new(scenario.scripts(), WINDOW);
    let lock_count = scenario.lock_count();
    let cfg = SimConfig {
        seed: scenario.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(scenario.nodes as u64),
        latency: LatencyModel::Exponential { mean: scenario.net_mean },
        lock_count,
        check_every: 0,
        watchdog: Some(Duration(60_000_000)),
        ..SimConfig::default()
    };
    let report = match scenario.protocol {
        ScenarioProtocol::Hierarchical => {
            let homes = scenario.token_homes();
            let pc = ProtocolConfig::default();
            let spaces = (0..scenario.nodes)
                .map(|i| LockSpace::with_homes(NodeId(i as u32), &homes, pc))
                .collect();
            run(Sim::new(spaces, driver, cfg), observer)
        }
        ScenarioProtocol::Sharded(shards) => {
            let homes = scenario.token_homes();
            let pc = ProtocolConfig::default();
            let spec = ShardSpec::new(shards);
            let spaces = (0..scenario.nodes)
                .map(|i| ShardedSpace::with_homes(NodeId(i as u32), &homes, pc, spec))
                .collect();
            run(Sim::new(spaces, driver, cfg), observer)
        }
        ScenarioProtocol::FlatExclusive => {
            let spaces = (0..scenario.nodes)
                .map(|i| NaimiSpace::new(NodeId(i as u32), lock_count, NodeId(0)))
                .collect();
            run(Sim::new(spaces, driver, cfg), observer)
        }
    };
    assert!(report.quiescent, "scenario '{}' did not quiesce", scenario.name);
    let stats = stats.borrow();
    ScenarioReport::new(scenario, &report, &stats)
}

struct BoxedObserver(Box<dyn Observer>);

impl Observer for BoxedObserver {
    fn on_event(&mut self, at_micros: u64, event: &hlock_core::ProtocolEvent) {
        self.0.on_event(at_micros, event);
    }
}

fn run<P, D>(sim: Sim<P, D>, observer: Option<Box<dyn Observer>>) -> SimReport
where
    P: hlock_core::ConcurrencyProtocol + hlock_core::Inspect,
    D: Driver,
{
    let result = match observer {
        Some(obs) => sim.with_observer(BoxedObserver(obs)).run(),
        None => sim.run(),
    };
    result.unwrap_or_else(|e| panic!("scenario violated an invariant: {e}"))
}

/// The scenario library: every preset of the CI matrix.
///
/// Sizes are chosen so the full matrix runs in seconds of wall time
/// (virtual time is free; compute scales with event count). Cells:
///
/// | name                  | protocol       | shape |
/// |-----------------------|----------------|-------|
/// | `zipf_read_heavy`     | hierarchical   | Zipfian θ=0.99, 10% writes |
/// | `zipf_read_heavy_flat`| flat-exclusive | identical arrivals/keys, exclusive leaves |
/// | `zipf_write_heavy`    | hierarchical   | Zipfian θ=0.99, 50% writes |
/// | `flash_crowd`         | hierarchical   | uniform reads + mid-run write burst on one leaf |
/// | `multi_tenant`        | sharded (4)    | 1500 tenants × 2 leaves |
/// | `fs_metadata`         | hierarchical   | root/16 dirs/256 files, stat-heavy mix |
/// | `saturation`          | hierarchical   | single hot leaf, offered ≫ capacity |
pub fn scenario_presets() -> Vec<Scenario> {
    let base = Scenario {
        name: String::new(),
        protocol: ScenarioProtocol::Hierarchical,
        nodes: 8,
        duration: Duration(10_000_000),
        rate_per_node: 50.0,
        seed: 0xC0FFEE,
        hold_mean: Duration(500),
        net_mean: Duration(2_000),
        tail_inject: 1.0,
        kind: Kind::Saturation,
    };
    vec![
        Scenario {
            name: "zipf_read_heavy".into(),
            kind: Kind::ZipfHot { entries: 64, theta: 0.99, write_pct: 10 },
            ..base.clone()
        },
        Scenario {
            name: "zipf_read_heavy_flat".into(),
            protocol: ScenarioProtocol::FlatExclusive,
            kind: Kind::ZipfHot { entries: 64, theta: 0.99, write_pct: 10 },
            ..base.clone()
        },
        Scenario {
            name: "zipf_write_heavy".into(),
            rate_per_node: 30.0,
            kind: Kind::ZipfHot { entries: 64, theta: 0.99, write_pct: 50 },
            ..base.clone()
        },
        Scenario {
            name: "flash_crowd".into(),
            rate_per_node: 25.0,
            kind: Kind::FlashCrowd {
                entries: 64,
                burst_from: SimTime(4_000_000),
                burst_until: SimTime(6_000_000),
                burst_rate: 40.0,
            },
            ..base.clone()
        },
        Scenario {
            name: "multi_tenant".into(),
            protocol: ScenarioProtocol::Sharded(4),
            rate_per_node: 60.0,
            kind: Kind::MultiTenant { tenants: 1_500, leaves: 2 },
            ..base.clone()
        },
        Scenario {
            name: "fs_metadata".into(),
            rate_per_node: 40.0,
            kind: Kind::FsMetadata { dirs: 16, files_per_dir: 16, theta: 0.8 },
            ..base.clone()
        },
        Scenario {
            name: "saturation".into(),
            nodes: 4,
            rate_per_node: 100.0,
            hold_mean: Duration(2_000),
            kind: Kind::Saturation,
            ..base
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn preset(name: &str) -> Scenario {
        scenario_presets().into_iter().find(|s| s.name == name).unwrap()
    }

    #[test]
    fn preset_names_are_unique_and_described() {
        let presets = scenario_presets();
        let mut names: Vec<_> = presets.iter().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), presets.len());
        for p in &presets {
            assert!(p.describe().contains(&p.name));
            assert!(p.lock_count() > 0);
        }
    }

    #[test]
    fn scripts_are_deterministic_and_sorted() {
        let s = preset("zipf_read_heavy");
        let (a, b) = (s.scripts(), s.scripts());
        assert_eq!(a, b, "equal scenarios must produce byte-identical scripts");
        for node in &a {
            assert!(node.windows(2).all(|w| w[0].at <= w[1].at));
        }
    }

    #[test]
    fn flat_twin_sees_identical_arrivals() {
        let hier = preset("zipf_read_heavy");
        let flat = preset("zipf_read_heavy_flat");
        let (h, f) = (hier.scripts(), flat.scripts());
        assert_eq!(h.len(), f.len());
        for (hn, fn_) in h.iter().zip(&f) {
            assert_eq!(
                hn.iter().map(|o| o.at).collect::<Vec<_>>(),
                fn_.iter().map(|o| o.at).collect::<Vec<_>>(),
                "protocol choice must not perturb the arrival process"
            );
            // Flat plans are single exclusive steps of the same work.
            assert!(fn_.iter().all(|o| o.plan.steps().len() == 1));
            assert!(fn_.iter().all(|o| o.plan.steps()[0].mode == Mode::Write));
        }
    }

    #[test]
    fn quick_runs_complete_for_every_preset() {
        for s in scenario_presets() {
            let s = s.quick();
            let r = run_scenario(&s);
            assert!(r.offered_ops > 0, "{}: no offered load", r.name);
            assert_eq!(r.offered_ops, r.completed_ops, "{}: lost ops", r.name);
            assert!(r.sojourn_p999 >= r.sojourn_p50, "{}", r.name);
            assert!(r.messages > 0 && r.grants > 0, "{}", r.name);
        }
    }

    #[test]
    fn saturation_preset_shows_the_knee() {
        let r = run_scenario(&preset("saturation").quick());
        assert!(
            r.achieved_rate < 0.9 * r.offered_rate,
            "saturation cell must saturate: offered {:.0}/s achieved {:.0}/s",
            r.offered_rate,
            r.achieved_rate
        );
        assert!(r.max_in_flight > 20, "backlog must build, got {}", r.max_in_flight);
    }

    #[test]
    fn zipf_hierarchical_beats_flat_on_messages_per_grant() {
        let hier = run_scenario(&preset("zipf_read_heavy").quick());
        let flat = run_scenario(&preset("zipf_read_heavy_flat").quick());
        assert!(
            hier.messages_per_grant < flat.messages_per_grant,
            "hierarchical {:.2} msgs/grant vs flat {:.2}",
            hier.messages_per_grant,
            flat.messages_per_grant
        );
    }

    #[test]
    fn tail_injection_inflates_p999_but_not_median() {
        // Read-heavy means a slow reader only blocks the 10% of writers
        // (and whoever queues behind them), so the injection needs to be
        // heavy-handed to punch through — which is fine: the knob exists
        // to validate the gate's tail backstop, not to be subtle.
        let clean = run_scenario(&preset("zipf_read_heavy").quick());
        let hurt = run_scenario(&preset("zipf_read_heavy").quick().with_tail_injection(50.0));
        assert!(
            hurt.sojourn_p999 as f64 > 1.25 * clean.sojourn_p999 as f64,
            "injected tail must inflate p99.9: {} -> {}",
            clean.sojourn_p999,
            hurt.sojourn_p999
        );
        assert!(
            (hurt.sojourn_p50 as f64) < 2.0 * clean.sojourn_p50.max(1) as f64,
            "median should barely move: {} -> {}",
            clean.sojourn_p50,
            hurt.sojourn_p50
        );
    }
}
