//! Request-mode mixes and workload parameters.

use hlock_core::Mode;
use hlock_sim::Duration;
use rand::Rng;

/// Relative frequencies of the five request modes.
///
/// The paper's experiment randomizes the mode of each iteration so that
/// "the IR, R, U, IW and W requests are 80 %, 10 %, 4 %, 5 % and 1 % of
/// the total requests" — reads dominate writes, as in practice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeMix {
    /// Weights for `[IR, R, U, IW, W]`, in that order.
    pub weights: [u32; 5],
}

impl ModeMix {
    /// The paper's mix: IR 80 %, R 10 %, U 4 %, IW 5 %, W 1 %.
    pub fn paper() -> ModeMix {
        ModeMix { weights: [80, 10, 4, 5, 1] }
    }

    /// A read-only mix (IR and R only), useful for ablations.
    pub fn read_only() -> ModeMix {
        ModeMix { weights: [80, 20, 0, 0, 0] }
    }

    /// A write-heavy mix, useful for stress tests and ablations.
    pub fn write_heavy() -> ModeMix {
        ModeMix { weights: [20, 10, 10, 30, 30] }
    }

    /// Total weight.
    pub fn total(&self) -> u32 {
        self.weights.iter().sum()
    }

    /// Samples one mode according to the weights.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Mode {
        let total = self.total();
        assert!(total > 0, "mode mix must have a positive weight");
        let mut pick = rng.gen_range(0..total);
        for (i, w) in self.weights.iter().enumerate() {
            if pick < *w {
                return [
                    Mode::IntentRead,
                    Mode::Read,
                    Mode::Upgrade,
                    Mode::IntentWrite,
                    Mode::Write,
                ][i];
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

impl Default for ModeMix {
    fn default() -> Self {
        ModeMix::paper()
    }
}

/// Parameters of the multi-airline reservation experiment (§4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Number of fare-table entries `E` (each guarded by its own lock;
    /// the table itself is one more lock in the hierarchical protocol).
    pub entries: usize,
    /// Lock-request iterations per node.
    pub ops_per_node: u32,
    /// Mean critical-section length (paper: 15 ms), exponential.
    pub cs_mean: Duration,
    /// Mean inter-request idle time (paper: 150 ms), exponential.
    pub idle_mean: Duration,
    /// Request-mode mix.
    pub mix: ModeMix,
    /// Workload seed (combined with node ids; the *same* seed produces
    /// the *same* operation sequence for every protocol, which is what
    /// makes the "Naimi same work" comparison same-work).
    pub seed: u64,
    /// Distribute initial token homes: the table lock stays at node 0,
    /// entry lock `e` starts at node `1 + e mod (n-1)` (extension
    /// experiment; the paper starts all tokens at one node).
    pub spread_token_homes: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            entries: 32,
            ops_per_node: 20,
            cs_mean: Duration::from_millis(15),
            idle_mean: Duration::from_millis(150),
            mix: ModeMix::paper(),
            seed: 1,
            spread_token_homes: false,
        }
    }
}

impl WorkloadConfig {
    /// Locks needed by the hierarchical protocol: the table plus one per
    /// entry. Lock 0 is the table; lock `1 + i` guards entry `i`.
    pub fn hierarchical_lock_count(&self) -> usize {
        self.entries + 1
    }

    /// Locks needed by "Naimi same work": one per entry (no table lock —
    /// the baseline has no granularities).
    pub fn naimi_lock_count(&self) -> usize {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn paper_mix_frequencies() {
        let mix = ModeMix::paper();
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = [0u32; 5];
        let n = 100_000;
        for _ in 0..n {
            let m = mix.sample(&mut rng);
            counts[m.wire_tag() as usize] += 1;
        }
        let frac = |c: u32| f64::from(c) / f64::from(n);
        assert!((frac(counts[0]) - 0.80).abs() < 0.01, "IR {:.3}", frac(counts[0]));
        assert!((frac(counts[1]) - 0.10).abs() < 0.01, "R {:.3}", frac(counts[1]));
        assert!((frac(counts[2]) - 0.04).abs() < 0.01, "U {:.3}", frac(counts[2]));
        assert!((frac(counts[3]) - 0.05).abs() < 0.01, "IW {:.3}", frac(counts[3]));
        assert!((frac(counts[4]) - 0.01).abs() < 0.005, "W {:.3}", frac(counts[4]));
    }

    #[test]
    fn read_only_mix_never_writes() {
        let mix = ModeMix::read_only();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let m = mix.sample(&mut rng);
            assert!(matches!(m, Mode::IntentRead | Mode::Read));
        }
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn zero_mix_panics() {
        let mix = ModeMix { weights: [0; 5] };
        let mut rng = SmallRng::seed_from_u64(2);
        let _ = mix.sample(&mut rng);
    }

    #[test]
    fn lock_counts() {
        let cfg = WorkloadConfig { entries: 10, ..WorkloadConfig::default() };
        assert_eq!(cfg.hierarchical_lock_count(), 11);
        assert_eq!(cfg.naimi_lock_count(), 10);
    }
}
