//! Open-loop (arrival-rate) driver: the counterpart of the closed-loop
//! [`crate::PlanDriver`].
//!
//! A closed-loop driver only issues its next operation after the
//! previous one completes, so under overload it silently self-throttles:
//! offered load collapses to match capacity and the system never shows
//! its saturation behavior. The open-loop driver instead fires
//! operations at pre-scheduled *arrival times* regardless of how many
//! are still in flight — exactly like independent clients arriving at a
//! service. Offered load is then a property of the schedule, achieved
//! throughput a property of the system, and the gap between them (plus
//! the growth of sojourn time) is the saturation knee.
//!
//! Each operation is a multi-granularity [`LockPlan`]; all steps of a
//! plan are issued pipelined in one effect step (the same discipline as
//! [`crate::PlanDriver::pipelined`], with the same safety rule: any two
//! concurrent plans may conflict on at most one lock).

use hlock_core::{LockPlan, Reservoir, Ticket};
use hlock_sim::{Driver, Duration, SimApi, SimTime};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// One scheduled operation of an open-loop script.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopOp {
    /// Virtual arrival time; the driver issues the plan's requests at
    /// this instant whether or not earlier operations have completed.
    pub at: SimTime,
    /// The locks to acquire (root-first; issued pipelined).
    pub plan: LockPlan,
    /// How long to hold the fully-acquired plan before releasing.
    pub hold: Duration,
}

/// Per-window arrival/completion counters (for offered-vs-achieved time
/// series; the window length is fixed at construction).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpenLoopWindow {
    /// Operations that arrived in this window.
    pub arrivals: u64,
    /// Operations that completed (all steps granted) in this window.
    pub completions: u64,
}

/// Counters and sojourn-time samples accumulated by an
/// [`OpenLoopDriver`] run. Obtained via the shared handle returned by
/// [`OpenLoopDriver::new`].
#[derive(Debug)]
pub struct OpenLoopStats {
    /// Operations whose arrival fired (load actually offered).
    pub offered: u64,
    /// Operations fully granted (load actually served).
    pub completed: u64,
    /// Virtual time of the last completion, if any.
    pub last_completion: Option<SimTime>,
    /// Arrival-to-fully-granted sojourn times, in microseconds. This is
    /// the open-loop latency: it includes all queueing behind earlier
    /// arrivals, so it is the number that explodes past the knee.
    pub sojourn_micros: Reservoir,
    /// Largest number of operations simultaneously in flight.
    pub max_in_flight: u64,
    in_flight: u64,
    /// Offered/achieved counters per window of `window` virtual time.
    pub windows: Vec<OpenLoopWindow>,
    window: Duration,
}

impl OpenLoopStats {
    fn new(window: Duration) -> Self {
        assert!(window.as_micros() > 0, "window must be positive");
        OpenLoopStats {
            offered: 0,
            completed: 0,
            last_completion: None,
            // Exact (non-sampled) percentiles for any realistic scenario
            // size: the CI gate reads p99.9 off this reservoir, and a
            // sampled estimate would wobble across otherwise-identical
            // runs once op counts pass the default 1024 capacity.
            sojourn_micros: Reservoir::with_capacity(1 << 17),
            max_in_flight: 0,
            in_flight: 0,
            windows: Vec::new(),
            window,
        }
    }

    fn window_at(&mut self, at: SimTime) -> &mut OpenLoopWindow {
        let idx = (at.as_micros() / self.window.as_micros()) as usize;
        if idx >= self.windows.len() {
            self.windows.resize(idx + 1, OpenLoopWindow::default());
        }
        &mut self.windows[idx]
    }

    fn arrival(&mut self, at: SimTime) {
        self.offered += 1;
        self.in_flight += 1;
        self.max_in_flight = self.max_in_flight.max(self.in_flight);
        self.window_at(at).arrivals += 1;
    }

    fn completion(&mut self, arrived: SimTime, at: SimTime) {
        self.completed += 1;
        self.in_flight -= 1;
        self.last_completion = Some(at);
        self.sojourn_micros.record((at - arrived).as_micros());
        self.window_at(at).completions += 1;
    }

    /// Achieved throughput: completions per second of virtual time, over
    /// the span from time zero to the last completion. Under overload
    /// completions keep landing long after the arrival window closed, so
    /// this is *lower* than the offered rate — the saturation signal.
    pub fn achieved_ops_per_sec(&self) -> f64 {
        match self.last_completion {
            Some(end) if end.as_micros() > 0 => {
                self.completed as f64 * 1e6 / end.as_micros() as f64
            }
            _ => 0.0,
        }
    }

    /// Sojourn-time percentile in microseconds (`p` in `0.0..=1.0`).
    pub fn sojourn_percentile(&self, p: f64) -> u64 {
        self.sojourn_micros.percentile(p).unwrap_or(0)
    }
}

#[derive(Debug)]
struct NodeScript {
    ops: Vec<OpenLoopOp>,
    /// Ticket of op `i`'s first step; step `s` uses `base[i] + s`.
    ticket_base: Vec<u64>,
    /// Outstanding steps per op (0 = complete or not yet arrived).
    remaining: Vec<u32>,
    /// Arrival time actually observed per op (set when the timer fires).
    arrived: Vec<SimTime>,
    /// Maps an outstanding step ticket to its op index.
    pending: HashMap<Ticket, usize>,
}

/// Timer ids encode (op index, phase): even = arrival, odd = hold done.
const PHASE_ARRIVAL: u64 = 0;
const PHASE_HOLD_DONE: u64 = 1;

/// Executes per-node open-loop scripts (see the module docs).
///
/// ```
/// use hlock_core::{LockId, LockPlan, LockSpace, Mode, NodeId, ProtocolConfig};
/// use hlock_sim::{Duration, Sim, SimConfig, SimTime};
/// use hlock_workload::{OpenLoopDriver, OpenLoopOp};
///
/// let op = |ms: u64| OpenLoopOp {
///     at: SimTime::from_millis(ms),
///     plan: LockPlan::for_leaf(&[LockId(0)], LockId(1), Mode::Read),
///     hold: Duration::from_millis(1),
/// };
/// let (driver, stats) = OpenLoopDriver::new(
///     vec![vec![], vec![op(1), op(2), op(3)]],
///     Duration::from_millis(1_000),
/// );
/// let nodes = (0..2)
///     .map(|i| LockSpace::new(NodeId(i), 2, NodeId(0), ProtocolConfig::default()))
///     .collect();
/// let cfg = SimConfig { lock_count: 2, check_every: 1, ..Default::default() };
/// let report = Sim::new(nodes, driver, cfg).run().unwrap();
/// assert!(report.quiescent);
/// let stats = stats.borrow();
/// assert_eq!(stats.offered, 3);
/// assert_eq!(stats.completed, 3);
/// ```
#[derive(Debug)]
pub struct OpenLoopDriver {
    scripts: Vec<NodeScript>,
    stats: Rc<RefCell<OpenLoopStats>>,
}

impl OpenLoopDriver {
    /// Builds the driver from one script per node (node-id order; ops
    /// must be sorted by arrival time) plus the stats window length.
    /// Returns the driver and a shared handle to its statistics, for
    /// inspection after [`hlock_sim::Sim::run`] consumes the driver.
    ///
    /// # Panics
    ///
    /// Panics if a script's arrival times are not sorted, or if a plan
    /// contains an [`hlock_core::Mode::Upgrade`] step (two-phase upgrade
    /// holds are a closed-loop pattern; model them as `Write` here).
    pub fn new(
        scripts: Vec<Vec<OpenLoopOp>>,
        stats_window: Duration,
    ) -> (Self, Rc<RefCell<OpenLoopStats>>) {
        let stats = Rc::new(RefCell::new(OpenLoopStats::new(stats_window)));
        let scripts = scripts
            .into_iter()
            .map(|ops| {
                assert!(
                    ops.windows(2).all(|w| w[0].at <= w[1].at),
                    "open-loop ops must be sorted by arrival time"
                );
                let mut ticket_base = Vec::with_capacity(ops.len());
                let mut next = 1u64;
                for op in &ops {
                    assert!(
                        op.plan.steps().iter().all(|s| s.mode != hlock_core::Mode::Upgrade),
                        "open-loop plans must not contain Upgrade steps"
                    );
                    ticket_base.push(next);
                    next += op.plan.steps().len() as u64;
                }
                let remaining = vec![0u32; ops.len()];
                let arrived = vec![SimTime::ZERO; ops.len()];
                NodeScript { ops, ticket_base, remaining, arrived, pending: HashMap::new() }
            })
            .collect();
        (OpenLoopDriver { scripts, stats: Rc::clone(&stats) }, stats)
    }

    /// A fresh handle to the shared statistics.
    pub fn stats(&self) -> Rc<RefCell<OpenLoopStats>> {
        Rc::clone(&self.stats)
    }
}

impl Driver for OpenLoopDriver {
    fn start(&mut self, node: hlock_core::NodeId, api: &mut SimApi) {
        let s = &self.scripts[node.index()];
        if let Some(first) = s.ops.first() {
            api.set_timer(first.at - SimTime::ZERO, PHASE_ARRIVAL);
        }
    }

    fn on_granted(
        &mut self,
        node: hlock_core::NodeId,
        _lock: hlock_core::LockId,
        ticket: Ticket,
        _mode: hlock_core::Mode,
        api: &mut SimApi,
    ) {
        let s = &mut self.scripts[node.index()];
        let idx = s.pending.remove(&ticket).expect("grant for an unknown open-loop ticket");
        s.remaining[idx] -= 1;
        if s.remaining[idx] == 0 {
            let now = api.now();
            self.stats.borrow_mut().completion(s.arrived[idx], now);
            api.set_timer(s.ops[idx].hold, (idx as u64) * 2 + PHASE_HOLD_DONE);
        }
    }

    fn on_timer(&mut self, node: hlock_core::NodeId, timer: u64, api: &mut SimApi) {
        let s = &mut self.scripts[node.index()];
        let idx = (timer / 2) as usize;
        if timer % 2 == PHASE_ARRIVAL {
            // Arrival: issue every step of the plan now, then schedule
            // the next arrival — never waiting on grants (open loop).
            let now = api.now();
            let base = s.ticket_base[idx];
            let op = &s.ops[idx];
            s.remaining[idx] = op.plan.steps().len() as u32;
            s.arrived[idx] = now;
            for (i, step) in op.plan.steps().iter().enumerate() {
                let t = Ticket(base + i as u64);
                s.pending.insert(t, idx);
                api.request(step.lock, step.mode, t);
            }
            self.stats.borrow_mut().arrival(now);
            if let Some(next) = s.ops.get(idx + 1) {
                api.set_timer(next.at - now, ((idx + 1) as u64) * 2 + PHASE_ARRIVAL);
            }
        } else {
            // Hold expired: release leaf-first.
            let base = s.ticket_base[idx];
            let steps = s.ops[idx].plan.steps();
            for (i, step) in steps.iter().enumerate().rev() {
                api.release(step.lock, Ticket(base + i as u64));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlock_core::{LockId, LockSpace, Mode, NodeId, ProtocolConfig};
    use hlock_sim::{LatencyModel, Sim, SimConfig, SimReport};

    /// Exclusive writes on one leaf under a two-node cluster: service
    /// rate is bounded by hold time + token round trips, so arrival
    /// rates above it must queue.
    fn write_burst(
        nodes: usize,
        rate_per_node: f64,
        duration_ms: u64,
        seed: u64,
    ) -> (SimReport, Rc<RefCell<OpenLoopStats>>) {
        let scripts: Vec<Vec<OpenLoopOp>> = (0..nodes)
            .map(|n| {
                crate::poisson_schedule(
                    rate_per_node,
                    Duration::from_millis(duration_ms),
                    seed ^ (n as u64 + 1) << 16,
                )
                .into_iter()
                .map(|at| OpenLoopOp {
                    at,
                    plan: LockPlan::for_leaf(&[LockId(0)], LockId(1), Mode::Write),
                    hold: Duration::from_millis(2),
                })
                .collect()
            })
            .collect();
        let (driver, stats) = OpenLoopDriver::new(scripts, Duration::from_millis(1_000));
        let spaces = (0..nodes)
            .map(|i| LockSpace::new(NodeId(i as u32), 2, NodeId(0), ProtocolConfig::default()))
            .collect();
        let cfg = SimConfig {
            seed,
            latency: LatencyModel::Exponential { mean: Duration::from_millis(2) },
            lock_count: 2,
            check_every: 0,
            ..Default::default()
        };
        let report = Sim::new(spaces, driver, cfg).run().expect("safe");
        (report, stats)
    }

    #[test]
    fn completes_all_ops_below_capacity() {
        let (report, stats) = write_burst(2, 20.0, 2_000, 5);
        let stats = stats.borrow();
        assert!(report.quiescent);
        assert!(stats.offered > 0);
        assert_eq!(stats.offered, stats.completed);
        assert_eq!(stats.offered, stats.sojourn_micros.count());
        // Light load: ops mostly complete within a few round trips.
        assert!(stats.max_in_flight < 10, "max in flight {}", stats.max_in_flight);
    }

    #[test]
    fn overload_shows_knee_not_self_throttling() {
        // One exclusive lock serves ~1/(hold + transfer) ≈ low hundreds
        // of ops/s; offer far more. A closed-loop driver would slow its
        // own arrivals to match; the open-loop driver must not.
        let offered_rate = 600.0; // per node, 2 nodes => 1200/s cluster
        let (report, stats) = write_burst(2, offered_rate, 2_000, 9);
        let stats = stats.borrow();
        assert!(report.quiescent, "all arrivals must eventually be served");

        // (1) No self-throttling: every scheduled arrival fired, and the
        // offered count matches the schedule (independent of service).
        let expected: usize = (0..2)
            .map(|n| {
                crate::poisson_schedule(
                    offered_rate,
                    Duration::from_millis(2_000),
                    9 ^ (n + 1) << 16,
                )
                .len()
            })
            .sum();
        assert_eq!(stats.offered as usize, expected, "arrivals must follow the schedule");

        // (2) The knee: achieved throughput stays well below offered.
        let offered_per_sec = 2.0 * offered_rate;
        let achieved = stats.achieved_ops_per_sec();
        assert!(
            achieved < 0.7 * offered_per_sec,
            "offered {offered_per_sec:.0}/s but achieved {achieved:.0}/s — expected saturation"
        );

        // (3) Queueing delay grows far past the service time: the run
        // drains a backlog, so sojourn p99 must dwarf the 2 ms hold.
        assert!(
            stats.sojourn_percentile(0.99) > 50_000,
            "p99 sojourn {}us too small for an overloaded queue",
            stats.sojourn_percentile(0.99)
        );
        // And the backlog itself was visible.
        assert!(stats.max_in_flight > 100, "max in flight {}", stats.max_in_flight);
    }

    #[test]
    fn achieved_throughput_plateaus_as_offered_doubles() {
        let (_, at_2x) = write_burst(2, 400.0, 2_000, 21);
        let (_, at_4x) = write_burst(2, 800.0, 2_000, 21);
        let a2 = at_2x.borrow().achieved_ops_per_sec();
        let a4 = at_4x.borrow().achieved_ops_per_sec();
        // Doubling offered load past the knee must not double service.
        assert!(
            a4 < 1.5 * a2,
            "achieved throughput should plateau past the knee: {a2:.0}/s -> {a4:.0}/s"
        );
        // ... but queueing must get strictly worse.
        let p99_2 = at_2x.borrow().sojourn_percentile(0.99);
        let p99_4 = at_4x.borrow().sojourn_percentile(0.99);
        assert!(p99_4 > p99_2, "p99 sojourn must grow with overload: {p99_2} -> {p99_4}");
    }

    #[test]
    fn runs_are_deterministic_given_seed() {
        let (ra, sa) = write_burst(3, 100.0, 1_000, 33);
        let (rb, sb) = write_burst(3, 100.0, 1_000, 33);
        assert_eq!(ra.end_time, rb.end_time);
        assert_eq!(ra.metrics.total_messages(), rb.metrics.total_messages());
        let (sa, sb) = (sa.borrow(), sb.borrow());
        assert_eq!(sa.offered, sb.offered);
        assert_eq!(sa.completed, sb.completed);
        assert_eq!(sa.sojourn_percentile(0.999), sb.sojourn_percentile(0.999));
        assert_eq!(sa.windows, sb.windows);
    }

    #[test]
    fn windows_track_offered_vs_achieved() {
        let (_, stats) = write_burst(2, 500.0, 1_000, 7);
        let stats = stats.borrow();
        // Arrivals stop after the 1 s window; under overload completions
        // keep landing in later windows.
        assert!(stats.windows.len() > 1, "backlog must drain past the arrival window");
        assert_eq!(stats.windows.iter().map(|w| w.arrivals).sum::<u64>(), stats.offered);
        assert_eq!(stats.windows.iter().map(|w| w.completions).sum::<u64>(), stats.completed);
        assert!(stats.windows[0].arrivals > 0);
        assert_eq!(stats.windows.last().unwrap().arrivals, 0, "no arrivals after the window");
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_script_panics() {
        let op = |ms| OpenLoopOp {
            at: SimTime::from_millis(ms),
            plan: LockPlan::single(LockId(0), Mode::Read),
            hold: Duration::ZERO,
        };
        let _ = OpenLoopDriver::new(vec![vec![op(5), op(1)]], Duration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "Upgrade")]
    fn upgrade_plans_are_rejected() {
        let op = OpenLoopOp {
            at: SimTime::ZERO,
            plan: LockPlan::single(LockId(0), Mode::Upgrade),
            hold: Duration::ZERO,
        };
        let _ = OpenLoopDriver::new(vec![vec![op]], Duration::from_millis(1));
    }
}
