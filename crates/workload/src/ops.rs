//! Operation plans: the per-node sequence of application operations,
//! generated deterministically from the workload seed so every protocol
//! variant executes literally the same work.

use crate::mix::WorkloadConfig;
use hlock_core::Mode;
use hlock_sim::{sample_exponential, Duration};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One application operation of the airline-reservation workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Read one fare entry: table `IR`, then entry `R`
    /// (principal request mode `IR`).
    EntryRead(usize),
    /// Update one fare entry: table `IW`, then entry `W`
    /// (principal request mode `IW`).
    EntryWrite(usize),
    /// Browse the whole table: table `R`.
    TableRead,
    /// Bulk-reprice the whole table: table `W`.
    TableWrite,
    /// Read-then-reprice: table `U`, read, upgrade to `W`, write.
    TableUpgrade,
}

impl OpKind {
    /// The principal mode whose frequency the paper's mix controls.
    pub fn principal_mode(self) -> Mode {
        match self {
            OpKind::EntryRead(_) => Mode::IntentRead,
            OpKind::EntryWrite(_) => Mode::IntentWrite,
            OpKind::TableRead => Mode::Read,
            OpKind::TableWrite => Mode::Write,
            OpKind::TableUpgrade => Mode::Upgrade,
        }
    }

    /// Number of lock requests this operation issues in the hierarchical
    /// protocol (upgrades count as an extra request, per §4).
    pub fn hierarchical_requests(self) -> u32 {
        match self {
            OpKind::EntryRead(_) | OpKind::EntryWrite(_) => 2,
            OpKind::TableRead | OpKind::TableWrite => 1,
            OpKind::TableUpgrade => 2,
        }
    }
}

/// One planned operation with its sampled durations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpPlan {
    /// What to do.
    pub kind: OpKind,
    /// Idle (think) time before the operation starts.
    pub idle: Duration,
    /// Critical-section hold time.
    pub cs: Duration,
    /// Second hold time for the write phase of an upgrade.
    pub cs2: Duration,
}

/// Generates node `node`'s operation sequence. Deterministic in
/// `(config.seed, node)` and *independent of the protocol*, so the
/// hierarchical run, "Naimi same work" and "Naimi pure" all execute the
/// same logical operations with the same hold/idle times.
pub fn plan_for_node(config: &WorkloadConfig, node: u32) -> Vec<OpPlan> {
    let mut rng = SmallRng::seed_from_u64(
        config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(u64::from(node) + 1),
    );
    (0..config.ops_per_node)
        .map(|_| {
            let mode = config.mix.sample(&mut rng);
            let kind = match mode {
                Mode::IntentRead => OpKind::EntryRead(rng.gen_range(0..config.entries)),
                Mode::IntentWrite => OpKind::EntryWrite(rng.gen_range(0..config.entries)),
                Mode::Read => OpKind::TableRead,
                Mode::Write => OpKind::TableWrite,
                Mode::Upgrade => OpKind::TableUpgrade,
            };
            OpPlan {
                kind,
                idle: sample_exponential(&mut rng, config.idle_mean),
                cs: sample_exponential(&mut rng, config.cs_mean),
                cs2: sample_exponential(&mut rng, config.cs_mean),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::ModeMix;

    #[test]
    fn plans_are_deterministic_per_node() {
        let cfg = WorkloadConfig::default();
        assert_eq!(plan_for_node(&cfg, 3), plan_for_node(&cfg, 3));
        assert_ne!(plan_for_node(&cfg, 3), plan_for_node(&cfg, 4));
    }

    #[test]
    fn entry_indices_in_range() {
        let cfg = WorkloadConfig { entries: 5, ops_per_node: 200, ..WorkloadConfig::default() };
        for node in 0..4 {
            for op in plan_for_node(&cfg, node) {
                if let OpKind::EntryRead(e) | OpKind::EntryWrite(e) = op.kind {
                    assert!(e < 5);
                }
            }
        }
    }

    #[test]
    fn principal_modes_follow_mix() {
        let cfg = WorkloadConfig {
            ops_per_node: 20_000,
            mix: ModeMix::paper(),
            ..WorkloadConfig::default()
        };
        let plan = plan_for_node(&cfg, 0);
        let reads = plan.iter().filter(|p| matches!(p.kind, OpKind::EntryRead(_))).count() as f64;
        assert!((reads / 20_000.0 - 0.80).abs() < 0.02);
    }

    #[test]
    fn request_counts() {
        assert_eq!(OpKind::EntryRead(0).hierarchical_requests(), 2);
        assert_eq!(OpKind::TableWrite.hierarchical_requests(), 1);
        assert_eq!(OpKind::TableUpgrade.hierarchical_requests(), 2);
        assert_eq!(OpKind::TableUpgrade.principal_mode(), Mode::Upgrade);
    }
}
