//! Criterion micro-benchmarks of the protocol state machine itself:
//! the zero-message local grant (Rule 2), a full remote grant round, and
//! queue absorption under a pending request.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hlock_core::{
    Effect, EffectSink, LockId, LockNode, Mode, NodeId, Payload, Priority, ProtocolConfig, Stamp,
    Ticket,
};

fn local_grant(c: &mut Criterion) {
    c.bench_function("rule2_local_grant_release", |b| {
        let mut node = LockNode::new(NodeId(0), LockId(0), NodeId(0), ProtocolConfig::default());
        let mut fx = EffectSink::new();
        // Pre-own R so IR requests are served locally with no messages.
        node.request(Mode::Read, Ticket(u64::MAX), &mut fx).unwrap();
        fx.drain().count();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            node.request(black_box(Mode::IntentRead), Ticket(t), &mut fx).unwrap();
            node.release(Ticket(t), &mut fx).unwrap();
            fx.drain().count()
        });
    });
}

fn remote_grant_round(c: &mut Criterion) {
    c.bench_function("remote_request_grant_release_round", |b| {
        let cfg = ProtocolConfig::default();
        let mut token = LockNode::new(NodeId(0), LockId(0), NodeId(0), cfg);
        let mut other = LockNode::new(NodeId(1), LockId(0), NodeId(0), cfg);
        let mut fx = EffectSink::new();
        token.request(Mode::Read, Ticket(u64::MAX), &mut fx).unwrap();
        fx.drain().count();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            // other asks for R, token copy-grants, other releases.
            other.request(Mode::Read, Ticket(t), &mut fx).unwrap();
            pump(&mut token, &mut other, &mut fx);
            other.release(Ticket(t), &mut fx).unwrap();
            pump(&mut token, &mut other, &mut fx);
        });
    });
}

/// Delivers all pending sends between the two nodes until quiet.
fn pump(a: &mut LockNode, b: &mut LockNode, fx: &mut EffectSink<Payload>) {
    loop {
        let msgs: Vec<(NodeId, Payload)> = fx
            .drain()
            .filter_map(|e| match e {
                Effect::Send { to, message } => Some((to, message)),
                _ => None,
            })
            .collect();
        if msgs.is_empty() {
            return;
        }
        for (to, m) in msgs {
            if to == a.id() {
                let from = b.id();
                a.on_message(from, m, fx);
            } else {
                let from = a.id();
                b.on_message(from, m, fx);
            }
        }
    }
}

fn queue_absorption(c: &mut Criterion) {
    c.bench_function("rule4_queue_absorb_incoming_request", |b| {
        let mut node = LockNode::new(NodeId(1), LockId(0), NodeId(0), ProtocolConfig::default());
        let mut fx = EffectSink::new();
        // A pending W absorbs every incoming request.
        node.request(Mode::Write, Ticket(u64::MAX), &mut fx).unwrap();
        fx.drain().count();
        let mut n = 2u32;
        b.iter(|| {
            n += 1;
            node.on_message(
                NodeId(n % 64 + 2),
                Payload::Request {
                    origin: NodeId(n % 64 + 2),
                    mode: black_box(Mode::Read),
                    stamp: Stamp(u64::from(n)),
                    priority: Priority::NORMAL,
                },
                &mut fx,
            );
            fx.drain().count()
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = local_grant, remote_grant_round, queue_absorption
);
criterion_main!(benches);
