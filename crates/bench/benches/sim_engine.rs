//! Criterion macro-benchmark: end-to-end simulated airline runs for each
//! protocol (exercises engine + protocol + workload together).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hlock_core::ProtocolConfig;
use hlock_sim::LatencyModel;
use hlock_workload::{run_experiment, ProtocolKind, WorkloadConfig};

fn sim_runs(c: &mut Criterion) {
    let wl = WorkloadConfig { entries: 8, ops_per_node: 6, seed: 42, ..Default::default() };
    let mut group = c.benchmark_group("sim_airline_8nodes");
    for (name, kind) in [
        ("hierarchical", ProtocolKind::Hierarchical(ProtocolConfig::default())),
        ("naimi_same_work", ProtocolKind::NaimiSameWork),
        ("naimi_pure", ProtocolKind::NaimiPure),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let r = run_experiment(black_box(kind), 8, &wl, LatencyModel::paper(), 0)
                    .expect("run ok");
                black_box(r.metrics.total_messages())
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = sim_runs
);
criterion_main!(benches);
