//! Criterion micro-benchmarks of the wire codec.

use bytes::BytesMut;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hlock_core::{
    Envelope, LockId, Mode, ModeSet, NodeId, Payload, Priority, QueueEntry, Stamp, Waiter,
};
use hlock_wire::WireCodec;

fn sample_request() -> Envelope {
    Envelope {
        lock: LockId(17),
        payload: Payload::Request {
            origin: NodeId(93),
            mode: Mode::Read,
            stamp: Stamp(123_456),
            priority: Priority::NORMAL,
        },
    }
}

fn sample_token() -> Envelope {
    Envelope {
        lock: LockId(3),
        payload: Payload::Token {
            mode: Mode::Write,
            queue: (0..16)
                .map(|i| {
                    QueueEntry::new(Waiter::Remote(NodeId(i)), Mode::Read, Stamp(u64::from(i)))
                })
                .collect(),
            sender_owned: Some(Mode::IntentRead),
        },
    }
}

fn encode(c: &mut Criterion) {
    let req = sample_request();
    let tok = sample_token();
    c.bench_function("encode_request", |b| {
        let mut buf = BytesMut::with_capacity(64);
        b.iter(|| {
            buf.clear();
            black_box(&req).encode(&mut buf);
            black_box(buf.len())
        });
    });
    c.bench_function("encode_token_16q", |b| {
        let mut buf = BytesMut::with_capacity(256);
        b.iter(|| {
            buf.clear();
            black_box(&tok).encode(&mut buf);
            black_box(buf.len())
        });
    });
}

fn decode(c: &mut Criterion) {
    let mut buf = BytesMut::new();
    sample_request().encode(&mut buf);
    let req_bytes = buf.freeze();
    let mut buf = BytesMut::new();
    sample_token().encode(&mut buf);
    let tok_bytes = buf.freeze();
    c.bench_function("decode_request", |b| {
        b.iter(|| {
            let mut bytes = req_bytes.clone();
            black_box(Envelope::decode(&mut bytes).unwrap())
        });
    });
    c.bench_function("decode_token_16q", |b| {
        b.iter(|| {
            let mut bytes = tok_bytes.clone();
            black_box(Envelope::decode(&mut bytes).unwrap())
        });
    });
    // A freeze message is the smallest frame.
    let mut buf = BytesMut::new();
    Envelope { lock: LockId(0), payload: Payload::Freeze { modes: ModeSet::ALL } }.encode(&mut buf);
    let frz = buf.freeze();
    c.bench_function("decode_freeze", |b| {
        b.iter(|| {
            let mut bytes = frz.clone();
            black_box(Envelope::decode(&mut bytes).unwrap())
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = encode, decode
);
criterion_main!(benches);
