//! # hlock-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (§4), plus ablation sweeps and Criterion micro-benchmarks.
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `tables` | Tables 1(a), 1(b), 2(a), 2(b) — the protocol rule tables |
//! | `fig5_message_overhead` | Figure 5 — messages per request vs nodes |
//! | `fig6_latency` | Figure 6 — request latency factor vs nodes |
//! | `fig7_breakdown` | Figure 7 — per-kind message overhead vs nodes |
//! | `ablations` | extension: contribution of each design ingredient |
//! | `summary` | §4/§6 headline-claims check (3 vs 4 msgs, 90 vs 160×) |
//!
//! Results are printed as aligned text tables and also written as CSV to
//! `target/experiments/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use hlock_sim::{Duration, LatencyModel, Metrics};
use hlock_workload::{run_experiment, ProtocolKind, WorkloadConfig};
use std::fmt::Write as _;
use std::path::PathBuf;

/// The node counts swept in the paper's figures (x-axis 0–120).
pub const PAPER_SWEEP: [usize; 10] = [2, 5, 10, 20, 30, 40, 60, 80, 100, 120];

/// A shorter sweep for quick runs (`--quick`).
pub const QUICK_SWEEP: [usize; 5] = [2, 5, 10, 20, 40];

/// Common experiment parameters for all figures.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Workload parameters (paper defaults).
    pub workload: WorkloadConfig,
    /// Latency model (paper: exponential, mean 150 ms).
    pub latency: LatencyModel,
    /// Seeds averaged per data point.
    pub seeds: u64,
    /// Node counts to sweep.
    pub sweep: Vec<usize>,
}

impl Default for Harness {
    fn default() -> Self {
        Harness {
            workload: WorkloadConfig::default(),
            latency: LatencyModel::paper(),
            seeds: 3,
            sweep: PAPER_SWEEP.to_vec(),
        }
    }
}

impl Harness {
    /// Parses `--quick` (short sweep, one seed) from process args.
    pub fn from_args() -> Harness {
        let quick = std::env::args().any(|a| a == "--quick");
        if quick {
            Harness { seeds: 1, sweep: QUICK_SWEEP.to_vec(), ..Harness::default() }
        } else {
            Harness::default()
        }
    }

    /// The paper's base latency unit (mean network latency).
    pub fn base_latency(&self) -> Duration {
        self.latency.mean()
    }

    /// Runs `kind` at `nodes`, averaged over the configured seeds.
    ///
    /// # Panics
    ///
    /// Panics on an invariant violation (protocol bug).
    pub fn measure(&self, kind: ProtocolKind, nodes: usize) -> Metrics {
        let mut merged = Metrics::new();
        for s in 0..self.seeds {
            let wl = WorkloadConfig { seed: self.workload.seed + s, ..self.workload };
            let report = run_experiment(kind, nodes, &wl, self.latency, 0)
                .expect("experiment run violated an invariant");
            assert!(report.quiescent, "run did not quiesce");
            merged.merge(&report.metrics);
        }
        merged
    }
}

/// A printable/exportable results table: one row per swept node count,
/// one column per series.
#[derive(Debug, Clone)]
pub struct ResultTable {
    title: String,
    x_label: String,
    columns: Vec<String>,
    rows: Vec<(usize, Vec<f64>)>,
}

impl ResultTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>, columns: Vec<String>) -> Self {
        ResultTable { title: title.into(), x_label: x_label.into(), columns, rows: Vec::new() }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the column count.
    pub fn push_row(&mut self, x: usize, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len());
        self.rows.push((x, values));
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Rows in insertion order.
    pub fn rows(&self) -> &[(usize, Vec<f64>)] {
        &self.rows
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let width = 22usize;
        let _ = write!(out, "{:>8}", self.x_label);
        for c in &self.columns {
            let _ = write!(out, " {c:>width$}");
        }
        let _ = writeln!(out);
        for (x, values) in &self.rows {
            let _ = write!(out, "{x:>8}");
            for v in values {
                let _ = write!(out, " {v:>width$.3}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label);
        for c in &self.columns {
            let _ = write!(out, ",{c}");
        }
        let _ = writeln!(out);
        for (x, values) in &self.rows {
            let _ = write!(out, "{x}");
            for v in values {
                let _ = write!(out, ",{v:.6}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Writes the CSV under `target/experiments/<name>.csv` and returns
    /// the path (best effort: returns `None` if the directory cannot be
    /// created).
    pub fn save_csv(&self, name: &str) -> Option<PathBuf> {
        let dir = PathBuf::from("target/experiments");
        std::fs::create_dir_all(&dir).ok()?;
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, self.to_csv()).ok()?;
        Some(path)
    }

    /// The last row's value in column `col` (for headline summaries).
    pub fn last(&self, col: usize) -> Option<f64> {
        self.rows.last().map(|(_, v)| v[col])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_and_csv() {
        let mut t = ResultTable::new("T", "nodes", vec!["a".into(), "b".into()]);
        t.push_row(2, vec![1.0, 2.0]);
        t.push_row(5, vec![3.0, 4.5]);
        let text = t.render();
        assert!(text.contains("nodes"));
        assert!(text.contains("4.500"));
        let csv = t.to_csv();
        assert!(csv.starts_with("nodes,a,b\n"));
        assert!(csv.contains("5,3.000000,4.500000"));
        assert_eq!(t.last(1), Some(4.5));
        assert_eq!(t.rows().len(), 2);
    }

    #[test]
    fn harness_measure_small() {
        let h = Harness {
            workload: WorkloadConfig { entries: 4, ops_per_node: 4, ..Default::default() },
            seeds: 1,
            sweep: vec![3],
            ..Harness::default()
        };
        let m = h.measure(ProtocolKind::NaimiPure, 3);
        assert_eq!(m.total_requests(), 12);
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = ResultTable::new("T", "n", vec!["a".into()]);
        t.push_row(1, vec![1.0, 2.0]);
    }
}
