//! **Lossy links** — robustness sweep for the reliable session layer:
//! the airline workload on the hierarchical protocol, wrapped in
//! per-link sessions, across a grid of message drop rates × base
//! retransmission timeouts.
//!
//! Every run must complete all grants (the simulator's watchdog fails
//! the run if it wedges) — the sweep quantifies *what that costs*:
//! retransmissions, standalone acks, latency inflation and the extra
//! wire bytes of session framing.
//!
//! One JSON object per line on stdout, so downstream tooling can
//! `jq`/pandas the sweep directly:
//!
//! ```text
//! cargo run --release -p hlock-bench --bin lossy_links [--quick]
//! ```
//!
//! The session framing adds 3 bytes per frame at small sequence
//! numbers (tag + two varints, measured by `hlock-wire`'s
//! `session_frame_overhead_is_small`); `overhead_bytes` below uses
//! that floor, so it is a lower bound at long-running sequence
//! numbers.

use hlock_core::ProtocolConfig;
use hlock_session::SessionConfig;
use hlock_sim::{Duration, LatencyModel, SimConfig};
use hlock_workload::{run_session_experiment, WorkloadConfig};

/// Minimum encoded overhead of one session frame (tag + seq + ack
/// varints for `Data`; tag + ack varint for a standalone `Ack`).
const FRAME_OVERHEAD_BYTES: u64 = 3;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (nodes, workload) = if quick {
        (4, WorkloadConfig { entries: 8, ops_per_node: 6, ..Default::default() })
    } else {
        (10, WorkloadConfig::default())
    };
    let drops = [0.0, 0.05, 0.1, 0.2, 0.3];
    let rtos_ms: &[u64] = if quick { &[150, 450] } else { &[50, 150, 450, 1_350] };

    eprintln!(
        "lossy_links: {nodes} nodes, {} entries, {} ops/node, {} drop rates x {} RTOs",
        workload.entries,
        workload.ops_per_node,
        drops.len(),
        rtos_ms.len(),
    );

    for &drop in &drops {
        for &rto_ms in rtos_ms {
            let session = SessionConfig {
                rto_micros: rto_ms * 1_000,
                max_backoff_micros: rto_ms * 16_000,
                ..SessionConfig::default()
            };
            let sim = SimConfig {
                latency: LatencyModel::paper(),
                drop_probability: drop,
                // A generous stall bound: the workload idles ~150 ms
                // between ops, so minutes of silence means wedged.
                watchdog: Some(Duration::from_millis(120_000)),
                ..SimConfig::default()
            };
            let r = run_session_experiment(ProtocolConfig::paper(), session, nodes, &workload, sim)
                .expect("session layer must mask link loss");
            assert!(r.report.quiescent, "run did not quiesce (drop={drop}, rto={rto_ms}ms)");
            let m = &r.report.metrics;
            let s = &r.session;
            let frames = s.data_frames + s.retransmits + s.acks;
            println!(
                "{{\"drop\":{drop},\"rto_ms\":{rto_ms},\"nodes\":{nodes},\
                 \"requests\":{},\"grants\":{},\
                 \"latency_mean_ms\":{:.2},\"latency_p99_ms\":{:.2},\
                 \"data_frames\":{},\"retransmits\":{},\"acks\":{},\
                 \"duplicates_dropped\":{},\"reordered_buffered\":{},\
                 \"overhead_bytes\":{},\"end_time_ms\":{:.0}}}",
                m.total_requests(),
                m.total_grants(),
                m.mean_latency().as_millis_f64(),
                m.latency_percentile(0.99).as_millis_f64(),
                s.data_frames,
                s.retransmits,
                s.acks,
                s.duplicates_dropped,
                s.reordered_buffered,
                frames * FRAME_OVERHEAD_BYTES,
                r.report.end_time.as_millis_f64(),
            );
        }
    }
}
