//! **Observability smoke test**: runs a short hierarchical workload with
//! every exporter attached, writes the artifacts, and validates them —
//! exiting non-zero on any failure so CI can gate on it.
//!
//! Artifacts (under `target/experiments/`):
//!
//! * `obs_smoke.jsonl` — one JSON object per protocol event
//! * `obs_smoke_trace.json` — Chrome-trace document (Trace Event
//!   Format); load it in `chrome://tracing` or <https://ui.perfetto.dev>
//! * `obs_smoke_metrics.prom` — Prometheus text exposition dump with
//!   request-to-grant latency quantiles per mode
//!
//! Checks: the JSONL parses line-by-line, the event stream's request
//! spans balance (every span opened is closed exactly once), event
//! counts agree with the simulator's own metrics, and the trace/metrics
//! dumps contain what dashboards expect.
//!
//! ```text
//! cargo run --release -p hlock-bench --bin obs_smoke
//! ```

use hlock_core::{
    check_span_balance, ChromeTraceObserver, JsonlObserver, MetricsRegistry, NodeId, Observer,
    ProtocolConfig, ProtocolEvent, RecordingAuditor, DEFAULT_FLIGHT_CAPACITY,
};
use hlock_sim::{Duration as SimDuration, LatencyModel, NodeCrash, SimConfig, SimTime};
use hlock_workload::{
    run_observed_experiment, run_observed_recovery_experiment, ProtocolKind, WorkloadConfig,
};
use std::cell::RefCell;
use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;
use std::rc::Rc;

fn fail(msg: &str) -> ! {
    eprintln!("obs_smoke: FAIL: {msg}");
    std::process::exit(1);
}

/// Minimal structural validation of one JSONL line: an object with
/// balanced braces outside string literals and the fields every event
/// carries. Not a JSON parser — just enough to catch corrupt output.
fn validate_jsonl_line(line: &str) -> Result<(), String> {
    if !line.starts_with('{') || !line.ends_with('}') {
        return Err(format!("not an object: {line}"));
    }
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escape = false;
    for c in line.chars() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => escape = true,
            '"' => in_str = !in_str,
            '{' if !in_str => depth += 1,
            '}' if !in_str => depth -= 1,
            _ => {}
        }
    }
    if depth != 0 || in_str {
        return Err(format!("unbalanced braces or quotes: {line}"));
    }
    for field in ["\"at\":", "\"event\":", "\"node\":"] {
        if !line.contains(field) {
            return Err(format!("missing {field}: {line}"));
        }
    }
    Ok(())
}

fn main() {
    let dir = PathBuf::from("target/experiments");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        fail(&format!("cannot create {}: {e}", dir.display()));
    }
    let jsonl_path = dir.join("obs_smoke.jsonl");
    let trace_path = dir.join("obs_smoke_trace.json");
    let prom_path = dir.join("obs_smoke_metrics.prom");

    // One short mixed-mode run with all three exporters fanned out.
    let file = match File::create(&jsonl_path) {
        Ok(f) => f,
        Err(e) => fail(&format!("cannot create {}: {e}", jsonl_path.display())),
    };
    let jsonl = Rc::new(RefCell::new(JsonlObserver::new(BufWriter::new(file))));
    let chrome = Rc::new(RefCell::new(ChromeTraceObserver::new()));
    let registry = Rc::new(RefCell::new(MetricsRegistry::new()));
    let events: Rc<RefCell<Vec<ProtocolEvent>>> = Rc::default();

    let (j, c, r, ev) =
        (Rc::clone(&jsonl), Rc::clone(&chrome), Rc::clone(&registry), Rc::clone(&events));
    let observer = move |at: u64, e: &ProtocolEvent| {
        j.borrow_mut().on_event(at, e);
        c.borrow_mut().on_event(at, e);
        r.borrow_mut().on_event(at, e);
        ev.borrow_mut().push(e.clone());
    };

    let workload = WorkloadConfig { entries: 4, ops_per_node: 6, seed: 42, ..Default::default() };
    let report = match run_observed_experiment(
        ProtocolKind::Hierarchical(ProtocolConfig::paper()),
        5,
        &workload,
        LatencyModel::paper(),
        1,
        Some(Box::new(observer)),
    ) {
        Ok(r) => r,
        Err(e) => fail(&format!("run violated an invariant: {e}")),
    };
    if !report.quiescent {
        fail("run did not quiesce");
    }

    // 1. The in-memory stream is causally sound.
    let events = events.borrow();
    if events.is_empty() {
        fail("no events observed");
    }
    if let Err(e) = check_span_balance(events.iter()) {
        fail(&format!("span imbalance: {e}"));
    }
    let requests = events.iter().filter(|e| e.name() == "request_issued").count() as u64;
    if requests != report.metrics.total_requests() {
        fail(&format!(
            "request_issued events ({requests}) disagree with metrics ({})",
            report.metrics.total_requests()
        ));
    }

    // 2. The JSONL artifact is complete and parses.
    {
        let mut jsonl = jsonl.borrow_mut();
        if let Some(e) = jsonl.take_error() {
            fail(&format!("JSONL write error: {e}"));
        }
        if jsonl.lines() != events.len() as u64 {
            fail(&format!("wrote {} lines for {} events", jsonl.lines(), events.len()));
        }
    }
    drop(jsonl); // flush the BufWriter via into_inner on the sole owner
    let text = match std::fs::read_to_string(&jsonl_path) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read back {}: {e}", jsonl_path.display())),
    };
    let mut lines = 0u64;
    for line in text.lines() {
        if let Err(e) = validate_jsonl_line(line) {
            fail(&e);
        }
        lines += 1;
    }
    if lines != events.len() as u64 {
        fail(&format!("file has {lines} lines for {} events", events.len()));
    }

    // 3. The Chrome trace is a loadable document with request spans.
    let trace = chrome.borrow().finish();
    if !trace.starts_with("{\"traceEvents\":[") || !trace.trim_end().ends_with("]}") {
        fail("chrome trace is not a traceEvents document");
    }
    if !trace.contains("\"ph\":\"b\"") || !trace.contains("\"ph\":\"e\"") {
        fail("chrome trace has no async request spans");
    }
    if let Err(e) = std::fs::write(&trace_path, &trace) {
        fail(&format!("cannot write {}: {e}", trace_path.display()));
    }

    // 4. The Prometheus dump has the request-to-grant histogram per mode.
    let prom = registry.borrow().render();
    for needle in ["hlock_request_to_grant_micros", "mode=", "quantile=", "hlock_grants_total"] {
        if !prom.contains(needle) {
            fail(&format!("metrics dump missing {needle}"));
        }
    }
    if let Err(e) = std::fs::write(&prom_path, &prom) {
        fail(&format!("cannot write {}: {e}", prom_path.display()));
    }

    // 5. Crash-recovery scenario, flight-recorded and live-audited:
    //    kill the token home mid-workload, let the survivors elect a
    //    new epoch, and stream every event through the invariant
    //    auditor. The auditor must stay silent (the protocol is
    //    correct), the dead node's open spans must close via
    //    `request_aborted` (no span leak on crash), and every node's
    //    flight window is dumped for the `timeline` merger.
    let flight_dir = dir.join("flight");
    let _ = std::fs::remove_dir_all(&flight_dir);
    const CRASH_NODES: usize = 5;
    let auditor = Rc::new(RefCell::new(RecordingAuditor::new(
        CRASH_NODES,
        DEFAULT_FLIGHT_CAPACITY,
        Some(flight_dir.clone()),
    )));
    let crash_events: Rc<RefCell<Vec<ProtocolEvent>>> = Rc::default();
    let (a, ev) = (Rc::clone(&auditor), Rc::clone(&crash_events));
    let crash_observer = move |at: u64, e: &ProtocolEvent| {
        a.borrow_mut().on_event(at, e);
        ev.borrow_mut().push(e.clone());
    };
    // Entry tokens spread over nodes 1..n, so node 0's entry requests
    // travel the wire: crashing it mid-run both loses a token (forcing
    // an election) and strands open request spans (forcing aborts).
    let wl = WorkloadConfig {
        entries: 4,
        ops_per_node: 6,
        seed: 13,
        spread_token_homes: true,
        ..Default::default()
    };
    let sim = SimConfig {
        check_every: 1,
        crashes: vec![NodeCrash { node: NodeId(0), at: SimTime::from_millis(600) }],
        watchdog: Some(SimDuration::from_millis(60_000)),
        ..SimConfig::default()
    };
    let recovery = match run_observed_recovery_experiment(
        ProtocolConfig::default(),
        CRASH_NODES,
        &wl,
        sim,
        Some(Box::new(crash_observer)),
    ) {
        Ok(r) => r,
        Err(e) => fail(&format!("recovery run violated an invariant: {e}")),
    };
    if !recovery.report.quiescent {
        fail("recovery run did not quiesce");
    }
    if recovery.max_epoch == 0 {
        fail("crash did not trigger a recovery round");
    }
    let auditor = auditor.borrow();
    if !auditor.auditor.is_clean() {
        fail(&format!("auditor flagged a clean recovery run: {:?}", auditor.auditor.findings()));
    }
    if auditor.dumped() {
        fail("flight dump triggered without a violation");
    }
    let crash_events = crash_events.borrow();
    if let Err(e) = check_span_balance(crash_events.iter()) {
        fail(&format!("span imbalance across crash: {e}"));
    }
    let aborted = crash_events.iter().filter(|e| e.name() == "request_aborted").count();
    if aborted == 0 {
        fail("crash closed no spans via request_aborted");
    }
    let paths = match auditor.recorder.dump_all(&flight_dir) {
        Ok(p) => p,
        Err(e) => fail(&format!("cannot dump flight windows: {e}")),
    };
    if paths.len() != CRASH_NODES {
        fail(&format!("dumped {} flight windows for {CRASH_NODES} nodes", paths.len()));
    }

    println!(
        "obs_smoke: OK — {} events, {} requests, spans balanced",
        events.len(),
        report.metrics.total_requests()
    );
    println!(
        "obs_smoke: crash scenario OK — epoch {}, {} spans aborted, auditor clean, {} dumps",
        recovery.max_epoch,
        aborted,
        paths.len()
    );
    println!("  {}", jsonl_path.display());
    println!("  {}", trace_path.display());
    println!("  {}", prom_path.display());
    println!("  {}", flight_dir.display());
}
