//! **Exclusive-lock baseline shoot-out** (extension): the paper's §5
//! argues that among O(log n) token algorithms, *dynamic* trees
//! (Naimi–Trehel, and the paper's protocol) beat Raymond's *static* tree
//! because of path compression. This bench puts all three on the same
//! single-lock exclusive workload:
//!
//! * Naimi–Trehel (dynamic, path reversal),
//! * Raymond (static balanced binary tree),
//! * our protocol restricted to `W` requests (it degenerates to token
//!   passing, showing the hierarchical machinery adds no overhead when
//!   no hierarchy is used).
//!
//! ```text
//! cargo run --release -p hlock-bench --bin baselines [--quick]
//! ```

use hlock_bench::{Harness, ResultTable};
use hlock_core::ProtocolConfig;
use hlock_workload::{ModeMix, ProtocolKind, WorkloadConfig};

fn main() {
    let mut harness = Harness::from_args();
    // Single-lock exclusive workload: every op is a whole-table W.
    harness.workload = WorkloadConfig {
        entries: 1,
        mix: ModeMix { weights: [0, 0, 0, 0, 1] },
        ..harness.workload
    };
    let base = harness.base_latency();
    let kinds = [
        ProtocolKind::NaimiPure,
        ProtocolKind::RaymondPure,
        ProtocolKind::SuzukiPure,
        ProtocolKind::Hierarchical(ProtocolConfig::paper()),
    ];
    let mut msgs = ResultTable::new(
        "Exclusive baselines: messages per request vs nodes",
        "nodes",
        kinds.iter().map(|k| k.label().to_string()).collect(),
    );
    let mut lat = ResultTable::new(
        "Exclusive baselines: latency factor vs nodes",
        "nodes",
        kinds.iter().map(|k| k.label().to_string()).collect(),
    );
    for &nodes in &harness.sweep {
        let mut m_row = Vec::new();
        let mut l_row = Vec::new();
        for &k in &kinds {
            let m = harness.measure(k, nodes);
            m_row.push(m.messages_per_request());
            l_row.push(m.latency_factor(base));
        }
        println!(
            "nodes={nodes:>3}  naimi={:.2} ({:.0}x)  raymond={:.2} ({:.0}x)  suzuki={:.2} ({:.0}x)  ours-W={:.2} ({:.0}x)",
            m_row[0], l_row[0], m_row[1], l_row[1], m_row[2], l_row[2], m_row[3], l_row[3]
        );
        msgs.push_row(nodes, m_row);
        lat.push_row(nodes, l_row);
    }
    println!("\n{}", msgs.render());
    println!("{}", lat.render());
    for (t, n) in [(&msgs, "baselines_msgs"), (&lat, "baselines_latency")] {
        if let Some(p) = t.save_csv(n) {
            println!("csv: {}", p.display());
        }
    }
    println!(
        "\nexpected shape: Suzuki–Kasami broadcasts grow O(n) per request (the paper's\n\
         §2 scalability argument against broadcast protocols); Raymond's static tree\n\
         saves messages via subtree aggregation but pays ~depth hops of latency;\n\
         Naimi's reversal flattens paths; ours restricted to W is token passing."
    );
}
