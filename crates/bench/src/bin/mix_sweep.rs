//! **Mode-mix sensitivity** (extension beyond the paper): how does the
//! advantage of hierarchical locking depend on the read/write balance?
//! Sweeps the fraction of write-like principal modes at a fixed system
//! size and compares our protocol against Naimi pure.
//!
//! Expected: with reads dominating (the paper's regime) ours wins big on
//! latency thanks to concurrent copysets; as writes take over, every
//! protocol degenerates toward serialized token passing and the gap
//! narrows.
//!
//! ```text
//! cargo run --release -p hlock-bench --bin mix_sweep [--quick]
//! ```

use hlock_bench::{Harness, ResultTable};
use hlock_core::ProtocolConfig;
use hlock_workload::{ModeMix, ProtocolKind, WorkloadConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let nodes = if quick { 10 } else { 40 };
    let base_harness = Harness::from_args();
    // (label, write-ish percent, mix): interpolate between the paper's
    // read-heavy mix and a write-storm.
    let mixes: [(u32, ModeMix); 5] = [
        (0, ModeMix { weights: [85, 15, 0, 0, 0] }),
        (6, ModeMix::paper()),
        (25, ModeMix { weights: [55, 20, 5, 15, 5] }),
        (50, ModeMix { weights: [35, 15, 10, 25, 15] }),
        (80, ModeMix { weights: [10, 10, 20, 30, 30] }),
    ];
    let base = base_harness.base_latency();
    let mut table = ResultTable::new(
        format!("Mode-mix sweep at {nodes} nodes: write-ish fraction vs cost"),
        "write%",
        vec![
            "ours msgs/req".into(),
            "pure msgs/req".into(),
            "ours latency x".into(),
            "pure latency x".into(),
        ],
    );
    for (pct, mix) in mixes {
        let harness = Harness {
            workload: WorkloadConfig { mix, ..base_harness.workload },
            ..base_harness.clone()
        };
        let ours = harness.measure(ProtocolKind::Hierarchical(ProtocolConfig::paper()), nodes);
        let pure = harness.measure(ProtocolKind::NaimiPure, nodes);
        println!(
            "write%={pct:>3}  ours: {:.2} msgs/req, {:.1}x   pure: {:.2} msgs/req, {:.1}x",
            ours.messages_per_request(),
            ours.latency_factor(base),
            pure.messages_per_request(),
            pure.latency_factor(base),
        );
        table.push_row(
            pct as usize,
            vec![
                ours.messages_per_request(),
                pure.messages_per_request(),
                ours.latency_factor(base),
                pure.latency_factor(base),
            ],
        );
    }
    println!("\n{}", table.render());
    if let Some(p) = table.save_csv("mix_sweep") {
        println!("csv: {}", p.display());
    }
}
