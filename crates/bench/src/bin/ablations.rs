//! **Ablation study** (extension beyond the paper): measures the
//! contribution of each design ingredient called out in DESIGN.md by
//! switching them off one at a time:
//!
//! * request absorption into local queues (Rule 4),
//! * release suppression (Rule 5.2),
//! * mode freezing / FIFO fairness (Rule 6),
//! * Naimi-style path compression for inactive forwarders.
//!
//! Reported per variant: messages per request, latency factor, and the
//! worst-case (max) request latency — the fairness ablation shows up in
//! the tail, not the mean.
//!
//! ```text
//! cargo run --release -p hlock-bench --bin ablations [--quick]
//! ```

use hlock_bench::{Harness, ResultTable};
use hlock_core::ProtocolConfig;
use hlock_workload::ProtocolKind;

fn main() {
    let mut harness = Harness::from_args();
    // Ablations are about relative deltas; a mid-size system suffices.
    if !std::env::args().any(|a| a == "--quick") {
        harness.sweep = vec![10, 40];
    }
    let variants: [(&str, ProtocolConfig); 5] = [
        ("paper (all on)", ProtocolConfig::paper()),
        ("no absorption", ProtocolConfig::paper().without_absorption()),
        ("no release suppression", ProtocolConfig::paper().without_release_suppression()),
        ("no freezing", ProtocolConfig::paper().without_freezing()),
        ("no path compression", ProtocolConfig::paper().without_path_compression()),
    ];
    let base = harness.base_latency();

    let mut msgs = ResultTable::new(
        "Ablations: messages per request",
        "nodes",
        variants.iter().map(|(n, _)| n.to_string()).collect(),
    );
    let mut lat = ResultTable::new(
        "Ablations: mean latency factor",
        "nodes",
        variants.iter().map(|(n, _)| n.to_string()).collect(),
    );
    let mut tail = ResultTable::new(
        "Ablations: max latency factor (fairness tail)",
        "nodes",
        variants.iter().map(|(n, _)| n.to_string()).collect(),
    );
    for &nodes in &harness.sweep {
        let mut m_row = Vec::new();
        let mut l_row = Vec::new();
        let mut t_row = Vec::new();
        for (name, cfg) in variants {
            let m = harness.measure(ProtocolKind::Hierarchical(cfg), nodes);
            println!(
                "nodes={nodes:>3} {name:<24} msgs/req={:.2} latency={:.1}x p99={:.1}x max={:.1}x",
                m.messages_per_request(),
                m.latency_factor(base),
                m.latency_percentile(0.99).as_millis_f64() / base.as_millis_f64(),
                m.max_latency().as_millis_f64() / base.as_millis_f64(),
            );
            m_row.push(m.messages_per_request());
            l_row.push(m.latency_factor(base));
            t_row.push(m.max_latency().as_millis_f64() / base.as_millis_f64());
        }
        msgs.push_row(nodes, m_row);
        lat.push_row(nodes, l_row);
        tail.push_row(nodes, t_row);
    }
    // Token-home placement (a workload-level extension knob).
    println!();
    for &nodes in &harness.sweep {
        for (name, spread) in [("homes at node 0", false), ("homes spread", true)] {
            let mut h = harness.clone();
            h.workload.spread_token_homes = spread;
            let m = h.measure(ProtocolKind::Hierarchical(ProtocolConfig::paper()), nodes);
            let hot = m.hottest_node().map(|(n, c)| format!("{n} sent {c}")).unwrap_or_default();
            println!(
                "nodes={nodes:>3} {name:<24} msgs/req={:.2} latency={:.1}x imbalance={:.1} ({hot})",
                m.messages_per_request(),
                m.latency_factor(base),
                m.load_imbalance(),
            );
        }
    }

    println!("\n{}", msgs.render());
    println!("{}", lat.render());
    println!("{}", tail.render());
    for (t, n) in [(&msgs, "ablation_msgs"), (&lat, "ablation_latency"), (&tail, "ablation_tail")] {
        if let Some(p) = t.save_csv(n) {
            println!("csv: {}", p.display());
        }
    }
}
