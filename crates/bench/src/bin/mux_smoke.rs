//! **Mux connection-scaling smoke test**: spawns a 1k+ node hierarchical
//! cluster over loopback on the readiness-driven mux transport and runs
//! a pipelined acquire/release sweep with one distinct lock per node —
//! the thousands-of-links regime the thread-per-peer transport could
//! never reach (it would need ~2 threads per link; the mux multiplexes
//! every link over a fixed worker pool). Exits non-zero on any failure
//! so CI can gate on it.
//!
//! The process raises its own `RLIMIT_NOFILE` soft limit first (a
//! 1k-node mesh holds several thousand sockets at once) and reports the
//! limit it ran under, so a CI box with a stingy hard limit fails loudly
//! instead of wedging in `EMFILE` retries.
//!
//! ```text
//! cargo run --release -p hlock-bench --bin mux_smoke [nodes]
//! ```

use hlock_core::{LockId, Mode, ProtocolConfig};
use hlock_net::Cluster;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(120);

fn fail(msg: &str) -> ! {
    eprintln!("mux_smoke: FAIL: {msg}");
    std::process::exit(1);
}

#[cfg(unix)]
mod fdlimit {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }

    const RLIMIT_NOFILE: i32 = 7;

    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }

    /// Raises the soft fd limit to at least `want` (capped at the hard
    /// limit) and returns the resulting (soft, hard) pair.
    pub fn raise_nofile(want: u64) -> (u64, u64) {
        let mut lim = RLimit { cur: 0, max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return (0, 0);
        }
        if lim.cur < want {
            let raised = RLimit { cur: want.min(lim.max), max: lim.max };
            if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
                lim.cur = raised.cur;
            }
        }
        (lim.cur, lim.max)
    }
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(1024);

    // Budget: every node listens, and each active pair holds two sockets
    // at each end; leave generous slack for epoll/waker/stdio fds.
    let want_fds = (n as u64) * 6 + 256;
    #[cfg(unix)]
    {
        let (soft, hard) = fdlimit::raise_nofile(want_fds);
        println!("mux_smoke: fd limit soft={soft} hard={hard} (want {want_fds})");
        if soft < want_fds {
            fail(&format!("RLIMIT_NOFILE soft limit {soft} < required {want_fds}"));
        }
    }

    let spawn_start = Instant::now();
    let cluster = match Cluster::spawn_hierarchical(n, n, ProtocolConfig::default()) {
        Ok(c) => c,
        Err(e) => fail(&format!("spawn of {n} nodes failed: {e}")),
    };
    let spawn_elapsed = spawn_start.elapsed();

    // Pipelined sweep: every node requests its own lock (all tokens
    // homed at node 0), so node 0's event loop serves ~n links at once;
    // then all grants are awaited and released.
    let sweep_start = Instant::now();
    let mut tickets = Vec::with_capacity(n);
    for i in 1..n {
        match cluster.node(i).request(LockId(i as u32), Mode::Write) {
            Ok(t) => tickets.push((i, t)),
            Err(e) => fail(&format!("request from node {i} failed: {e}")),
        }
    }
    for &(i, t) in &tickets {
        if let Err(e) = cluster.node(i).wait(t, TIMEOUT) {
            fail(&format!("grant for node {i} never arrived: {e}"));
        }
    }
    for &(i, t) in &tickets {
        if let Err(e) = cluster.node(i).release(LockId(i as u32), t) {
            fail(&format!("release from node {i} failed: {e}"));
        }
    }
    let sweep_elapsed = sweep_start.elapsed();

    // A second, re-contending round proves the links stay healthy after
    // the first storm (tokens now live at the requesting nodes).
    for i in (1..n).step_by(7) {
        let t = match cluster.node(0).acquire(LockId(i as u32), Mode::Write, TIMEOUT) {
            Ok(t) => t,
            Err(e) => fail(&format!("re-acquire of lock {i} from node 0 failed: {e}")),
        };
        if let Err(e) = cluster.node(0).release(LockId(i as u32), t) {
            fail(&format!("re-release of lock {i} failed: {e}"));
        }
    }

    let messages: u64 = cluster.message_stats().values().sum();
    let bytes = cluster.bytes_sent();
    if messages == 0 {
        fail("no messages crossed the wire");
    }
    cluster.shutdown();

    println!(
        "mux_smoke: OK — {} nodes, {} grants, {messages} messages, {bytes} wire bytes; \
         spawn {:.2}s, pipelined sweep {:.2}s",
        n,
        n - 1,
        spawn_elapsed.as_secs_f64(),
        sweep_elapsed.as_secs_f64(),
    );
}
