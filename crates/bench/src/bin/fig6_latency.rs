//! **Figure 6 — Request Latency**: average request-to-grant latency as a
//! multiple of the mean point-to-point network latency (150 ms), vs the
//! number of nodes.
//!
//! Paper shape: our protocol grows linearly (≈90× at 120 nodes); Naimi
//! same-work grows superlinearly (≈160× at 120 nodes); Naimi pure is
//! linear with a higher constant than ours.
//!
//! ```text
//! cargo run --release -p hlock-bench --bin fig6_latency [--quick]
//! ```

use hlock_bench::{Harness, ResultTable};
use hlock_core::ProtocolConfig;
use hlock_workload::ProtocolKind;

fn main() {
    let harness = Harness::from_args();
    let base = harness.base_latency();
    let kinds = [
        ProtocolKind::NaimiSameWork,
        ProtocolKind::NaimiPure,
        ProtocolKind::Hierarchical(ProtocolConfig::paper()),
    ];
    let mut table = ResultTable::new(
        format!(
            "Figure 6: request latency (as a factor of the {base} point-to-point latency) vs nodes"
        ),
        "nodes",
        kinds.iter().map(|k| k.label().to_string()).collect(),
    );
    for &nodes in &harness.sweep {
        let row: Vec<f64> =
            kinds.iter().map(|&k| harness.measure(k, nodes).latency_factor(base)).collect();
        println!(
            "nodes={nodes:>3}  same-work={:.1}x  pure={:.1}x  ours={:.1}x",
            row[0], row[1], row[2]
        );
        table.push_row(nodes, row);
    }
    println!("\n{}", table.render());
    if let Some(p) = table.save_csv("fig6_latency") {
        println!("csv: {}", p.display());
    }
    if let (Some(ours), Some(same)) = (table.last(2), table.last(0)) {
        println!(
            "\npaper claim at 120 nodes: ours ≈ 90× vs Naimi same-work ≈ 160×; \
             measured: ours = {ours:.0}×, same-work = {same:.0}×"
        );
    }
}
