//! **Figure 5 — Scalability Behavior**: average number of messages per
//! lock request as the number of nodes grows, for our protocol, Naimi
//! doing the same work, and Naimi pure.
//!
//! Paper shape: our protocol rises to a flat asymptote of ≈3 messages;
//! Naimi pure is slightly above (≈4); Naimi same-work is clearly higher
//! and keeps growing.
//!
//! ```text
//! cargo run --release -p hlock-bench --bin fig5_message_overhead [--quick]
//! ```

use hlock_bench::{Harness, ResultTable};
use hlock_core::{LockId, LockPlan, LockSpace, Mode, NodeId, ProtocolConfig};
use hlock_sim::{Duration, Metrics, Sim, SimConfig};
use hlock_workload::{PlanDriver, ProtocolKind};

/// The batching headline scenario: every node pipelines multi-granularity
/// lock sets (`IR` on the shared table, then `R`/`W` on its own entry)
/// whose token homes coincide, so both requests of a set ride one wire
/// frame. Returns the merged metrics including frame accounting.
fn batched_lockset_metrics(nodes: usize) -> Metrics {
    let table = LockId(0);
    let lock_count = nodes; // table + one entry per non-home node
    let plans: Vec<Vec<LockPlan>> = (0..nodes)
        .map(|i| {
            if i == 0 {
                Vec::new()
            } else {
                let entry = LockId(i as u32);
                vec![
                    LockPlan::for_leaf(&[table], entry, Mode::Read),
                    LockPlan::for_leaf(&[table], entry, Mode::Write),
                ]
            }
        })
        .collect();
    let spaces: Vec<LockSpace> = (0..nodes)
        .map(|i| LockSpace::new(NodeId(i as u32), lock_count, NodeId(0), ProtocolConfig::paper()))
        .collect();
    let driver =
        PlanDriver::new(plans, Duration::from_millis(10), Duration::from_millis(30)).pipelined();
    let cfg = SimConfig { seed: 42, lock_count, check_every: 1, ..SimConfig::default() };
    let report = Sim::new(spaces, driver, cfg)
        .with_frame_sizer(|messages| {
            let mut buf = hlock_wire::BytesMut::new();
            hlock_wire::frame::write_batch(&mut buf, NodeId(0), messages);
            buf.len() as u64
        })
        .run()
        .expect("batched lock-set scenario violated an invariant");
    assert!(report.quiescent);
    report.metrics
}

/// Hand-rolled JSON (no serde in the bench path): frame economy of the
/// batched runtime, written to `target/experiments/<name>.json`.
fn save_batching_json(name: &str, nodes: usize, m: &Metrics) -> Option<std::path::PathBuf> {
    let json = format!(
        "{{\n  \"scenario\": \"pipelined multi-granularity lock sets, shared token home\",\n  \
           \"nodes\": {nodes},\n  \
           \"logical_messages\": {},\n  \
           \"frames\": {},\n  \
           \"coalesce_ratio\": {:.4},\n  \
           \"wire_bytes\": {},\n  \
           \"grants\": {},\n  \
           \"bytes_per_grant\": {:.2}\n}}\n",
        m.total_messages(),
        m.total_frames(),
        m.coalesce_ratio(),
        m.wire_bytes(),
        m.total_grants(),
        m.bytes_per_grant(),
    );
    let dir = std::path::PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, json).ok()?;
    Some(path)
}

fn main() {
    let harness = Harness::from_args();
    let kinds = [
        ProtocolKind::NaimiSameWork,
        ProtocolKind::NaimiPure,
        ProtocolKind::Hierarchical(ProtocolConfig::paper()),
    ];
    let mut table = ResultTable::new(
        "Figure 5: message overhead (messages per lock request) vs number of nodes",
        "nodes",
        kinds.iter().map(|k| k.label().to_string()).collect(),
    );
    let mut per_op = ResultTable::new(
        "Figure 5 (alternate normalization): messages per application operation",
        "nodes",
        kinds.iter().map(|k| k.label().to_string()).collect(),
    );
    for &nodes in &harness.sweep {
        // Same logical operations for all three systems.
        let ops = (nodes as u64 * u64::from(harness.workload.ops_per_node) * harness.seeds) as f64;
        let mut row = Vec::new();
        let mut op_row = Vec::new();
        for &k in &kinds {
            let m = harness.measure(k, nodes);
            row.push(m.messages_per_request());
            op_row.push(m.total_messages() as f64 / ops);
        }
        println!(
            "nodes={nodes:>3}  same-work={:.2}  pure={:.2}  ours={:.2}   (per op: {:.1} / {:.1} / {:.1})",
            row[0], row[1], row[2], op_row[0], op_row[1], op_row[2]
        );
        table.push_row(nodes, row);
        per_op.push_row(nodes, op_row);
    }
    println!("\n{}", table.render());
    println!("{}", per_op.render());
    if let Some(p) = table.save_csv("fig5_message_overhead") {
        println!("csv: {}", p.display());
    }
    if let Some(p) = per_op.save_csv("fig5_per_operation") {
        println!("csv: {}", p.display());
    }
    if let (Some(ours), Some(pure)) = (table.last(2), table.last(1)) {
        println!(
            "\npaper claim at 120 nodes: ours ≈ 3 msgs vs Naimi pure ≈ 4 msgs; \
             measured: ours = {ours:.2}, pure = {pure:.2}"
        );
    }

    // Frame economy of the batched runtime (extension): pipelined
    // hierarchical lock sets over a shared token home must put strictly
    // fewer frames than logical messages on the wire.
    let batch_nodes = *harness.sweep.iter().max().unwrap_or(&8).min(&16);
    let m = batched_lockset_metrics(batch_nodes);
    println!(
        "\nbatched lock sets at {batch_nodes} nodes: {} logical messages in {} frames \
         (coalesce ratio {:.2}), {} wire bytes = {:.1} bytes/grant",
        m.total_messages(),
        m.total_frames(),
        m.coalesce_ratio(),
        m.wire_bytes(),
        m.bytes_per_grant(),
    );
    assert!(
        m.total_frames() < m.total_messages(),
        "coalescing must beat one-frame-per-message: {} frames vs {} messages",
        m.total_frames(),
        m.total_messages()
    );
    if let Some(p) = save_batching_json("fig5_batching", batch_nodes, &m) {
        println!("json: {}", p.display());
    }
}
