//! **Figure 5 — Scalability Behavior**: average number of messages per
//! lock request as the number of nodes grows, for our protocol, Naimi
//! doing the same work, and Naimi pure.
//!
//! Paper shape: our protocol rises to a flat asymptote of ≈3 messages;
//! Naimi pure is slightly above (≈4); Naimi same-work is clearly higher
//! and keeps growing.
//!
//! ```text
//! cargo run --release -p hlock-bench --bin fig5_message_overhead [--quick]
//! ```

use hlock_bench::{Harness, ResultTable};
use hlock_core::ProtocolConfig;
use hlock_workload::ProtocolKind;

fn main() {
    let harness = Harness::from_args();
    let kinds = [
        ProtocolKind::NaimiSameWork,
        ProtocolKind::NaimiPure,
        ProtocolKind::Hierarchical(ProtocolConfig::paper()),
    ];
    let mut table = ResultTable::new(
        "Figure 5: message overhead (messages per lock request) vs number of nodes",
        "nodes",
        kinds.iter().map(|k| k.label().to_string()).collect(),
    );
    let mut per_op = ResultTable::new(
        "Figure 5 (alternate normalization): messages per application operation",
        "nodes",
        kinds.iter().map(|k| k.label().to_string()).collect(),
    );
    for &nodes in &harness.sweep {
        // Same logical operations for all three systems.
        let ops = (nodes as u64 * u64::from(harness.workload.ops_per_node) * harness.seeds) as f64;
        let mut row = Vec::new();
        let mut op_row = Vec::new();
        for &k in &kinds {
            let m = harness.measure(k, nodes);
            row.push(m.messages_per_request());
            op_row.push(m.total_messages() as f64 / ops);
        }
        println!(
            "nodes={nodes:>3}  same-work={:.2}  pure={:.2}  ours={:.2}   (per op: {:.1} / {:.1} / {:.1})",
            row[0], row[1], row[2], op_row[0], op_row[1], op_row[2]
        );
        table.push_row(nodes, row);
        per_op.push_row(nodes, op_row);
    }
    println!("\n{}", table.render());
    println!("{}", per_op.render());
    if let Some(p) = table.save_csv("fig5_message_overhead") {
        println!("csv: {}", p.display());
    }
    if let Some(p) = per_op.save_csv("fig5_per_operation") {
        println!("csv: {}", p.display());
    }
    if let (Some(ours), Some(pure)) = (table.last(2), table.last(1)) {
        println!(
            "\npaper claim at 120 nodes: ours ≈ 3 msgs vs Naimi pure ≈ 4 msgs; \
             measured: ours = {ours:.2}, pure = {pure:.2}"
        );
    }
}
