//! **Sharded-runtime performance baseline**: a fixed-seed
//! throughput/latency matrix over the real TCP transport, written to
//! `BENCH_perf.json` for the CI perf gate (`scripts/perf_gate.py`).
//!
//! The matrix crosses shard counts (1, 2, 4, 8) with three operation
//! mixes on [`hlock_net::ShardedCluster`]:
//!
//! * `read_heavy` — 90% `R` / 10% `W` over 64 entry locks,
//! * `write_heavy` — 30% `R` / 70% `W` over 64 entry locks,
//! * `hierarchical` — the paper's lock-set pattern: `IR`/`IW` on the
//!   whole-table lock, then `R`/`W` on one entry,
//!
//! plus two single-lock exclusive baseline rows (Naimi–Trehel and
//! Raymond on the unsharded [`hlock_net::Cluster`]) so shard scaling can
//! be read against the classic token algorithms.
//!
//! Every run uses one fixed seed per (mix, thread) pair, so two
//! invocations on the same machine do the identical operation sequence
//! — the CI gate compares throughput and p99 request-to-grant latency
//! against the committed `BENCH_perf.json`.
//!
//! Alongside the wall-clock matrix, the bin runs the **open-loop
//! scenario library** (`hlock_workload::scenario_presets`): Zipfian hot
//! locks, a flash crowd, multi-tenant namespaces, a filesystem-metadata
//! tree and a deliberately saturated cell, each executed in the
//! deterministic simulator (virtual time, fixed seeds) so the recorded
//! offered/achieved throughput and sojourn tails are bit-identical
//! across machines — which is what lets `scripts/perf_gate.py` hold
//! them to tight per-cell backstops. Each cell's summary and
//! offered-vs-achieved time series land in
//! `target/experiments/scenarios/<name>.jsonl`, and every cell's
//! flight-recorder window is dumped under
//! `target/experiments/scenarios/flight/<name>/` for post-mortems.
//!
//! ```text
//! cargo run --release -p hlock-bench --bin perf_baseline [--quick] [--out PATH]
//!     [--scenarios-only | --no-scenarios] [--scenario SUBSTR]...
//!     [--inject-tail MULT]
//! ```
//!
//! `--scenario` filters the scenario matrix by substring (repeatable);
//! `--inject-tail` multiplies one op-in-256's hold time to fake a tail
//! regression — it exists to prove the perf gate's p99.9 backstop fires.

use hlock_core::{
    ClusterRecorder, LockId, Mode, Observer, ProtocolConfig, DEFAULT_FLIGHT_CAPACITY,
};
use hlock_net::{Cluster, ShardedCluster};
use hlock_workload::{run_observed_scenario, scenario_presets, ScenarioReport};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::path::Path;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Locks per node: the whole-table lock (id 0) plus 63 entry locks.
const LOCKS: usize = 64;
/// Concurrent driver threads, all on node 0 (the token home), so the
/// measured bottleneck is the runtime, not the wire.
const THREADS: usize = 8;
const TIMEOUT: Duration = Duration::from_secs(30);

/// Paper-style xorshift64*: tiny, seedable, good enough to pick lock
/// ids and modes deterministically.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mix {
    ReadHeavy,
    WriteHeavy,
    Hierarchical,
}

impl Mix {
    fn name(self) -> &'static str {
        match self {
            Mix::ReadHeavy => "read_heavy",
            Mix::WriteHeavy => "write_heavy",
            Mix::Hierarchical => "hierarchical",
        }
    }
}

/// Latency percentiles over one run's per-op request-to-grant times.
struct LatencySummary {
    p50: u64,
    p90: u64,
    p99: u64,
    p999: u64,
    mean: f64,
    max: u64,
}

fn summarize(mut samples: Vec<u64>) -> LatencySummary {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    let pct = |p: f64| samples[((samples.len() - 1) as f64 * p) as usize];
    LatencySummary {
        p50: pct(0.50),
        p90: pct(0.90),
        p99: pct(0.99),
        p999: pct(0.999),
        mean: samples.iter().sum::<u64>() as f64 / samples.len() as f64,
        max: *samples.last().unwrap(),
    }
}

/// One row of the matrix.
struct Entry {
    protocol: &'static str,
    shards: usize,
    mix: &'static str,
    ops: u64,
    elapsed_micros: u64,
    throughput: f64,
    latency: LatencySummary,
}

/// Outstanding requests a driver thread keeps in flight. Pipelining
/// decouples driver threads from per-op wakeup latency so the measured
/// bottleneck is the shard workers' dispatch throughput — the thing
/// sharding scales — rather than condvar round trips.
const PIPELINE: usize = 64;

/// Drives `ops_per_thread` operations of `mix` from every thread and
/// returns (total grants, elapsed, per-grant latencies in micros).
///
/// Each thread acquires entry locks only from its own partition
/// (`lock % THREADS == t`), and the shared whole-table lock only in
/// intent modes (which are mutually compatible), so pipelined holds can
/// never form a cross-thread wait cycle: every ticket's blockers are the
/// same thread's earlier tickets, whose releases are already enqueued.
fn drive_sharded(
    cluster: &ShardedCluster,
    mix: Mix,
    ops_per_thread: u64,
) -> (u64, Duration, Vec<u64>) {
    let node = cluster.node(0);
    let started = Instant::now();
    let lat: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                scope.spawn(move || {
                    // Seed fixed per (mix, thread): identical sequences
                    // on every invocation.
                    let mut rng =
                        Rng(0x9E37_79B9 ^ ((t as u64 + 1) << 8) ^ mix.name().len() as u64);
                    let mine: Vec<LockId> = (1..LOCKS as u32)
                        .map(LockId)
                        .filter(|l| l.0 as usize % THREADS == t)
                        .collect();
                    let mut lat = Vec::with_capacity(ops_per_thread as usize);
                    let mut inflight: std::collections::VecDeque<(
                        LockId,
                        hlock_core::Ticket,
                        Instant,
                    )> = std::collections::VecDeque::with_capacity(PIPELINE + 1);
                    let drain_one = |q: &mut std::collections::VecDeque<_>, lat: &mut Vec<u64>| {
                        let (lock, ticket, t0): (LockId, hlock_core::Ticket, Instant) =
                            q.pop_front().unwrap();
                        node.wait(lock, ticket, TIMEOUT).expect("grant");
                        lat.push(t0.elapsed().as_micros() as u64);
                        node.release_async(lock, ticket).expect("release");
                    };
                    for _ in 0..ops_per_thread {
                        match mix {
                            Mix::ReadHeavy | Mix::WriteHeavy => {
                                let lock = mine[rng.below(mine.len() as u64) as usize];
                                let write_pct = if mix == Mix::ReadHeavy { 10 } else { 70 };
                                let mode = if rng.below(100) < write_pct {
                                    Mode::Write
                                } else {
                                    Mode::Read
                                };
                                let t0 = Instant::now();
                                let ticket = node.request(lock, mode).expect("request");
                                inflight.push_back((lock, ticket, t0));
                            }
                            Mix::Hierarchical => {
                                // Table intent lock, then one entry: the
                                // CCS lock-set pattern.
                                let entry = mine[rng.below(mine.len() as u64) as usize];
                                let write = rng.below(100) < 10;
                                let (ti, te) = if write {
                                    (Mode::IntentWrite, Mode::Write)
                                } else {
                                    (Mode::IntentRead, Mode::Read)
                                };
                                let t0 = Instant::now();
                                let table = node.request(LockId(0), ti).expect("table");
                                inflight.push_back((LockId(0), table, t0));
                                let leaf = node.request(entry, te).expect("entry");
                                inflight.push_back((entry, leaf, t0));
                            }
                        }
                        while inflight.len() >= PIPELINE {
                            drain_one(&mut inflight, &mut lat);
                        }
                    }
                    while !inflight.is_empty() {
                        drain_one(&mut inflight, &mut lat);
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("driver thread")).collect()
    });
    let elapsed = started.elapsed();
    let samples: Vec<u64> = lat.into_iter().flatten().collect();
    (samples.len() as u64, elapsed, samples)
}

/// Nodes in the connection-scaling cell: enough that the mux serves
/// hundreds of links from its fixed worker pool, small enough that the
/// cell stays sub-second even on stingy CI runners.
const CONN_NODES: usize = 256;

/// Connection-scaling cell: one grant per node on a `CONN_NODES`-node
/// mux mesh — the `mux_smoke` sweep, measured. Every node dials the
/// token home at once, so the row tracks the event loop's cold-connect
/// and dispatch throughput at mesh scale rather than single-link
/// runtime speed (what the sharded rows measure).
fn drive_conn_scaling() -> (u64, Duration, Vec<u64>) {
    let cluster = Cluster::spawn_hierarchical(CONN_NODES, CONN_NODES, ProtocolConfig::default())
        .expect("spawn mux mesh");
    let started = Instant::now();
    let mut tickets = Vec::with_capacity(CONN_NODES);
    for i in 1..CONN_NODES {
        let t0 = Instant::now();
        let ticket = cluster.node(i).request(LockId(i as u32), Mode::Write).expect("request");
        tickets.push((i, ticket, t0));
    }
    let mut samples = Vec::with_capacity(CONN_NODES);
    for &(i, ticket, t0) in &tickets {
        cluster.node(i).wait(ticket, TIMEOUT).expect("grant");
        samples.push(t0.elapsed().as_micros() as u64);
    }
    for &(i, ticket, _) in &tickets {
        cluster.node(i).release(LockId(i as u32), ticket).expect("release");
    }
    let elapsed = started.elapsed();
    cluster.shutdown();
    (samples.len() as u64, elapsed, samples)
}

/// Exclusive-lock baseline on the unsharded event-loop cluster.
fn drive_baseline<P>(
    node: &hlock_net::NodeHandle<P>,
    ops_per_thread: u64,
) -> (u64, Duration, Vec<u64>)
where
    P: hlock_core::ConcurrencyProtocol + Send + 'static,
    P::Message: hlock_wire::WireCodec + Send + 'static,
{
    let started = Instant::now();
    let lat: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(ops_per_thread as usize);
                    for _ in 0..ops_per_thread {
                        let t0 = Instant::now();
                        let ticket = node.acquire(LockId(0), Mode::Write, TIMEOUT).expect("grant");
                        lat.push(t0.elapsed().as_micros() as u64);
                        node.release(LockId(0), ticket).expect("release");
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("driver thread")).collect()
    });
    let elapsed = started.elapsed();
    let samples: Vec<u64> = lat.into_iter().flatten().collect();
    (samples.len() as u64, elapsed, samples)
}

fn entry(
    protocol: &'static str,
    shards: usize,
    mix: &'static str,
    ops: u64,
    elapsed: Duration,
    samples: Vec<u64>,
) -> Entry {
    let micros = elapsed.as_micros().max(1) as u64;
    Entry {
        protocol,
        shards,
        mix,
        ops,
        elapsed_micros: micros,
        throughput: ops as f64 * 1e6 / micros as f64,
        latency: summarize(samples),
    }
}

/// Runs the open-loop scenario matrix (deterministic simulator cells),
/// writing one JSONL (summary + per-second windows) and one directory
/// of flight-recorder dumps per cell under `target/experiments/`.
fn run_scenarios(quick: bool, filters: &[String], inject_tail: f64) -> Vec<ScenarioReport> {
    let dir = Path::new("target/experiments/scenarios");
    std::fs::create_dir_all(dir).expect("create scenario artifact dir");
    let mut reports = Vec::new();
    for preset in scenario_presets() {
        if !filters.is_empty() && !filters.iter().any(|f| preset.name.contains(f.as_str())) {
            continue;
        }
        let mut scenario = if quick { preset.quick() } else { preset };
        if inject_tail > 1.0 {
            scenario = scenario.with_tail_injection(inject_tail);
        }
        let recorder =
            Rc::new(RefCell::new(ClusterRecorder::new(scenario.nodes, DEFAULT_FLIGHT_CAPACITY)));
        let sink = Rc::clone(&recorder);
        let observer =
            move |at: u64, e: &hlock_core::ProtocolEvent| sink.borrow_mut().on_event(at, e);
        let r = run_observed_scenario(&scenario, Some(Box::new(observer)));
        println!(
            "scenario {:<22} [{:<14}] offered {:>7.0}/s achieved {:>7.0}/s  \
             p50={}us p99={}us p99.9={}us  msgs/grant={:.2}",
            r.name,
            r.protocol,
            r.offered_rate,
            r.achieved_rate,
            r.sojourn_p50,
            r.sojourn_p99,
            r.sojourn_p999,
            r.messages_per_grant
        );

        // Flight window per cell: the artifact CI uploads when the gate
        // trips, so a tail regression arrives with its event history.
        let flight_dir = dir.join("flight").join(&r.name);
        let _ = std::fs::remove_dir_all(&flight_dir);
        recorder.borrow().dump_all(&flight_dir).expect("dump flight windows");

        // Summary line + one line per offered/achieved window.
        let mut jsonl = String::new();
        let _ = writeln!(jsonl, "{}", scenario_json(&r));
        for (i, w) in r.windows.iter().enumerate() {
            let _ = writeln!(
                jsonl,
                "{{\"scenario\": \"{}\", \"window_s\": {}, \"arrivals\": {}, \"completions\": {}}}",
                r.name, i, w.arrivals, w.completions
            );
        }
        std::fs::write(dir.join(format!("{}.jsonl", r.name)), jsonl).expect("write scenario jsonl");
        reports.push(r);
    }
    reports
}

/// One scenario cell as a JSON object (shared by the JSONL artifact and
/// the `scenarios` array of `BENCH_perf.json`).
fn scenario_json(r: &ScenarioReport) -> String {
    format!(
        "{{\"name\": \"{}\", \"protocol\": \"{}\", \"nodes\": {}, \"locks\": {}, \
         \"offered_ops\": {}, \"completed_ops\": {}, \"offered_rate\": {:.1}, \
         \"achieved_rate\": {:.1}, \
         \"sojourn_micros\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}, \
         \"mean\": {:.1}, \"max\": {}}}, \
         \"messages\": {}, \"grants\": {}, \"messages_per_grant\": {:.3}, \
         \"messages_per_op\": {:.3}, \"max_in_flight\": {}, \"end_time_micros\": {}}}",
        r.name,
        r.protocol,
        r.nodes,
        r.locks,
        r.offered_ops,
        r.completed_ops,
        r.offered_rate,
        r.achieved_rate,
        r.sojourn_p50,
        r.sojourn_p90,
        r.sojourn_p99,
        r.sojourn_p999,
        r.sojourn_mean,
        r.sojourn_max,
        r.messages,
        r.grants,
        r.messages_per_grant,
        r.messages_per_op,
        r.max_in_flight,
        r.end_time_micros
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scenarios_only = args.iter().any(|a| a == "--scenarios-only");
    let no_scenarios = args.iter().any(|a| a == "--no-scenarios");
    if scenarios_only && no_scenarios {
        eprintln!("--scenarios-only and --no-scenarios are mutually exclusive");
        std::process::exit(2);
    }
    let scenario_filters: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| a.as_str() == "--scenario")
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect();
    let inject_tail: f64 = args
        .iter()
        .position(|a| a == "--inject-tail")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--inject-tail takes a multiplier >= 1"))
        .unwrap_or(1.0);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_perf.json".to_string());
    let ops_per_thread: u64 = if quick { 500 } else { 10_000 };

    let scenarios = if no_scenarios {
        Vec::new()
    } else {
        run_scenarios(quick, &scenario_filters, inject_tail)
    };
    if scenarios_only {
        write_json(&out_path, quick, ops_per_thread, &[], &scenarios);
        println!("wrote {out_path}");
        return;
    }

    // Scheduling noise dominates tail latency on short runs; keep the
    // best-throughput repetition of each cell (standard
    // best-of-N benchmarking) so the committed baseline and the CI rerun
    // both sit near the machine's actual capability.
    let reps = if quick { 1 } else { 3 };
    let mut entries: Vec<Entry> = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        for mix in [Mix::ReadHeavy, Mix::WriteHeavy, Mix::Hierarchical] {
            let mut best: Option<(u64, Duration, Vec<u64>)> = None;
            for _ in 0..reps {
                let cluster =
                    ShardedCluster::spawn_hierarchical(2, LOCKS, shards, ProtocolConfig::default())
                        .expect("spawn sharded cluster");
                let run = drive_sharded(&cluster, mix, ops_per_thread);
                cluster.shutdown();
                let faster = best.as_ref().is_none_or(|(_, e, _)| run.1 < *e);
                if faster {
                    best = Some(run);
                }
            }
            let (ops, elapsed, samples) = best.expect("at least one rep");
            let e = entry("sharded-hierarchical", shards, mix.name(), ops, elapsed, samples);
            println!(
                "{:<22} shards={} mix={:<12} {:>9.0} ops/s  p50={}us p99={}us p99.9={}us",
                e.protocol,
                e.shards,
                e.mix,
                e.throughput,
                e.latency.p50,
                e.latency.p99,
                e.latency.p999
            );
            entries.push(e);
        }
    }

    // Connection-scaling cell on the mux transport: spawn cost is part
    // of what the cell guards (cold dials ride the measured path), so
    // the whole spawn-sweep-shutdown cycle repeats per rep.
    {
        let mut best: Option<(u64, Duration, Vec<u64>)> = None;
        for _ in 0..reps {
            let run = drive_conn_scaling();
            if best.as_ref().is_none_or(|(_, e, _)| run.1 < *e) {
                best = Some(run);
            }
        }
        let (ops, elapsed, samples) = best.expect("at least one rep");
        let e = entry("mux-hierarchical", 1, "conn_scaling_256", ops, elapsed, samples);
        println!(
            "{:<22} shards={} mix={:<12} {:>9.0} ops/s  p50={}us p99={}us p99.9={}us",
            e.protocol, e.shards, e.mix, e.throughput, e.latency.p50, e.latency.p99, e.latency.p999
        );
        entries.push(e);
    }

    // Exclusive single-lock baselines for scale reference (same best-of-N
    // policy: these calibration rows must not be noisier than the rows
    // they contextualize).
    {
        let mut best: Option<(u64, Duration, Vec<u64>)> = None;
        for _ in 0..reps {
            let cluster = Cluster::spawn_naimi(2, 1).expect("spawn naimi");
            let run = drive_baseline(cluster.node(0), ops_per_thread);
            cluster.shutdown();
            if best.as_ref().is_none_or(|(_, e, _)| run.1 < *e) {
                best = Some(run);
            }
        }
        let (ops, elapsed, samples) = best.expect("at least one rep");
        let e = entry("naimi", 1, "write_only", ops, elapsed, samples);
        println!(
            "{:<22} shards={} mix={:<12} {:>9.0} ops/s  p50={}us p99={}us p99.9={}us",
            e.protocol, e.shards, e.mix, e.throughput, e.latency.p50, e.latency.p99, e.latency.p999
        );
        entries.push(e);
    }
    {
        let mut best: Option<(u64, Duration, Vec<u64>)> = None;
        for _ in 0..reps {
            let cluster = Cluster::spawn_raymond(2, 1).expect("spawn raymond");
            let run = drive_baseline(cluster.node(0), ops_per_thread);
            cluster.shutdown();
            if best.as_ref().is_none_or(|(_, e, _)| run.1 < *e) {
                best = Some(run);
            }
        }
        let (ops, elapsed, samples) = best.expect("at least one rep");
        let e = entry("raymond", 1, "write_only", ops, elapsed, samples);
        println!(
            "{:<22} shards={} mix={:<12} {:>9.0} ops/s  p50={}us p99={}us p99.9={}us",
            e.protocol, e.shards, e.mix, e.throughput, e.latency.p50, e.latency.p99, e.latency.p999
        );
        entries.push(e);
    }

    // Flight-recorder-enabled cell: the same exclusive write loop with
    // the per-node ring recorder, HLC wire stamping, and the online
    // invariant auditor all live. Its row sits next to the unrecorded
    // baselines so the "observability on" tax stays visible (and gated
    // against collapse) rather than assumed negligible.
    {
        let mut best: Option<(u64, Duration, Vec<u64>)> = None;
        for _ in 0..reps {
            let (cluster, flight) = Cluster::spawn_recorded(
                2,
                |i| {
                    hlock_core::LockSpace::new(
                        hlock_core::NodeId(i as u32),
                        LOCKS,
                        hlock_core::NodeId(0),
                        ProtocolConfig::default(),
                    )
                },
                None,
                |_| None,
            )
            .expect("spawn recorded cluster");
            let run = drive_baseline(cluster.node(0), ops_per_thread);
            assert!(
                flight.auditor().is_clean(),
                "auditor flagged the clean benchmark: {:?}",
                flight.auditor().findings()
            );
            cluster.shutdown();
            if best.as_ref().is_none_or(|(_, e, _)| run.1 < *e) {
                best = Some(run);
            }
        }
        let (ops, elapsed, samples) = best.expect("at least one rep");
        let e = entry("mux-hierarchical-flight", 1, "write_only", ops, elapsed, samples);
        println!(
            "{:<22} shards={} mix={:<12} {:>9.0} ops/s  p50={}us p99={}us p99.9={}us",
            e.protocol, e.shards, e.mix, e.throughput, e.latency.p50, e.latency.p99, e.latency.p999
        );
        entries.push(e);
    }

    let tput = |shards: usize, mix: &str| {
        entries
            .iter()
            .find(|e| e.protocol == "sharded-hierarchical" && e.shards == shards && e.mix == mix)
            .map(|e| e.throughput)
            .unwrap_or(0.0)
    };
    let speedup = tput(4, "read_heavy") / tput(1, "read_heavy").max(1e-9);
    println!("speedup read_heavy 4 shards vs 1: {speedup:.2}x");

    write_json(&out_path, quick, ops_per_thread, &entries, &scenarios);
    println!("wrote {out_path}");
}

/// Hand-rolled JSON, matching the repo's no-serde-for-artifacts
/// convention: the v2 schema is documented in docs/PERFORMANCE.md.
/// Sections the invocation skipped stay empty arrays, and derived
/// metrics are emitted only when their inputs ran — the gate scopes its
/// checks to the populated sections via `--cells`.
fn write_json(
    out_path: &str,
    quick: bool,
    ops_per_thread: u64,
    entries: &[Entry],
    scenarios: &[ScenarioReport],
) {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"hlock-perf-baseline/v2\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"nodes\": 2,");
    let _ = writeln!(json, "  \"locks\": {LOCKS},");
    let _ = writeln!(json, "  \"threads\": {THREADS},");
    let _ = writeln!(json, "  \"ops_per_thread\": {ops_per_thread},");
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"protocol\": \"{}\", \"shards\": {}, \"mix\": \"{}\", \"ops\": {}, \
             \"elapsed_micros\": {}, \"throughput_ops_per_sec\": {:.1}, \
             \"latency_micros\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}, \
             \"mean\": {:.1}, \"max\": {}}}}}{}",
            e.protocol,
            e.shards,
            e.mix,
            e.ops,
            e.elapsed_micros,
            e.throughput,
            e.latency.p50,
            e.latency.p90,
            e.latency.p99,
            e.latency.p999,
            e.latency.mean,
            e.latency.max,
            comma
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"scenarios\": [\n");
    for (i, r) in scenarios.iter().enumerate() {
        let comma = if i + 1 < scenarios.len() { "," } else { "" };
        let _ = writeln!(json, "    {}{}", scenario_json(r), comma);
    }
    json.push_str("  ],\n");

    let mut derived: Vec<String> = Vec::new();
    if !entries.is_empty() {
        let tput = |shards: usize, mix: &str| {
            entries
                .iter()
                .find(|e| {
                    e.protocol == "sharded-hierarchical" && e.shards == shards && e.mix == mix
                })
                .map(|e| e.throughput)
                .unwrap_or(0.0)
        };
        let speedup = tput(4, "read_heavy") / tput(1, "read_heavy").max(1e-9);
        derived.push(format!("\"speedup_read_heavy_4_shards\": {speedup:.3}"));
    }
    let cell = |name: &str| scenarios.iter().find(|r| r.name == name);
    if let (Some(hier), Some(flat)) = (cell("zipf_read_heavy"), cell("zipf_read_heavy_flat")) {
        // The paper's headline: intention modes + release suppression
        // make the hierarchical protocol cheaper per grant than the
        // flat exclusive baseline doing the identical offered work.
        let ratio = flat.messages_per_grant / hier.messages_per_grant.max(1e-9);
        derived.push(format!("\"zipf_flat_over_hier_messages_per_grant\": {ratio:.3}"));
    }
    if let Some(sat) = cell("saturation") {
        // < 1.0 is the saturation knee: the open-loop driver kept
        // offering load the cell could not serve.
        let knee = sat.achieved_rate / sat.offered_rate.max(1e-9);
        derived.push(format!("\"saturation_achieved_over_offered\": {knee:.3}"));
    }
    let _ = writeln!(json, "  \"derived\": {{{}}}", derived.join(", "));
    json.push_str("}\n");
    std::fs::write(out_path, json).expect("write BENCH_perf.json");
}
