//! **Figure 7 — Message Behavior**: the per-kind breakdown of our
//! protocol's message overhead (messages of each kind per lock request)
//! vs the number of nodes.
//!
//! Paper shape: *request* messages rise quickly then flatten; *transfer
//! token* messages dip then flatten; *grant* (copy) and *release*
//! messages rise and stabilize; *freeze* messages rise and stay roughly
//! constant (at most five modes can ever be frozen).
//!
//! ```text
//! cargo run --release -p hlock-bench --bin fig7_breakdown [--quick]
//! ```

use hlock_bench::{Harness, ResultTable};
use hlock_core::{MessageKind, ProtocolConfig};
use hlock_workload::ProtocolKind;

fn main() {
    let harness = Harness::from_args();
    // Freeze and update messages are both fairness traffic; the paper
    // plots them as one "freeze" series.
    let series: [(&str, &[MessageKind]); 5] = [
        ("request", &[MessageKind::Request]),
        ("grant-copy", &[MessageKind::Grant]),
        ("transfer-token", &[MessageKind::Token]),
        ("release", &[MessageKind::Release]),
        ("freeze+update", &[MessageKind::Freeze, MessageKind::Update]),
    ];
    let mut table = ResultTable::new(
        "Figure 7: message overhead by kind (messages per request), our protocol",
        "nodes",
        series.iter().map(|(n, _)| n.to_string()).collect(),
    );
    for &nodes in &harness.sweep {
        let m = harness.measure(ProtocolKind::Hierarchical(ProtocolConfig::paper()), nodes);
        let row: Vec<f64> = series
            .iter()
            .map(|(_, kinds)| kinds.iter().map(|&k| m.messages_per_request_of_kind(k)).sum())
            .collect();
        println!(
            "nodes={nodes:>3}  req={:.2} grant={:.2} token={:.2} release={:.2} freeze={:.2}  (total {:.2})",
            row[0], row[1], row[2], row[3], row[4],
            m.messages_per_request(),
        );
        table.push_row(nodes, row);
    }
    println!("\n{}", table.render());
    if let Some(p) = table.save_csv("fig7_breakdown") {
        println!("csv: {}", p.display());
    }
}
