//! **Headline-claims check** (§4/§6 of the paper): runs the largest
//! configuration (120 nodes) once for each system and prints the paper's
//! summary numbers next to the measured ones:
//!
//! * message overhead at 120 nodes: ours ≈ 3 vs Naimi pure ≈ 4 (ours
//!   ~20 % below the baseline despite doing more);
//! * response time at 120 nodes: ours ≈ 90× vs Naimi same-work ≈ 160×
//!   the point-to-point latency;
//! * message overhead reaches a flat (logarithmic) asymptote.
//!
//! ```text
//! cargo run --release -p hlock-bench --bin summary [--quick]
//! ```

use hlock_bench::Harness;
use hlock_core::ProtocolConfig;
use hlock_workload::ProtocolKind;

fn main() {
    let harness = Harness::from_args();
    let nodes = *harness.sweep.last().expect("sweep nonempty");
    let mid = harness.sweep[harness.sweep.len() / 2];
    let base = harness.base_latency();

    let ours_big = harness.measure(ProtocolKind::Hierarchical(ProtocolConfig::paper()), nodes);
    let ours_mid = harness.measure(ProtocolKind::Hierarchical(ProtocolConfig::paper()), mid);
    let pure_big = harness.measure(ProtocolKind::NaimiPure, nodes);
    let same_big = harness.measure(ProtocolKind::NaimiSameWork, nodes);

    println!("=== headline claims at {nodes} nodes (paper: 120) ===\n");
    println!(
        "message overhead : ours {:.2} vs Naimi pure {:.2} msgs/request   (paper: 3 vs 4)",
        ours_big.messages_per_request(),
        pure_big.messages_per_request()
    );
    println!(
        "response time    : ours {:.0}x vs Naimi same-work {:.0}x base latency (paper: 90 vs 160)",
        ours_big.latency_factor(base),
        same_big.latency_factor(base)
    );
    let growth = ours_big.messages_per_request() / ours_mid.messages_per_request().max(1e-9);
    println!(
        "asymptote        : ours msgs/request grows {:.0}% from {mid} to {nodes} nodes \
         (paper: flat after the initial rise)",
        (growth - 1.0) * 100.0
    );
    println!(
        "functionality    : ours grants {} requests with hierarchical modes; \
         the pure baseline serializes everything through one exclusive lock",
        ours_big.total_grants()
    );
    if let Some((hot, count)) = ours_big.hottest_node() {
        println!(
            "load             : busiest node {hot} sent {count} of {} messages \
             (imbalance {:.1}x the mean — the token home is the natural hotspot)",
            ours_big.total_messages(),
            ours_big.load_imbalance()
        );
    }
    println!("\nper-mode mean latency (ours, {nodes} nodes):");
    for (mode, latency, count) in ours_big.latency_by_mode() {
        println!("  {mode:>3}: {:>8.1} ms ({count} grants)", latency.as_millis_f64());
    }
}
