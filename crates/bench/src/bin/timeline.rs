//! **Causal cluster timeline**: merges per-node flight-recorder dumps
//! (`flight-node-*.jsonl`) into one HLC-ordered cluster timeline and
//! renders it through the Chrome-trace sink, so a crash or an audit
//! violation can be inspected as a single cross-node trace in
//! `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! Each request span additionally gets a **latency waterfall**: the
//! segments between its consecutive events (issue → queue wait →
//! forward hops → token transfer/retransmit → grant) become duration
//! slices on a dedicated waterfall process, and the per-phase totals
//! are summarised on stdout.
//!
//! ```text
//! timeline [<dump-dir>] [<out-trace.json>]
//! ```
//!
//! Defaults: `target/experiments/flight` → `target/experiments/timeline_trace.json`.
//! Exits non-zero if the directory has no parseable dumps, so CI can
//! gate on artifact integrity.

use hlock_core::ChromeTraceObserver;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One parsed flight-recorder line, ready to merge.
struct Entry {
    hlc: u64,
    node: u64,
    event: String,
    /// `origin << 32 | ticket` when the event is request-scoped.
    span: Option<u64>,
    /// The original JSONL line, embedded verbatim in trace args.
    raw: String,
}

fn fail(msg: &str) -> ! {
    eprintln!("timeline: FAIL: {msg}");
    std::process::exit(1);
}

/// Extracts the value of `"key":` from one flat JSON object as a raw
/// token (number, `null`, or quoted string *contents*). Flight lines
/// are flat objects produced by `ProtocolEvent::write_json`, so keys
/// never nest and never appear inside other values' strings escaped as
/// `"key":` — a scan is sufficient and avoids a JSON dependency.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(inner) = rest.strip_prefix('"') {
        // String value: scan to the closing unescaped quote.
        let mut escape = false;
        for (i, c) in inner.char_indices() {
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                return Some(&inner[..i]);
            }
        }
        None
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    field(line, key)?.parse().ok()
}

fn parse_line(line: &str) -> Option<Entry> {
    let hlc = field_u64(line, "hlc")?;
    let node = field_u64(line, "node")?;
    let event = field(line, "event")?.to_string();
    let span = match (field_u64(line, "span_origin"), field_u64(line, "span_ticket")) {
        (Some(o), Some(t)) => Some((o << 32) | (t & 0xffff_ffff)),
        _ => None,
    };
    Some(Entry { hlc, node, event, span, raw: line.to_string() })
}

fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn main() {
    let mut args = std::env::args().skip(1);
    let dir = PathBuf::from(args.next().unwrap_or_else(|| "target/experiments/flight".into()));
    let out_path = PathBuf::from(
        args.next().unwrap_or_else(|| "target/experiments/timeline_trace.json".into()),
    );

    let mut entries = Vec::new();
    let mut files = 0usize;
    let read_dir = match std::fs::read_dir(&dir) {
        Ok(d) => d,
        Err(e) => fail(&format!("cannot read {}: {e}", dir.display())),
    };
    let mut paths: Vec<PathBuf> = read_dir
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flight-") && n.ends_with(".jsonl"))
        })
        .collect();
    paths.sort();
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => fail(&format!("cannot read {}: {e}", path.display())),
        };
        files += 1;
        for (i, line) in text.lines().enumerate() {
            match parse_line(line) {
                Some(e) => entries.push(e),
                None => fail(&format!("{}:{}: unparseable line: {line}", path.display(), i + 1)),
            }
        }
    }
    if files == 0 {
        fail(&format!("no flight-*.jsonl dumps under {}", dir.display()));
    }
    if entries.is_empty() {
        fail("dumps contain no events");
    }

    // The merge: HLC stamps are causally consistent across nodes (the
    // transport carries them on every frame), so one stable sort by
    // (hlc, node) yields a cluster order where every delivery follows
    // its send. `node` breaks exact ties deterministically.
    entries.sort_by_key(|e| (e.hlc, e.node));

    let mut trace = ChromeTraceObserver::new();
    let mut nodes: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    // span id → ordered (hlc, event name, node) milestones.
    let mut spans: BTreeMap<u64, Vec<(u64, String, u64)>> = BTreeMap::new();
    for e in &entries {
        nodes.insert(e.node);
        let ts = e.hlc >> 16;
        if let Some(span) = e.span {
            let ph = match e.event.as_str() {
                "request_issued" => Some("b"),
                "granted" | "request_cancelled" | "request_aborted" => Some("e"),
                _ => None,
            };
            if let Some(ph) = ph {
                trace.push_entry(format!(
                    "{{\"ph\":\"{ph}\",\"cat\":\"request\",\"name\":\"request\",\
                     \"id\":\"0x{span:x}\",\"pid\":1,\"tid\":{},\"ts\":{ts}}}",
                    e.node
                ));
            }
            spans.entry(span).or_default().push((e.hlc, e.event.clone(), e.node));
        }
        let mut inst = format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{}\",\"pid\":1,\"tid\":{},\
             \"ts\":{ts},\"args\":{{\"json\":",
            e.event, e.node
        );
        json_str(&mut inst, &e.raw);
        inst.push_str("}}");
        trace.push_entry(inst);
    }

    // Per-span latency waterfall: each segment between consecutive span
    // milestones becomes one complete ("X") slice on the waterfall
    // process (pid 2), tracked per origin node. Phase totals aggregate
    // across spans so the dominant cost (queue wait vs forward hops vs
    // token transfer) is visible at a glance.
    let mut phase_totals: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new(); // (count, sum, max)
    let mut closed = 0usize;
    let mut open = 0usize;
    for (&span, milestones) in &spans {
        let origin = span >> 32;
        // Terminal anywhere, not just last: a remote copy grant can
        // race past the origin's abort in HLC order (the home does not
        // yet know the origin died), and the span is still closed.
        let done = milestones
            .iter()
            .any(|(_, ev, _)| matches!(ev.as_str(), "granted" | "request_cancelled" | "request_aborted"));
        if done {
            closed += 1;
        } else {
            open += 1;
        }
        for pair in milestones.windows(2) {
            let (from_hlc, from_ev, _) = &pair[0];
            let (to_hlc, to_ev, _) = &pair[1];
            let ts = from_hlc >> 16;
            let dur = (to_hlc >> 16).saturating_sub(ts);
            let phase = format!("{from_ev}\u{2192}{to_ev}");
            trace.push_entry(format!(
                "{{\"ph\":\"X\",\"cat\":\"waterfall\",\"name\":\"{phase}\",\
                 \"pid\":2,\"tid\":{origin},\"ts\":{ts},\"dur\":{dur},\
                 \"args\":{{\"span\":\"0x{span:x}\"}}}}"
            ));
            let slot = phase_totals.entry(phase).or_insert((0, 0, 0));
            slot.0 += 1;
            slot.1 += dur;
            slot.2 = slot.2.max(dur);
        }
    }
    // Name the tracks so the viewer shows "cluster"/"waterfall" rather
    // than bare pids.
    for (pid, name) in [(1, "cluster"), (2, "waterfall")] {
        trace.push_entry(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{name}\"}}}}"
        ));
    }

    let doc = trace.finish();
    if let Err(e) = write_doc(&out_path, &doc) {
        fail(&format!("cannot write {}: {e}", out_path.display()));
    }

    println!(
        "timeline: OK — {} events from {} node dump(s), {} span(s) ({closed} closed, {open} open)",
        entries.len(),
        files,
        spans.len(),
    );
    for (phase, (count, sum, max)) in &phase_totals {
        println!("  {phase}: n={count} mean={}us max={max}us", sum / count.max(&1));
    }
    println!("  {}", out_path.display());
    if open > 0 {
        // Open spans are expected in a crash dump only when the abort
        // event fell outside the retained ring window.
        eprintln!("timeline: note: {open} span(s) have no terminal event in the retained window");
    }
}

fn write_doc(path: &Path, doc: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, doc)
}
