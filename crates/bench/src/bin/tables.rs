//! Regenerates the paper's protocol rule tables:
//! Table 1(a) compatibility, Table 1(b) non-token grant legality,
//! Table 2(a) queue/forward, Table 2(b) frozen modes.
//!
//! ```text
//! cargo run -p hlock-bench --bin tables
//! ```

fn main() {
    println!("{}", hlock_core::compatibility_table());
    println!("{}", hlock_core::child_grant_table());
    println!("{}", hlock_core::queue_forward_table());
    println!("{}", hlock_core::freeze_table());
    println!("strength order (Definition 1): 0 < IR < R < U = IW < W");
}
