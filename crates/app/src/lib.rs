//! # hlock-app
//!
//! The paper's motivating application: a **multi-airline reservation
//! system** whose fare/seat table is shared by every node and protected
//! by hierarchical locks — the whole table by one lock, each entry by its
//! own lock. Built on the real TCP transport (`hlock-net`), so the exact
//! sans-I/O protocol used in the simulator arbitrates a real shared
//! store here.
//!
//! Operations and their locking plans:
//!
//! | operation | table lock | entry lock |
//! |---|---|---|
//! | [`Agent::query_fare`] | `IR` | `R` |
//! | [`Agent::update_fare`] | `IW` | `W` |
//! | [`Agent::book_seat`] | `IW` | `U` → upgrade → `W` |
//! | [`Agent::snapshot`] | `R` | — |
//! | [`Agent::bulk_reprice`] | `W` | — |
//! | [`Agent::cheapest_flight`] | `R` | — |
//! | [`Agent::transfer_seat`] | `IW` | `W` + `W` (ascending-id order) |
//!
//! `book_seat` demonstrates why upgrade locks exist: it reads the seat
//! count, decides, and then writes it back — under a plain `R` → `W`
//! re-acquisition two bookers could both see "1 seat left" and oversell;
//! the `U` mode excludes other upgraders from the start, and the upgrade
//! to `W` is atomic (Rule 7), so seats can never go negative.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use hlock_core::LockSpace;
use hlock_core::{LockId, Mode, ProtocolConfig, Ticket};
use hlock_net::{Cluster, NetError, NodeHandle};
use parking_lot::RwLock;
use std::sync::Arc;
use std::time::Duration;

/// One fare-table entry: a flight's price and remaining seats, plus the
/// repricing generation used to detect torn bulk updates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Ticket price.
    pub fare: f64,
    /// Remaining seats.
    pub seats: u32,
    /// Bulk-repricing generation (bumped atomically for all entries).
    pub generation: u64,
}

/// The shared store (stands in for the cluster's shared database).
#[derive(Debug)]
struct Store {
    entries: Vec<Entry>,
}

/// Errors of the reservation application.
#[derive(Debug)]
pub enum AppError {
    /// Transport or protocol failure underneath.
    Net(NetError),
    /// No seats left on the requested flight.
    SoldOut {
        /// The fully-booked entry.
        entry: usize,
    },
    /// An entry index out of range.
    UnknownEntry {
        /// The offending index.
        entry: usize,
    },
}

impl std::fmt::Display for AppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppError::Net(e) => write!(f, "lock service failure: {e}"),
            AppError::SoldOut { entry } => write!(f, "flight {entry} is sold out"),
            AppError::UnknownEntry { entry } => write!(f, "no such entry {entry}"),
        }
    }
}

impl std::error::Error for AppError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AppError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for AppError {
    fn from(e: NetError) -> Self {
        AppError::Net(e)
    }
}

/// The distributed reservation system: a TCP mesh of nodes running the
/// hierarchical protocol plus the shared fare store.
#[allow(missing_debug_implementations)]
pub struct ReservationSystem {
    cluster: Cluster<LockSpace>,
    store: Arc<RwLock<Store>>,
    entries: usize,
    timeout: Duration,
}

impl ReservationSystem {
    /// Lock 0 guards the whole table.
    pub const TABLE_LOCK: LockId = LockId(0);

    /// Launches `nodes` nodes sharing a fare table of `entries` flights,
    /// each with the given initial fare and seat count.
    ///
    /// # Errors
    ///
    /// Any transport error during cluster setup.
    pub fn launch(
        nodes: usize,
        entries: usize,
        initial_fare: f64,
        initial_seats: u32,
    ) -> Result<ReservationSystem, AppError> {
        let cluster = Cluster::spawn_hierarchical(nodes, entries + 1, ProtocolConfig::default())?;
        let store = Arc::new(RwLock::new(Store {
            entries: vec![
                Entry { fare: initial_fare, seats: initial_seats, generation: 0 };
                entries
            ],
        }));
        Ok(ReservationSystem { cluster, store, entries, timeout: Duration::from_secs(30) })
    }

    /// Number of fare-table entries.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.cluster.len()
    }

    /// The lock guarding entry `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn entry_lock(&self, e: usize) -> LockId {
        assert!(e < self.entries);
        LockId(e as u32 + 1)
    }

    /// An agent bound to node `node` — the application's per-node API.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn agent(&self, node: usize) -> Agent<'_> {
        Agent { system: self, handle: self.cluster.node(node) }
    }

    /// Total protocol messages sent so far, by kind.
    pub fn message_stats(&self) -> std::collections::HashMap<hlock_core::MessageKind, u64> {
        self.cluster.message_stats()
    }

    /// Shuts the mesh down.
    pub fn shutdown(self) {
        self.cluster.shutdown();
    }
}

/// A guard-style record of booked seats, returned by [`Agent::book_seat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Booking {
    /// Which entry was booked.
    pub entry: usize,
    /// Seats remaining after this booking.
    pub seats_left: u32,
}

/// Per-node application API.
#[allow(missing_debug_implementations)]
pub struct Agent<'a> {
    system: &'a ReservationSystem,
    handle: &'a NodeHandle<LockSpace>,
}

impl Agent<'_> {
    fn check_entry(&self, entry: usize) -> Result<(), AppError> {
        if entry >= self.system.entries {
            return Err(AppError::UnknownEntry { entry });
        }
        Ok(())
    }

    fn acquire(&self, lock: LockId, mode: Mode) -> Result<Ticket, AppError> {
        Ok(self.handle.acquire(lock, mode, self.system.timeout)?)
    }

    /// Reads one flight's fare (table `IR`, entry `R`).
    ///
    /// # Errors
    ///
    /// [`AppError::UnknownEntry`] or lock-service failures.
    pub fn query_fare(&self, entry: usize) -> Result<f64, AppError> {
        self.check_entry(entry)?;
        let t_table = self.acquire(ReservationSystem::TABLE_LOCK, Mode::IntentRead)?;
        let t_entry = self.acquire(self.system.entry_lock(entry), Mode::Read)?;
        let fare = self.system.store.read().entries[entry].fare;
        self.handle.release(self.system.entry_lock(entry), t_entry)?;
        self.handle.release(ReservationSystem::TABLE_LOCK, t_table)?;
        Ok(fare)
    }

    /// Sets one flight's fare (table `IW`, entry `W`).
    ///
    /// # Errors
    ///
    /// [`AppError::UnknownEntry`] or lock-service failures.
    pub fn update_fare(&self, entry: usize, fare: f64) -> Result<(), AppError> {
        self.check_entry(entry)?;
        let t_table = self.acquire(ReservationSystem::TABLE_LOCK, Mode::IntentWrite)?;
        let t_entry = self.acquire(self.system.entry_lock(entry), Mode::Write)?;
        self.system.store.write().entries[entry].fare = fare;
        self.handle.release(self.system.entry_lock(entry), t_entry)?;
        self.handle.release(ReservationSystem::TABLE_LOCK, t_table)?;
        Ok(())
    }

    /// Books one seat using an upgrade lock (table `IW`, entry `U`→`W`):
    /// reads the seat count under `U`, upgrades atomically, then writes.
    ///
    /// # Errors
    ///
    /// [`AppError::SoldOut`] when no seats remain; lock-service failures.
    pub fn book_seat(&self, entry: usize) -> Result<Booking, AppError> {
        self.check_entry(entry)?;
        let lock = self.system.entry_lock(entry);
        let t_table = self.acquire(ReservationSystem::TABLE_LOCK, Mode::IntentWrite)?;
        let t_entry = self.acquire(lock, Mode::Upgrade)?;
        // Read phase (exclusive against other upgraders, shared with R).
        let seats = self.system.store.read().entries[entry].seats;
        if seats == 0 {
            self.handle.release(lock, t_entry)?;
            self.handle.release(ReservationSystem::TABLE_LOCK, t_table)?;
            return Err(AppError::SoldOut { entry });
        }
        // Upgrade and write: no other holder can sneak in between.
        self.handle.upgrade(lock, t_entry, self.system.timeout)?;
        let seats_left = {
            let mut store = self.system.store.write();
            let e = &mut store.entries[entry];
            debug_assert!(e.seats > 0, "upgrade preserved the read");
            e.seats -= 1;
            e.seats
        };
        self.handle.release(lock, t_entry)?;
        self.handle.release(ReservationSystem::TABLE_LOCK, t_table)?;
        Ok(Booking { entry, seats_left })
    }

    /// Moves a booked seat from flight `from` to flight `to` atomically:
    /// both entry locks are taken in **ascending id order** (the classic
    /// deadlock-avoidance discipline for multi-granule transactions)
    /// under a single table `IW`.
    ///
    /// # Errors
    ///
    /// [`AppError::SoldOut`] if `to` has no seats (nothing is changed);
    /// [`AppError::UnknownEntry`] / lock-service failures.
    pub fn transfer_seat(&self, from: usize, to: usize) -> Result<(), AppError> {
        self.check_entry(from)?;
        self.check_entry(to)?;
        if from == to {
            return Ok(());
        }
        let (lo, hi) = if from < to { (from, to) } else { (to, from) };
        let t_table = self.acquire(ReservationSystem::TABLE_LOCK, Mode::IntentWrite)?;
        let t_lo = self.acquire(self.system.entry_lock(lo), Mode::Write)?;
        let t_hi = self.acquire(self.system.entry_lock(hi), Mode::Write)?;
        let moved = {
            let mut store = self.system.store.write();
            if store.entries[to].seats == 0 {
                false
            } else {
                store.entries[to].seats -= 1;
                store.entries[from].seats += 1;
                true
            }
        };
        self.handle.release(self.system.entry_lock(hi), t_hi)?;
        self.handle.release(self.system.entry_lock(lo), t_lo)?;
        self.handle.release(ReservationSystem::TABLE_LOCK, t_table)?;
        if moved {
            Ok(())
        } else {
            Err(AppError::SoldOut { entry: to })
        }
    }

    /// Finds the cheapest flight under a whole-table read lock (`R`):
    /// the scan is consistent — no concurrent fare update can tear it.
    ///
    /// # Errors
    ///
    /// Lock-service failures.
    pub fn cheapest_flight(&self) -> Result<(usize, f64), AppError> {
        let t = self.acquire(ReservationSystem::TABLE_LOCK, Mode::Read)?;
        let best = {
            let store = self.system.store.read();
            store
                .entries
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.fare.total_cmp(&b.1.fare))
                .map(|(i, e)| (i, e.fare))
                .expect("table is nonempty")
        };
        self.handle.release(ReservationSystem::TABLE_LOCK, t)?;
        Ok(best)
    }

    /// Reads a consistent snapshot of the whole table (table `R`).
    ///
    /// # Errors
    ///
    /// Lock-service failures.
    pub fn snapshot(&self) -> Result<Vec<Entry>, AppError> {
        let t = self.acquire(ReservationSystem::TABLE_LOCK, Mode::Read)?;
        let entries = self.system.store.read().entries.clone();
        self.handle.release(ReservationSystem::TABLE_LOCK, t)?;
        Ok(entries)
    }

    /// Multiplies every fare by `factor`, atomically for the whole table
    /// (table `W`), bumping the repricing generation of every entry.
    ///
    /// # Errors
    ///
    /// Lock-service failures.
    pub fn bulk_reprice(&self, factor: f64) -> Result<(), AppError> {
        let t = self.acquire(ReservationSystem::TABLE_LOCK, Mode::Write)?;
        {
            let mut store = self.system.store.write();
            for e in &mut store.entries {
                e.fare *= factor;
                e.generation += 1;
            }
        }
        self.handle.release(ReservationSystem::TABLE_LOCK, t)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn query_and_update_fare() {
        let sys = ReservationSystem::launch(3, 4, 100.0, 5).unwrap();
        assert_eq!(sys.agent(1).query_fare(2).unwrap(), 100.0);
        sys.agent(2).update_fare(2, 150.0).unwrap();
        assert_eq!(sys.agent(0).query_fare(2).unwrap(), 150.0);
        assert_eq!(sys.entries(), 4);
        assert_eq!(sys.nodes(), 3);
        sys.shutdown();
    }

    #[test]
    fn unknown_entry_is_rejected() {
        let sys = ReservationSystem::launch(2, 2, 100.0, 5).unwrap();
        assert!(matches!(sys.agent(0).query_fare(9), Err(AppError::UnknownEntry { entry: 9 })));
        sys.shutdown();
    }

    #[test]
    fn booking_never_oversells() {
        // 4 nodes race to book 6 seats on one flight: exactly 6 succeed.
        let sys = Arc::new(ReservationSystem::launch(4, 1, 100.0, 6).unwrap());
        let booked = Arc::new(AtomicU32::new(0));
        let sold_out = Arc::new(AtomicU32::new(0));
        let mut joins = Vec::new();
        for node in 0..4 {
            let sys = sys.clone();
            let booked = booked.clone();
            let sold_out = sold_out.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..3 {
                    match sys.agent(node).book_seat(0) {
                        Ok(_) => {
                            booked.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(AppError::SoldOut { .. }) => {
                            sold_out.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(booked.load(Ordering::Relaxed), 6, "exactly the available seats sold");
        assert_eq!(sold_out.load(Ordering::Relaxed), 6);
        let snap = sys.agent(0).snapshot().unwrap();
        assert_eq!(snap[0].seats, 0);
        match Arc::try_unwrap(sys) {
            Ok(s) => s.shutdown(),
            Err(_) => panic!("threads joined"),
        }
    }

    #[test]
    fn transfer_seat_moves_exactly_one() {
        let sys = ReservationSystem::launch(2, 3, 100.0, 4).unwrap();
        sys.agent(0).transfer_seat(0, 2).unwrap();
        let snap = sys.agent(1).snapshot().unwrap();
        assert_eq!(snap[0].seats, 5);
        assert_eq!(snap[2].seats, 3);
        // Self-transfer is a no-op; transfer from a sold-out source is
        // still fine (seats move TO `from`).
        sys.agent(1).transfer_seat(1, 1).unwrap();
        assert!(matches!(
            sys.agent(0).transfer_seat(9, 0),
            Err(AppError::UnknownEntry { entry: 9 })
        ));
        sys.shutdown();
    }

    #[test]
    fn concurrent_transfers_conserve_seats() {
        // Opposite-direction transfers between the same two flights from
        // different nodes: ordered acquisition prevents deadlock, locks
        // prevent lost updates; total seats are conserved.
        let sys = Arc::new(ReservationSystem::launch(3, 2, 100.0, 10).unwrap());
        let mut joins = Vec::new();
        for node in 0..3 {
            let sys = Arc::clone(&sys);
            joins.push(std::thread::spawn(move || {
                for k in 0..4 {
                    let (from, to) = if (node + k) % 2 == 0 { (0, 1) } else { (1, 0) };
                    match sys.agent(node).transfer_seat(from, to) {
                        Ok(()) | Err(AppError::SoldOut { .. }) => {}
                        Err(e) => panic!("{e}"),
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let snap = sys.agent(0).snapshot().unwrap();
        assert_eq!(snap[0].seats + snap[1].seats, 20, "seats conserved");
        match Arc::try_unwrap(sys) {
            Ok(s) => s.shutdown(),
            Err(_) => panic!("threads joined"),
        }
    }

    #[test]
    fn cheapest_flight_is_consistent() {
        let sys = ReservationSystem::launch(2, 4, 100.0, 5).unwrap();
        sys.agent(0).update_fare(2, 40.0).unwrap();
        assert_eq!(sys.agent(1).cheapest_flight().unwrap(), (2, 40.0));
        sys.shutdown();
    }

    #[test]
    fn bulk_reprice_is_atomic_under_snapshots() {
        let sys = Arc::new(ReservationSystem::launch(3, 8, 100.0, 5).unwrap());
        let stop = Arc::new(AtomicU32::new(0));
        let mut joins = Vec::new();
        // One node keeps repricing; two nodes keep snapshotting and
        // asserting that all generations are identical (never torn).
        {
            let sys = sys.clone();
            let stop = stop.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..5 {
                    sys.agent(0).bulk_reprice(1.1).unwrap();
                }
                stop.store(1, Ordering::Relaxed);
            }));
        }
        for node in 1..3 {
            let sys = sys.clone();
            let stop = stop.clone();
            joins.push(std::thread::spawn(move || {
                while stop.load(Ordering::Relaxed) == 0 {
                    let snap = sys.agent(node).snapshot().unwrap();
                    let g0 = snap[0].generation;
                    assert!(
                        snap.iter().all(|e| e.generation == g0),
                        "torn bulk reprice observed: {snap:?}"
                    );
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let snap = sys.agent(1).snapshot().unwrap();
        assert_eq!(snap[0].generation, 5);
        assert!((snap[3].fare - 100.0 * 1.1f64.powi(5)).abs() < 1e-6);
        match Arc::try_unwrap(sys) {
            Ok(s) => s.shutdown(),
            Err(_) => panic!("threads joined"),
        }
    }
}
