//! # hlock-wire
//!
//! A compact, hand-rolled binary wire format for the protocol messages of
//! `hlock-core` and `hlock-naimi`, used by the real TCP transport
//! (`hlock-net`). No serde formats are needed on the wire: messages are a
//! handful of small integers, so LEB128 varints plus one tag byte per
//! variant give frames of typically 4–10 bytes.
//!
//! ```
//! use bytes::BytesMut;
//! use hlock_core::{Envelope, LockId, Mode, NodeId, Payload, Priority, Stamp, Ticket};
//! use hlock_wire::WireCodec;
//!
//! let msg = Envelope {
//!     lock: LockId(3),
//!     payload: Payload::Request {
//!         origin: NodeId(7),
//!         mode: Mode::Read,
//!         stamp: Stamp(42),
//!         priority: Priority::NORMAL,
//!         span: Ticket(42),
//!     },
//! };
//! let mut buf = BytesMut::new();
//! msg.encode(&mut buf);
//! let mut bytes = buf.freeze();
//! let decoded = Envelope::decode(&mut bytes)?;
//! assert_eq!(decoded, msg);
//! # Ok::<(), hlock_wire::WireError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use bytes::{Buf, BufMut};
// Re-exported so downstream crates can drive the codec without their own
// `bytes` dependency.
pub use bytes::{Bytes, BytesMut};
use hlock_core::{
    Envelope, LockId, LockReport, Mode, ModeSet, NodeId, Payload, Priority, QueueEntry,
    RecoveryBody, RecoveryEnvelope, Stamp, Ticket, Waiter,
};
use hlock_naimi::{NaimiEnvelope, NaimiPayload};
use hlock_raymond::{RaymondEnvelope, RaymondPayload};
use hlock_session::SessionFrame;
use hlock_suzuki::{SuzukiEnvelope, SuzukiPayload};
use std::fmt;

/// Decoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended in the middle of a value.
    UnexpectedEof,
    /// An unknown message or waiter tag byte.
    InvalidTag(u8),
    /// A byte that is not a valid [`Mode`].
    InvalidMode(u8),
    /// A byte with bits outside the five mode-set bits.
    InvalidModeSet(u8),
    /// A varint longer than 10 bytes.
    VarintOverflow,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of input"),
            WireError::InvalidTag(t) => write!(f, "invalid tag byte {t:#x}"),
            WireError::InvalidMode(m) => write!(f, "invalid mode byte {m:#x}"),
            WireError::InvalidModeSet(m) => write!(f, "invalid mode-set byte {m:#x}"),
            WireError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
        }
    }
}

impl std::error::Error for WireError {}

/// Symmetric binary encode/decode.
pub trait WireCodec: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Decodes one value from the front of `buf`.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; the buffer position is unspecified afterwards.
    fn decode(buf: &mut Bytes) -> Result<Self, WireError>;
}

/// Writes `v` as a LEB128 varint.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads a LEB128 varint.
///
/// # Errors
///
/// [`WireError::UnexpectedEof`] on truncation, [`WireError::VarintOverflow`]
/// past 10 bytes.
pub fn get_varint(buf: &mut Bytes) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEof);
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(WireError::VarintOverflow);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn put_mode(buf: &mut BytesMut, m: Mode) {
    buf.put_u8(m.wire_tag());
}

fn get_mode(buf: &mut Bytes) -> Result<Mode, WireError> {
    if !buf.has_remaining() {
        return Err(WireError::UnexpectedEof);
    }
    let b = buf.get_u8();
    Mode::from_wire_tag(b).ok_or(WireError::InvalidMode(b))
}

/// Optional modes are encoded as `0xFF` (none) or the mode tag.
fn put_opt_mode(buf: &mut BytesMut, m: Option<Mode>) {
    buf.put_u8(m.map_or(0xFF, Mode::wire_tag));
}

fn get_opt_mode(buf: &mut Bytes) -> Result<Option<Mode>, WireError> {
    if !buf.has_remaining() {
        return Err(WireError::UnexpectedEof);
    }
    let b = buf.get_u8();
    if b == 0xFF {
        Ok(None)
    } else {
        Mode::from_wire_tag(b).map(Some).ok_or(WireError::InvalidMode(b))
    }
}

fn put_mode_set(buf: &mut BytesMut, s: ModeSet) {
    buf.put_u8(s.bits());
}

fn get_mode_set(buf: &mut Bytes) -> Result<ModeSet, WireError> {
    if !buf.has_remaining() {
        return Err(WireError::UnexpectedEof);
    }
    let b = buf.get_u8();
    ModeSet::from_bits(b).ok_or(WireError::InvalidModeSet(b))
}

const WAITER_REMOTE: u8 = 0;
const WAITER_LOCAL: u8 = 1;
const WAITER_UPGRADE: u8 = 2;

impl WireCodec for QueueEntry {
    fn encode(&self, buf: &mut BytesMut) {
        match self.waiter {
            Waiter::Remote(n) => {
                buf.put_u8(WAITER_REMOTE);
                put_varint(buf, u64::from(n.0));
            }
            Waiter::Local(t) => {
                buf.put_u8(WAITER_LOCAL);
                put_varint(buf, t.0);
            }
            Waiter::LocalUpgrade(t) => {
                buf.put_u8(WAITER_UPGRADE);
                put_varint(buf, t.0);
            }
        }
        put_mode(buf, self.mode);
        put_varint(buf, self.stamp.0);
        buf.put_u8(self.priority.0);
        put_varint(buf, self.span.0);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEof);
        }
        let tag = buf.get_u8();
        let id = get_varint(buf)?;
        let waiter = match tag {
            WAITER_REMOTE => Waiter::Remote(NodeId(id as u32)),
            WAITER_LOCAL => Waiter::Local(Ticket(id)),
            WAITER_UPGRADE => Waiter::LocalUpgrade(Ticket(id)),
            other => return Err(WireError::InvalidTag(other)),
        };
        let mode = get_mode(buf)?;
        let stamp = Stamp(get_varint(buf)?);
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEof);
        }
        let priority = Priority(buf.get_u8());
        let span = Ticket(get_varint(buf)?);
        Ok(QueueEntry::with_priority(waiter, mode, stamp, priority).with_span(span))
    }
}

const TAG_REQUEST: u8 = 0;
const TAG_GRANT: u8 = 1;
const TAG_TOKEN: u8 = 2;
const TAG_RELEASE: u8 = 3;
const TAG_FREEZE: u8 = 4;
const TAG_UPDATE: u8 = 5;

impl WireCodec for Envelope {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, u64::from(self.lock.0));
        match &self.payload {
            Payload::Request { origin, mode, stamp, priority, span } => {
                buf.put_u8(TAG_REQUEST);
                put_varint(buf, u64::from(origin.0));
                put_mode(buf, *mode);
                put_varint(buf, stamp.0);
                buf.put_u8(priority.0);
                put_varint(buf, span.0);
            }
            Payload::Grant { mode, frozen } => {
                buf.put_u8(TAG_GRANT);
                put_mode(buf, *mode);
                put_mode_set(buf, *frozen);
            }
            Payload::Token { mode, queue, sender_owned } => {
                buf.put_u8(TAG_TOKEN);
                put_mode(buf, *mode);
                put_opt_mode(buf, *sender_owned);
                put_varint(buf, queue.len() as u64);
                for e in queue {
                    e.encode(buf);
                }
            }
            Payload::Release { new_owned } => {
                buf.put_u8(TAG_RELEASE);
                put_opt_mode(buf, *new_owned);
            }
            Payload::Freeze { modes } => {
                buf.put_u8(TAG_FREEZE);
                put_mode_set(buf, *modes);
            }
            Payload::Update { frozen } => {
                buf.put_u8(TAG_UPDATE);
                put_mode_set(buf, *frozen);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let lock = LockId(get_varint(buf)? as u32);
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEof);
        }
        let tag = buf.get_u8();
        let payload = match tag {
            TAG_REQUEST => {
                let origin = NodeId(get_varint(buf)? as u32);
                let mode = get_mode(buf)?;
                let stamp = Stamp(get_varint(buf)?);
                if !buf.has_remaining() {
                    return Err(WireError::UnexpectedEof);
                }
                let priority = Priority(buf.get_u8());
                let span = Ticket(get_varint(buf)?);
                Payload::Request { origin, mode, stamp, priority, span }
            }
            TAG_GRANT => {
                let mode = get_mode(buf)?;
                let frozen = get_mode_set(buf)?;
                Payload::Grant { mode, frozen }
            }
            TAG_TOKEN => {
                let mode = get_mode(buf)?;
                let sender_owned = get_opt_mode(buf)?;
                let len = get_varint(buf)? as usize;
                let mut queue = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    queue.push(QueueEntry::decode(buf)?);
                }
                Payload::Token { mode, queue, sender_owned }
            }
            TAG_RELEASE => Payload::Release { new_owned: get_opt_mode(buf)? },
            TAG_FREEZE => Payload::Freeze { modes: get_mode_set(buf)? },
            TAG_UPDATE => Payload::Update { frozen: get_mode_set(buf)? },
            other => return Err(WireError::InvalidTag(other)),
        };
        Ok(Envelope { lock, payload })
    }
}

const TAG_REC_APP: u8 = 0;
const TAG_REC_REPORT: u8 = 1;
const TAG_REC_INSTALL: u8 = 2;
const TAG_REC_NACK: u8 = 3;

/// Recovery envelopes prepend a varint epoch and one body tag to the
/// existing [`Envelope`] codec, so fail-free traffic pays 2 extra bytes
/// per message until the first recovery bumps the epoch past 127.
impl WireCodec for RecoveryEnvelope {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, self.epoch);
        match &self.body {
            RecoveryBody::App(envelope) => {
                buf.put_u8(TAG_REC_APP);
                envelope.encode(buf);
            }
            RecoveryBody::Report { dead, base, state } => {
                buf.put_u8(TAG_REC_REPORT);
                put_varint(buf, dead.len() as u64);
                for n in dead {
                    put_varint(buf, u64::from(n.0));
                }
                put_varint(buf, *base);
                put_varint(buf, state.len() as u64);
                for report in state {
                    buf.put_u8(u8::from(report.holds_token));
                    put_opt_mode(buf, report.owned);
                }
            }
            RecoveryBody::Install { live, base, homes, copysets } => {
                buf.put_u8(TAG_REC_INSTALL);
                put_varint(buf, live.len() as u64);
                for n in live {
                    put_varint(buf, u64::from(n.0));
                }
                put_varint(buf, *base);
                put_varint(buf, homes.len() as u64);
                for n in homes {
                    put_varint(buf, u64::from(n.0));
                }
                put_varint(buf, copysets.len() as u64);
                for copyset in copysets {
                    put_varint(buf, copyset.len() as u64);
                    for &(n, m) in copyset {
                        put_varint(buf, u64::from(n.0));
                        put_mode(buf, m);
                    }
                }
            }
            RecoveryBody::Nack => buf.put_u8(TAG_REC_NACK),
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let epoch = get_varint(buf)?;
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEof);
        }
        let body = match buf.get_u8() {
            TAG_REC_APP => RecoveryBody::App(Envelope::decode(buf)?),
            TAG_REC_REPORT => {
                let n = get_varint(buf)? as usize;
                let mut dead = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    dead.push(NodeId(get_varint(buf)? as u32));
                }
                let base = get_varint(buf)?;
                let n = get_varint(buf)? as usize;
                let mut state = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    if !buf.has_remaining() {
                        return Err(WireError::UnexpectedEof);
                    }
                    let holds_token = buf.get_u8() != 0;
                    let owned = get_opt_mode(buf)?;
                    state.push(LockReport { holds_token, owned });
                }
                RecoveryBody::Report { dead, base, state }
            }
            TAG_REC_INSTALL => {
                let n = get_varint(buf)? as usize;
                let mut live = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    live.push(NodeId(get_varint(buf)? as u32));
                }
                let base = get_varint(buf)?;
                let n = get_varint(buf)? as usize;
                let mut homes = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    homes.push(NodeId(get_varint(buf)? as u32));
                }
                let n = get_varint(buf)? as usize;
                let mut copysets = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let len = get_varint(buf)? as usize;
                    let mut copyset = Vec::with_capacity(len.min(4096));
                    for _ in 0..len {
                        let node = NodeId(get_varint(buf)? as u32);
                        let mode = get_mode(buf)?;
                        copyset.push((node, mode));
                    }
                    copysets.push(copyset);
                }
                RecoveryBody::Install { live, base, homes, copysets }
            }
            TAG_REC_NACK => RecoveryBody::Nack,
            other => return Err(WireError::InvalidTag(other)),
        };
        Ok(RecoveryEnvelope { epoch, body })
    }
}

impl WireCodec for NaimiEnvelope {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, u64::from(self.lock.0));
        match &self.payload {
            NaimiPayload::Request { origin } => {
                buf.put_u8(TAG_REQUEST);
                put_varint(buf, u64::from(origin.0));
            }
            NaimiPayload::Token => buf.put_u8(TAG_TOKEN),
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let lock = LockId(get_varint(buf)? as u32);
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEof);
        }
        let tag = buf.get_u8();
        let payload = match tag {
            TAG_REQUEST => NaimiPayload::Request { origin: NodeId(get_varint(buf)? as u32) },
            TAG_TOKEN => NaimiPayload::Token,
            other => return Err(WireError::InvalidTag(other)),
        };
        Ok(NaimiEnvelope { lock, payload })
    }
}

impl WireCodec for RaymondEnvelope {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, u64::from(self.lock.0));
        match self.payload {
            RaymondPayload::Request => buf.put_u8(TAG_REQUEST),
            RaymondPayload::Privilege => buf.put_u8(TAG_TOKEN),
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let lock = LockId(get_varint(buf)? as u32);
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEof);
        }
        let payload = match buf.get_u8() {
            TAG_REQUEST => RaymondPayload::Request,
            TAG_TOKEN => RaymondPayload::Privilege,
            other => return Err(WireError::InvalidTag(other)),
        };
        Ok(RaymondEnvelope { lock, payload })
    }
}

impl WireCodec for SuzukiEnvelope {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, u64::from(self.lock.0));
        match &self.payload {
            SuzukiPayload::Request { origin, seq } => {
                buf.put_u8(TAG_REQUEST);
                put_varint(buf, u64::from(origin.0));
                put_varint(buf, *seq);
            }
            SuzukiPayload::Token { last_served, queue } => {
                buf.put_u8(TAG_TOKEN);
                put_varint(buf, last_served.len() as u64);
                for v in last_served {
                    put_varint(buf, *v);
                }
                put_varint(buf, queue.len() as u64);
                for n in queue {
                    put_varint(buf, u64::from(n.0));
                }
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let lock = LockId(get_varint(buf)? as u32);
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEof);
        }
        let payload = match buf.get_u8() {
            TAG_REQUEST => SuzukiPayload::Request {
                origin: NodeId(get_varint(buf)? as u32),
                seq: get_varint(buf)?,
            },
            TAG_TOKEN => {
                let n = get_varint(buf)? as usize;
                let mut last_served = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    last_served.push(get_varint(buf)?);
                }
                let q = get_varint(buf)? as usize;
                let mut queue = Vec::with_capacity(q.min(4096));
                for _ in 0..q {
                    queue.push(NodeId(get_varint(buf)? as u32));
                }
                SuzukiPayload::Token { last_served, queue }
            }
            other => return Err(WireError::InvalidTag(other)),
        };
        Ok(SuzukiEnvelope { lock, payload })
    }
}

const TAG_SESSION_DATA: u8 = 0;
const TAG_SESSION_ACK: u8 = 1;

/// Session frames wrap any codec-capable message with delivery metadata:
/// one tag byte, then for `Data` the varint sequence number, varint
/// cumulative ack and the inner encoding; for `Ack` just the varint ack.
/// Overhead is 3 bytes for small sequence numbers.
impl<M: WireCodec> WireCodec for SessionFrame<M> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            SessionFrame::Data { seq, ack, message } => {
                buf.put_u8(TAG_SESSION_DATA);
                put_varint(buf, *seq);
                put_varint(buf, *ack);
                message.encode(buf);
            }
            SessionFrame::Ack { ack } => {
                buf.put_u8(TAG_SESSION_ACK);
                put_varint(buf, *ack);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEof);
        }
        match buf.get_u8() {
            TAG_SESSION_DATA => {
                let seq = get_varint(buf)?;
                let ack = get_varint(buf)?;
                let message = M::decode(buf)?;
                Ok(SessionFrame::Data { seq, ack, message })
            }
            TAG_SESSION_ACK => Ok(SessionFrame::Ack { ack: get_varint(buf)? }),
            other => Err(WireError::InvalidTag(other)),
        }
    }
}

/// Length-prefixed **batch** framing — one frame per effect-step batch.
///
/// Layout: `u32` little-endian body length, then the body:
///
/// ```text
/// varint sender | varint hlc | varint count | count × (varint sub_len | sub_len bytes)
/// ```
///
/// The sender header and hybrid-logical-clock stamp are paid once per
/// frame regardless of how many messages the step coalesced; each
/// sub-frame is one message in the existing per-message codec. The
/// `hlc` field carries the sender's clock at frame-encode time so
/// receivers can causally order cross-node flight-recorder dumps; hosts
/// without a recorder write `0` (one byte) and receivers ignore it.
/// Decoding is zero-copy: the body is split into [`Bytes`] sub-slices
/// handed to the per-message codecs without re-buffering.
pub mod frame {
    use super::*;

    /// Appends one frame containing a whole batch from `sender` to
    /// `buf`, with a zero (absent) clock stamp.
    ///
    /// # Panics
    ///
    /// Panics if `messages` is empty — empty batches never cross the
    /// step/flush boundary.
    pub fn write_batch<M: WireCodec>(buf: &mut BytesMut, sender: NodeId, messages: &[M]) {
        write_batch_stamped(buf, sender, 0, messages);
    }

    /// Appends one frame carrying `hlc` — the sender's packed
    /// hybrid-logical-clock stamp at encode time.
    ///
    /// # Panics
    ///
    /// Panics if `messages` is empty — empty batches never cross the
    /// step/flush boundary.
    pub fn write_batch_stamped<M: WireCodec>(
        buf: &mut BytesMut,
        sender: NodeId,
        hlc: u64,
        messages: &[M],
    ) {
        assert!(!messages.is_empty(), "a batch frame carries at least one message");
        let mut body = BytesMut::new();
        put_varint(&mut body, u64::from(sender.0));
        put_varint(&mut body, hlc);
        put_varint(&mut body, messages.len() as u64);
        let mut sub = BytesMut::new();
        for message in messages {
            sub.clear();
            message.encode(&mut sub);
            put_varint(&mut body, sub.len() as u64);
            body.extend_from_slice(&sub);
        }
        buf.put_u32_le(body.len() as u32);
        buf.extend_from_slice(&body);
    }

    /// Appends one single-message frame (a batch of one) to `buf`.
    pub fn write<M: WireCodec>(buf: &mut BytesMut, sender: NodeId, message: &M) {
        write_batch(buf, sender, std::slice::from_ref(message));
    }

    /// Tries to split one complete frame off the front of `buf`,
    /// returning the sender and the batch's messages in wire order.
    /// Returns `Ok(None)` if more bytes are needed. The frame's clock
    /// stamp is discarded; use [`read_stamped`] to keep it.
    ///
    /// Bytes trailing the advertised message count inside a complete
    /// body are ignored (forward compatibility); the count itself is
    /// untrusted, so nothing is preallocated from it.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] from decoding a complete but malformed frame.
    pub fn read<M: WireCodec>(buf: &mut BytesMut) -> Result<Option<(NodeId, Vec<M>)>, WireError> {
        Ok(read_stamped(buf)?.map(|(sender, _, messages)| (sender, messages)))
    }

    /// Like [`read`], but also returns the frame's hybrid-logical-clock
    /// stamp (`0` when the sender carries no clock).
    ///
    /// # Errors
    ///
    /// Any [`WireError`] from decoding a complete but malformed frame.
    pub fn read_stamped<M: WireCodec>(
        buf: &mut BytesMut,
    ) -> Result<Option<(NodeId, u64, Vec<M>)>, WireError> {
        if buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        if buf.len() < 4 + len {
            return Ok(None);
        }
        let _ = buf.split_to(4);
        let mut body = buf.split_to(len).freeze();
        let sender = NodeId(get_varint(&mut body)? as u32);
        let hlc = get_varint(&mut body)?;
        let count = get_varint(&mut body)?;
        let mut messages = Vec::new();
        for _ in 0..count {
            let sub_len = get_varint(&mut body)?;
            if sub_len > body.len() as u64 {
                return Err(WireError::UnexpectedEof);
            }
            let mut sub = body.split_to(sub_len as usize);
            messages.push(M::decode(&mut sub)?);
        }
        Ok(Some((sender, hlc, messages)))
    }

    /// Appends the link handshake — a frame whose body is a bare varint
    /// node id, sent once by the dialing side before any batch frame.
    pub fn write_hello(buf: &mut BytesMut, me: NodeId) {
        let mut hello = BytesMut::new();
        put_varint(&mut hello, u64::from(me.0));
        buf.put_u32_le(hello.len() as u32);
        buf.extend_from_slice(&hello);
    }

    /// An incremental frame decoder for nonblocking transports.
    ///
    /// Bytes arrive in arbitrary slices (whatever one readiness-driven
    /// `read` returned) via [`Decoder::extend`]; complete frames are
    /// popped with [`Decoder::next`] / [`Decoder::next_hello`], which
    /// return `Ok(None)` while the buffer holds only a partial frame —
    /// including a partial length prefix, a varint split mid-byte, or a
    /// sub-message cut anywhere inside a batch body. The decode result
    /// is byte-identical to running [`read`] over the concatenated
    /// stream, which the fuzz-style split tests assert at every byte
    /// boundary.
    #[derive(Debug, Default)]
    pub struct Decoder {
        buf: BytesMut,
        last_hlc: u64,
    }

    impl Decoder {
        /// An empty decoder.
        pub fn new() -> Decoder {
            Decoder::default()
        }

        /// Feeds `bytes` into the decode buffer.
        pub fn extend(&mut self, bytes: &[u8]) {
            self.buf.extend_from_slice(bytes);
        }

        /// Bytes buffered but not yet consumed by a complete frame.
        pub fn buffered(&self) -> usize {
            self.buf.len()
        }

        /// The clock stamp of the last frame popped by [`Decoder::next`]
        /// (`0` before any frame, or when the sender carries no clock).
        pub fn last_hlc(&self) -> u64 {
            self.last_hlc
        }

        /// Pops the next complete batch frame, if one is buffered; its
        /// clock stamp is retained for [`Decoder::last_hlc`].
        ///
        /// # Errors
        ///
        /// Any [`WireError`] from a complete but malformed frame.
        pub fn next<M: WireCodec>(&mut self) -> Result<Option<(NodeId, Vec<M>)>, WireError> {
            match read_stamped(&mut self.buf)? {
                Some((sender, hlc, messages)) => {
                    self.last_hlc = hlc;
                    Ok(Some((sender, messages)))
                }
                None => Ok(None),
            }
        }

        /// Pops the handshake frame (see [`write_hello`]), if complete.
        ///
        /// # Errors
        ///
        /// Any [`WireError`] from a complete but malformed handshake.
        pub fn next_hello(&mut self) -> Result<Option<NodeId>, WireError> {
            if self.buf.len() < 4 {
                return Ok(None);
            }
            let len =
                u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
            if self.buf.len() < 4 + len {
                return Ok(None);
            }
            let _ = self.buf.split_to(4);
            let mut body = self.buf.split_to(len).freeze();
            Ok(Some(NodeId(get_varint(&mut body)? as u32)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip<M: WireCodec + PartialEq + fmt::Debug>(m: &M) {
        let mut buf = BytesMut::new();
        m.encode(&mut buf);
        let mut bytes = buf.freeze();
        let decoded = M::decode(&mut bytes).expect("decodes");
        assert_eq!(&decoded, m);
        assert!(!bytes.has_remaining(), "no trailing bytes");
    }

    #[test]
    fn varint_edge_cases() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, 1 << 63, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut b = buf.freeze();
            assert_eq!(get_varint(&mut b).unwrap(), v);
        }
    }

    #[test]
    fn varint_truncation_errors() {
        let mut b = Bytes::from_static(&[0x80]);
        assert_eq!(get_varint(&mut b), Err(WireError::UnexpectedEof));
        let mut b = Bytes::from_static(&[]);
        assert_eq!(get_varint(&mut b), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn varint_overflow_errors() {
        let mut buf = BytesMut::new();
        for _ in 0..10 {
            buf.put_u8(0xFF);
        }
        buf.put_u8(0x01);
        let mut b = buf.freeze();
        assert_eq!(get_varint(&mut b), Err(WireError::VarintOverflow));
    }

    #[test]
    fn all_payload_variants_roundtrip() {
        let samples = vec![
            Payload::Request {
                origin: NodeId(3),
                mode: Mode::Read,
                stamp: Stamp(99),
                priority: Priority::NORMAL,
                span: Ticket(99),
            },
            Payload::Grant { mode: Mode::IntentWrite, frozen: ModeSet::ALL },
            Payload::Token {
                mode: Mode::Write,
                queue: vec![
                    QueueEntry::new(Waiter::Remote(NodeId(9)), Mode::Read, Stamp(4)),
                    QueueEntry::new(Waiter::Local(Ticket(77)), Mode::Upgrade, Stamp(5)),
                    QueueEntry::new(Waiter::LocalUpgrade(Ticket(1)), Mode::Write, Stamp(6)),
                ],
                sender_owned: Some(Mode::IntentRead),
            },
            Payload::Token { mode: Mode::Upgrade, queue: vec![], sender_owned: None },
            Payload::Release { new_owned: None },
            Payload::Release { new_owned: Some(Mode::IntentRead) },
            Payload::Freeze { modes: ModeSet::from_modes([Mode::IntentWrite]) },
            Payload::Update { frozen: ModeSet::EMPTY },
        ];
        for p in samples {
            roundtrip(&Envelope { lock: LockId(12), payload: p });
        }
    }

    #[test]
    fn recovery_variants_roundtrip() {
        let inner = Envelope {
            lock: LockId(4),
            payload: Payload::Request {
                origin: NodeId(2),
                mode: Mode::Upgrade,
                stamp: Stamp(31),
                priority: Priority::NORMAL,
                span: Ticket(31),
            },
        };
        roundtrip(&RecoveryEnvelope { epoch: 0, body: RecoveryBody::App(inner) });
        roundtrip(&RecoveryEnvelope {
            epoch: 7,
            body: RecoveryBody::Report {
                dead: vec![NodeId(0), NodeId(5)],
                base: 6,
                state: vec![
                    LockReport { holds_token: true, owned: Some(Mode::Write) },
                    LockReport { holds_token: false, owned: None },
                    LockReport { holds_token: false, owned: Some(Mode::IntentRead) },
                ],
            },
        });
        roundtrip(&RecoveryEnvelope {
            epoch: u64::MAX,
            body: RecoveryBody::Install {
                live: vec![NodeId(1), NodeId(2), NodeId(3)],
                base: u64::MAX - 1,
                homes: vec![NodeId(1), NodeId(3)],
                copysets: vec![
                    vec![(NodeId(2), Mode::Read), (NodeId(3), Mode::IntentWrite)],
                    vec![],
                ],
            },
        });
        roundtrip(&RecoveryEnvelope { epoch: 300, body: RecoveryBody::Nack });
    }

    #[test]
    fn recovery_invalid_bytes_error_not_panic() {
        let mut b = Bytes::from_static(&[0x00, 0x09]); // epoch 0, tag 9
        assert_eq!(RecoveryEnvelope::decode(&mut b), Err(WireError::InvalidTag(9)));
        let mut b = Bytes::from_static(&[0x00]); // epoch only, no tag
        assert_eq!(RecoveryEnvelope::decode(&mut b), Err(WireError::UnexpectedEof));
        // Report claiming one dead node but with no id bytes.
        let mut b = Bytes::from_static(&[0x00, TAG_REC_REPORT, 0x01]);
        assert_eq!(RecoveryEnvelope::decode(&mut b), Err(WireError::UnexpectedEof));
        // Report with a lock state carrying an invalid owned mode.
        let mut b = Bytes::from_static(&[0x02, TAG_REC_REPORT, 0x00, 0x00, 0x01, 0x01, 0x09]);
        assert_eq!(RecoveryEnvelope::decode(&mut b), Err(WireError::InvalidMode(9)));
        // Install truncated inside the copyset list.
        let mut b =
            Bytes::from_static(&[0x01, TAG_REC_INSTALL, 0x01, 0x02, 0x00, 0x01, 0x00, 0x01]);
        assert_eq!(RecoveryEnvelope::decode(&mut b), Err(WireError::UnexpectedEof));
        let mut b = Bytes::from_static(&[]);
        assert_eq!(RecoveryEnvelope::decode(&mut b), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn naimi_variants_roundtrip() {
        roundtrip(&NaimiEnvelope {
            lock: LockId(0),
            payload: NaimiPayload::Request { origin: NodeId(250) },
        });
        roundtrip(&NaimiEnvelope { lock: LockId(65_000), payload: NaimiPayload::Token });
    }

    #[test]
    fn raymond_variants_roundtrip() {
        roundtrip(&RaymondEnvelope { lock: LockId(9), payload: RaymondPayload::Request });
        roundtrip(&RaymondEnvelope { lock: LockId(0), payload: RaymondPayload::Privilege });
    }

    #[test]
    fn suzuki_variants_roundtrip() {
        roundtrip(&SuzukiEnvelope {
            lock: LockId(2),
            payload: SuzukiPayload::Request { origin: NodeId(9), seq: 1234 },
        });
        roundtrip(&SuzukiEnvelope {
            lock: LockId(0),
            payload: SuzukiPayload::Token {
                last_served: vec![0, 3, 999, u64::MAX],
                queue: vec![NodeId(1), NodeId(3)],
            },
        });
    }

    #[test]
    fn session_frame_variants_roundtrip() {
        let inner = Envelope {
            lock: LockId(5),
            payload: Payload::Request {
                origin: NodeId(2),
                mode: Mode::Write,
                stamp: Stamp(7),
                priority: Priority::NORMAL,
                span: Ticket(7),
            },
        };
        roundtrip(&SessionFrame::Data { seq: 1, ack: 0, message: inner.clone() });
        roundtrip(&SessionFrame::Data { seq: u64::MAX, ack: u64::MAX - 1, message: inner });
        roundtrip(&SessionFrame::<Envelope>::Ack { ack: 0 });
        roundtrip(&SessionFrame::<Envelope>::Ack { ack: 300 });
    }

    #[test]
    fn session_frame_overhead_is_small() {
        // The reliability header costs 3 bytes for small seq/ack values.
        let inner = NaimiEnvelope { lock: LockId(1), payload: NaimiPayload::Token };
        let mut plain = BytesMut::new();
        inner.encode(&mut plain);
        let mut wrapped = BytesMut::new();
        SessionFrame::Data { seq: 9, ack: 4, message: inner }.encode(&mut wrapped);
        assert_eq!(wrapped.len(), plain.len() + 3);
    }

    #[test]
    fn session_frame_invalid_bytes_error_not_panic() {
        let mut b = Bytes::from_static(&[0x05]); // unknown session tag
        assert_eq!(SessionFrame::<Envelope>::decode(&mut b), Err(WireError::InvalidTag(5)));
        let mut b = Bytes::from_static(&[TAG_SESSION_DATA, 0x01]); // truncated
        assert_eq!(SessionFrame::<Envelope>::decode(&mut b), Err(WireError::UnexpectedEof));
        let mut b = Bytes::from_static(&[]);
        assert_eq!(SessionFrame::<Envelope>::decode(&mut b), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn invalid_bytes_error_not_panic() {
        let mut b = Bytes::from_static(&[0x00, 0x09]); // lock 0, tag 9
        assert_eq!(Envelope::decode(&mut b), Err(WireError::InvalidTag(9)));
        let mut b = Bytes::from_static(&[0x00, TAG_GRANT, 0x07]); // mode 7
        assert_eq!(Envelope::decode(&mut b), Err(WireError::InvalidMode(7)));
        let mut b = Bytes::from_static(&[0x00, TAG_FREEZE, 0xFF]); // bad set
        assert_eq!(Envelope::decode(&mut b), Err(WireError::InvalidModeSet(0xFF)));
        let mut b = Bytes::from_static(&[0x00]);
        assert_eq!(Envelope::decode(&mut b), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn frame_roundtrip_and_partial_reads() {
        let msg = Envelope {
            lock: LockId(2),
            payload: Payload::Request {
                origin: NodeId(1),
                mode: Mode::Write,
                stamp: Stamp(8),
                priority: Priority::NORMAL,
                span: Ticket(8),
            },
        };
        let mut wire = BytesMut::new();
        frame::write(&mut wire, NodeId(1), &msg);
        frame::write(&mut wire, NodeId(1), &msg);
        // Feed byte by byte; frames appear exactly when complete.
        let full = wire.clone();
        let mut partial = BytesMut::new();
        let mut decoded = 0;
        for (i, byte) in full.iter().enumerate() {
            partial.put_u8(*byte);
            while let Some((from, batch)) = frame::read::<Envelope>(&mut partial).unwrap() {
                assert_eq!(from, NodeId(1));
                assert_eq!(batch, vec![msg.clone()]);
                decoded += 1;
                let _ = i;
            }
        }
        assert_eq!(decoded, 2);
        assert!(partial.is_empty());
    }

    /// One-shot decode of a whole stream via `frame::read`, as the
    /// oracle for the incremental [`frame::Decoder`] split tests.
    fn one_shot<M: WireCodec>(stream: &[u8]) -> Vec<(NodeId, Vec<M>)> {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(stream);
        let mut out = Vec::new();
        while let Some(frame) = frame::read::<M>(&mut buf).expect("oracle decodes") {
            out.push(frame);
        }
        assert!(buf.is_empty(), "oracle left trailing bytes");
        out
    }

    /// Feeds `stream` to a fresh decoder split into two slices at
    /// `split`, draining complete frames after each feed.
    fn decode_split_at<M: WireCodec>(stream: &[u8], split: usize) -> Vec<(NodeId, Vec<M>)> {
        let mut dec = frame::Decoder::new();
        let mut out = Vec::new();
        for chunk in [&stream[..split], &stream[split..]] {
            dec.extend(chunk);
            while let Some(frame) = dec.next::<M>().expect("incremental decodes") {
                out.push(frame);
            }
        }
        assert_eq!(dec.buffered(), 0, "decoder left trailing bytes");
        out
    }

    #[test]
    fn incremental_decoder_matches_one_shot_at_every_split() {
        // A stream whose batch headers exercise multi-byte varints:
        // sender 300 (two bytes) and a 130-message batch (two-byte
        // count), so some splits land mid-varint inside the header.
        let small = NaimiEnvelope { lock: LockId(200), payload: NaimiPayload::Token };
        let mut stream = BytesMut::new();
        frame::write_batch(&mut stream, NodeId(300), &vec![small.clone(); 130]);
        frame::write(&mut stream, NodeId(1), &small);
        frame::write_batch(&mut stream, NodeId(300), &[small.clone(), small.clone()]);
        let stream = stream.freeze();

        let oracle = one_shot::<NaimiEnvelope>(&stream);
        assert_eq!(oracle.len(), 3);
        assert_eq!(oracle[0].0, NodeId(300));
        assert_eq!(oracle[0].1.len(), 130);
        for split in 0..=stream.len() {
            assert_eq!(
                decode_split_at::<NaimiEnvelope>(&stream, split),
                oracle,
                "split at byte {split} diverged from one-shot decode"
            );
        }
    }

    #[test]
    fn incremental_decoder_matches_one_shot_mid_recovery_envelope() {
        // Recovery envelopes are the largest messages on the wire
        // (Install carries live sets, homes and per-lock copysets), so
        // most split points land inside a sub-message body.
        let install = RecoveryEnvelope {
            epoch: 300, // multi-byte epoch varint
            body: RecoveryBody::Install {
                live: vec![NodeId(1), NodeId(2), NodeId(300)],
                base: 299,
                homes: vec![NodeId(1), NodeId(300)],
                copysets: vec![
                    vec![(NodeId(2), Mode::Read), (NodeId(300), Mode::IntentWrite)],
                    vec![(NodeId(1), Mode::Write)],
                ],
            },
        };
        let report = RecoveryEnvelope {
            epoch: 300,
            body: RecoveryBody::Report {
                dead: vec![NodeId(0)],
                base: 299,
                state: vec![
                    LockReport { holds_token: true, owned: Some(Mode::Write) },
                    LockReport { holds_token: false, owned: None },
                ],
            },
        };
        let mut stream = BytesMut::new();
        frame::write_batch(&mut stream, NodeId(2), &[report, install]);
        frame::write(
            &mut stream,
            NodeId(2),
            &RecoveryEnvelope { epoch: 301, body: RecoveryBody::Nack },
        );
        let stream = stream.freeze();

        let oracle = one_shot::<RecoveryEnvelope>(&stream);
        assert_eq!(oracle.len(), 2);
        for split in 0..=stream.len() {
            assert_eq!(
                decode_split_at::<RecoveryEnvelope>(&stream, split),
                oracle,
                "split at byte {split} diverged from one-shot decode"
            );
        }
    }

    #[test]
    fn incremental_decoder_byte_by_byte_with_hello() {
        // The full link preamble: hello frame, then batches — fed one
        // byte at a time, the worst case a readiness loop can see.
        let msg = Envelope {
            lock: LockId(2),
            payload: Payload::Request {
                origin: NodeId(300),
                mode: Mode::Write,
                stamp: Stamp(8),
                priority: Priority::NORMAL,
                span: Ticket(8),
            },
        };
        let mut stream = BytesMut::new();
        frame::write_hello(&mut stream, NodeId(300));
        frame::write(&mut stream, NodeId(300), &msg);
        frame::write(&mut stream, NodeId(300), &msg);

        let mut dec = frame::Decoder::new();
        let mut hello = None;
        let mut frames = Vec::new();
        for byte in stream.iter() {
            dec.extend(&[*byte]);
            if hello.is_none() {
                hello = dec.next_hello().expect("hello decodes");
                if hello.is_none() {
                    continue;
                }
            }
            while let Some(frame) = dec.next::<Envelope>().expect("frame decodes") {
                frames.push(frame);
            }
        }
        assert_eq!(hello, Some(NodeId(300)));
        assert_eq!(frames, vec![(NodeId(300), vec![msg.clone()]); 2]);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn incremental_decoder_surfaces_errors_once_frame_completes() {
        // A complete frame with garbage inside errors exactly when the
        // last byte arrives, never earlier.
        let mut body = BytesMut::new();
        put_varint(&mut body, 1); // sender
        put_varint(&mut body, 0); // hlc
        put_varint(&mut body, 3); // count, but no sub-frames follow
        let mut wire = BytesMut::new();
        wire.put_u32_le(body.len() as u32);
        wire.extend_from_slice(&body);

        let mut dec = frame::Decoder::new();
        for (i, byte) in wire.iter().enumerate() {
            dec.extend(&[*byte]);
            if i + 1 < wire.len() {
                assert_eq!(dec.next::<Envelope>(), Ok(None), "errored early at byte {i}");
            } else {
                assert_eq!(dec.next::<Envelope>(), Err(WireError::UnexpectedEof));
            }
        }
    }

    #[test]
    fn batch_frame_roundtrip_preserves_order() {
        let msgs: Vec<Envelope> = (0..4)
            .map(|i| Envelope {
                lock: LockId(i),
                payload: Payload::Request {
                    origin: NodeId(7),
                    mode: Mode::IntentRead,
                    stamp: Stamp(u64::from(i)),
                    priority: Priority::NORMAL,
                    span: Ticket(u64::from(i)),
                },
            })
            .collect();
        let mut wire = BytesMut::new();
        frame::write_batch(&mut wire, NodeId(7), &msgs);
        let (from, decoded) = frame::read::<Envelope>(&mut wire).unwrap().unwrap();
        assert_eq!(from, NodeId(7));
        assert_eq!(decoded, msgs);
        assert!(wire.is_empty());
    }

    #[test]
    fn batch_frame_carries_the_hlc_stamp() {
        let msg = Envelope {
            lock: LockId(1),
            payload: Payload::Request {
                origin: NodeId(3),
                mode: Mode::Read,
                stamp: Stamp(1),
                priority: Priority::NORMAL,
                span: Ticket(9),
            },
        };
        let stamp = (123_456u64 << 16) | 7;
        let mut wire = BytesMut::new();
        frame::write_batch_stamped(&mut wire, NodeId(3), stamp, std::slice::from_ref(&msg));
        frame::write_batch(&mut wire, NodeId(3), std::slice::from_ref(&msg));

        let mut probe = wire.clone();
        let (from, hlc, decoded) = frame::read_stamped::<Envelope>(&mut probe).unwrap().unwrap();
        assert_eq!((from, hlc), (NodeId(3), stamp));
        assert_eq!(decoded, vec![msg.clone()]);
        let (_, hlc, _) = frame::read_stamped::<Envelope>(&mut probe).unwrap().unwrap();
        assert_eq!(hlc, 0, "unstamped frames read back a zero stamp");

        // The incremental decoder exposes the same stamp per frame.
        let mut dec = frame::Decoder::new();
        dec.extend(&wire);
        assert_eq!(dec.last_hlc(), 0);
        let _ = dec.next::<Envelope>().unwrap().unwrap();
        assert_eq!(dec.last_hlc(), stamp);
        let _ = dec.next::<Envelope>().unwrap().unwrap();
        assert_eq!(dec.last_hlc(), 0);
    }

    #[test]
    fn batch_frame_amortizes_the_header() {
        // n messages in one batch frame cost less than n single frames:
        // the u32 length prefix and sender varint are paid once.
        let msg = NaimiEnvelope { lock: LockId(1), payload: NaimiPayload::Token };
        let msgs = vec![msg.clone(); 4];
        let mut batched = BytesMut::new();
        frame::write_batch(&mut batched, NodeId(3), &msgs);
        let mut singles = BytesMut::new();
        for m in &msgs {
            frame::write(&mut singles, NodeId(3), m);
        }
        assert!(
            batched.len() < singles.len(),
            "batch {} bytes vs singles {} bytes",
            batched.len(),
            singles.len()
        );
    }

    #[test]
    #[should_panic(expected = "at least one message")]
    fn empty_batch_frames_are_rejected() {
        let mut wire = BytesMut::new();
        frame::write_batch::<Envelope>(&mut wire, NodeId(0), &[]);
    }

    #[test]
    fn batch_frame_garbage_errors_not_panics() {
        // Body claims 3 sub-frames but truncates after the count.
        let mut body = BytesMut::new();
        put_varint(&mut body, 1); // sender
        put_varint(&mut body, 0); // hlc
        put_varint(&mut body, 3); // count
        let mut wire = BytesMut::new();
        wire.put_u32_le(body.len() as u32);
        wire.extend_from_slice(&body);
        assert_eq!(frame::read::<Envelope>(&mut wire), Err(WireError::UnexpectedEof));

        // Sub-frame length larger than the remaining body.
        let mut body = BytesMut::new();
        put_varint(&mut body, 1);
        put_varint(&mut body, 0); // hlc
        put_varint(&mut body, 1);
        put_varint(&mut body, 1_000_000); // sub_len way past the body
        body.put_u8(0xAA);
        let mut wire = BytesMut::new();
        wire.put_u32_le(body.len() as u32);
        wire.extend_from_slice(&body);
        assert_eq!(frame::read::<Envelope>(&mut wire), Err(WireError::UnexpectedEof));

        // Absurd count (2^63) with no sub-frames: must error, not OOM.
        let mut body = BytesMut::new();
        put_varint(&mut body, 1);
        put_varint(&mut body, 0); // hlc
        put_varint(&mut body, 1 << 63);
        let mut wire = BytesMut::new();
        wire.put_u32_le(body.len() as u32);
        wire.extend_from_slice(&body);
        assert_eq!(frame::read::<Envelope>(&mut wire), Err(WireError::UnexpectedEof));

        // A sub-frame holding garbage bytes surfaces the codec's error.
        let mut body = BytesMut::new();
        put_varint(&mut body, 1);
        put_varint(&mut body, 0); // hlc
        put_varint(&mut body, 1);
        put_varint(&mut body, 2);
        body.put_u8(0x00); // lock 0
        body.put_u8(0x09); // invalid payload tag
        let mut wire = BytesMut::new();
        wire.put_u32_le(body.len() as u32);
        wire.extend_from_slice(&body);
        assert_eq!(frame::read::<Envelope>(&mut wire), Err(WireError::InvalidTag(9)));
    }

    fn arb_mode() -> impl Strategy<Value = Mode> {
        prop_oneof![
            Just(Mode::IntentRead),
            Just(Mode::Read),
            Just(Mode::Upgrade),
            Just(Mode::IntentWrite),
            Just(Mode::Write),
        ]
    }

    fn arb_waiter() -> impl Strategy<Value = Waiter> {
        prop_oneof![
            any::<u32>().prop_map(|n| Waiter::Remote(NodeId(n))),
            any::<u64>().prop_map(|t| Waiter::Local(Ticket(t))),
            any::<u64>().prop_map(|t| Waiter::LocalUpgrade(Ticket(t))),
        ]
    }

    fn arb_entry() -> impl Strategy<Value = QueueEntry> {
        (arb_waiter(), arb_mode(), any::<u64>(), any::<u64>())
            .prop_map(|(w, m, s, sp)| QueueEntry::new(w, m, Stamp(s)).with_span(Ticket(sp)))
    }

    fn arb_mode_set() -> impl Strategy<Value = ModeSet> {
        (0u8..=0b1_1111).prop_map(|b| ModeSet::from_bits(b).unwrap())
    }

    fn arb_payload() -> impl Strategy<Value = Payload> {
        prop_oneof![
            (any::<u32>(), arb_mode(), any::<u64>(), any::<u8>(), any::<u64>()).prop_map(
                |(o, m, s, p, sp)| Payload::Request {
                    origin: NodeId(o),
                    mode: m,
                    stamp: Stamp(s),
                    priority: Priority(p),
                    span: Ticket(sp),
                }
            ),
            (arb_mode(), arb_mode_set()).prop_map(|(m, f)| Payload::Grant { mode: m, frozen: f }),
            (
                arb_mode(),
                proptest::collection::vec(arb_entry(), 0..8),
                proptest::option::of(arb_mode())
            )
                .prop_map(|(m, q, o)| Payload::Token {
                    mode: m,
                    queue: q,
                    sender_owned: o
                }),
            proptest::option::of(arb_mode()).prop_map(|o| Payload::Release { new_owned: o }),
            arb_mode_set().prop_map(|s| Payload::Freeze { modes: s }),
            arb_mode_set().prop_map(|s| Payload::Update { frozen: s }),
        ]
    }

    proptest! {
        #[test]
        fn prop_envelope_roundtrip(lock in any::<u32>(), payload in arb_payload()) {
            roundtrip(&Envelope { lock: LockId(lock), payload });
        }

        #[test]
        fn prop_varint_roundtrip(v in any::<u64>()) {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            prop_assert!(buf.len() <= 10);
            let mut b = buf.freeze();
            prop_assert_eq!(get_varint(&mut b).unwrap(), v);
        }

        /// Causal span tickets survive the wire in both places they
        /// travel: request messages and queue entries inside a token
        /// transfer — the invariant the cross-node span ids rely on.
        #[test]
        fn prop_span_survives_roundtrip(
            origin in any::<u32>(),
            span in any::<u64>(),
            entry_span in any::<u64>(),
        ) {
            let req = Envelope {
                lock: LockId(1),
                payload: Payload::Request {
                    origin: NodeId(origin),
                    mode: Mode::Write,
                    stamp: Stamp(1),
                    priority: Priority::NORMAL,
                    span: Ticket(span),
                },
            };
            let mut buf = BytesMut::new();
            req.encode(&mut buf);
            let mut bytes = buf.freeze();
            let decoded = Envelope::decode(&mut bytes).unwrap();
            let Payload::Request { span: got, .. } = decoded.payload else {
                return Err(TestCaseError::fail("not a request"));
            };
            prop_assert_eq!(got, Ticket(span));

            let tok = Envelope {
                lock: LockId(1),
                payload: Payload::Token {
                    mode: Mode::Write,
                    queue: vec![
                        QueueEntry::new(Waiter::Remote(NodeId(4)), Mode::Read, Stamp(2))
                            .with_span(Ticket(entry_span)),
                    ],
                    sender_owned: None,
                },
            };
            let mut buf = BytesMut::new();
            tok.encode(&mut buf);
            let mut bytes = buf.freeze();
            let decoded = Envelope::decode(&mut bytes).unwrap();
            let Payload::Token { queue, .. } = decoded.payload else {
                return Err(TestCaseError::fail("not a token"));
            };
            prop_assert_eq!(queue[0].span, Ticket(entry_span));
        }

        #[test]
        fn prop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut b = Bytes::from(bytes);
            let _ = Envelope::decode(&mut b); // Err is fine; panic is not.
        }

        #[test]
        fn prop_naimi_roundtrip(lock in any::<u32>(), origin in proptest::option::of(any::<u32>())) {
            let payload = match origin {
                Some(o) => NaimiPayload::Request { origin: NodeId(o) },
                None => NaimiPayload::Token,
            };
            roundtrip(&NaimiEnvelope { lock: LockId(lock), payload });
        }

        #[test]
        fn prop_raymond_roundtrip(lock in any::<u32>(), req in any::<bool>()) {
            let payload = if req { RaymondPayload::Request } else { RaymondPayload::Privilege };
            roundtrip(&RaymondEnvelope { lock: LockId(lock), payload });
        }

        #[test]
        fn prop_session_frame_roundtrip(
            seq in any::<u64>(),
            ack in any::<u64>(),
            payload in arb_payload(),
            is_ack in any::<bool>(),
        ) {
            let frame = if is_ack {
                SessionFrame::Ack { ack }
            } else {
                SessionFrame::Data { seq, ack, message: Envelope { lock: LockId(1), payload } }
            };
            roundtrip(&frame);
        }

        #[test]
        fn prop_frame_roundtrip(sender in any::<u32>(), payload in arb_payload()) {
            let msg = Envelope { lock: LockId(1), payload };
            let mut wire = BytesMut::new();
            frame::write(&mut wire, NodeId(sender), &msg);
            let (from, decoded) = frame::read::<Envelope>(&mut wire).unwrap().unwrap();
            prop_assert_eq!(from, NodeId(sender));
            prop_assert_eq!(decoded, vec![msg]);
            prop_assert!(wire.is_empty());
        }

        #[test]
        fn prop_batch_frame_roundtrip(
            sender in any::<u32>(),
            payloads in proptest::collection::vec(arb_payload(), 1..6),
        ) {
            let msgs: Vec<Envelope> = payloads
                .into_iter()
                .enumerate()
                .map(|(i, payload)| Envelope { lock: LockId(i as u32), payload })
                .collect();
            let mut wire = BytesMut::new();
            frame::write_batch(&mut wire, NodeId(sender), &msgs);
            let (from, decoded) = frame::read::<Envelope>(&mut wire).unwrap().unwrap();
            prop_assert_eq!(from, NodeId(sender));
            prop_assert_eq!(decoded, msgs);
            prop_assert!(wire.is_empty());
        }

        #[test]
        fn prop_batch_read_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
            // Arbitrary bytes fed as a complete frame body: Err or
            // Ok(None) are both fine; panics and runaway allocation are
            // not.
            let mut wire = BytesMut::new();
            wire.put_u32_le(bytes.len() as u32);
            wire.extend_from_slice(&bytes);
            let _ = frame::read::<Envelope>(&mut wire);
        }
    }
}
