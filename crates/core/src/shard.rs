//! Lock-space sharding: partitioning one node's locks across N
//! independent shards.
//!
//! The hierarchical protocol makes every lock's state machine
//! independent of every other lock's, so a node serving many locks can
//! split its [`LockSpace`] into shards (locks hashed by [`LockId`] via
//! [`ShardSpec`]) and drive each shard from its own worker thread. The
//! TCP transport does exactly that (`hlock-net`'s sharded cluster); this
//! module holds the *deterministic* core the parallel runtime and the
//! verification hosts share:
//!
//! * [`ShardSpec`] — the lock → shard hash. Every layer (core routing,
//!   net ingress, bench reporting) must agree on it, so it lives here.
//! * [`ShardedSpace`] — a single-threaded model of the sharded runtime:
//!   per-shard inboxes drained round-robin, one message at a time, in a
//!   fixed shard order. The simulator and the model checker drive it
//!   through [`ConcurrencyProtocol`] exactly like a plain [`LockSpace`],
//!   which lets the checker *prove* that shard routing never reorders
//!   the messages of one lock (they hash to one shard, whose inbox is
//!   FIFO) while messages of different locks interleave freely.
//! * [`ShardCounters`] — per-shard routing statistics surfaced as
//!   Prometheus gauges via [`crate::MetricsRegistry::record_shard`].
//!
//! Each shard owns a full-width [`LockSpace`] but only ever touches the
//! locks that hash to it; the other per-lock state machines stay in
//! their freshly-constructed state. That trades `O(shards × locks)`
//! idle state for zero id-translation on the wire — envelopes carry
//! global lock ids end to end.

use crate::config::ProtocolConfig;
use crate::effect::EffectSink;
use crate::error::ProtocolError;
use crate::ids::{LockId, NodeId, Priority, Ticket};
use crate::message::Envelope;
use crate::mode::Mode;
use crate::protocol::{CancelOutcome, ConcurrencyProtocol, Inspect};
use crate::space::LockSpace;
use std::collections::VecDeque;

/// The lock → shard mapping shared by every sharded host.
///
/// Uses a Fibonacci (multiplicative) hash so adjacent lock ids — the
/// common allocation pattern (table = lock 0, entries = locks 1..E) —
/// spread across shards instead of clustering.
///
/// ```
/// use hlock_core::{LockId, ShardSpec};
/// let spec = ShardSpec::new(4);
/// let s = spec.shard_of(LockId(7));
/// assert!(s < 4);
/// assert_eq!(s, spec.shard_of(LockId(7)), "deterministic");
/// assert_eq!(ShardSpec::new(1).shard_of(LockId(7)), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    shards: usize,
}

impl ShardSpec {
    /// A spec distributing locks over `shards` shards (at least 1).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardSpec { shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `lock`. Deterministic across platforms and
    /// processes (no per-process seeding), total over all lock ids.
    pub fn shard_of(&self, lock: LockId) -> usize {
        // 64-bit Fibonacci hashing: multiply by 2^64 / φ and take the
        // top bits. Avoids the modulo clustering of dense ids while
        // staying trivially portable.
        let h = (lock.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize * self.shards) >> 32
    }
}

/// Per-shard routing statistics kept by a [`ShardedSpace`].
///
/// The parallel TCP runtime keeps the equivalent numbers per worker
/// thread; both surface through
/// [`crate::MetricsRegistry::record_shard`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Inbound messages routed to this shard's inbox.
    pub routed: u64,
    /// Local API operations (request/release/…) dispatched to this shard.
    pub api_ops: u64,
    /// Largest inbox depth observed while draining a batch.
    pub max_depth: u64,
}

/// A deterministic single-threaded model of the sharded lock runtime.
///
/// Wraps one [`LockSpace`] per shard and routes every operation and
/// message to the shard owning its lock. Inbound batches are split into
/// per-shard FIFO inboxes and drained **round-robin, one message per
/// shard per turn, starting from shard 0** — the same interleaving
/// freedom the parallel runtime's worker threads have, but reproducible,
/// so the simulator replays it under virtual time and the model checker
/// explores it exhaustively.
///
/// Implements [`ConcurrencyProtocol`] and [`Inspect`], so it drops into
/// `Sim`, `Checker` and every generic test harness in place of
/// [`LockSpace`].
#[derive(Debug, Clone)]
pub struct ShardedSpace {
    spec: ShardSpec,
    shards: Vec<LockSpace>,
    inboxes: Vec<VecDeque<(NodeId, Envelope)>>,
    counters: Vec<ShardCounters>,
}

impl ShardedSpace {
    /// Creates the sharded state for `lock_count` locks at node `id`,
    /// with `token_home` initially holding every token.
    pub fn new(
        id: NodeId,
        lock_count: usize,
        token_home: NodeId,
        config: ProtocolConfig,
        spec: ShardSpec,
    ) -> Self {
        Self::with_homes(id, &vec![token_home; lock_count], config, spec)
    }

    /// Like [`ShardedSpace::new`] but with one initial token home per
    /// lock, mirroring [`LockSpace::with_homes`].
    pub fn with_homes(
        id: NodeId,
        homes: &[NodeId],
        config: ProtocolConfig,
        spec: ShardSpec,
    ) -> Self {
        let shards = (0..spec.shards()).map(|_| LockSpace::with_homes(id, homes, config)).collect();
        ShardedSpace {
            spec,
            shards,
            inboxes: vec![VecDeque::new(); spec.shards()],
            counters: vec![ShardCounters::default(); spec.shards()],
        }
    }

    /// The lock → shard mapping in use.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Number of locks managed (same across all shards).
    pub fn lock_count(&self) -> usize {
        self.shards[0].lock_count()
    }

    /// Rebuilds every shard from a recovery install, mirroring
    /// [`LockSpace::rebuild_from_install`]. All shards rebuild their
    /// full-width spaces; each shard only ever touches the locks that
    /// hash to it, so the off-shard copies merely return to a clean
    /// baseline consistent with the new epoch.
    pub(crate) fn rebuild_from_install(
        &mut self,
        homes: &[NodeId],
        copysets: &[Vec<(NodeId, Mode)>],
        keep_held: bool,
    ) {
        debug_assert!(self.inboxes.iter().all(VecDeque::is_empty), "rebuild between steps only");
        for shard in &mut self.shards {
            shard.rebuild_from_install(homes, copysets, keep_held);
        }
    }

    /// Per-shard routing statistics, indexed by shard.
    pub fn shard_counters(&self) -> &[ShardCounters] {
        &self.counters
    }

    /// The shard-local [`LockSpace`] owning `lock`.
    pub fn shard_for(&self, lock: LockId) -> &LockSpace {
        &self.shards[self.spec.shard_of(lock)]
    }

    fn shard_mut(&mut self, lock: LockId) -> &mut LockSpace {
        let s = self.spec.shard_of(lock);
        self.counters[s].api_ops += 1;
        &mut self.shards[s]
    }

    /// Drains all shard inboxes round-robin (one message per non-empty
    /// shard per turn, shard 0 first) until every inbox is empty. All
    /// effects land in `fx`, so sends from different shards to the same
    /// peer still coalesce into one step batch.
    fn drain_round_robin(&mut self, fx: &mut EffectSink<Envelope>) {
        loop {
            let mut progressed = false;
            for s in 0..self.shards.len() {
                if let Some((from, envelope)) = self.inboxes[s].pop_front() {
                    self.shards[s].on_message(from, envelope, fx);
                    progressed = true;
                }
            }
            if !progressed {
                return;
            }
        }
    }

    fn route(&mut self, from: NodeId, message: Envelope) {
        let s = self.spec.shard_of(message.lock);
        self.inboxes[s].push_back((from, message));
        self.counters[s].routed += 1;
        self.counters[s].max_depth = self.counters[s].max_depth.max(self.inboxes[s].len() as u64);
    }
}

impl ConcurrencyProtocol for ShardedSpace {
    type Message = Envelope;

    fn node_id(&self) -> NodeId {
        self.shards[0].node_id()
    }

    fn request(
        &mut self,
        lock: LockId,
        mode: Mode,
        ticket: Ticket,
        fx: &mut EffectSink<Envelope>,
    ) -> Result<(), ProtocolError> {
        self.shard_mut(lock).request(lock, mode, ticket, fx)
    }

    fn request_with_priority(
        &mut self,
        lock: LockId,
        mode: Mode,
        ticket: Ticket,
        priority: Priority,
        fx: &mut EffectSink<Envelope>,
    ) -> Result<(), ProtocolError> {
        self.shard_mut(lock).request_with_priority(lock, mode, ticket, priority, fx)
    }

    fn release(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        fx: &mut EffectSink<Envelope>,
    ) -> Result<(), ProtocolError> {
        self.shard_mut(lock).release(lock, ticket, fx)
    }

    fn upgrade(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        fx: &mut EffectSink<Envelope>,
    ) -> Result<(), ProtocolError> {
        self.shard_mut(lock).upgrade(lock, ticket, fx)
    }

    fn try_request(
        &mut self,
        lock: LockId,
        mode: Mode,
        ticket: Ticket,
        fx: &mut EffectSink<Envelope>,
    ) -> Result<bool, ProtocolError> {
        self.shard_mut(lock).try_request(lock, mode, ticket, fx)
    }

    fn downgrade(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        new_mode: Mode,
        fx: &mut EffectSink<Envelope>,
    ) -> Result<(), ProtocolError> {
        self.shard_mut(lock).downgrade(lock, ticket, new_mode, fx)
    }

    fn cancel(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        fx: &mut EffectSink<Envelope>,
    ) -> Result<CancelOutcome, ProtocolError> {
        self.shard_mut(lock).cancel(lock, ticket, fx)
    }

    fn on_message(&mut self, from: NodeId, message: Envelope, fx: &mut EffectSink<Envelope>) {
        self.route(from, message);
        self.drain_round_robin(fx);
    }

    fn on_message_batch(
        &mut self,
        from: NodeId,
        messages: Vec<Envelope>,
        fx: &mut EffectSink<Envelope>,
    ) {
        // Split first, then drain: messages of one lock keep their
        // arrival order inside one FIFO inbox, while different locks'
        // messages interleave across shards — the exact reordering the
        // parallel runtime can produce.
        for message in messages {
            self.route(from, message);
        }
        self.drain_round_robin(fx);
    }

    fn on_timer(&mut self, token: u64, fx: &mut EffectSink<Envelope>) {
        for shard in &mut self.shards {
            shard.on_timer(token, fx);
        }
    }

    fn on_link_reset(&mut self, peer: NodeId, fx: &mut EffectSink<Envelope>) {
        for shard in &mut self.shards {
            shard.on_link_reset(peer, fx);
        }
    }

    fn is_quiescent(&self) -> bool {
        self.inboxes.iter().all(VecDeque::is_empty)
            && self.shards.iter().all(ConcurrencyProtocol::is_quiescent)
    }
}

impl Inspect for ShardedSpace {
    fn held_modes(&self, lock: LockId) -> Vec<Mode> {
        self.shard_for(lock).held_modes(lock)
    }

    fn holds_token(&self, lock: LockId) -> bool {
        self.shard_for(lock).holds_token(lock)
    }

    fn lock_node(&self, lock: LockId) -> Option<&crate::LockNode> {
        self.shard_for(lock).lock_node(lock)
    }

    fn open_requests(&self) -> Vec<(LockId, Ticket)> {
        self.shards.iter().flat_map(Inspect::open_requests).collect()
    }
}

/// Equality over protocol state only: the shard map and each shard's
/// lock state. Inboxes are always empty between steps (every entry point
/// drains fully) and counters are observability, so both are excluded —
/// exactly as [`LockSpace`] excludes its scratch sink.
impl PartialEq for ShardedSpace {
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec && self.shards == other.shards
    }
}

impl Eq for ShardedSpace {}

impl std::hash::Hash for ShardedSpace {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        debug_assert!(
            self.inboxes.iter().all(VecDeque::is_empty),
            "fingerprinting a sharded space with undrained inboxes"
        );
        self.spec.hash(state);
        self.shards.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effect::Effect;

    fn spaces(nodes: u32, locks: usize, shards: usize) -> Vec<ShardedSpace> {
        let cfg = ProtocolConfig::default();
        (0..nodes)
            .map(|i| ShardedSpace::new(NodeId(i), locks, NodeId(0), cfg, ShardSpec::new(shards)))
            .collect()
    }

    #[test]
    fn shard_of_is_total_and_covers_all_shards() {
        let spec = ShardSpec::new(4);
        let mut seen = [false; 4];
        for l in 0..64u32 {
            let s = spec.shard_of(LockId(l));
            assert!(s < 4);
            assert_eq!(s, spec.shard_of(LockId(l)));
            seen[s] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 dense ids should hit all 4 shards");
    }

    #[test]
    fn single_shard_routes_everything_to_shard_zero() {
        let spec = ShardSpec::new(1);
        for l in 0..100u32 {
            assert_eq!(spec.shard_of(LockId(l)), 0);
        }
    }

    #[test]
    fn sharded_space_matches_lock_space_on_a_two_node_handshake() {
        let cfg = ProtocolConfig::default();
        let mut plain_a = LockSpace::new(NodeId(0), 8, NodeId(0), cfg);
        let mut plain_b = LockSpace::new(NodeId(1), 8, NodeId(0), cfg);
        let mut v = spaces(2, 8, 4);
        let (sa, rest) = v.split_at_mut(1);
        let (sharded_a, sharded_b) = (&mut sa[0], &mut rest[0]);
        let mut fx = EffectSink::new();

        for (lock, ticket) in [(LockId(3), Ticket(1)), (LockId(6), Ticket(2))] {
            // Plain run.
            plain_b.request(lock, Mode::Write, ticket, &mut fx).unwrap();
            let plain_msgs: Vec<_> = fx.drain().collect();
            // Sharded run emits the identical request message.
            sharded_b.request(lock, Mode::Write, ticket, &mut fx).unwrap();
            let sharded_msgs: Vec<_> = fx.drain().collect();
            assert_eq!(plain_msgs, sharded_msgs);
            for e in plain_msgs {
                if let Effect::Send { message, .. } = e {
                    plain_a.on_message(NodeId(1), message.clone(), &mut fx);
                    let plain_replies: Vec<_> = fx.drain().collect();
                    sharded_a.on_message(NodeId(1), message, &mut fx);
                    let sharded_replies: Vec<_> = fx.drain().collect();
                    assert_eq!(plain_replies, sharded_replies);
                    for r in plain_replies {
                        if let Effect::Send { message, .. } = r {
                            plain_b.on_message(NodeId(0), message.clone(), &mut fx);
                            let g1: Vec<_> = fx.drain().collect();
                            sharded_b.on_message(NodeId(0), message, &mut fx);
                            let g2: Vec<_> = fx.drain().collect();
                            assert_eq!(g1, g2);
                            assert!(g1.iter().any(|e| matches!(e, Effect::Granted { .. })));
                        }
                    }
                }
            }
        }
        assert!(sharded_b.holds_token(LockId(3)));
        assert!(sharded_b.holds_token(LockId(6)));
    }

    #[test]
    fn batch_preserves_per_lock_order_across_shards() {
        // Two locks on (very likely) different shards; a batch carrying
        // request-then-release per lock must process each lock's pair in
        // order regardless of the shard interleaving.
        let mut v = spaces(2, 16, 4);
        let (a_split, rest) = v.split_at_mut(1);
        let (a, b) = (&mut a_split[0], &mut rest[0]);
        let mut fx = EffectSink::new();
        let locks = [LockId(1), LockId(2), LockId(5), LockId(9)];
        let mut outbound = Vec::new();
        for (i, &lock) in locks.iter().enumerate() {
            b.request(lock, Mode::Write, Ticket(i as u64 + 1), &mut fx).unwrap();
            for e in fx.drain() {
                if let Effect::Send { message, .. } = e {
                    outbound.push(message);
                }
            }
        }
        // Deliver all four requests as a single inbound batch at the
        // token home; every lock must be served.
        a.on_message_batch(NodeId(1), outbound, &mut fx);
        let replies: Vec<_> = fx
            .drain()
            .filter_map(|e| match e {
                Effect::Send { message, .. } => Some(message),
                _ => None,
            })
            .collect();
        b.on_message_batch(NodeId(0), replies, &mut fx);
        let granted: Vec<Ticket> = fx
            .drain()
            .filter_map(|e| match e {
                Effect::Granted { ticket, .. } => Some(ticket),
                _ => None,
            })
            .collect();
        assert_eq!(granted.len(), locks.len(), "every lock granted exactly once");
        assert!(a.is_quiescent() && b.is_quiescent());
    }

    #[test]
    fn shard_counters_track_routing() {
        let mut v = spaces(2, 16, 4);
        let (a_split, rest) = v.split_at_mut(1);
        let (a, b) = (&mut a_split[0], &mut rest[0]);
        let mut fx = EffectSink::new();
        let mut outbound = Vec::new();
        for l in 0..16u32 {
            b.request(LockId(l), Mode::Read, Ticket(l as u64 + 1), &mut fx).unwrap();
            for e in fx.drain() {
                if let Effect::Send { message, .. } = e {
                    outbound.push(message);
                }
            }
        }
        a.on_message_batch(NodeId(1), outbound, &mut fx);
        let api_ops: u64 = b.shard_counters().iter().map(|c| c.api_ops).sum();
        assert_eq!(api_ops, 16);
        let routed: u64 = a.shard_counters().iter().map(|c| c.routed).sum();
        assert_eq!(routed, 16);
        assert!(a.shard_counters().iter().all(|c| c.max_depth >= 1));
        assert!(a.shard_counters().iter().any(|c| c.max_depth > 1), "16 ids over 4 shards queue");
    }

    #[test]
    fn quiescence_and_equality_ignore_counters() {
        let mut v = spaces(1, 4, 2);
        let a = &mut v[0];
        let mut fx = EffectSink::new();
        a.request(LockId(0), Mode::Read, Ticket(1), &mut fx).unwrap();
        let baseline = a.clone();
        // An unknown lock bumps the routing counters but is rejected
        // before any protocol state changes.
        a.request(LockId(99), Mode::Read, Ticket(2), &mut fx).unwrap_err();
        assert_ne!(a.shard_counters(), baseline.shard_counters());
        assert_eq!(*a, baseline, "counters differ but protocol state is equal");
        fx.drain().count();
        a.release(LockId(0), Ticket(1), &mut fx).unwrap();
        assert_ne!(*a, baseline, "held lock is protocol state");
        assert!(a.is_quiescent());
    }
}
