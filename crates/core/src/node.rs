//! The per-lock node state machine (the paper's Figure 4).
//!
//! One [`LockNode`] instance exists per `(node, lock)` pair. It is
//! sans-I/O: the host calls [`LockNode::request`], [`LockNode::release`],
//! [`LockNode::upgrade`] and [`LockNode::on_message`], and executes the
//! returned [`crate::Effect`]s (message sends and grant notifications).
//!
//! # Protocol summary
//!
//! Nodes form a logical tree via `parent` pointers; the root holds the
//! *token*. A node's *copyset* is the map from children to the modes they
//! own. A node *owns* the strongest mode held anywhere in its subtree
//! (Definition 3), which makes purely local grant decisions safe:
//!
//! * **Rule 2** — a local request is satisfied without messages when the
//!   owned mode is compatible and at least as strong (and not frozen);
//!   otherwise a request message travels toward the token.
//! * **Rule 3.1** — a non-token node grants a request iff
//!   `compatible(owned, req) ∧ owned ≥ req` (Table 1(b)); the requester
//!   becomes its child.
//! * **Rule 3.2** — the token node serves any compatible request: a copy
//!   grant if `owned ≥ req`, otherwise the token itself moves.
//! * **Rule 4** — requests that cannot be granted are absorbed into local
//!   queues when later service is guaranteed (Table 2(a)) and forwarded
//!   toward the token otherwise; the token queues unconditionally.
//! * **Rule 5** — queued requests are reconsidered on grants and
//!   releases; a release travels to the parent only when the subtree's
//!   owned mode actually changes.
//! * **Rule 6** — while a request waits at the token, all modes
//!   incompatible with it are *frozen* (Table 2(b)); freeze/update
//!   notifications keep potential granters from serving such modes,
//!   restoring FIFO fairness.
//! * **Rule 7** — an upgrade atomically turns a held `U` into `W` once
//!   the copyset drains, with priority over all queued requests.

use crate::config::ProtocolConfig;
use crate::effect::EffectSink;
use crate::error::ProtocolError;
use crate::ids::{LockId, NodeId, Priority, Stamp, Ticket};
use crate::message::Payload;
use crate::mode::{
    compatible_owned, frozen_modes, grantable, grantable_set, owned_strength, queue_or_forward,
    stronger, Mode, ModeSet, QueueDecision,
};
use crate::observe::{ProtocolEvent, SpanId};
use crate::protocol::CancelOutcome;
use crate::queue::{QueueEntry, RequestQueue, Waiter};
use std::collections::{BTreeMap, BTreeSet};

/// A locally pending request: sent toward the token, grant not yet received.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PendingRequest {
    ticket: Ticket,
    mode: Mode,
    stamp: Stamp,
    priority: Priority,
}

/// Sans-I/O state machine for one lock at one node.
///
/// ```
/// use hlock_core::{EffectSink, LockId, LockNode, Mode, NodeId, ProtocolConfig, Ticket};
///
/// // Two nodes; node 0 starts as the token node for lock 0.
/// let cfg = ProtocolConfig::default();
/// let mut a = LockNode::new(NodeId(0), LockId(0), NodeId(0), cfg);
/// let mut fx = EffectSink::new();
///
/// // The token node acquires a read lock without any messages (Rule 2).
/// a.request(Mode::Read, Ticket(1), &mut fx).unwrap();
/// assert_eq!(fx.len(), 1); // just the local grant
/// # let _ = fx.drain().count();
/// a.release(Ticket(1), &mut fx).unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LockNode {
    id: NodeId,
    lock: LockId,
    config: ProtocolConfig,
    is_token: bool,
    /// Parent pointer; `None` iff this node is the token node.
    parent: Option<NodeId>,
    /// Copyset: children and the modes they own (Definition 4).
    children: BTreeMap<NodeId, Mode>,
    /// Local critical-section entries: `(ticket, held mode)`.
    held: Vec<(Ticket, Mode)>,
    /// Requests sent toward the token, not yet granted.
    pending: Vec<PendingRequest>,
    /// Locally absorbed requests (Rule 4).
    queue: RequestQueue,
    /// Modes currently frozen at this node (Rule 6).
    frozen: ModeSet,
    /// What we last told each child about frozen modes (their relevant slice).
    child_frozen: BTreeMap<NodeId, ModeSet>,
    /// The owned mode our parent currently believes we have.
    reported_owned: Option<Mode>,
    /// Tickets whose in-flight requests were cancelled: their grants are
    /// absorbed and relinquished on arrival.
    cancelled: BTreeSet<Ticket>,
    /// Lamport clock for FIFO stamps.
    clock: Stamp,
}

impl LockNode {
    /// Creates the state for `lock` at node `id`, with `token_home` as the
    /// initial token node (all other nodes start as its direct children in
    /// the logical tree, holding nothing).
    pub fn new(id: NodeId, lock: LockId, token_home: NodeId, config: ProtocolConfig) -> Self {
        let is_token = id == token_home;
        LockNode {
            id,
            lock,
            config,
            is_token,
            parent: if is_token { None } else { Some(token_home) },
            children: BTreeMap::new(),
            held: Vec::new(),
            pending: Vec::new(),
            queue: RequestQueue::new(),
            frozen: ModeSet::EMPTY,
            child_frozen: BTreeMap::new(),
            reported_owned: None,
            cancelled: BTreeSet::new(),
            clock: Stamp::ZERO,
        }
    }

    /// Rebuilds the state machine from a recovery install (the
    /// authoritative post-crash state computed by the epoch coordinator).
    ///
    /// The logical tree flattens to depth one: `home` is the token node
    /// and every survivor with an owned mode is a direct child. `held`
    /// is this node's surviving critical-section entries (empty for a
    /// false-positive rejoiner whose grants were voided); `copyset` is
    /// only consulted when this node *is* the new home. Queues, pending
    /// requests and frozen sets start empty — outstanding requests are
    /// re-issued by their origins after the rebuild. The Lamport `clock`
    /// is preserved so stamps never move backwards across an epoch.
    pub(crate) fn recovered(
        id: NodeId,
        lock: LockId,
        config: ProtocolConfig,
        home: NodeId,
        copyset: &[(NodeId, Mode)],
        held: Vec<(Ticket, Mode)>,
        clock: Stamp,
    ) -> Self {
        let is_token = id == home;
        let mut children = BTreeMap::new();
        if is_token {
            for &(child, mode) in copyset {
                if child != id {
                    children.insert(child, mode);
                }
            }
        }
        let reported_owned = if is_token {
            None
        } else {
            held.iter().map(|&(_, m)| m).fold(None, |acc, m| stronger(acc, Some(m)))
        };
        LockNode {
            id,
            lock,
            config,
            is_token,
            parent: if is_token { None } else { Some(home) },
            children,
            held,
            pending: Vec::new(),
            queue: RequestQueue::new(),
            frozen: ModeSet::EMPTY,
            child_frozen: BTreeMap::new(),
            reported_owned,
            cancelled: BTreeSet::new(),
            clock,
        }
    }

    /// This lock's survivor state as reported to a recovery coordinator:
    /// token possession plus the strongest locally *held* mode. Children
    /// are deliberately excluded — every survivor reports for itself, and
    /// the rebuilt tree is flat.
    pub(crate) fn survivor_report(&self) -> crate::message::LockReport {
        let owned = self.held.iter().map(|&(_, m)| m).fold(None, |acc, m| stronger(acc, Some(m)));
        crate::message::LockReport { holds_token: self.is_token, owned }
    }

    /// Outstanding work to re-issue after a rebuild: not-yet-granted
    /// plain requests (in-flight or locally queued) as
    /// `(ticket, mode, priority)`, plus tickets with a pending Rule-7
    /// upgrade (they keep holding `U` while the `W` entry waits).
    /// Cancelled in-flight requests are omitted: their spans are closed,
    /// nobody awaits their grants, and their stale grants are fenced.
    pub(crate) fn outstanding_snapshot(&self) -> (Vec<(Ticket, Mode, Priority)>, Vec<Ticket>) {
        let mut requests: Vec<(Ticket, Mode, Priority)> = self
            .pending
            .iter()
            .filter(|p| !self.cancelled.contains(&p.ticket))
            .map(|p| (p.ticket, p.mode, p.priority))
            .collect();
        let mut upgrades = Vec::new();
        for entry in self.queue.iter() {
            match entry.waiter {
                Waiter::Local(t) => requests.push((t, entry.mode, entry.priority)),
                Waiter::LocalUpgrade(t) => upgrades.push(t),
                Waiter::Remote(_) => {}
            }
        }
        (requests, upgrades)
    }

    /// The current Lamport clock (preserved across recovery rebuilds).
    pub(crate) fn clock(&self) -> Stamp {
        self.clock
    }

    /// The protocol configuration this state machine was built with.
    pub(crate) fn config(&self) -> ProtocolConfig {
        self.config
    }

    // ------------------------------------------------------------------
    // Introspection (used by hosts, invariant checkers and tests)
    // ------------------------------------------------------------------

    /// This node's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The lock this state machine manages.
    pub fn lock(&self) -> LockId {
        self.lock
    }

    /// Whether this node currently holds the token (is the tree root).
    pub fn is_token(&self) -> bool {
        self.is_token
    }

    /// Current parent pointer (`None` iff token node).
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// The copyset: children and their owned modes.
    pub fn children(&self) -> &BTreeMap<NodeId, Mode> {
        &self.children
    }

    /// Modes held locally (inside critical sections), with their tickets.
    pub fn held(&self) -> &[(Ticket, Mode)] {
        &self.held
    }

    /// The owned mode: strongest mode held in the subtree rooted here
    /// (Definition 3). `None` is `∅`.
    pub fn owned(&self) -> Option<Mode> {
        let held_max =
            self.held.iter().map(|&(_, m)| m).fold(None, |acc, m| stronger(acc, Some(m)));
        self.children.values().fold(held_max, |acc, &m| stronger(acc, Some(m)))
    }

    /// Currently frozen modes at this node.
    pub fn frozen(&self) -> ModeSet {
        self.frozen
    }

    /// Number of locally queued (absorbed) requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Number of requests in flight toward the token.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Whether this node has no protocol work in progress (no pending
    /// requests and an empty queue). Held modes are the application's
    /// business and do not affect quiescence.
    pub fn is_quiescent(&self) -> bool {
        self.pending.is_empty() && self.queue.is_empty()
    }

    /// True when this node is completely uninvolved with the lock:
    /// nothing held, owned, pending or queued. Such nodes may safely
    /// repoint their parent (path compression).
    fn is_inactive(&self) -> bool {
        !self.is_token
            && self.held.is_empty()
            && self.children.is_empty()
            && self.pending.is_empty()
            && self.queue.is_empty()
    }

    /// Drops frozen bits this node could never act on: only modes in
    /// `grantable_set(owned)` influence its grants and local
    /// acquisitions, and only those does its parent track (and later
    /// unfreeze). Keeping others would leak stale freezes.
    fn clamp_frozen(&mut self) {
        if !self.is_token {
            self.frozen = self.frozen.intersection(grantable_set(self.owned()));
        }
    }

    fn strongest_pending(&self) -> Option<Mode> {
        self.pending.iter().map(|p| p.mode).fold(None, |acc, m| stronger(acc, Some(m)))
    }

    /// The span of one of this node's own requests.
    fn own_span(&self, ticket: Ticket) -> SpanId {
        SpanId::new(self.id, ticket)
    }

    /// Reports grant of a local request: the effect plus the span-closing
    /// [`ProtocolEvent::Granted`] — always emitted together so every span
    /// closes exactly once.
    fn grant_local(&self, ticket: Ticket, mode: Mode, fx: &mut EffectSink<Payload>) {
        fx.granted(self.lock, ticket, mode);
        fx.emit_with(|| ProtocolEvent::Granted {
            node: self.id,
            lock: self.lock,
            span: self.own_span(ticket),
            mode,
        });
    }

    /// Emits the freeze/unfreeze transition from `old` to the current
    /// frozen set, if it changed.
    fn emit_frozen_change(&self, old: ModeSet, fx: &mut EffectSink<Payload>) {
        let new = self.frozen;
        if new == old {
            return;
        }
        if old.difference(new).is_empty() {
            fx.emit_with(|| ProtocolEvent::ModeFrozen {
                node: self.id,
                lock: self.lock,
                modes: new.difference(old),
            });
        } else {
            fx.emit_with(|| ProtocolEvent::ModeUnfrozen {
                node: self.id,
                lock: self.lock,
                modes: new,
            });
        }
    }

    fn ticket_in_use(&self, ticket: Ticket) -> bool {
        self.held.iter().any(|&(t, _)| t == ticket)
            || self.pending.iter().any(|p| p.ticket == ticket)
            || self.queue.iter().any(
                |e| matches!(e.waiter, Waiter::Local(t) | Waiter::LocalUpgrade(t) if t == ticket),
            )
    }

    // ------------------------------------------------------------------
    // Public API: request / release / upgrade
    // ------------------------------------------------------------------

    /// Requests the lock in `mode` on behalf of local `ticket` (Rule 2).
    ///
    /// The grant is reported asynchronously as an
    /// [`crate::Effect::Granted`] with the same ticket — possibly within
    /// this very call if the request is satisfied locally.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::DuplicateTicket`] if `ticket` is already in use by
    /// an outstanding request or held lock.
    pub fn request(
        &mut self,
        mode: Mode,
        ticket: Ticket,
        fx: &mut EffectSink<Payload>,
    ) -> Result<(), ProtocolError> {
        self.request_with_priority(mode, ticket, Priority::NORMAL, fx)
    }

    /// Like [`LockNode::request`] but with an explicit [`Priority`]:
    /// queued requests are served highest-priority first, FIFO within a
    /// priority (the strict priority arbitration of the paper's §1).
    ///
    /// # Errors
    ///
    /// As for [`LockNode::request`].
    pub fn request_with_priority(
        &mut self,
        mode: Mode,
        ticket: Ticket,
        priority: Priority,
        fx: &mut EffectSink<Payload>,
    ) -> Result<(), ProtocolError> {
        if self.ticket_in_use(ticket) {
            return Err(ProtocolError::DuplicateTicket { ticket });
        }
        self.clock = self.clock.next();
        let stamp = self.clock;
        fx.emit_with(|| ProtocolEvent::RequestIssued {
            node: self.id,
            lock: self.lock,
            span: self.own_span(ticket),
            mode,
            priority,
        });
        let owned = self.owned();
        if self.is_token {
            // Rule 3.2 for the local caller: compatibility suffices.
            if compatible_owned(owned, mode) && !self.frozen.contains(mode) {
                self.held.push((ticket, mode));
                self.grant_local(ticket, mode, fx);
            } else {
                // Rule 4.2: the token node queues unconditionally.
                self.queue.push_back(QueueEntry::with_priority(
                    Waiter::Local(ticket),
                    mode,
                    stamp,
                    priority,
                ));
                fx.emit_with(|| ProtocolEvent::RequestQueued {
                    node: self.id,
                    lock: self.lock,
                    span: self.own_span(ticket),
                    mode,
                    queue_depth: self.queue.len(),
                });
                self.refresh_frozen(fx);
            }
            return Ok(());
        }
        // Rule 2 at a non-token node.
        if owned_strength(owned) >= mode.strength()
            && compatible_owned(owned, mode)
            && !self.frozen.contains(mode)
        {
            self.held.push((ticket, mode));
            self.grant_local(ticket, mode, fx);
            return Ok(());
        }
        // Cannot satisfy locally: queue behind a pending request when
        // Table 2(a) guarantees later service, else send upward.
        if self.config.absorb_requests
            && queue_or_forward(self.strongest_pending(), mode) == QueueDecision::Queue
        {
            self.queue.push_back(QueueEntry::with_priority(
                Waiter::Local(ticket),
                mode,
                stamp,
                priority,
            ));
            fx.emit_with(|| ProtocolEvent::RequestQueued {
                node: self.id,
                lock: self.lock,
                span: self.own_span(ticket),
                mode,
                queue_depth: self.queue.len(),
            });
        } else {
            self.send_own_request(ticket, mode, stamp, priority, fx);
        }
        Ok(())
    }

    /// Attempts to acquire `mode` **without any messages**: succeeds only
    /// on the Rule-2 local fast path (the node already owns a compatible,
    /// sufficiently strong, unfrozen mode — or is the token node and the
    /// mode is compatible). Never queues, never sends; returns `false`
    /// if a remote request would be needed.
    ///
    /// This is the natural `try_lock` of the CORBA Concurrency Service
    /// mapped onto the protocol: an immediate, communication-free answer.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::DuplicateTicket`] if `ticket` is already in use.
    pub fn try_request(
        &mut self,
        mode: Mode,
        ticket: Ticket,
        fx: &mut EffectSink<Payload>,
    ) -> Result<bool, ProtocolError> {
        if self.ticket_in_use(ticket) {
            return Err(ProtocolError::DuplicateTicket { ticket });
        }
        let owned = self.owned();
        let grantable_here = if self.is_token {
            compatible_owned(owned, mode) && !self.frozen.contains(mode) && self.queue.is_empty()
        } else {
            owned_strength(owned) >= mode.strength()
                && compatible_owned(owned, mode)
                && !self.frozen.contains(mode)
        };
        if grantable_here {
            self.clock = self.clock.next();
            fx.emit_with(|| ProtocolEvent::RequestIssued {
                node: self.id,
                lock: self.lock,
                span: self.own_span(ticket),
                mode,
                priority: Priority::NORMAL,
            });
            self.held.push((ticket, mode));
            self.grant_local(ticket, mode, fx);
        }
        Ok(grantable_here)
    }

    /// Releases the lock held by `ticket` (Rule 5 / `RequestUnlock`).
    ///
    /// Returns the mode that was released.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::NotHeld`] if `ticket` does not hold the lock
    /// (e.g. its request is still outstanding).
    pub fn release(
        &mut self,
        ticket: Ticket,
        fx: &mut EffectSink<Payload>,
    ) -> Result<Mode, ProtocolError> {
        let idx = self
            .held
            .iter()
            .position(|&(t, _)| t == ticket)
            .ok_or(ProtocolError::NotHeld { ticket })?;
        let (_, mode) = self.held.remove(idx);
        fx.emit_with(|| ProtocolEvent::Released { node: self.id, lock: self.lock, ticket, mode });
        self.after_ownership_change(fx);
        Ok(mode)
    }

    /// Upgrades a held `U` lock to `W` without releasing it (Rule 7).
    ///
    /// The upgrade takes precedence over every queued request and is
    /// reported as a `Granted` effect with mode `W` once all other holders
    /// have drained from the copyset. Upgrading an already-held `W` is a
    /// trivial no-op grant.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::NotHeld`] if `ticket` holds nothing;
    /// [`ProtocolError::UpgradeRequiresUpgradeLock`] if it holds a mode
    /// other than `U` or `W` (upgrading shared/intention modes is not
    /// deadlock-safe — that is what `U` exists for).
    pub fn upgrade(
        &mut self,
        ticket: Ticket,
        fx: &mut EffectSink<Payload>,
    ) -> Result<(), ProtocolError> {
        let held_mode = self
            .held
            .iter()
            .find(|&&(t, _)| t == ticket)
            .map(|&(_, m)| m)
            .ok_or(ProtocolError::NotHeld { ticket })?;
        if held_mode == Mode::Write {
            // Already exclusive: upgrading is a trivial no-op grant (the
            // same contract the exclusive-only baselines expose).
            fx.emit_with(|| ProtocolEvent::RequestIssued {
                node: self.id,
                lock: self.lock,
                span: self.own_span(ticket),
                mode: Mode::Write,
                priority: Priority::NORMAL,
            });
            self.grant_local(ticket, Mode::Write, fx);
            return Ok(());
        }
        if held_mode != Mode::Upgrade {
            return Err(ProtocolError::UpgradeRequiresUpgradeLock { ticket, held: held_mode });
        }
        // A held U implies this node is the token node: U requests are
        // never copy-granted (no mode is ≥ U and compatible with U).
        debug_assert!(self.is_token, "U holder must be the token node");
        self.clock = self.clock.next();
        fx.emit_with(|| ProtocolEvent::RequestIssued {
            node: self.id,
            lock: self.lock,
            span: self.own_span(ticket),
            mode: Mode::Write,
            priority: Priority::NORMAL,
        });
        self.queue.push_front(QueueEntry::new(
            Waiter::LocalUpgrade(ticket),
            Mode::Write,
            self.clock,
        ));
        self.serve_queue_token(fx);
        Ok(())
    }

    /// Downgrades a held lock to a weaker mode without releasing it (the
    /// safe direction of CORBA CCS `change_mode`): `W→{U,IW,R,IR}`,
    /// `U→{R,IR}`, `R→{IR}`, `IW→{IR}`. Purely local plus the usual
    /// owned-mode weakening release (Rule 5); may unblock queued
    /// requests immediately.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::NotHeld`] if the ticket holds nothing;
    /// [`ProtocolError::InvalidDowngrade`] if the change could admit a
    /// holder incompatible with the current one.
    pub fn downgrade(
        &mut self,
        ticket: Ticket,
        new_mode: Mode,
        fx: &mut EffectSink<Payload>,
    ) -> Result<(), ProtocolError> {
        let idx = self
            .held
            .iter()
            .position(|&(t, _)| t == ticket)
            .ok_or(ProtocolError::NotHeld { ticket })?;
        let from = self.held[idx].1;
        if !crate::mode::can_downgrade(from, new_mode) {
            return Err(ProtocolError::InvalidDowngrade { ticket, from, to: new_mode });
        }
        if from != new_mode {
            self.held[idx].1 = new_mode;
            self.after_ownership_change(fx);
        }
        Ok(())
    }

    /// Cancels an outstanding (not yet granted) request (e.g. on a
    /// caller-side timeout).
    ///
    /// A locally queued request is removed outright; a request already in
    /// flight cannot be recalled, so its eventual grant is absorbed and
    /// relinquished automatically without a `Granted` effect. A pending
    /// *upgrade* is cancellable too: the queued `W` entry is removed and
    /// the ticket keeps its original `U` grant.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::NotCancellable`] if the ticket already holds the
    /// lock with no upgrade pending (release it instead);
    /// [`ProtocolError::NotHeld`] if the ticket is unknown.
    pub fn cancel(
        &mut self,
        ticket: Ticket,
        fx: &mut EffectSink<Payload>,
    ) -> Result<CancelOutcome, ProtocolError> {
        // Queue removal runs before the held check: a ticket mid-upgrade
        // both holds U and has a LocalUpgrade entry queued, and cancelling
        // it must revert to the held U rather than fail as NotCancellable
        // (which would strand the queued W entry forever).
        let queued = self.queue.remove_waiter(Waiter::Local(ticket))
            + self.queue.remove_waiter(Waiter::LocalUpgrade(ticket));
        if queued > 0 {
            fx.emit_with(|| ProtocolEvent::RequestCancelled {
                node: self.id,
                lock: self.lock,
                span: self.own_span(ticket),
            });
            // Removing a queue entry may unfreeze modes and unblock the
            // entries behind it.
            if self.is_token {
                self.serve_queue_token(fx);
            } else {
                self.serve_queue_nontoken(fx);
            }
            return Ok(CancelOutcome::Cancelled);
        }
        if self.held.iter().any(|&(t, _)| t == ticket) {
            return Err(ProtocolError::NotCancellable { ticket });
        }
        if self.pending.iter().any(|p| p.ticket == ticket) {
            self.cancelled.insert(ticket);
            fx.emit_with(|| ProtocolEvent::RequestCancelled {
                node: self.id,
                lock: self.lock,
                span: self.own_span(ticket),
            });
            return Ok(CancelOutcome::WillAbort);
        }
        Err(ProtocolError::NotHeld { ticket })
    }

    /// Handles a protocol message from `from`.
    pub fn on_message(&mut self, from: NodeId, payload: Payload, fx: &mut EffectSink<Payload>) {
        match payload {
            Payload::Request { origin, mode, stamp, priority, span } => {
                self.clock = self.clock.merged(stamp);
                self.handle_request(from, origin, mode, stamp, priority, span, fx);
            }
            Payload::Grant { mode, frozen } => {
                self.clock = self.clock.next();
                self.handle_grant(from, mode, frozen, fx);
            }
            Payload::Token { mode, queue, sender_owned } => {
                self.clock = self.clock.next();
                self.handle_token(from, mode, queue, sender_owned, fx);
            }
            Payload::Release { new_owned } => {
                self.clock = self.clock.next();
                self.handle_release(from, new_owned, fx);
            }
            Payload::Freeze { modes } => {
                self.clock = self.clock.next();
                self.handle_freeze(from, modes, fx);
            }
            Payload::Update { frozen } => {
                self.clock = self.clock.next();
                self.handle_update(from, frozen, fx);
            }
        }
    }

    // ------------------------------------------------------------------
    // Message handlers
    // ------------------------------------------------------------------

    /// `HandleRequest` of Figure 4.
    #[allow(clippy::too_many_arguments)]
    fn handle_request(
        &mut self,
        _from: NodeId,
        origin: NodeId,
        mode: Mode,
        stamp: Stamp,
        priority: Priority,
        span: Ticket,
        fx: &mut EffectSink<Payload>,
    ) {
        if origin == self.id {
            // Our own request found its way back (possible during token
            // movement: we became the token while the request was in
            // flight). Resolve it against our pending list.
            self.handle_own_request_returned(mode, stamp, priority, fx);
            return;
        }
        let owned = self.owned();
        if self.is_token {
            // Rule 3.2: compatibility is necessary and sufficient, subject
            // to freezing (Rule 6).
            if compatible_owned(owned, mode) && !self.frozen.contains(mode) {
                self.serve_remote_at_token(origin, mode, span, fx);
            } else {
                // Rule 4.2: queue locally regardless of pending requests.
                self.queue.push_back(
                    QueueEntry::with_priority(Waiter::Remote(origin), mode, stamp, priority)
                        .with_span(span),
                );
                fx.emit_with(|| ProtocolEvent::RequestQueued {
                    node: self.id,
                    lock: self.lock,
                    span: SpanId::new(origin, span),
                    mode,
                    queue_depth: self.queue.len(),
                });
                self.refresh_frozen(fx);
            }
            return;
        }
        // Rule 3.1: grant from a non-token node when owned is compatible
        // and at least as strong (Table 1(b)) and the mode is not frozen.
        if grantable(owned, mode) && !self.frozen.contains(mode) {
            self.grant_copy(origin, mode, span, fx);
            return;
        }
        // Rule 4.1: queue or forward per Table 2(a).
        if self.config.absorb_requests
            && queue_or_forward(self.strongest_pending(), mode) == QueueDecision::Queue
        {
            self.queue.push_back(
                QueueEntry::with_priority(Waiter::Remote(origin), mode, stamp, priority)
                    .with_span(span),
            );
            fx.emit_with(|| ProtocolEvent::RequestQueued {
                node: self.id,
                lock: self.lock,
                span: SpanId::new(origin, span),
                mode,
                queue_depth: self.queue.len(),
            });
            return;
        }
        self.forward_request(origin, mode, stamp, priority, span, fx);
    }

    /// `ReceiveGrant` of Figure 4: a copy grant for one of our pending
    /// requests.
    fn handle_grant(
        &mut self,
        from: NodeId,
        mode: Mode,
        frozen: ModeSet,
        fx: &mut EffectSink<Payload>,
    ) {
        let Some(idx) = self.pending.iter().position(|p| p.mode == mode) else {
            // No matching pending request: a duplicate delivery (possible
            // under at-least-once transports). Ignoring is safe — the
            // first copy already installed the grant.
            return;
        };
        let p = self.pending.remove(idx);
        // Re-parent to the granter. If the old parent's copyset accounts
        // us (we reported a non-∅ owned mode there), deregister: our modes
        // are now tracked by the granter (this produces the "releases due
        // to the propagation path" the paper's Figure 7 discussion
        // mentions).
        if self.parent != Some(from) {
            if let Some(old) = self.parent {
                fx.emit_with(|| ProtocolEvent::PathReversal {
                    node: self.id,
                    lock: self.lock,
                    old_parent: old,
                });
                if self.reported_owned.is_some() {
                    fx.send(old, Payload::Release { new_owned: None });
                    fx.emit_with(|| ProtocolEvent::ReleaseSent {
                        node: self.id,
                        lock: self.lock,
                        new_owned: None,
                    });
                }
            }
            self.parent = Some(from);
        }
        self.held.push((p.ticket, mode));
        self.reported_owned = stronger(self.reported_owned, Some(mode));
        let old_frozen = self.frozen;
        self.frozen = frozen;
        self.clamp_frozen();
        self.emit_frozen_change(old_frozen, fx);
        if self.cancelled.remove(&p.ticket) {
            // The caller gave up on this request: accept the grant to
            // keep the granter's copyset consistent, then let it go. The
            // span was already closed when `cancel` reported `WillAbort`,
            // so no span event is emitted here.
            self.propagate_freezes(fx);
            let released = self.release(p.ticket, fx);
            debug_assert!(released.is_ok());
            return;
        }
        self.grant_local(p.ticket, mode, fx);
        self.propagate_freezes(fx);
        self.serve_queue_nontoken(fx);
    }

    /// `ReceiveToken` of Figure 4: we become the new token node.
    fn handle_token(
        &mut self,
        from: NodeId,
        mode: Mode,
        queue: Vec<QueueEntry>,
        sender_owned: Option<Mode>,
        fx: &mut EffectSink<Payload>,
    ) {
        let Some(idx) = self.pending.iter().position(|p| p.mode == mode) else {
            // Duplicate token delivery (at-least-once transport): the
            // first copy made us the token node already; ignore.
            return;
        };
        let p = self.pending.remove(idx);
        // Deregister from the old parent's copyset: the new token node is
        // the root and accounted nowhere. (If the sender *is* the old
        // parent, its `transfer_token` already dropped us.)
        if self.parent != Some(from) && self.reported_owned.is_some() {
            if let Some(old) = self.parent {
                fx.send(old, Payload::Release { new_owned: None });
                fx.emit_with(|| ProtocolEvent::ReleaseSent {
                    node: self.id,
                    lock: self.lock,
                    new_owned: None,
                });
            }
        }
        self.is_token = true;
        self.parent = None;
        self.reported_owned = None;
        // Footnote b: the sender may still own a mode and then becomes our
        // child.
        if let Some(owned) = sender_owned {
            self.children.insert(from, owned);
        }
        // Footnote c: merge the travelling queue FIFO.
        self.queue.merge(queue);
        self.held.push((p.ticket, mode));
        // `child_frozen` keeps tracking what each child was told — needed
        // to *unfreeze* them later. New children (e.g. the sender) start
        // at the conservative default (nothing told).
        if self.cancelled.remove(&p.ticket) {
            // Cancelled while the token travelled: we keep the token
            // (someone must) but relinquish the grant immediately. The
            // span was already closed when `cancel` reported `WillAbort`.
            let released = self.release(p.ticket, fx);
            debug_assert!(released.is_ok());
            self.refresh_frozen(fx);
            self.serve_queue_token(fx);
            return;
        }
        fx.emit_with(|| ProtocolEvent::TokenReceived {
            node: self.id,
            lock: self.lock,
            span: self.own_span(p.ticket),
            mode,
        });
        self.grant_local(p.ticket, mode, fx);
        self.refresh_frozen(fx);
        self.serve_queue_token(fx);
    }

    /// `HandleRelease` of Figure 4: a child's subtree weakened.
    fn handle_release(
        &mut self,
        from: NodeId,
        new_owned: Option<Mode>,
        fx: &mut EffectSink<Payload>,
    ) {
        match new_owned {
            Some(m) => {
                self.children.insert(from, m);
            }
            None => {
                self.children.remove(&from);
                self.child_frozen.remove(&from);
            }
        }
        fx.emit_with(|| ProtocolEvent::CopyRevoked {
            node: self.id,
            lock: self.lock,
            child: from,
            new_owned,
        });
        self.after_ownership_change(fx);
    }

    /// `HandleFreeze` of Figure 4 (Rule 6).
    fn handle_freeze(&mut self, from: NodeId, modes: ModeSet, fx: &mut EffectSink<Payload>) {
        if self.parent != Some(from) {
            return; // stale: freezing authority flows down the current tree
        }
        let old = self.frozen;
        self.frozen = self.frozen.union(modes);
        // A freeze that crossed our release in flight (or over-estimated
        // what we can grant) is clamped away: nobody unfreezes bits we
        // cannot act on.
        self.clamp_frozen();
        self.emit_frozen_change(old, fx);
        self.propagate_freezes(fx);
    }

    /// Frozen-set replacement (unfreeze propagation).
    fn handle_update(&mut self, from: NodeId, frozen: ModeSet, fx: &mut EffectSink<Payload>) {
        if self.parent != Some(from) {
            return;
        }
        let old = self.frozen;
        self.frozen = frozen;
        self.clamp_frozen();
        self.emit_frozen_change(old, fx);
        self.propagate_freezes(fx);
        // Thawed modes may unblock locally queued requests.
        self.serve_queue_nontoken(fx);
    }

    // ------------------------------------------------------------------
    // Serving and bookkeeping
    // ------------------------------------------------------------------

    /// Serves a remote request at the token node (Rule 3.2): copy grant if
    /// `owned ≥ mode`, token transfer otherwise.
    fn serve_remote_at_token(
        &mut self,
        origin: NodeId,
        mode: Mode,
        span: Ticket,
        fx: &mut EffectSink<Payload>,
    ) {
        let owned = self.owned();
        debug_assert!(compatible_owned(owned, mode));
        // U and W can never be held under a copy grant (no mode is both
        // compatible with them and at least as strong), so they always
        // take the token. Everything else is transferred only under the
        // literal Rule 3.2 policy (`eager_transfers`); the default lazy
        // policy serves it as a copy, keeping the token pinned.
        let must_transfer = matches!(mode, Mode::Upgrade | Mode::Write);
        let eager_transfer = self.config.eager_transfers && owned_strength(owned) < mode.strength();
        if must_transfer || eager_transfer {
            self.transfer_token(origin, mode, span, fx);
        } else {
            self.grant_copy(origin, mode, span, fx);
        }
    }

    /// Copy grant (Rules 3.1 / 3.2): the requester becomes our child.
    fn grant_copy(
        &mut self,
        origin: NodeId,
        mode: Mode,
        span: Ticket,
        fx: &mut EffectSink<Payload>,
    ) {
        let entry = self.children.entry(origin).or_insert(mode);
        *entry = stronger(Some(*entry), Some(mode)).expect("nonempty");
        // The new child inherits the modes it must consider frozen.
        let relevant = self.frozen.intersection(grantable_set(Some(*entry)));
        self.child_frozen.insert(origin, relevant);
        fx.send(origin, Payload::Grant { mode, frozen: self.frozen });
        fx.emit_with(|| ProtocolEvent::CopyGranted {
            node: self.id,
            lock: self.lock,
            span: SpanId::new(origin, span),
            mode,
            copyset_size: self.children.len(),
        });
    }

    /// Token transfer (Rule 3.2): `origin` becomes the new token node and
    /// our parent; our remaining queue travels along.
    fn transfer_token(
        &mut self,
        origin: NodeId,
        mode: Mode,
        span: Ticket,
        fx: &mut EffectSink<Payload>,
    ) {
        debug_assert!(self.is_token);
        // If the requester was our child, its entry moves with the token
        // (its owned mode is subsumed by its new token role).
        self.children.remove(&origin);
        self.child_frozen.remove(&origin);
        let sender_owned = self.owned();
        // Local entries in our queue are ticket-addressed and meaningless
        // elsewhere: they travel as remote requests by us, and we record
        // them as pending so the eventual grant finds its ticket.
        // (Upgrade entries never travel: a held U pins the token here.)
        let mut queue = Vec::with_capacity(self.queue.len());
        for e in self.queue.take_all() {
            match e.waiter {
                Waiter::Remote(_) => queue.push(e),
                Waiter::Local(ticket) => {
                    self.pending.push(PendingRequest {
                        ticket,
                        mode: e.mode,
                        stamp: e.stamp,
                        priority: e.priority,
                    });
                    queue.push(
                        QueueEntry::with_priority(
                            Waiter::Remote(self.id),
                            e.mode,
                            e.stamp,
                            e.priority,
                        )
                        .with_span(ticket),
                    );
                }
                Waiter::LocalUpgrade(_) => {
                    debug_assert!(false, "a held U pins the token: upgrades cannot travel");
                    queue.push(e);
                }
            }
        }
        self.is_token = false;
        self.parent = Some(origin);
        self.reported_owned = sender_owned;
        let old_frozen = self.frozen;
        self.frozen = ModeSet::EMPTY;
        self.emit_frozen_change(old_frozen, fx);
        // Our queue (the freezing authority) travels with the token:
        // release our children from any freezes we issued. The new token
        // node re-freezes through us if the merged queue requires it.
        self.propagate_freezes(fx);
        let queue_len = queue.len();
        fx.send(origin, Payload::Token { mode, queue, sender_owned });
        fx.emit_with(|| ProtocolEvent::TokenSent {
            node: self.id,
            lock: self.lock,
            span: SpanId::new(origin, span),
            mode,
            queue_len,
        });
    }

    /// Sends our own request one hop toward the token and records it
    /// as pending.
    fn send_own_request(
        &mut self,
        ticket: Ticket,
        mode: Mode,
        stamp: Stamp,
        priority: Priority,
        fx: &mut EffectSink<Payload>,
    ) {
        let parent = self.parent.expect("non-token node has a parent");
        self.pending.push(PendingRequest { ticket, mode, stamp, priority });
        fx.send(parent, Payload::Request { origin: self.id, mode, stamp, priority, span: ticket });
    }

    /// Relays a remote request one hop toward the token (Rule 4.1),
    /// optionally compressing the path.
    fn forward_request(
        &mut self,
        origin: NodeId,
        mode: Mode,
        stamp: Stamp,
        priority: Priority,
        span: Ticket,
        fx: &mut EffectSink<Payload>,
    ) {
        let parent = self.parent.expect("non-token node has a parent");
        fx.send(parent, Payload::Request { origin, mode, stamp, priority, span });
        fx.emit_with(|| ProtocolEvent::RequestForwarded {
            node: self.id,
            lock: self.lock,
            span: SpanId::new(origin, span),
            mode,
        });
        // Naimi-style path compression, restricted to requests that are
        // guaranteed to end in a token transfer (`U`/`W` can never be
        // copy-granted): the origin is about to become the root, so an
        // *inactive* forwarder (nothing held/owned/pending/queued, its
        // parent pointer is pure routing state) may repoint to it.
        // Repointing at copy-grantable modes is unsound — the origin does
        // not become the root and transient pointer cycles can livelock
        // request routing.
        if self.config.path_compression
            && matches!(mode, Mode::Upgrade | Mode::Write)
            && origin != self.id
            && self.is_inactive()
        {
            self.parent = Some(origin);
        }
    }

    /// Our own request message arrived back at us — we must have become
    /// the token node while it was in flight; resolve it locally.
    fn handle_own_request_returned(
        &mut self,
        mode: Mode,
        stamp: Stamp,
        priority: Priority,
        fx: &mut EffectSink<Payload>,
    ) {
        let Some(idx) = self.pending.iter().position(|p| p.mode == mode) else {
            return; // already satisfied through another path
        };
        if !self.is_token {
            // Still not the root: keep the request moving.
            let parent = self.parent.expect("non-token node has a parent");
            let span = self.pending[idx].ticket;
            fx.send(parent, Payload::Request { origin: self.id, mode, stamp, priority, span });
            return;
        }
        let p = self.pending.remove(idx);
        if compatible_owned(self.owned(), mode) && !self.frozen.contains(mode) {
            self.held.push((p.ticket, mode));
            self.grant_local(p.ticket, mode, fx);
        } else {
            self.queue.push_back(QueueEntry::with_priority(
                Waiter::Local(p.ticket),
                mode,
                p.stamp,
                p.priority,
            ));
            fx.emit_with(|| ProtocolEvent::RequestQueued {
                node: self.id,
                lock: self.lock,
                span: self.own_span(p.ticket),
                mode,
                queue_depth: self.queue.len(),
            });
            self.refresh_frozen(fx);
        }
    }

    /// Common post-release path: recompute ownership, serve the queue,
    /// and tell the parent if our owned mode changed (Rule 5).
    fn after_ownership_change(&mut self, fx: &mut EffectSink<Payload>) {
        if self.is_token {
            self.serve_queue_token(fx);
            return;
        }
        let owned = self.owned();
        let changed = owned != self.reported_owned;
        if changed || !self.config.suppress_releases {
            if let Some(parent) = self.parent {
                fx.send(parent, Payload::Release { new_owned: owned });
                fx.emit_with(|| ProtocolEvent::ReleaseSent {
                    node: self.id,
                    lock: self.lock,
                    new_owned: owned,
                });
            }
            self.reported_owned = owned;
        } else if self.parent.is_some() {
            // Rule 5.2: the parent's view is still accurate — suppressed.
            fx.emit_with(|| ProtocolEvent::ReleaseSuppressed {
                node: self.id,
                lock: self.lock,
                owned,
            });
        }
        // Weakened ownership shrinks the set of modes we could act on;
        // drop frozen bits outside it (nobody tracks or unfreezes them).
        self.clamp_frozen();
        if owned.is_none() {
            self.child_frozen.clear();
        }
        self.serve_queue_nontoken(fx);
    }

    /// `Check_requests_on_queue` at the token node: serve head-first,
    /// stopping at the first request that cannot be served (strict FIFO),
    /// then refresh frozen modes.
    fn serve_queue_token(&mut self, fx: &mut EffectSink<Payload>) {
        debug_assert!(self.is_token);
        while let Some(head) = self.queue.head().copied() {
            let owned = self.owned();
            match head.waiter {
                Waiter::LocalUpgrade(ticket) => {
                    // Rule 7: atomically convert the held U once every
                    // other holder has drained.
                    let only_upgrader = self.children.is_empty()
                        && self.held.len() == 1
                        && self.held[0] == (ticket, Mode::Upgrade);
                    if only_upgrader {
                        self.queue.pop_head();
                        self.held[0].1 = Mode::Write;
                        self.grant_local(ticket, Mode::Write, fx);
                    } else {
                        break;
                    }
                }
                Waiter::Local(ticket) => {
                    if compatible_owned(owned, head.mode) {
                        self.queue.pop_head();
                        self.held.push((ticket, head.mode));
                        self.grant_local(ticket, head.mode, fx);
                    } else {
                        break;
                    }
                }
                Waiter::Remote(origin) => {
                    if compatible_owned(owned, head.mode) {
                        self.queue.pop_head();
                        self.serve_remote_at_token(origin, head.mode, head.span, fx);
                        if !self.is_token {
                            // The token (and remaining queue) moved on.
                            return;
                        }
                    } else {
                        break;
                    }
                }
            }
        }
        self.refresh_frozen(fx);
    }

    /// Queue service at a non-token node: grant what has become
    /// grantable; re-route entries whose absorption guarantee no longer
    /// holds; stop at entries that must keep waiting.
    fn serve_queue_nontoken(&mut self, fx: &mut EffectSink<Payload>) {
        if self.is_token {
            // A grant/update may race with having just become the token.
            self.serve_queue_token(fx);
            return;
        }
        while let Some(head) = self.queue.head().copied() {
            let owned = self.owned();
            match head.waiter {
                Waiter::LocalUpgrade(_) => {
                    debug_assert!(false, "upgrade entries exist only at the token node");
                    break;
                }
                Waiter::Local(ticket) => {
                    if owned_strength(owned) >= head.mode.strength()
                        && compatible_owned(owned, head.mode)
                        && !self.frozen.contains(head.mode)
                    {
                        self.queue.pop_head();
                        self.held.push((ticket, head.mode));
                        self.grant_local(ticket, head.mode, fx);
                    } else if queue_or_forward(self.strongest_pending(), head.mode)
                        == QueueDecision::Queue
                    {
                        break; // service still guaranteed, keep waiting
                    } else {
                        self.queue.pop_head();
                        self.send_own_request(ticket, head.mode, head.stamp, head.priority, fx);
                    }
                }
                Waiter::Remote(origin) => {
                    if grantable(owned, head.mode) && !self.frozen.contains(head.mode) {
                        self.queue.pop_head();
                        self.grant_copy(origin, head.mode, head.span, fx);
                    } else if queue_or_forward(self.strongest_pending(), head.mode)
                        == QueueDecision::Queue
                    {
                        break;
                    } else {
                        self.queue.pop_head();
                        self.forward_request(
                            origin,
                            head.mode,
                            head.stamp,
                            head.priority,
                            head.span,
                            fx,
                        );
                    }
                }
            }
        }
    }

    /// Recomputes the frozen set from the local queue (token node only)
    /// and notifies children whose relevant slice changed.
    fn refresh_frozen(&mut self, fx: &mut EffectSink<Payload>) {
        if !self.is_token {
            return;
        }
        let new = if self.config.freezing {
            self.queue.iter().fold(ModeSet::EMPTY, |acc, e| acc.union(frozen_modes(e.mode)))
        } else {
            ModeSet::EMPTY
        };
        let old = self.frozen;
        self.frozen = new;
        self.emit_frozen_change(old, fx);
        self.propagate_freezes(fx);
    }

    /// Sends freeze/update notifications to children that are potential
    /// granters of modes whose frozen status changed (footnote a).
    fn propagate_freezes(&mut self, fx: &mut EffectSink<Payload>) {
        let mut outgoing: Vec<(NodeId, Payload)> = Vec::new();
        for (&child, &child_owned) in &self.children {
            let relevant = self.frozen.intersection(grantable_set(Some(child_owned)));
            let told = self.child_frozen.get(&child).copied().unwrap_or(ModeSet::EMPTY);
            if relevant == told {
                continue;
            }
            let payload = if told.difference(relevant).is_empty() {
                // Only additions: a plain freeze suffices.
                Payload::Freeze { modes: relevant.difference(told) }
            } else {
                Payload::Update { frozen: relevant }
            };
            outgoing.push((child, payload));
            self.child_frozen.insert(child, relevant);
        }
        for (child, payload) in outgoing {
            fx.send(child, payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effect::Effect;

    const L: LockId = LockId(0);
    const CFG: ProtocolConfig = ProtocolConfig {
        absorb_requests: true,
        suppress_releases: true,
        freezing: true,
        path_compression: true,
        eager_transfers: false,
    };
    /// Literal Rule 3.2 (used by the paper's figure walk-throughs, which
    /// show eager transfers).
    const CFG_EAGER: ProtocolConfig = ProtocolConfig {
        absorb_requests: true,
        suppress_releases: true,
        freezing: true,
        path_compression: true,
        eager_transfers: true,
    };

    fn sink() -> EffectSink<Payload> {
        EffectSink::new()
    }

    fn sends(fx: &mut EffectSink<Payload>) -> Vec<(NodeId, Payload)> {
        fx.drain()
            .filter_map(|e| match e {
                Effect::Send { to, message } => Some((to, message)),
                _ => None,
            })
            .collect()
    }

    fn grants(fx: &mut EffectSink<Payload>) -> Vec<(Ticket, Mode)> {
        fx.drain()
            .filter_map(|e| match e {
                Effect::Granted { ticket, mode, .. } => Some((ticket, mode)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn token_node_acquires_locally_without_messages() {
        let mut n = LockNode::new(NodeId(0), L, NodeId(0), CFG);
        let mut fx = sink();
        n.request(Mode::Write, Ticket(1), &mut fx).unwrap();
        let effects: Vec<_> = fx.drain().collect();
        assert_eq!(effects.len(), 1);
        assert!(matches!(effects[0], Effect::Granted { ticket: Ticket(1), mode: Mode::Write, .. }));
        assert!(n.is_token());
        assert_eq!(n.owned(), Some(Mode::Write));
    }

    #[test]
    fn duplicate_ticket_rejected() {
        let mut n = LockNode::new(NodeId(0), L, NodeId(0), CFG);
        let mut fx = sink();
        n.request(Mode::Read, Ticket(1), &mut fx).unwrap();
        let err = n.request(Mode::Read, Ticket(1), &mut fx).unwrap_err();
        assert_eq!(err, ProtocolError::DuplicateTicket { ticket: Ticket(1) });
    }

    #[test]
    fn release_unknown_ticket_rejected() {
        let mut n = LockNode::new(NodeId(0), L, NodeId(0), CFG);
        let mut fx = sink();
        let err = n.release(Ticket(9), &mut fx).unwrap_err();
        assert_eq!(err, ProtocolError::NotHeld { ticket: Ticket(9) });
    }

    #[test]
    fn non_token_sends_request_to_parent() {
        let mut n = LockNode::new(NodeId(1), L, NodeId(0), CFG);
        let mut fx = sink();
        n.request(Mode::Read, Ticket(1), &mut fx).unwrap();
        let out = sends(&mut fx);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, NodeId(0));
        assert!(matches!(out[0].1, Payload::Request { origin: NodeId(1), mode: Mode::Read, .. }));
        assert_eq!(n.pending_len(), 1);
    }

    /// Rule 2: a second compatible, weaker-or-equal local request is
    /// satisfied without messages.
    #[test]
    fn local_grant_under_owned_mode() {
        let mut n = LockNode::new(NodeId(0), L, NodeId(0), CFG);
        let mut fx = sink();
        n.request(Mode::Read, Ticket(1), &mut fx).unwrap();
        fx.drain().count();
        n.request(Mode::IntentRead, Ticket(2), &mut fx).unwrap();
        let effects: Vec<_> = fx.drain().collect();
        assert_eq!(effects.len(), 1);
        assert!(matches!(effects[0], Effect::Granted { ticket: Ticket(2), .. }));
    }

    /// Token transfer: requesting a stronger mode moves the token.
    #[test]
    fn token_transfers_on_stronger_request() {
        let mut a = LockNode::new(NodeId(0), L, NodeId(0), CFG);
        let mut b = LockNode::new(NodeId(1), L, NodeId(0), CFG);
        let mut fx = sink();
        b.request(Mode::Write, Ticket(1), &mut fx).unwrap();
        let out = sends(&mut fx);
        a.on_message(NodeId(1), out[0].1.clone(), &mut fx);
        let out = sends(&mut fx);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1, Payload::Token { mode: Mode::Write, .. }));
        assert!(!a.is_token());
        assert_eq!(a.parent(), Some(NodeId(1)));
        b.on_message(NodeId(0), out[0].1.clone(), &mut fx);
        assert!(b.is_token());
        assert_eq!(grants(&mut fx), vec![(Ticket(1), Mode::Write)]);
        assert_eq!(b.owned(), Some(Mode::Write));
    }

    /// Copy grant: the token keeps the token, requester becomes a child.
    #[test]
    fn copy_grant_for_weaker_compatible_mode() {
        let mut a = LockNode::new(NodeId(0), L, NodeId(0), CFG);
        let mut b = LockNode::new(NodeId(1), L, NodeId(0), CFG);
        let mut fx = sink();
        a.request(Mode::Read, Ticket(1), &mut fx).unwrap();
        fx.drain().count();
        b.request(Mode::Read, Ticket(2), &mut fx).unwrap();
        let out = sends(&mut fx);
        a.on_message(NodeId(1), out[0].1.clone(), &mut fx);
        let out = sends(&mut fx);
        assert!(matches!(out[0].1, Payload::Grant { mode: Mode::Read, .. }));
        assert!(a.is_token());
        assert_eq!(a.children().get(&NodeId(1)), Some(&Mode::Read));
        b.on_message(NodeId(0), out[0].1.clone(), &mut fx);
        assert_eq!(grants(&mut fx), vec![(Ticket(2), Mode::Read)]);
        assert!(!b.is_token());
    }

    /// Incompatible request queues at the token and freezes modes.
    #[test]
    fn incompatible_request_queues_and_freezes() {
        let mut a = LockNode::new(NodeId(0), L, NodeId(0), CFG_EAGER);
        let mut fx = sink();
        a.request(Mode::IntentWrite, Ticket(1), &mut fx).unwrap();
        fx.drain().count();
        // Remote R arrives: incompatible with IW, queued, IW+W frozen.
        a.on_message(
            NodeId(1),
            Payload::Request {
                origin: NodeId(1),
                mode: Mode::Read,
                stamp: Stamp(1),
                priority: Priority::NORMAL,
                span: Ticket(1),
            },
            &mut fx,
        );
        assert_eq!(a.queue_len(), 1);
        assert!(a.frozen().contains(Mode::IntentWrite));
        assert!(a.frozen().contains(Mode::Write));
        assert!(!a.frozen().contains(Mode::Read));
        // Frozen IW now refuses even a compatible IW newcomer (Rule 6).
        a.on_message(
            NodeId(2),
            Payload::Request {
                origin: NodeId(2),
                mode: Mode::IntentWrite,
                stamp: Stamp(2),
                priority: Priority::NORMAL,
                span: Ticket(1),
            },
            &mut fx,
        );
        assert_eq!(a.queue_len(), 2);
        // Release unblocks the queue in FIFO order.
        a.release(Ticket(1), &mut fx).unwrap();
        let out = sends(&mut fx);
        // R is served first (token transfer: ∅ < R).
        assert!(matches!(out[0].1, Payload::Token { mode: Mode::Read, .. }));
    }

    /// The paper's Figure 2 walk-through.
    #[test]
    fn paper_figure_2_grant_release_queue() {
        let mut fx = sink();
        // Initial state: A token holding R; B child owning IR (C holds IR
        // under B); D idle under B.
        let mut a = LockNode::new(NodeId(0), L, NodeId(0), CFG);
        let mut b = LockNode::new(NodeId(1), L, NodeId(0), CFG);
        let mut c = LockNode::new(NodeId(2), L, NodeId(0), CFG);
        let mut d = LockNode::new(NodeId(3), L, NodeId(0), CFG);
        // Build the initial configuration through the protocol itself:
        a.request(Mode::Read, Ticket(10), &mut fx).unwrap();
        fx.drain().count();
        // B acquires IR from A, then C acquires IR from B.
        b.request(Mode::IntentRead, Ticket(11), &mut fx).unwrap();
        let m = sends(&mut fx);
        a.on_message(NodeId(1), m[0].1.clone(), &mut fx);
        let m = sends(&mut fx);
        b.on_message(NodeId(0), m[0].1.clone(), &mut fx);
        fx.drain().count();
        // C's IR goes through B (its initial parent is A, but route via B
        // to match the figure: set up by sending the request to B).
        c.request(Mode::IntentRead, Ticket(12), &mut fx).unwrap();
        let m = sends(&mut fx);
        assert_eq!(m[0].0, NodeId(0)); // C's initial parent is A
                                       // B can grant IR itself when asked (Rule 3.1) — deliver there to
                                       // reproduce the figure's topology.
        b.on_message(NodeId(2), m[0].1.clone(), &mut fx);
        let m = sends(&mut fx);
        assert!(matches!(m[0].1, Payload::Grant { mode: Mode::IntentRead, .. }));
        c.on_message(NodeId(1), m[0].1.clone(), &mut fx);
        fx.drain().count();
        assert_eq!(b.children().get(&NodeId(2)), Some(&Mode::IntentRead));

        // (b) B releases IR: no release message (still owns IR via C).
        b.release(Ticket(11), &mut fx).unwrap();
        assert!(sends(&mut fx).is_empty(), "Rule 5.2 suppresses the release");
        assert_eq!(b.owned(), Some(Mode::IntentRead));

        // (c) B requests R; D requests R via B; B queues {D,R} locally.
        b.request(Mode::Read, Ticket(13), &mut fx).unwrap();
        let b_req = sends(&mut fx);
        assert_eq!(b_req[0].0, NodeId(0));
        d.request(Mode::Read, Ticket(14), &mut fx).unwrap();
        let d_req = sends(&mut fx);
        // Deliver D's request to B (the figure's topology).
        b.on_message(NodeId(3), d_req[0].1.clone(), &mut fx);
        assert!(sends(&mut fx).is_empty(), "{{D,R}} is absorbed at B (Rule 4.1)");
        assert_eq!(b.queue_len(), 1);

        // (d) A grants {B,R}; B then grants the queued {D,R} itself.
        a.on_message(NodeId(1), b_req[0].1.clone(), &mut fx);
        let m = sends(&mut fx);
        assert!(matches!(m[0].1, Payload::Grant { mode: Mode::Read, .. }));
        assert!(a.is_token(), "A keeps the token (copy grant)");
        b.on_message(NodeId(0), m[0].1.clone(), &mut fx);
        let out: Vec<_> = fx.drain().collect();
        // B got its grant and immediately granted D from its local queue.
        assert!(out
            .iter()
            .any(|e| matches!(e, Effect::Granted { ticket: Ticket(13), mode: Mode::Read, .. })));
        let to_d: Vec<_> = out
            .iter()
            .filter_map(|e| match e {
                Effect::Send { to, message } if *to == NodeId(3) => Some(message.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(to_d.len(), 1);
        assert!(matches!(to_d[0], Payload::Grant { mode: Mode::Read, .. }));
        d.on_message(NodeId(1), to_d[0].clone(), &mut fx);
        assert_eq!(grants(&mut fx), vec![(Ticket(14), Mode::Read)]);
        assert_eq!(b.children().get(&NodeId(3)), Some(&Mode::Read));
        assert_eq!(d.owned(), Some(Mode::Read));
    }

    /// The paper's Figure 3 walk-through: freezing IW while {D,R} waits.
    #[test]
    fn paper_figure_3_freezing() {
        let mut fx = sink();
        let mut a = LockNode::new(NodeId(0), L, NodeId(0), CFG_EAGER);
        let mut b = LockNode::new(NodeId(1), L, NodeId(0), CFG_EAGER);
        let mut c = LockNode::new(NodeId(2), L, NodeId(0), CFG_EAGER);
        let mut d = LockNode::new(NodeId(3), L, NodeId(0), CFG_EAGER);
        // A holds IW; B and C hold IW copies.
        a.request(Mode::IntentWrite, Ticket(20), &mut fx).unwrap();
        fx.drain().count();
        for (n, id, t) in [(&mut b, NodeId(1), 21u64), (&mut c, NodeId(2), 22)] {
            n.request(Mode::IntentWrite, Ticket(t), &mut fx).unwrap();
            let m = sends(&mut fx);
            a.on_message(id, m[0].1.clone(), &mut fx);
            let m = sends(&mut fx);
            n.on_message(NodeId(0), m[0].1.clone(), &mut fx);
            fx.drain().count();
        }
        assert_eq!(a.children().len(), 2);

        // D requests R; it reaches A and is queued; A freezes IW at the
        // potential granters B and C.
        d.request(Mode::Read, Ticket(23), &mut fx).unwrap();
        let m = sends(&mut fx);
        a.on_message(NodeId(3), m[0].1.clone(), &mut fx);
        let freezes = sends(&mut fx);
        assert_eq!(a.queue_len(), 1);
        assert!(a.frozen().contains(Mode::IntentWrite));
        let mut frozen_targets: Vec<NodeId> = freezes
            .iter()
            .filter(|(_, p)| matches!(p, Payload::Freeze { .. }))
            .map(|(to, _)| *to)
            .collect();
        frozen_targets.sort();
        assert_eq!(frozen_targets, vec![NodeId(1), NodeId(2)]);
        for (to, p) in &freezes {
            if let Payload::Freeze { modes } = p {
                assert!(modes.contains(Mode::IntentWrite), "IW frozen at {to}");
            }
        }
        // B applies the freeze and now refuses to grant IW to a newcomer.
        b.on_message(NodeId(0), freezes[0].1.clone(), &mut fx);
        fx.drain().count();
        b.on_message(
            NodeId(4),
            Payload::Request {
                origin: NodeId(4),
                mode: Mode::IntentWrite,
                stamp: Stamp(9),
                priority: Priority::NORMAL,
                span: Ticket(1),
            },
            &mut fx,
        );
        let fwd = sends(&mut fx);
        assert_eq!(fwd.len(), 1, "frozen IW is forwarded, not granted");
        assert!(matches!(fwd[0].1, Payload::Request { .. }));
        assert_eq!(fwd[0].0, NodeId(0));

        // B, C and A release IW; the token moves to D with mode R.
        b.release(Ticket(21), &mut fx).unwrap();
        let rel = sends(&mut fx);
        assert!(matches!(rel[0].1, Payload::Release { new_owned: None }));
        a.on_message(NodeId(1), rel[0].1.clone(), &mut fx);
        fx.drain().count();
        c.release(Ticket(22), &mut fx).unwrap();
        let rel = sends(&mut fx);
        a.on_message(NodeId(2), rel[0].1.clone(), &mut fx);
        fx.drain().count();
        a.release(Ticket(20), &mut fx).unwrap();
        let out = sends(&mut fx);
        let token: Vec<_> = out
            .iter()
            .filter(|(to, p)| *to == NodeId(3) && matches!(p, Payload::Token { .. }))
            .collect();
        assert_eq!(token.len(), 1);
        d.on_message(NodeId(0), token[0].1.clone(), &mut fx);
        assert_eq!(grants(&mut fx), vec![(Ticket(23), Mode::Read)]);
        assert!(d.is_token());
        assert_eq!(d.owned(), Some(Mode::Read));
    }

    /// Rule 7: upgrade converts U to W once the copyset drains.
    #[test]
    fn upgrade_waits_for_copyset_then_converts() {
        let mut fx = sink();
        let mut a = LockNode::new(NodeId(0), L, NodeId(0), CFG);
        let mut b = LockNode::new(NodeId(1), L, NodeId(0), CFG);
        // A takes U (token, local). B takes R (compatible with U).
        a.request(Mode::Upgrade, Ticket(1), &mut fx).unwrap();
        fx.drain().count();
        b.request(Mode::Read, Ticket(2), &mut fx).unwrap();
        let m = sends(&mut fx);
        a.on_message(NodeId(1), m[0].1.clone(), &mut fx);
        let m = sends(&mut fx);
        b.on_message(NodeId(0), m[0].1.clone(), &mut fx);
        fx.drain().count();
        // A upgrades: must wait for B's release.
        a.upgrade(Ticket(1), &mut fx).unwrap();
        let out = sends(&mut fx);
        // Freeze of R (and everything else incompatible with W) at B.
        assert!(out.iter().any(|(to, p)| *to == NodeId(1)
            && matches!(p, Payload::Freeze { modes } if modes.contains(Mode::Read))));
        assert!(a.held().iter().any(|&(t, m)| t == Ticket(1) && m == Mode::Upgrade));
        // B releases; A's upgrade completes with mode W.
        b.release(Ticket(2), &mut fx).unwrap();
        let rel = sends(&mut fx);
        a.on_message(NodeId(1), rel[0].1.clone(), &mut fx);
        let g = grants(&mut fx);
        assert_eq!(g, vec![(Ticket(1), Mode::Write)]);
        assert_eq!(a.owned(), Some(Mode::Write));
    }

    #[test]
    fn upgrade_without_u_is_rejected() {
        let mut fx = sink();
        let mut a = LockNode::new(NodeId(0), L, NodeId(0), CFG);
        a.request(Mode::Read, Ticket(1), &mut fx).unwrap();
        fx.drain().count();
        let err = a.upgrade(Ticket(1), &mut fx).unwrap_err();
        assert_eq!(
            err,
            ProtocolError::UpgradeRequiresUpgradeLock { ticket: Ticket(1), held: Mode::Read }
        );
        let err = a.upgrade(Ticket(9), &mut fx).unwrap_err();
        assert_eq!(err, ProtocolError::NotHeld { ticket: Ticket(9) });
    }

    /// Rule 5.2: releasing while a child still owns an equal mode sends
    /// nothing; the final release propagates.
    #[test]
    fn release_suppression() {
        let mut fx = sink();
        let mut a = LockNode::new(NodeId(0), L, NodeId(0), CFG);
        let mut b = LockNode::new(NodeId(1), L, NodeId(0), CFG);
        let mut c = LockNode::new(NodeId(2), L, NodeId(0), CFG);
        a.request(Mode::Read, Ticket(1), &mut fx).unwrap();
        fx.drain().count();
        // B gets R from A; C gets R from B.
        b.request(Mode::Read, Ticket(2), &mut fx).unwrap();
        let m = sends(&mut fx);
        a.on_message(NodeId(1), m[0].1.clone(), &mut fx);
        let m = sends(&mut fx);
        b.on_message(NodeId(0), m[0].1.clone(), &mut fx);
        fx.drain().count();
        c.request(Mode::Read, Ticket(3), &mut fx).unwrap();
        let m = sends(&mut fx);
        b.on_message(NodeId(2), m[0].1.clone(), &mut fx);
        let m = sends(&mut fx);
        c.on_message(NodeId(1), m[0].1.clone(), &mut fx);
        fx.drain().count();
        // B releases: C still holds R under B, so B's owned is unchanged.
        b.release(Ticket(2), &mut fx).unwrap();
        assert!(sends(&mut fx).is_empty());
        // C releases: B's owned drops to ∅ — exactly one release to A.
        c.release(Ticket(3), &mut fx).unwrap();
        let m = sends(&mut fx);
        assert_eq!(m.len(), 1);
        assert!(matches!(m[0].1, Payload::Release { new_owned: None }));
        b.on_message(NodeId(2), m[0].1.clone(), &mut fx);
        let m = sends(&mut fx);
        assert_eq!(m.len(), 1, "one release regardless of grandchildren");
        assert!(matches!(m[0].1, Payload::Release { new_owned: None }));
        a.on_message(NodeId(1), m[0].1.clone(), &mut fx);
        assert!(a.children().is_empty());
    }

    /// Requests absorbed behind a pending W are all queued (Table 2(a)).
    #[test]
    fn absorption_behind_pending_write() {
        let mut fx = sink();
        let mut b = LockNode::new(NodeId(1), L, NodeId(0), CFG);
        b.request(Mode::Write, Ticket(1), &mut fx).unwrap();
        fx.drain().count();
        for (origin, mode) in
            [(NodeId(2), Mode::Read), (NodeId(3), Mode::IntentWrite), (NodeId(4), Mode::Write)]
        {
            b.on_message(
                origin,
                Payload::Request {
                    origin,
                    mode,
                    stamp: Stamp(5),
                    priority: Priority::NORMAL,
                    span: Ticket(5),
                },
                &mut fx,
            );
        }
        assert!(sends(&mut fx).is_empty(), "everything absorbed behind pending W");
        assert_eq!(b.queue_len(), 3);
    }

    /// With absorption disabled, the same requests are all forwarded.
    #[test]
    fn no_absorption_ablation_forwards() {
        let mut fx = sink();
        let cfg = ProtocolConfig::paper().without_absorption();
        let mut b = LockNode::new(NodeId(1), L, NodeId(0), cfg);
        b.request(Mode::Write, Ticket(1), &mut fx).unwrap();
        fx.drain().count();
        b.on_message(
            NodeId(2),
            Payload::Request {
                origin: NodeId(2),
                mode: Mode::Read,
                stamp: Stamp(5),
                priority: Priority::NORMAL,
                span: Ticket(1),
            },
            &mut fx,
        );
        let m = sends(&mut fx);
        assert_eq!(m.len(), 1);
        assert!(matches!(m[0].1, Payload::Request { origin: NodeId(2), .. }));
        assert_eq!(b.queue_len(), 0);
    }

    /// Regression: local queue entries must be converted to remote
    /// entries when they travel with the token — a new token node must
    /// never interpret another node's tickets as its own.
    #[test]
    fn local_queue_entries_travel_as_remote_with_token() {
        let mut fx = sink();
        let mut a = LockNode::new(NodeId(0), L, NodeId(0), CFG);
        let mut b = LockNode::new(NodeId(1), L, NodeId(0), CFG);
        // A (token) holds W; B's W request queues; then A queues a second
        // local W behind it.
        a.request(Mode::Write, Ticket(1), &mut fx).unwrap();
        fx.drain().count();
        b.request(Mode::Write, Ticket(1), &mut fx).unwrap(); // same ticket number on purpose
        let m = sends(&mut fx);
        a.on_message(NodeId(1), m[0].1.clone(), &mut fx);
        a.request(Mode::Write, Ticket(2), &mut fx).unwrap();
        fx.drain().count();
        assert_eq!(a.queue_len(), 2);
        // A releases: the token (and A's queued local W, now a remote
        // entry for A) travels to B.
        a.release(Ticket(1), &mut fx).unwrap();
        let m = sends(&mut fx);
        let Payload::Token { queue, .. } = &m[0].1 else { panic!("expected token") };
        assert_eq!(queue.len(), 1);
        assert!(
            matches!(queue[0].waiter, Waiter::Remote(NodeId(0))),
            "A's local entry travels as Remote(A): {queue:?}"
        );
        assert_eq!(a.pending_len(), 1, "A's converted entry is now pending");
        b.on_message(NodeId(0), m[0].1.clone(), &mut fx);
        let g = grants(&mut fx);
        assert_eq!(g, vec![(Ticket(1), Mode::Write)], "B's own W granted");
        // B releases: the token returns to A, which grants ticket 2.
        b.release(Ticket(1), &mut fx).unwrap();
        let m = sends(&mut fx);
        a.on_message(NodeId(1), m[0].1.clone(), &mut fx);
        assert_eq!(grants(&mut fx), vec![(Ticket(2), Mode::Write)]);
        assert!(a.is_token());
    }

    /// Regression: receiving the token must deregister the receiver from
    /// its old parent's copyset (phantom children once caused ownership
    /// cycles and deadlock).
    #[test]
    fn token_receipt_deregisters_from_old_parent() {
        let mut fx = sink();
        let mut a = LockNode::new(NodeId(0), L, NodeId(0), CFG);
        let mut b = LockNode::new(NodeId(1), L, NodeId(0), CFG);
        // B acquires IR: B is A's child with IR.
        b.request(Mode::IntentRead, Ticket(1), &mut fx).unwrap();
        let m = sends(&mut fx);
        a.on_message(NodeId(1), m[0].1.clone(), &mut fx);
        let m = sends(&mut fx);
        b.on_message(NodeId(0), m[0].1.clone(), &mut fx);
        fx.drain().count();
        assert!(a.children().contains_key(&NodeId(1)));
        // B now requests W (still holding IR): incompatible at A until A
        // drops nothing — A owns IR via B only, W vs IR conflict… so B
        // must first release IR for W to be served; use U instead, which
        // is compatible with IR and always transfers.
        b.request(Mode::Upgrade, Ticket(2), &mut fx).unwrap();
        let m = sends(&mut fx);
        a.on_message(NodeId(1), m[0].1.clone(), &mut fx);
        let m = sends(&mut fx);
        assert!(matches!(m[0].1, Payload::Token { .. }));
        b.on_message(NodeId(0), m[0].1.clone(), &mut fx);
        let out: Vec<_> = fx.drain().collect();
        // B became the token; A's stale copyset entry for B must be gone:
        // the transfer removed it on A's side (B was the requester), and
        // B sends no stray release.
        assert!(b.is_token());
        assert!(!a.children().contains_key(&NodeId(1)), "no phantom child at A");
        // A is now B's child iff A still owns something (it does not).
        assert!(!b.children().contains_key(&NodeId(0)));
        let _ = out;
    }

    /// Regression: transferring the token away must release the old
    /// token's children from freezes it issued (the freezing authority —
    /// the queue — travelled with the token).
    #[test]
    fn transfer_unfreezes_old_children() {
        let mut fx = sink();
        let mut a = LockNode::new(NodeId(0), L, NodeId(0), CFG);
        let mut b = LockNode::new(NodeId(1), L, NodeId(0), CFG);
        // B holds IR and IW as A's child (A owns IW through B).
        // (IR first: a held IW would satisfy IR locally with no messages.)
        for (mode, t) in [(Mode::IntentRead, 3u64), (Mode::IntentWrite, 2)] {
            b.request(mode, Ticket(t), &mut fx).unwrap();
            let m = sends(&mut fx);
            a.on_message(NodeId(1), m[0].1.clone(), &mut fx);
            let m = sends(&mut fx);
            b.on_message(NodeId(0), m[0].1.clone(), &mut fx);
            fx.drain().count();
        }
        assert_eq!(a.owned(), Some(Mode::IntentWrite));
        // A remote U request queues at A (U vs IW conflict) and freezes
        // IW at B (the mode B could otherwise keep granting).
        a.on_message(
            NodeId(2),
            Payload::Request {
                origin: NodeId(2),
                mode: Mode::Upgrade,
                stamp: Stamp(5),
                priority: Priority::NORMAL,
                span: Ticket(1),
            },
            &mut fx,
        );
        let m = sends(&mut fx);
        let freezes: Vec<_> = m
            .iter()
            .filter(|(to, p)| *to == NodeId(1) && matches!(p, Payload::Freeze { .. }))
            .collect();
        assert_eq!(freezes.len(), 1, "B is a potential IW granter: {m:?}");
        b.on_message(NodeId(0), freezes[0].1.clone(), &mut fx);
        fx.drain().count();
        assert!(b.frozen().contains(Mode::IntentWrite));
        // B releases only IW (keeps IR): A's owned weakens to IR, which is
        // compatible with U — the token transfers to node 2 while B is
        // still A's child. B must be unfrozen by A in the same step.
        b.release(Ticket(2), &mut fx).unwrap();
        let m = sends(&mut fx);
        assert!(matches!(m[0].1, Payload::Release { new_owned: Some(Mode::IntentRead) }));
        a.on_message(NodeId(1), m[0].1.clone(), &mut fx);
        let m = sends(&mut fx);
        assert!(
            m.iter().any(|(to, p)| *to == NodeId(2) && matches!(p, Payload::Token { .. })),
            "U transfers: {m:?}"
        );
        let unfreeze: Vec<_> = m
            .iter()
            .filter(|(to, p)| *to == NodeId(1) && matches!(p, Payload::Update { .. }))
            .collect();
        assert_eq!(unfreeze.len(), 1, "B must be unfrozen on transfer: {m:?}");
        b.on_message(NodeId(0), unfreeze[0].1.clone(), &mut fx);
        assert!(b.frozen().is_empty());
    }

    /// Path compression: an inactive forwarder repoints to the origin.
    #[test]
    fn path_compression_repoints_inactive_forwarders() {
        let mut fx = sink();
        let mut b = LockNode::new(NodeId(1), L, NodeId(0), CFG);
        b.on_message(
            NodeId(2),
            Payload::Request {
                origin: NodeId(2),
                mode: Mode::Write,
                stamp: Stamp(1),
                priority: Priority::NORMAL,
                span: Ticket(1),
            },
            &mut fx,
        );
        assert_eq!(b.parent(), Some(NodeId(2)));
        let m = sends(&mut fx);
        assert_eq!(m[0].0, NodeId(0), "forwarded along the old chain");
        // ... but an *active* node (here: one holding a lock) keeps its
        // parent, which it needs for release routing:
        let mut b2 = LockNode::new(NodeId(1), L, NodeId(0), CFG);
        // Give b2 a held IR via a grant so it is active.
        b2.request(Mode::IntentRead, Ticket(5), &mut fx).unwrap();
        fx.drain().count();
        b2.on_message(
            NodeId(0),
            Payload::Grant { mode: Mode::IntentRead, frozen: ModeSet::EMPTY },
            &mut fx,
        );
        fx.drain().count();
        b2.on_message(
            NodeId(2),
            Payload::Request {
                origin: NodeId(2),
                mode: Mode::Write,
                stamp: Stamp(1),
                priority: Priority::NORMAL,
                span: Ticket(1),
            },
            &mut fx,
        );
        assert_eq!(b2.parent(), Some(NodeId(0)));
        // And with the flag off, even inactive nodes keep their parent.
        let mut b3 = LockNode::new(NodeId(1), L, NodeId(0), CFG.without_path_compression());
        b3.on_message(
            NodeId(2),
            Payload::Request {
                origin: NodeId(2),
                mode: Mode::Write,
                stamp: Stamp(1),
                priority: Priority::NORMAL,
                span: Ticket(1),
            },
            &mut fx,
        );
        assert_eq!(b3.parent(), Some(NodeId(0)));
    }

    /// With observing enabled, a remote request produces a causally
    /// consistent span: one `request_issued` at the origin, matching
    /// span ids on every hop, and a balanced open/close per
    /// [`crate::check_span_balance`].
    #[test]
    fn span_follows_remote_request_across_hops() {
        use crate::observe::{check_span_balance, ProtocolEvent, SpanId};
        let mut fx = sink();
        fx.set_observing(true);
        let mut a = LockNode::new(NodeId(0), L, NodeId(0), CFG);
        let mut b = LockNode::new(NodeId(1), L, NodeId(0), CFG);
        let mut events: Vec<ProtocolEvent> = Vec::new();

        b.request(Mode::Read, Ticket(7), &mut fx).unwrap();
        let m = sends(&mut fx);
        events.extend(fx.take_events());
        a.on_message(NodeId(1), m[0].1.clone(), &mut fx);
        let m = sends(&mut fx);
        events.extend(fx.take_events());
        b.on_message(NodeId(0), m[0].1.clone(), &mut fx);
        assert_eq!(grants(&mut fx), vec![(Ticket(7), Mode::Read)]);
        events.extend(fx.take_events());

        let span = SpanId::new(NodeId(1), Ticket(7));
        assert!(events
            .iter()
            .any(|e| matches!(e, ProtocolEvent::RequestIssued { .. }) && e.span() == Some(span)));
        assert!(events
            .iter()
            .any(|e| matches!(e, ProtocolEvent::CopyGranted { .. }) && e.span() == Some(span)));
        assert!(events
            .iter()
            .any(|e| matches!(e, ProtocolEvent::Granted { .. }) && e.span() == Some(span)));
        // Every span-carrying event in the exchange belongs to this span.
        for e in &events {
            if let Some(s) = e.span() {
                assert_eq!(s, span, "stray span in {e:?}");
            }
        }
        check_span_balance(&events).expect("span opens and closes exactly once");
    }

    /// A token transfer preserves the requester's span and carries local
    /// queue entries onward with their own spans intact.
    #[test]
    fn span_survives_token_transfer() {
        use crate::observe::{check_span_balance, ProtocolEvent, SpanId};
        let mut fx = sink();
        fx.set_observing(true);
        let mut a = LockNode::new(NodeId(0), L, NodeId(0), CFG);
        let mut b = LockNode::new(NodeId(1), L, NodeId(0), CFG);
        let mut events: Vec<ProtocolEvent> = Vec::new();

        // W can never be copy-granted: the token must travel to B.
        b.request(Mode::Write, Ticket(3), &mut fx).unwrap();
        let m = sends(&mut fx);
        events.extend(fx.take_events());
        a.on_message(NodeId(1), m[0].1.clone(), &mut fx);
        let m = sends(&mut fx);
        events.extend(fx.take_events());
        assert!(matches!(m[0].1, Payload::Token { .. }));
        b.on_message(NodeId(0), m[0].1.clone(), &mut fx);
        assert_eq!(grants(&mut fx), vec![(Ticket(3), Mode::Write)]);
        events.extend(fx.take_events());

        let span = SpanId::new(NodeId(1), Ticket(3));
        assert!(events
            .iter()
            .any(|e| matches!(e, ProtocolEvent::TokenSent { .. }) && e.span() == Some(span)));
        assert!(events
            .iter()
            .any(|e| matches!(e, ProtocolEvent::TokenReceived { .. }) && e.span() == Some(span)));
        check_span_balance(&events).expect("span opens and closes exactly once");
    }

    /// With observing off (the default), no events accumulate anywhere —
    /// the observability layer is pay-for-use.
    #[test]
    fn no_events_without_observing() {
        let mut fx = sink();
        let mut a = LockNode::new(NodeId(0), L, NodeId(0), CFG);
        let mut b = LockNode::new(NodeId(1), L, NodeId(0), CFG);
        b.request(Mode::Read, Ticket(7), &mut fx).unwrap();
        let m = sends(&mut fx);
        a.on_message(NodeId(1), m[0].1.clone(), &mut fx);
        let m = sends(&mut fx);
        b.on_message(NodeId(0), m[0].1.clone(), &mut fx);
        b.release(Ticket(7), &mut fx).unwrap();
        assert!(fx.events().is_empty());
    }
}
