//! The local request queue kept at each node (Rules 4 and 5).
//!
//! Entries are FIFO by Lamport stamp. When the token moves, the old token
//! node's remaining queue travels with it and is *merged* into the new
//! token node's queue preserving FIFO order (Figure 4, footnote c).

use crate::ids::{NodeId, Priority, Stamp, Ticket};
use crate::mode::Mode;
use core::fmt;
use std::collections::VecDeque;

/// Who is waiting: a remote node, or a local caller identified by ticket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Waiter {
    /// A remote requester (a request message absorbed into this queue).
    Remote(NodeId),
    /// A local request, to be reported via [`crate::Effect::Granted`].
    Local(Ticket),
    /// A local upgrade (`U` → `W`, Rule 7) for the given ticket; served
    /// with priority, atomically converting the held `U`.
    LocalUpgrade(Ticket),
}

impl fmt::Display for Waiter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Waiter::Remote(n) => write!(f, "{n}"),
            Waiter::Local(t) => write!(f, "local:{t}"),
            Waiter::LocalUpgrade(t) => write!(f, "upgrade:{t}"),
        }
    }
}

/// One queued lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueueEntry {
    /// Who will receive the grant.
    pub waiter: Waiter,
    /// Requested mode.
    pub mode: Mode,
    /// Origin stamp, used for FIFO merge ordering.
    pub stamp: Stamp,
    /// Request priority (higher first; FIFO within a priority).
    pub priority: Priority,
    /// The request's causal span ticket (the ticket assigned at the
    /// origin node), travelling with the entry — including through token
    /// transfers — so observers can follow the request end to end. For
    /// local waiters it is derived from the waiter's ticket; for remote
    /// entries the receiver stamps it via [`QueueEntry::with_span`].
    pub span: Ticket,
}

impl QueueEntry {
    /// Convenience constructor at [`Priority::NORMAL`].
    pub fn new(waiter: Waiter, mode: Mode, stamp: Stamp) -> Self {
        QueueEntry::with_priority(waiter, mode, stamp, Priority::NORMAL)
    }

    /// Constructor with an explicit priority.
    pub fn with_priority(waiter: Waiter, mode: Mode, stamp: Stamp, priority: Priority) -> Self {
        let span = match waiter {
            Waiter::Local(t) | Waiter::LocalUpgrade(t) => t,
            Waiter::Remote(_) => Ticket(0),
        };
        QueueEntry { waiter, mode, stamp, priority, span }
    }

    /// Overrides the span ticket (builder style) — used for remote
    /// entries, whose span arrives in the request message rather than
    /// being derivable from the waiter.
    #[must_use]
    pub fn with_span(mut self, span: Ticket) -> Self {
        self.span = span;
        self
    }

    /// Total-order key for service and merges: priority first (higher
    /// served earlier), then stamp (FIFO), then a deterministic tiebreak
    /// on the waiter identity.
    fn merge_key(&self) -> (core::cmp::Reverse<Priority>, Stamp, u64) {
        let tie = match self.waiter {
            Waiter::Remote(n) => n.0 as u64,
            Waiter::Local(t) | Waiter::LocalUpgrade(t) => u64::MAX - t.0,
        };
        (core::cmp::Reverse(self.priority), self.stamp, tie)
    }
}

impl fmt::Display for QueueEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}{}", self.waiter, self.mode, self.stamp)
    }
}

/// FIFO queue of pending lock requests at one node.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct RequestQueue {
    entries: VecDeque<QueueEntry>,
}

impl RequestQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        RequestQueue { entries: VecDeque::new() }
    }

    /// Enqueues an entry: behind every entry of its priority or higher
    /// (arrival order within a priority), ahead of lower priorities.
    /// With all-[`Priority::NORMAL`] entries this is a plain FIFO append.
    pub fn push_back(&mut self, e: QueueEntry) {
        let pos =
            self.entries.iter().position(|q| q.priority < e.priority).unwrap_or(self.entries.len());
        self.entries.insert(pos, e);
    }

    /// Inserts an entry at the head. Used for upgrades, which take
    /// precedence over every queued request (Rule 7, §3.4 "Upgrade Mode
    /// Precedes Write Mode").
    pub fn push_front(&mut self, e: QueueEntry) {
        self.entries.push_front(e);
    }

    /// The entry that must be served next, if any.
    pub fn head(&self) -> Option<&QueueEntry> {
        self.entries.front()
    }

    /// Removes and returns the head entry.
    pub fn pop_head(&mut self) -> Option<QueueEntry> {
        self.entries.pop_front()
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries head-first.
    pub fn iter(&self) -> impl Iterator<Item = &QueueEntry> {
        self.entries.iter()
    }

    /// Removes all entries, returning them head-first. Used when the
    /// token (and therefore the queue) is handed to a new token node.
    pub fn take_all(&mut self) -> Vec<QueueEntry> {
        self.entries.drain(..).collect()
    }

    /// Merges a travelling queue into this one, preserving FIFO order by
    /// `(stamp, waiter)` (Figure 4, footnote c). Upgrade entries keep
    /// absolute priority at the head regardless of stamp.
    pub fn merge(&mut self, incoming: Vec<QueueEntry>) {
        if incoming.is_empty() {
            return;
        }
        let mut all: Vec<QueueEntry> = self.entries.drain(..).collect();
        all.extend(incoming);
        // Stable partition: upgrades first (retaining relative order),
        // then everything else by merge key.
        let mut upgrades: Vec<QueueEntry> = Vec::new();
        let mut rest: Vec<QueueEntry> = Vec::new();
        for e in all {
            match e.waiter {
                Waiter::LocalUpgrade(_) => upgrades.push(e),
                _ => rest.push(e),
            }
        }
        rest.sort_by_key(QueueEntry::merge_key);
        self.entries.extend(upgrades);
        self.entries.extend(rest);
    }

    /// Removes every entry whose waiter equals `waiter` (used if a local
    /// request is cancelled); returns how many were removed.
    pub fn remove_waiter(&mut self, waiter: Waiter) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.waiter != waiter);
        before - self.entries.len()
    }
}

impl fmt::Display for RequestQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(node: u32, mode: Mode, stamp: u64) -> QueueEntry {
        QueueEntry::new(Waiter::Remote(NodeId(node)), mode, Stamp(stamp))
    }

    #[test]
    fn fifo_order() {
        let mut q = RequestQueue::new();
        q.push_back(e(1, Mode::Read, 1));
        q.push_back(e(2, Mode::Write, 2));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_head().unwrap().waiter, Waiter::Remote(NodeId(1)));
        assert_eq!(q.pop_head().unwrap().waiter, Waiter::Remote(NodeId(2)));
        assert!(q.pop_head().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn merge_preserves_stamp_order() {
        let mut q = RequestQueue::new();
        q.push_back(e(1, Mode::Read, 5));
        q.push_back(e(2, Mode::Write, 9));
        q.merge(vec![e(3, Mode::Upgrade, 2), e(4, Mode::Read, 7)]);
        let stamps: Vec<u64> = q.iter().map(|x| x.stamp.0).collect();
        assert_eq!(stamps, vec![2, 5, 7, 9]);
    }

    #[test]
    fn merge_with_empty_is_noop() {
        let mut q = RequestQueue::new();
        q.push_back(e(1, Mode::Read, 5));
        q.merge(vec![]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn upgrades_take_priority_in_merge() {
        let mut q = RequestQueue::new();
        q.push_back(QueueEntry::new(Waiter::LocalUpgrade(Ticket(1)), Mode::Write, Stamp(50)));
        q.merge(vec![e(3, Mode::Read, 1)]);
        assert_eq!(q.head().unwrap().waiter, Waiter::LocalUpgrade(Ticket(1)));
    }

    #[test]
    fn push_front_takes_head() {
        let mut q = RequestQueue::new();
        q.push_back(e(1, Mode::Read, 1));
        q.push_front(QueueEntry::new(Waiter::LocalUpgrade(Ticket(9)), Mode::Write, Stamp(99)));
        assert_eq!(q.head().unwrap().mode, Mode::Write);
    }

    #[test]
    fn remove_waiter_filters() {
        let mut q = RequestQueue::new();
        q.push_back(e(1, Mode::Read, 1));
        q.push_back(e(2, Mode::Read, 2));
        q.push_back(e(1, Mode::Write, 3));
        assert_eq!(q.remove_waiter(Waiter::Remote(NodeId(1))), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.head().unwrap().waiter, Waiter::Remote(NodeId(2)));
    }

    #[test]
    fn take_all_empties_queue() {
        let mut q = RequestQueue::new();
        q.push_back(e(1, Mode::Read, 1));
        q.push_back(e(2, Mode::Read, 2));
        let all = q.take_all();
        assert_eq!(all.len(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn display_lists_entries() {
        let mut q = RequestQueue::new();
        q.push_back(e(1, Mode::Read, 1));
        assert_eq!(q.to_string(), "[n1:R@1]");
    }

    #[test]
    fn priority_insertion_orders_queue() {
        use crate::ids::Priority;
        let mut q = RequestQueue::new();
        let mk = |n: u32, p: u8, s: u64| {
            QueueEntry::with_priority(Waiter::Remote(NodeId(n)), Mode::Read, Stamp(s), Priority(p))
        };
        q.push_back(mk(1, 0, 1));
        q.push_back(mk(2, 5, 2)); // higher priority jumps ahead
        q.push_back(mk(3, 5, 3)); // same priority: after its peer
        q.push_back(mk(4, 9, 4)); // highest: to the very front
        let order: Vec<u32> = q
            .iter()
            .map(|e| match e.waiter {
                Waiter::Remote(n) => n.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![4, 2, 3, 1]);
    }

    #[test]
    fn merge_ties_broken_deterministically() {
        let mut q = RequestQueue::new();
        q.push_back(e(2, Mode::Read, 4));
        q.merge(vec![e(1, Mode::Read, 4)]);
        let nodes: Vec<Waiter> = q.iter().map(|x| x.waiter).collect();
        assert_eq!(nodes, vec![Waiter::Remote(NodeId(1)), Waiter::Remote(NodeId(2))]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::ids::Priority;
    use proptest::prelude::*;

    fn arb_entry() -> impl Strategy<Value = QueueEntry> {
        (any::<u32>(), 0u8..4, any::<u64>()).prop_map(|(n, p, s)| {
            QueueEntry::with_priority(Waiter::Remote(NodeId(n)), Mode::Read, Stamp(s), Priority(p))
        })
    }

    /// The queue is always sorted by priority (descending), and within a
    /// priority entries keep their arrival order — for any sequence of
    /// pushes and merges.
    fn assert_priority_sorted(q: &RequestQueue) {
        let prios: Vec<Priority> = q.iter().map(|e| e.priority).collect();
        for w in prios.windows(2) {
            assert!(w[0] >= w[1], "{prios:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn pushes_keep_priority_order(entries in proptest::collection::vec(arb_entry(), 0..24)) {
            let mut q = RequestQueue::new();
            for e in entries {
                q.push_back(e);
            }
            assert_priority_sorted(&q);
        }

        #[test]
        fn merges_keep_priority_and_stamp_order(
            ours in proptest::collection::vec(arb_entry(), 0..12),
            theirs in proptest::collection::vec(arb_entry(), 0..12),
        ) {
            let mut q = RequestQueue::new();
            for e in ours {
                q.push_back(e);
            }
            let resorted = !theirs.is_empty();
            q.merge(theirs);
            assert_priority_sorted(&q);
            // A non-trivial merge re-sorts by (priority, stamp); within a
            // priority band stamps are then non-decreasing. (An empty
            // merge keeps plain arrival order, where stamps may not be
            // monotone.)
            if resorted {
                let entries: Vec<QueueEntry> = q.iter().copied().collect();
                for w in entries.windows(2) {
                    if w[0].priority == w[1].priority {
                        prop_assert!(w[0].stamp <= w[1].stamp, "{entries:?}");
                    }
                }
            }
        }
    }
}
