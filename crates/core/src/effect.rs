//! Effects: what a sans-I/O protocol step asks its host to do.
//!
//! The protocol state machines never touch sockets or clocks. Every
//! operation (`request`, `release`, `on_message`, …) appends [`Effect`]s
//! to an [`EffectSink`]; the host (simulator, model checker or TCP
//! transport) executes them.

use crate::ids::{LockId, NodeId, Ticket};
use crate::mode::Mode;
use crate::observe::ProtocolEvent;
use core::fmt;

/// An instruction from the protocol to its host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect<M> {
    /// Send `message` to node `to`.
    Send {
        /// Destination node.
        to: NodeId,
        /// Protocol message to deliver.
        message: M,
    },
    /// The local request identified by `ticket` has been granted `mode`
    /// on `lock`; the caller may enter its critical section.
    Granted {
        /// Lock concerned.
        lock: LockId,
        /// The ticket supplied with the original request.
        ticket: Ticket,
        /// The granted mode (equals the requested mode, or `W` after an
        /// upgrade).
        mode: Mode,
    },
    /// Ask the host to call [`crate::ConcurrencyProtocol::on_timer`] with
    /// `token` after `delay_micros` of host time has elapsed.
    ///
    /// Hosts may not support cancellation, so a timer can fire after the
    /// condition it guarded has passed; protocols must treat a stale or
    /// unknown token as a no-op.
    SetTimer {
        /// Protocol-chosen correlation token, echoed back on fire.
        token: u64,
        /// Delay until the timer fires, in microseconds of host time
        /// (virtual time in the simulator, wall time on a real transport).
        delay_micros: u64,
    },
}

impl<M> Effect<M> {
    /// Returns the destination if this is a `Send`.
    pub fn send_to(&self) -> Option<NodeId> {
        match self {
            Effect::Send { to, .. } => Some(*to),
            Effect::Granted { .. } | Effect::SetTimer { .. } => None,
        }
    }
}

impl<M: fmt::Debug> fmt::Display for Effect<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Effect::Send { to, message } => write!(f, "send {message:?} -> {to}"),
            Effect::Granted { lock, ticket, mode } => {
                write!(f, "granted {lock} {mode} ({ticket})")
            }
            Effect::SetTimer { token, delay_micros } => {
                write!(f, "set-timer {token:#x} +{delay_micros}us")
            }
        }
    }
}

/// A step-level instruction produced by [`EffectSink::drain_batched`]:
/// the same information as a sequence of [`Effect`]s, but with every
/// `Send` of one protocol step to the same destination coalesced into a
/// single [`StepEffect::Batch`].
///
/// Hosts that transmit a batch as one wire frame (or one simulated hop)
/// model the piggybacking the paper's message counts assume: a
/// hierarchical acquisition that fans IR + R out to the same peer costs
/// one frame, not two.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepEffect<M> {
    /// Deliver `messages` to node `to` as one unit, preserving order.
    ///
    /// The vector is never empty. Messages appear in the exact order the
    /// protocol emitted them towards `to` (per-link FIFO is preserved);
    /// only messages of the *same step* are ever grouped.
    Batch {
        /// Destination node.
        to: NodeId,
        /// The step's messages for `to`, in emission order.
        messages: Vec<M>,
    },
    /// Same as [`Effect::Granted`].
    Granted {
        /// Lock concerned.
        lock: LockId,
        /// The ticket supplied with the original request.
        ticket: Ticket,
        /// The granted mode.
        mode: Mode,
    },
    /// Same as [`Effect::SetTimer`].
    SetTimer {
        /// Protocol-chosen correlation token, echoed back on fire.
        token: u64,
        /// Delay until the timer fires, in microseconds of host time.
        delay_micros: u64,
    },
}

impl<M> StepEffect<M> {
    /// Returns the destination if this is a `Batch`.
    pub fn batch_to(&self) -> Option<NodeId> {
        match self {
            StepEffect::Batch { to, .. } => Some(*to),
            StepEffect::Granted { .. } | StepEffect::SetTimer { .. } => None,
        }
    }
}

/// Accumulator for the effects of one protocol step.
///
/// Reusable across steps via [`EffectSink::drain`] to avoid reallocation
/// in hot simulation loops.
///
/// ```
/// use hlock_core::{Effect, EffectSink, LockId, Mode, NodeId, Ticket};
/// let mut sink: EffectSink<&'static str> = EffectSink::new();
/// sink.send(NodeId(1), "hello");
/// sink.granted(LockId(0), Ticket(7), Mode::Read);
/// assert_eq!(sink.len(), 2);
/// let effects: Vec<Effect<&str>> = sink.drain().collect();
/// assert!(sink.is_empty());
/// assert_eq!(effects[0].send_to(), Some(NodeId(1)));
/// ```
#[derive(Debug, Clone)]
pub struct EffectSink<M> {
    effects: Vec<Effect<M>>,
    events: Vec<ProtocolEvent>,
    observing: bool,
}

impl<M> Default for EffectSink<M> {
    fn default() -> Self {
        EffectSink::new()
    }
}

impl<M> EffectSink<M> {
    /// Creates an empty sink with observation off.
    pub fn new() -> Self {
        EffectSink { effects: Vec::new(), events: Vec::new(), observing: false }
    }

    /// Turns observation on or off. While off (the default),
    /// [`EffectSink::emit_with`] is a no-op — protocols instrumented
    /// with events cost nothing when nobody is listening.
    pub fn set_observing(&mut self, on: bool) {
        self.observing = on;
    }

    /// Whether protocol events are being recorded.
    pub fn observing(&self) -> bool {
        self.observing
    }

    /// Records a [`ProtocolEvent`] if observation is on. Takes a closure
    /// so event payloads are never even constructed when off.
    pub fn emit_with(&mut self, event: impl FnOnce() -> ProtocolEvent) {
        if self.observing {
            self.events.push(event());
        }
    }

    /// The recorded events (drained by the host runtime).
    pub fn events(&self) -> &[ProtocolEvent] {
        &self.events
    }

    /// Takes the recorded events, leaving the buffer empty.
    pub fn take_events(&mut self) -> Vec<ProtocolEvent> {
        std::mem::take(&mut self.events)
    }

    /// Moves the recorded events into another sink (used by
    /// [`crate::LockSpace`] to forward per-node scratch events).
    pub fn forward_events_into<N>(&mut self, other: &mut EffectSink<N>) {
        if !self.events.is_empty() {
            other.events.append(&mut self.events);
        }
    }

    /// Queues a `Send` effect.
    pub fn send(&mut self, to: NodeId, message: M) {
        self.effects.push(Effect::Send { to, message });
    }

    /// Queues a `Granted` effect.
    pub fn granted(&mut self, lock: LockId, ticket: Ticket, mode: Mode) {
        self.effects.push(Effect::Granted { lock, ticket, mode });
    }

    /// Queues a `SetTimer` effect.
    pub fn set_timer(&mut self, token: u64, delay_micros: u64) {
        self.effects.push(Effect::SetTimer { token, delay_micros });
    }

    /// Number of queued effects.
    pub fn len(&self) -> usize {
        self.effects.len()
    }

    /// Whether no effects are queued.
    pub fn is_empty(&self) -> bool {
        self.effects.is_empty()
    }

    /// Drains the queued effects in order.
    pub fn drain(&mut self) -> impl Iterator<Item = Effect<M>> + '_ {
        self.effects.drain(..)
    }

    /// Immutable view of the queued effects.
    pub fn as_slice(&self) -> &[Effect<M>] {
        &self.effects
    }

    /// Drains the queued effects into `out`, coalescing every `Send` to
    /// the same destination into one [`StepEffect::Batch`].
    ///
    /// A batch sits at the position of the *first* send to its
    /// destination; messages within it keep their emission order, so
    /// per-link FIFO is preserved. `Granted` and `SetTimer` effects keep
    /// their relative positions. A step with a single destination moves
    /// its messages without cloning.
    ///
    /// `out` is appended to (not cleared) so hosts can reuse one scratch
    /// vector across steps.
    pub fn drain_batched_into(&mut self, out: &mut Vec<StepEffect<M>>) {
        let base = out.len();
        for effect in self.effects.drain(..) {
            match effect {
                Effect::Send { to, message } => {
                    // Steps fan out to a handful of peers at most, so a
                    // linear scan beats a hash map here.
                    let existing = out[base..].iter_mut().find_map(|e| match e {
                        StepEffect::Batch { to: t, messages } if *t == to => Some(messages),
                        _ => None,
                    });
                    match existing {
                        Some(messages) => messages.push(message),
                        None => out.push(StepEffect::Batch { to, messages: vec![message] }),
                    }
                }
                Effect::Granted { lock, ticket, mode } => {
                    out.push(StepEffect::Granted { lock, ticket, mode });
                }
                Effect::SetTimer { token, delay_micros } => {
                    out.push(StepEffect::SetTimer { token, delay_micros });
                }
            }
        }
    }

    /// Convenience wrapper around [`EffectSink::drain_batched_into`]
    /// returning a fresh vector.
    pub fn drain_batched(&mut self) -> Vec<StepEffect<M>> {
        let mut out = Vec::new();
        self.drain_batched_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_accumulates_in_order() {
        let mut sink: EffectSink<u8> = EffectSink::new();
        sink.send(NodeId(2), 10);
        sink.send(NodeId(3), 11);
        sink.granted(LockId(1), Ticket(5), Mode::Write);
        assert_eq!(sink.len(), 3);
        let v: Vec<_> = sink.drain().collect();
        assert_eq!(v[0], Effect::Send { to: NodeId(2), message: 10 });
        assert_eq!(v[1], Effect::Send { to: NodeId(3), message: 11 });
        assert_eq!(v[2], Effect::Granted { lock: LockId(1), ticket: Ticket(5), mode: Mode::Write });
        assert!(sink.is_empty());
    }

    #[test]
    fn send_to_extracts_destination() {
        let e: Effect<u8> = Effect::Send { to: NodeId(4), message: 0 };
        assert_eq!(e.send_to(), Some(NodeId(4)));
        let g: Effect<u8> =
            Effect::Granted { lock: LockId(0), ticket: Ticket(0), mode: Mode::Read };
        assert_eq!(g.send_to(), None);
    }

    #[test]
    fn drain_batched_coalesces_per_destination() {
        let mut sink: EffectSink<u8> = EffectSink::new();
        sink.send(NodeId(2), 10);
        sink.granted(LockId(0), Ticket(1), Mode::Read);
        sink.send(NodeId(3), 11);
        sink.send(NodeId(2), 12);
        sink.set_timer(7, 100);
        sink.send(NodeId(3), 13);
        let batched = sink.drain_batched();
        assert!(sink.is_empty());
        assert_eq!(
            batched,
            vec![
                StepEffect::Batch { to: NodeId(2), messages: vec![10, 12] },
                StepEffect::Granted { lock: LockId(0), ticket: Ticket(1), mode: Mode::Read },
                StepEffect::Batch { to: NodeId(3), messages: vec![11, 13] },
                StepEffect::SetTimer { token: 7, delay_micros: 100 },
            ]
        );
    }

    #[test]
    fn drain_batched_into_appends_and_scopes_batches_per_call() {
        let mut sink: EffectSink<u8> = EffectSink::new();
        let mut out = Vec::new();
        sink.send(NodeId(1), 1);
        sink.drain_batched_into(&mut out);
        // A second step to the same peer must NOT merge into the first
        // step's batch: batches never span a step boundary.
        sink.send(NodeId(1), 2);
        sink.drain_batched_into(&mut out);
        assert_eq!(
            out,
            vec![
                StepEffect::Batch { to: NodeId(1), messages: vec![1] },
                StepEffect::Batch { to: NodeId(1), messages: vec![2] },
            ]
        );
    }

    #[test]
    fn batch_to_extracts_destination() {
        let b: StepEffect<u8> = StepEffect::Batch { to: NodeId(9), messages: vec![1] };
        assert_eq!(b.batch_to(), Some(NodeId(9)));
        let t: StepEffect<u8> = StepEffect::SetTimer { token: 0, delay_micros: 1 };
        assert_eq!(t.batch_to(), None);
    }

    #[test]
    fn display_formats() {
        let e: Effect<u8> = Effect::Send { to: NodeId(4), message: 9 };
        assert!(e.to_string().contains("n4"));
        let g: Effect<u8> =
            Effect::Granted { lock: LockId(3), ticket: Ticket(1), mode: Mode::Upgrade };
        assert!(g.to_string().contains("L3"));
        assert!(g.to_string().contains('U'));
    }
}
