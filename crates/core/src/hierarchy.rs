//! Multi-granularity acquisition plans (the CORBA Concurrency Service
//! usage pattern from the paper's §3.1).
//!
//! Hierarchical locking acquires coarse-granule *intention* locks before
//! the fine-granule lock: to read one table entry, take `IR` on the table
//! and then `R` on the entry. [`LockPlan`] captures such a root-first
//! sequence and [`PlanTracker`] steps through it as grants arrive —
//! purely as data, so it composes with any sans-I/O host.

use crate::ids::{LockId, Ticket};
use crate::mode::Mode;

/// One acquisition step of a hierarchical plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyStep {
    /// The lock to acquire.
    pub lock: LockId,
    /// The mode to acquire it in.
    pub mode: Mode,
}

/// A root-first sequence of lock acquisitions.
///
/// ```
/// use hlock_core::{LockId, LockPlan, Mode};
/// // Read entry 5 of a table guarded by lock 0: IR on the table, R on the entry.
/// let plan = LockPlan::for_leaf(&[LockId(0)], LockId(5), Mode::Read);
/// assert_eq!(plan.steps().len(), 2);
/// assert_eq!(plan.steps()[0].mode, Mode::IntentRead);
/// assert_eq!(plan.steps()[1].mode, Mode::Read);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockPlan {
    steps: Vec<HierarchyStep>,
}

impl LockPlan {
    /// A plan from explicit steps (root-first).
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty.
    pub fn new(steps: Vec<HierarchyStep>) -> Self {
        assert!(!steps.is_empty(), "a lock plan needs at least one step");
        LockPlan { steps }
    }

    /// A single-lock plan (no hierarchy).
    pub fn single(lock: LockId, mode: Mode) -> Self {
        LockPlan::new(vec![HierarchyStep { lock, mode }])
    }

    /// The standard multi-granularity plan: every ancestor (root-first)
    /// is taken in the [`Mode::intention`] of `mode`; the leaf in `mode`
    /// itself.
    pub fn for_leaf(ancestors: &[LockId], leaf: LockId, mode: Mode) -> Self {
        let mut steps: Vec<HierarchyStep> =
            ancestors.iter().map(|&lock| HierarchyStep { lock, mode: mode.intention() }).collect();
        steps.push(HierarchyStep { lock: leaf, mode });
        LockPlan::new(steps)
    }

    /// The acquisition steps, root-first.
    pub fn steps(&self) -> &[HierarchyStep] {
        &self.steps
    }
}

/// Tracks progress through a [`LockPlan`].
///
/// The host requests [`PlanTracker::current`], waits for the grant with
/// the indicated ticket, calls [`PlanTracker::advance`], and repeats until
/// [`PlanTracker::is_complete`]. Held locks are released leaf-first via
/// [`PlanTracker::release_order`].
#[derive(Debug, Clone)]
pub struct PlanTracker {
    plan: LockPlan,
    granted: usize,
    base_ticket: u64,
}

impl PlanTracker {
    /// Starts tracking `plan`; step `i` uses ticket `base_ticket + i`.
    pub fn new(plan: LockPlan, base_ticket: u64) -> Self {
        PlanTracker { plan, granted: 0, base_ticket }
    }

    /// The next request to issue, or `None` when the plan is complete.
    pub fn current(&self) -> Option<(LockId, Mode, Ticket)> {
        self.plan
            .steps
            .get(self.granted)
            .map(|s| (s.lock, s.mode, Ticket(self.base_ticket + self.granted as u64)))
    }

    /// Records that the current step was granted. Returns `true` when the
    /// whole plan is now complete.
    ///
    /// # Panics
    ///
    /// Panics if the plan is already complete.
    pub fn advance(&mut self) -> bool {
        assert!(self.granted < self.plan.steps.len(), "plan already complete");
        self.granted += 1;
        self.is_complete()
    }

    /// Whether every step has been granted.
    pub fn is_complete(&self) -> bool {
        self.granted == self.plan.steps.len()
    }

    /// Number of steps granted so far.
    pub fn granted_steps(&self) -> usize {
        self.granted
    }

    /// The underlying plan.
    pub fn plan(&self) -> &LockPlan {
        &self.plan
    }

    /// Locks to release, leaf-first (reverse acquisition order), with the
    /// tickets they were granted under. Only granted steps are included.
    pub fn release_order(&self) -> impl Iterator<Item = (LockId, Ticket)> + '_ {
        (0..self.granted)
            .rev()
            .map(move |i| (self.plan.steps[i].lock, Ticket(self.base_ticket + i as u64)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_leaf_builds_intention_chain() {
        let p = LockPlan::for_leaf(&[LockId(0), LockId(1)], LockId(9), Mode::Write);
        assert_eq!(
            p.steps(),
            &[
                HierarchyStep { lock: LockId(0), mode: Mode::IntentWrite },
                HierarchyStep { lock: LockId(1), mode: Mode::IntentWrite },
                HierarchyStep { lock: LockId(9), mode: Mode::Write },
            ]
        );
    }

    #[test]
    fn upgrade_leaf_uses_intent_write_ancestors() {
        let p = LockPlan::for_leaf(&[LockId(0)], LockId(3), Mode::Upgrade);
        assert_eq!(p.steps()[0].mode, Mode::IntentWrite);
        assert_eq!(p.steps()[1].mode, Mode::Upgrade);
    }

    #[test]
    fn tracker_walks_steps_in_order() {
        let p = LockPlan::for_leaf(&[LockId(0)], LockId(5), Mode::Read);
        let mut t = PlanTracker::new(p, 100);
        assert_eq!(t.current(), Some((LockId(0), Mode::IntentRead, Ticket(100))));
        assert!(!t.advance());
        assert_eq!(t.current(), Some((LockId(5), Mode::Read, Ticket(101))));
        assert!(t.advance());
        assert!(t.is_complete());
        assert_eq!(t.current(), None);
        let rel: Vec<_> = t.release_order().collect();
        assert_eq!(rel, vec![(LockId(5), Ticket(101)), (LockId(0), Ticket(100))]);
    }

    #[test]
    fn partial_release_order_covers_granted_only() {
        let p = LockPlan::for_leaf(&[LockId(0)], LockId(5), Mode::Read);
        let mut t = PlanTracker::new(p, 0);
        t.advance();
        let rel: Vec<_> = t.release_order().collect();
        assert_eq!(rel, vec![(LockId(0), Ticket(0))]);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_plan_panics() {
        let _ = LockPlan::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "already complete")]
    fn advance_past_end_panics() {
        let mut t = PlanTracker::new(LockPlan::single(LockId(0), Mode::Read), 0);
        t.advance();
        t.advance();
    }
}
