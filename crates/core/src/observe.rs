//! Protocol observability: lifecycle events, causal request spans, sinks.
//!
//! The node state machine emits one [`ProtocolEvent`] per lifecycle
//! transition (request issued / forwarded / queued, copyset grant and
//! revoke, token transfer, freeze and unfreeze, release sent vs.
//! suppressed, path reversal, grant, cancel). Every request-scoped event
//! carries a causal [`SpanId`] — the `(origin, ticket)` pair assigned
//! where the request was issued — which is threaded through the wire
//! format so one request can be followed across node boundaries from
//! issue to grant.
//!
//! Events flow through the [`crate::EffectSink`] (gated by its
//! `observing` flag, so an idle observer costs nothing) and are drained
//! by [`crate::HostRuntime::dispatch_observed`] into an [`Observer`].
//! The simulator, the model checker and the TCP transport all dispatch
//! through the same runtime, so all three hosts produce the same event
//! vocabulary with zero per-host code.
//!
//! Three sinks ship with the crate:
//!
//! * [`JsonlObserver`] — one JSON object per line, for ad-hoc grepping
//!   and the CI smoke validator;
//! * [`ChromeTraceObserver`] — a Chrome-trace (`chrome://tracing` /
//!   Perfetto) file with per-node tracks and async request spans;
//! * [`MetricsRegistry`] — Prometheus-text counters, gauges and
//!   reservoir-sampled histograms, served by the TCP runtime's
//!   `/metrics` listener and dumped at exit by the bench binaries.

use crate::ids::{LockId, NodeId, Priority, Ticket};
use crate::message::MessageKind;
use crate::mode::{Mode, ModeSet, ALL_MODES};
use crate::runtime::RuntimeCounters;
use core::fmt;
use std::collections::HashMap;
use std::io::{self, Write};

/// Causal identifier of one request span: the ticket as assigned at the
/// node that issued the request. Globally unique among *outstanding*
/// requests (tickets are unique per origin); a ticket may be reused
/// sequentially after its span closes, which balance checking
/// ([`check_span_balance`]) permits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId {
    /// The node that issued the request.
    pub origin: NodeId,
    /// The origin's ticket for the request.
    pub ticket: Ticket,
}

impl SpanId {
    /// Builds a span id.
    pub fn new(origin: NodeId, ticket: Ticket) -> SpanId {
        SpanId { origin, ticket }
    }

    /// Packs the span into one `u64` (`origin << 32 | ticket`), used as
    /// the async-event correlation id in Chrome traces. Tickets wider
    /// than 32 bits are truncated — fine for trace correlation, since
    /// only *concurrently open* spans must not collide.
    pub fn as_u64(self) -> u64 {
        ((self.origin.0 as u64) << 32) | (self.ticket.0 & 0xffff_ffff)
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.origin, self.ticket)
    }
}

/// One protocol lifecycle transition, as observed at a single node.
///
/// The first group is emitted by the node state machine itself (through
/// the effect sink); the `MessageSent` / `Delivered` / `Dropped` /
/// `TimerFired` group is emitted by the host runtime and the hosts, so
/// every host counts transport activity identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolEvent {
    /// A local caller issued a request; opens the span.
    RequestIssued {
        /// Observing node (= span origin).
        node: NodeId,
        /// Lock concerned.
        lock: LockId,
        /// The request's span.
        span: SpanId,
        /// Requested mode.
        mode: Mode,
        /// Request priority.
        priority: Priority,
    },
    /// A request (local or remote) was absorbed into the local queue.
    RequestQueued {
        /// Observing node.
        node: NodeId,
        /// Lock concerned.
        lock: LockId,
        /// The queued request's span.
        span: SpanId,
        /// Requested mode.
        mode: Mode,
        /// Queue length after insertion.
        queue_depth: usize,
    },
    /// A request was relayed one hop toward the token.
    RequestForwarded {
        /// Observing (forwarding) node.
        node: NodeId,
        /// Lock concerned.
        lock: LockId,
        /// The forwarded request's span.
        span: SpanId,
        /// Requested mode.
        mode: Mode,
    },
    /// The observing node granted a copy to a remote requester, which
    /// joined its copyset.
    CopyGranted {
        /// Observing (granting) node.
        node: NodeId,
        /// Lock concerned.
        lock: LockId,
        /// The served request's span.
        span: SpanId,
        /// Granted mode.
        mode: Mode,
        /// Copyset size after the grant.
        copyset_size: usize,
    },
    /// A child released (or weakened) its copy.
    CopyRevoked {
        /// Observing (parent) node.
        node: NodeId,
        /// Lock concerned.
        lock: LockId,
        /// The child whose copy changed.
        child: NodeId,
        /// The child's new owned mode (`None` = left the copyset).
        new_owned: Option<Mode>,
    },
    /// The observing node transferred the token to the requester.
    TokenSent {
        /// Observing (old token) node.
        node: NodeId,
        /// Lock concerned.
        lock: LockId,
        /// The served request's span.
        span: SpanId,
        /// Mode granted with the transfer.
        mode: Mode,
        /// Local queue entries travelling with the token.
        queue_len: usize,
    },
    /// The observing node received the token and became token node.
    TokenReceived {
        /// Observing (new token) node.
        node: NodeId,
        /// Lock concerned.
        lock: LockId,
        /// The span whose request the transfer serves.
        span: SpanId,
        /// Mode granted with the transfer.
        mode: Mode,
    },
    /// Modes were frozen at the observing node (Rule 6).
    ModeFrozen {
        /// Observing node.
        node: NodeId,
        /// Lock concerned.
        lock: LockId,
        /// The modes newly frozen.
        modes: ModeSet,
    },
    /// The observing node's frozen set was replaced (unfreeze
    /// propagation); `modes` is the *remaining* frozen set.
    ModeUnfrozen {
        /// Observing node.
        node: NodeId,
        /// Lock concerned.
        lock: LockId,
        /// The frozen set still in effect (often empty).
        modes: ModeSet,
    },
    /// A release notification was sent to the parent.
    ReleaseSent {
        /// Observing node.
        node: NodeId,
        /// Lock concerned.
        lock: LockId,
        /// The owned mode reported to the parent.
        new_owned: Option<Mode>,
    },
    /// A release was suppressed because the owned mode did not change
    /// (Rule 5.2 — the paper's message-saving optimisation).
    ReleaseSuppressed {
        /// Observing node.
        node: NodeId,
        /// Lock concerned.
        lock: LockId,
        /// The (unchanged) owned mode.
        owned: Option<Mode>,
    },
    /// The observing node switched parents (its grant arrived from a
    /// node other than the one it had reported ownership to).
    PathReversal {
        /// Observing node.
        node: NodeId,
        /// Lock concerned.
        lock: LockId,
        /// The parent being replaced.
        old_parent: NodeId,
    },
    /// A local request was granted; closes the span.
    Granted {
        /// Observing node.
        node: NodeId,
        /// Lock concerned.
        lock: LockId,
        /// The granted request's span.
        span: SpanId,
        /// Granted mode.
        mode: Mode,
    },
    /// A local caller released a held mode.
    Released {
        /// Observing node.
        node: NodeId,
        /// Lock concerned.
        lock: LockId,
        /// The released ticket.
        ticket: Ticket,
        /// The mode that was held.
        mode: Mode,
    },
    /// A local request was cancelled (or will abort on grant absorption);
    /// closes the span.
    RequestCancelled {
        /// Observing node.
        node: NodeId,
        /// Lock concerned.
        lock: LockId,
        /// The cancelled request's span.
        span: SpanId,
    },
    /// An [`crate::audit_lock`] finding, reported through the event
    /// stream by the simulator / model checker at quiescence.
    AuditViolation {
        /// Node reporting the audit (host-chosen; `NodeId(0)` for
        /// whole-system audits).
        node: NodeId,
        /// Lock concerned.
        lock: LockId,
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// A logical protocol message left the observing node (emitted by
    /// [`crate::HostRuntime::dispatch_observed`], once per message of
    /// every batch).
    MessageSent {
        /// Sending node.
        node: NodeId,
        /// Destination node.
        to: NodeId,
        /// Message classification.
        kind: MessageKind,
    },
    /// A message was delivered to the observing node (emitted by hosts).
    Delivered {
        /// Receiving node.
        node: NodeId,
        /// Sending node.
        from: NodeId,
        /// Message classification.
        kind: MessageKind,
    },
    /// A message to the observing node was dropped by fault injection.
    Dropped {
        /// Intended receiver.
        node: NodeId,
        /// Sender.
        from: NodeId,
        /// Message classification.
        kind: MessageKind,
    },
    /// A protocol timer fired at the observing node (emitted by hosts).
    TimerFired {
        /// Observing node.
        node: NodeId,
        /// The protocol's correlation token.
        token: u64,
    },
    /// The observing node started (or joined) a recovery round targeting
    /// `epoch`, suspecting `dead` nodes of having crashed.
    RecoveryStarted {
        /// Observing node.
        node: NodeId,
        /// The epoch being elected.
        epoch: u64,
        /// How many nodes are suspected dead.
        dead: usize,
    },
    /// The observing node installed the new epoch and resumed service.
    RecoveryCompleted {
        /// Observing node.
        node: NodeId,
        /// The installed epoch.
        epoch: u64,
    },
    /// The recovery coordinator regenerated a token whose holder died
    /// (no survivor reported holding it).
    TokenRegenerated {
        /// The coordinator (= the new token home).
        node: NodeId,
        /// The lock whose token was regenerated.
        lock: LockId,
        /// The epoch the regenerated token belongs to.
        epoch: u64,
    },
    /// An incoming message carrying a stale epoch was fenced at dispatch
    /// (emitted by [`crate::HostRuntime::deliver`]).
    StaleEpochFenced {
        /// Receiving (fencing) node.
        node: NodeId,
        /// The straggling sender.
        from: NodeId,
        /// The stale epoch the message carried.
        epoch: u64,
    },
    /// A transport outbox for `peer` hit its byte bound and dropped the
    /// newest frame instead of queueing it (emitted by readiness-driven
    /// hosts; the session layer recovers the loss by retransmission).
    Backpressure {
        /// The node whose outbox overflowed.
        node: NodeId,
        /// The slow peer the frame was destined for.
        peer: NodeId,
        /// Bytes of the frame that was dropped.
        dropped: u64,
    },
    /// A request was aborted before grant because its node died or the
    /// cluster fenced it behind a new epoch; closes the span so balance
    /// checking holds under crash-recovery runs.
    RequestAborted {
        /// The node whose request aborted (dead or fenced).
        node: NodeId,
        /// Lock concerned.
        lock: LockId,
        /// The aborted request's span.
        span: SpanId,
    },
    /// A transport link was torn down (emitted by readiness-driven
    /// hosts; previously only visible via `HLOCK_MUX_DEBUG` stderr).
    LinkDown {
        /// The node observing the teardown.
        node: NodeId,
        /// The peer on the other end, when the link had identified
        /// itself (`None` for inbound connections that died before the
        /// hello frame arrived).
        peer: Option<NodeId>,
        /// Why the link went down.
        reason: LinkDownReason,
    },
}

/// Why a transport link was torn down — the closed vocabulary behind
/// [`ProtocolEvent::LinkDown`], stable for metrics labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkDownReason {
    /// A write on an established outbound link failed.
    WriteFailed,
    /// A read on an inbound connection failed.
    ReadFailed,
    /// The peer closed the connection (EOF).
    Eof,
    /// An incoming frame failed to decode.
    DecodeFailed,
    /// An outbound dial could not be started or completed.
    DialFailed,
    /// The socket reported an error/hangup readiness condition.
    Hangup,
}

impl LinkDownReason {
    /// All reasons, in label order — sizes metrics arrays.
    pub const ALL: [LinkDownReason; 6] = [
        LinkDownReason::WriteFailed,
        LinkDownReason::ReadFailed,
        LinkDownReason::Eof,
        LinkDownReason::DecodeFailed,
        LinkDownReason::DialFailed,
        LinkDownReason::Hangup,
    ];

    /// Stable snake_case label (JSONL `reason` field, metrics label).
    pub fn label(self) -> &'static str {
        match self {
            LinkDownReason::WriteFailed => "write_failed",
            LinkDownReason::ReadFailed => "read_failed",
            LinkDownReason::Eof => "eof",
            LinkDownReason::DecodeFailed => "decode_failed",
            LinkDownReason::DialFailed => "dial_failed",
            LinkDownReason::Hangup => "hangup",
        }
    }
}

impl ProtocolEvent {
    /// Stable snake_case name, used as the JSONL `event` field and the
    /// Chrome-trace instant name.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolEvent::RequestIssued { .. } => "request_issued",
            ProtocolEvent::RequestQueued { .. } => "request_queued",
            ProtocolEvent::RequestForwarded { .. } => "request_forwarded",
            ProtocolEvent::CopyGranted { .. } => "copy_granted",
            ProtocolEvent::CopyRevoked { .. } => "copy_revoked",
            ProtocolEvent::TokenSent { .. } => "token_sent",
            ProtocolEvent::TokenReceived { .. } => "token_received",
            ProtocolEvent::ModeFrozen { .. } => "mode_frozen",
            ProtocolEvent::ModeUnfrozen { .. } => "mode_unfrozen",
            ProtocolEvent::ReleaseSent { .. } => "release_sent",
            ProtocolEvent::ReleaseSuppressed { .. } => "release_suppressed",
            ProtocolEvent::PathReversal { .. } => "path_reversal",
            ProtocolEvent::Granted { .. } => "granted",
            ProtocolEvent::Released { .. } => "released",
            ProtocolEvent::RequestCancelled { .. } => "request_cancelled",
            ProtocolEvent::AuditViolation { .. } => "audit_violation",
            ProtocolEvent::MessageSent { .. } => "message_sent",
            ProtocolEvent::Delivered { .. } => "delivered",
            ProtocolEvent::Dropped { .. } => "dropped",
            ProtocolEvent::TimerFired { .. } => "timer_fired",
            ProtocolEvent::RecoveryStarted { .. } => "recovery_started",
            ProtocolEvent::RecoveryCompleted { .. } => "recovery_completed",
            ProtocolEvent::TokenRegenerated { .. } => "token_regenerated",
            ProtocolEvent::StaleEpochFenced { .. } => "stale_epoch_fenced",
            ProtocolEvent::Backpressure { .. } => "backpressure",
            ProtocolEvent::RequestAborted { .. } => "request_aborted",
            ProtocolEvent::LinkDown { .. } => "link_down",
        }
    }

    /// The node at which the event was observed.
    pub fn node(&self) -> NodeId {
        match self {
            ProtocolEvent::RequestIssued { node, .. }
            | ProtocolEvent::RequestQueued { node, .. }
            | ProtocolEvent::RequestForwarded { node, .. }
            | ProtocolEvent::CopyGranted { node, .. }
            | ProtocolEvent::CopyRevoked { node, .. }
            | ProtocolEvent::TokenSent { node, .. }
            | ProtocolEvent::TokenReceived { node, .. }
            | ProtocolEvent::ModeFrozen { node, .. }
            | ProtocolEvent::ModeUnfrozen { node, .. }
            | ProtocolEvent::ReleaseSent { node, .. }
            | ProtocolEvent::ReleaseSuppressed { node, .. }
            | ProtocolEvent::PathReversal { node, .. }
            | ProtocolEvent::Granted { node, .. }
            | ProtocolEvent::Released { node, .. }
            | ProtocolEvent::RequestCancelled { node, .. }
            | ProtocolEvent::AuditViolation { node, .. }
            | ProtocolEvent::MessageSent { node, .. }
            | ProtocolEvent::Delivered { node, .. }
            | ProtocolEvent::Dropped { node, .. }
            | ProtocolEvent::TimerFired { node, .. }
            | ProtocolEvent::RecoveryStarted { node, .. }
            | ProtocolEvent::RecoveryCompleted { node, .. }
            | ProtocolEvent::TokenRegenerated { node, .. }
            | ProtocolEvent::StaleEpochFenced { node, .. }
            | ProtocolEvent::Backpressure { node, .. }
            | ProtocolEvent::RequestAborted { node, .. }
            | ProtocolEvent::LinkDown { node, .. } => *node,
        }
    }

    /// The span the event belongs to, if it is request-scoped.
    pub fn span(&self) -> Option<SpanId> {
        match self {
            ProtocolEvent::RequestIssued { span, .. }
            | ProtocolEvent::RequestQueued { span, .. }
            | ProtocolEvent::RequestForwarded { span, .. }
            | ProtocolEvent::CopyGranted { span, .. }
            | ProtocolEvent::TokenSent { span, .. }
            | ProtocolEvent::TokenReceived { span, .. }
            | ProtocolEvent::Granted { span, .. }
            | ProtocolEvent::RequestCancelled { span, .. }
            | ProtocolEvent::RequestAborted { span, .. } => Some(*span),
            _ => None,
        }
    }

    /// Whether this event opens its span (a request was issued).
    pub fn opens_span(&self) -> bool {
        matches!(self, ProtocolEvent::RequestIssued { .. })
    }

    /// Whether this event closes its span (grant, cancellation, or a
    /// crash/fence abort).
    pub fn closes_span(&self) -> bool {
        matches!(
            self,
            ProtocolEvent::Granted { .. }
                | ProtocolEvent::RequestCancelled { .. }
                | ProtocolEvent::RequestAborted { .. }
        )
    }

    /// Appends this event as one flat JSON object (no trailing newline).
    pub fn write_json(&self, at_micros: u64, out: &mut String) {
        use fmt::Write as _;
        let _ = write!(
            out,
            "{{\"at\":{},\"event\":\"{}\",\"node\":{}",
            at_micros,
            self.name(),
            self.node().0
        );
        let span_json = |out: &mut String, lock: &LockId, span: &SpanId| {
            let _ = write!(
                out,
                ",\"lock\":{},\"span_origin\":{},\"span_ticket\":{}",
                lock.0, span.origin.0, span.ticket.0
            );
        };
        fn owned_json(out: &mut String, key: &str, owned: &Option<Mode>) {
            use fmt::Write as _;
            match owned {
                Some(m) => {
                    let _ = write!(out, ",\"{key}\":\"{}\"", m.symbol());
                }
                None => {
                    let _ = write!(out, ",\"{key}\":null");
                }
            }
        }
        match self {
            ProtocolEvent::RequestIssued { lock, span, mode, priority, .. } => {
                span_json(out, lock, span);
                let _ = write!(out, ",\"mode\":\"{}\",\"priority\":{}", mode.symbol(), priority.0);
            }
            ProtocolEvent::RequestQueued { lock, span, mode, queue_depth, .. } => {
                span_json(out, lock, span);
                let _ =
                    write!(out, ",\"mode\":\"{}\",\"queue_depth\":{}", mode.symbol(), queue_depth);
            }
            ProtocolEvent::RequestForwarded { lock, span, mode, .. } => {
                span_json(out, lock, span);
                let _ = write!(out, ",\"mode\":\"{}\"", mode.symbol());
            }
            ProtocolEvent::CopyGranted { lock, span, mode, copyset_size, .. } => {
                span_json(out, lock, span);
                let _ = write!(
                    out,
                    ",\"mode\":\"{}\",\"copyset_size\":{}",
                    mode.symbol(),
                    copyset_size
                );
            }
            ProtocolEvent::CopyRevoked { lock, child, new_owned, .. } => {
                let _ = write!(out, ",\"lock\":{},\"child\":{}", lock.0, child.0);
                owned_json(out, "new_owned", new_owned);
            }
            ProtocolEvent::TokenSent { lock, span, mode, queue_len, .. } => {
                span_json(out, lock, span);
                let _ = write!(out, ",\"mode\":\"{}\",\"queue_len\":{}", mode.symbol(), queue_len);
            }
            ProtocolEvent::TokenReceived { lock, span, mode, .. } => {
                span_json(out, lock, span);
                let _ = write!(out, ",\"mode\":\"{}\"", mode.symbol());
            }
            ProtocolEvent::ModeFrozen { lock, modes, .. }
            | ProtocolEvent::ModeUnfrozen { lock, modes, .. } => {
                let _ = write!(out, ",\"lock\":{},\"modes\":", lock.0);
                push_json_str(out, &modes.to_string());
            }
            ProtocolEvent::ReleaseSent { lock, new_owned, .. } => {
                let _ = write!(out, ",\"lock\":{}", lock.0);
                owned_json(out, "new_owned", new_owned);
            }
            ProtocolEvent::ReleaseSuppressed { lock, owned, .. } => {
                let _ = write!(out, ",\"lock\":{}", lock.0);
                owned_json(out, "owned", owned);
            }
            ProtocolEvent::PathReversal { lock, old_parent, .. } => {
                let _ = write!(out, ",\"lock\":{},\"old_parent\":{}", lock.0, old_parent.0);
            }
            ProtocolEvent::Granted { lock, span, mode, .. } => {
                span_json(out, lock, span);
                let _ = write!(out, ",\"mode\":\"{}\"", mode.symbol());
            }
            ProtocolEvent::Released { lock, ticket, mode, .. } => {
                let _ = write!(
                    out,
                    ",\"lock\":{},\"ticket\":{},\"mode\":\"{}\"",
                    lock.0,
                    ticket.0,
                    mode.symbol()
                );
            }
            ProtocolEvent::RequestCancelled { lock, span, .. } => {
                span_json(out, lock, span);
            }
            ProtocolEvent::AuditViolation { lock, detail, .. } => {
                let _ = write!(out, ",\"lock\":{},\"detail\":", lock.0);
                push_json_str(out, detail);
            }
            ProtocolEvent::MessageSent { to, kind, .. } => {
                let _ = write!(out, ",\"to\":{},\"kind\":\"{}\"", to.0, kind.label());
            }
            ProtocolEvent::Delivered { from, kind, .. }
            | ProtocolEvent::Dropped { from, kind, .. } => {
                let _ = write!(out, ",\"from\":{},\"kind\":\"{}\"", from.0, kind.label());
            }
            ProtocolEvent::TimerFired { token, .. } => {
                let _ = write!(out, ",\"token\":{token}");
            }
            ProtocolEvent::RecoveryStarted { epoch, dead, .. } => {
                let _ = write!(out, ",\"epoch\":{epoch},\"dead\":{dead}");
            }
            ProtocolEvent::RecoveryCompleted { epoch, .. } => {
                let _ = write!(out, ",\"epoch\":{epoch}");
            }
            ProtocolEvent::TokenRegenerated { lock, epoch, .. } => {
                let _ = write!(out, ",\"lock\":{},\"epoch\":{epoch}", lock.0);
            }
            ProtocolEvent::StaleEpochFenced { from, epoch, .. } => {
                let _ = write!(out, ",\"from\":{},\"epoch\":{epoch}", from.0);
            }
            ProtocolEvent::Backpressure { peer, dropped, .. } => {
                let _ = write!(out, ",\"peer\":{},\"dropped\":{dropped}", peer.0);
            }
            ProtocolEvent::RequestAborted { lock, span, .. } => {
                span_json(out, lock, span);
            }
            ProtocolEvent::LinkDown { peer, reason, .. } => {
                match peer {
                    Some(p) => {
                        let _ = write!(out, ",\"peer\":{}", p.0);
                    }
                    None => out.push_str(",\"peer\":null"),
                }
                let _ = write!(out, ",\"reason\":\"{}\"", reason.label());
            }
        }
        out.push('}');
    }
}

impl fmt::Display for ProtocolEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_json(0, &mut s);
        f.write_str(&s)
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Receives the event stream of a run, in dispatch order.
///
/// `at_micros` is host time: virtual microseconds in the simulator, `0`
/// in the model checker (which has no clock), wall-clock microseconds
/// since cluster start on the TCP transport.
pub trait Observer {
    /// Called once per event.
    fn on_event(&mut self, at_micros: u64, event: &ProtocolEvent);
}

/// Discards everything (the default observer).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_event(&mut self, _at_micros: u64, _event: &ProtocolEvent) {}
}

/// Forwards to a closure.
impl<F: FnMut(u64, &ProtocolEvent)> Observer for F {
    fn on_event(&mut self, at_micros: u64, event: &ProtocolEvent) {
        self(at_micros, event);
    }
}

/// Buffers every event in memory — the simplest sink, used by tests.
#[derive(Debug, Clone, Default)]
pub struct VecObserver {
    /// The observed `(at_micros, event)` pairs, in order.
    pub events: Vec<(u64, ProtocolEvent)>,
}

impl Observer for VecObserver {
    fn on_event(&mut self, at_micros: u64, event: &ProtocolEvent) {
        self.events.push((at_micros, event.clone()));
    }
}

/// Writes one JSON object per event, newline-delimited.
///
/// I/O errors are latched (the observer goes quiet) and reported by
/// [`JsonlObserver::take_error`]; an observer callback has no way to
/// fail.
#[derive(Debug)]
pub struct JsonlObserver<W: Write> {
    out: W,
    line: String,
    lines: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonlObserver<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        JsonlObserver { out, line: String::new(), lines: 0, error: None }
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The first I/O error hit, if any (clears it).
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    /// Flushes and returns the inner writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

impl<W: Write> Observer for JsonlObserver<W> {
    fn on_event(&mut self, at_micros: u64, event: &ProtocolEvent) {
        if self.error.is_some() {
            return;
        }
        self.line.clear();
        event.write_json(at_micros, &mut self.line);
        self.line.push('\n');
        match self.out.write_all(self.line.as_bytes()) {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// Buffers a run as a Chrome-trace (Trace Event Format) JSON document,
/// loadable in `chrome://tracing` or <https://ui.perfetto.dev>.
///
/// Every node gets one track (`pid` 1, `tid` = node id). Each event
/// appears as an instant (`ph:"i"`) on its node's track; request spans
/// additionally appear as async begin/end pairs (`ph:"b"`/`"e"`) keyed
/// by the span id, so a request's whole journey — across nodes — renders
/// as one horizontal span.
#[derive(Debug, Clone, Default)]
pub struct ChromeTraceObserver {
    entries: Vec<String>,
}

impl ChromeTraceObserver {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTraceObserver::default()
    }

    /// Number of trace entries buffered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends one pre-rendered Trace Event Format object. Used by
    /// offline mergers (the `timeline` tool) that re-emit
    /// flight-recorder lines through the same document sink instead of
    /// reconstructing [`ProtocolEvent`]s from JSON.
    pub fn push_entry(&mut self, entry: String) {
        self.entries.push(entry);
    }

    /// Renders the complete trace document.
    pub fn finish(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(e);
        }
        out.push_str("\n]}\n");
        out
    }
}

impl Observer for ChromeTraceObserver {
    fn on_event(&mut self, at_micros: u64, event: &ProtocolEvent) {
        use fmt::Write as _;
        let tid = event.node().0;
        if let Some(span) = event.span() {
            let ph = if event.opens_span() {
                Some("b")
            } else if event.closes_span() {
                Some("e")
            } else {
                None
            };
            if let Some(ph) = ph {
                let mut e = String::new();
                let _ = write!(
                    e,
                    "{{\"ph\":\"{ph}\",\"cat\":\"request\",\"name\":\"request\",\
                     \"id\":\"0x{:x}\",\"pid\":1,\"tid\":{tid},\"ts\":{at_micros}}}",
                    span.as_u64()
                );
                self.entries.push(e);
            }
        }
        let mut e = String::new();
        let _ = write!(
            e,
            "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{}\",\"pid\":1,\"tid\":{tid},\
             \"ts\":{at_micros},\"args\":{{\"json\":",
            event.name()
        );
        let mut payload = String::new();
        event.write_json(at_micros, &mut payload);
        push_json_str(&mut e, &payload);
        e.push_str("}}");
        self.entries.push(e);
    }
}

/// A hybrid-logical-clock stamp, packed into one `u64`: the upper 48
/// bits are physical microseconds (host time), the lower 16 bits a
/// logical counter that breaks ties and carries causality when physical
/// clocks stall or run behind. Packed stamps compare correctly with
/// plain integer ordering, so they sort, merge and travel as varints on
/// the wire without any unpacking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Hlc(pub u64);

/// Widest physical component an [`Hlc`] can carry (48 bits of
/// microseconds ≈ 8.9 years of uptime).
const HLC_PHYS_MAX: u64 = (1 << 48) - 1;

impl Hlc {
    /// Packs a physical/logical pair (physical saturates at 48 bits).
    pub fn pack(physical_micros: u64, logical: u16) -> Hlc {
        Hlc((physical_micros.min(HLC_PHYS_MAX) << 16) | logical as u64)
    }

    /// The physical component, in microseconds of host time.
    pub fn physical_micros(self) -> u64 {
        self.0 >> 16
    }

    /// The logical (tie-breaking) component.
    pub fn logical(self) -> u16 {
        (self.0 & 0xffff) as u16
    }
}

impl fmt::Display for Hlc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.physical_micros(), self.logical())
    }
}

/// A hybrid logical clock (Kulkarni et al.): monotone, causally
/// consistent across nodes, and never further from physical time than
/// the true clock skew. [`HlcClock::tick`] stamps local events and
/// outgoing messages; [`HlcClock::observe`] folds a received stamp in so
/// every delivery is ordered after its send.
#[derive(Debug, Clone, Copy, Default)]
pub struct HlcClock {
    last: Hlc,
}

impl HlcClock {
    /// A clock at zero.
    pub fn new() -> Self {
        HlcClock::default()
    }

    /// The last stamp issued (zero before the first tick).
    pub fn now(&self) -> Hlc {
        self.last
    }

    fn advance(&mut self, physical: u64, logical: u32) -> Hlc {
        // Logical overflow spills into the physical component, keeping
        // the packed stamp strictly monotone.
        self.last = if logical > u16::MAX as u32 {
            Hlc::pack(physical + 1, 0)
        } else {
            Hlc::pack(physical, logical as u16)
        };
        self.last
    }

    /// Issues a stamp for a local event at host time `at_micros`.
    pub fn tick(&mut self, at_micros: u64) -> Hlc {
        let pt = at_micros.min(HLC_PHYS_MAX);
        let lp = self.last.physical_micros();
        if pt > lp {
            self.advance(pt, 0)
        } else {
            self.advance(lp, self.last.logical() as u32 + 1)
        }
    }

    /// Folds a remote stamp in (message receipt) and issues a stamp
    /// ordered strictly after both the remote stamp and every local one.
    pub fn observe(&mut self, remote: Hlc, at_micros: u64) -> Hlc {
        let pt = at_micros.min(HLC_PHYS_MAX);
        let lp = self.last.physical_micros();
        let rp = remote.physical_micros();
        let np = lp.max(rp).max(pt);
        let nl = if np == lp && np == rp {
            self.last.logical().max(remote.logical()) as u32 + 1
        } else if np == lp {
            self.last.logical() as u32 + 1
        } else if np == rp {
            remote.logical() as u32 + 1
        } else {
            0
        };
        self.advance(np, nl)
    }
}

/// Default flight-recorder capacity: the last 4096 events per node,
/// ~a few hundred KiB — enough tail to reconstruct the window around a
/// violation or crash without unbounded growth.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// A fixed-capacity per-node ring buffer of the most recent protocol
/// events, each stamped with a hybrid logical clock. Recording is a
/// clock tick plus a ring push — cheap enough to leave on in production
/// — and the buffer only materialises as JSONL when a dump trigger
/// fires (on demand, on crash, or on an audit violation).
///
/// Dump lines are ordinary observability JSONL with one extra leading
/// `"hlc"` field, so every existing tool keeps working and the
/// `timeline` merger can causally order lines across nodes.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    node: NodeId,
    cap: usize,
    ring: std::collections::VecDeque<(Hlc, u64, ProtocolEvent)>,
    clock: HlcClock,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder for `node` keeping at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(node: NodeId, capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        FlightRecorder {
            node,
            cap: capacity,
            ring: std::collections::VecDeque::with_capacity(capacity.min(1024)),
            clock: HlcClock::new(),
            dropped: 0,
        }
    }

    /// The node this recorder belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The clock's latest stamp.
    pub fn now(&self) -> Hlc {
        self.clock.now()
    }

    /// Ticks the clock and records one event; returns the stamp.
    pub fn record(&mut self, at_micros: u64, event: &ProtocolEvent) -> Hlc {
        let h = self.clock.tick(at_micros);
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back((h, at_micros, event.clone()));
        h
    }

    /// Issues a stamp for an outgoing message (a bare clock tick).
    pub fn stamp_send(&mut self, at_micros: u64) -> Hlc {
        self.clock.tick(at_micros)
    }

    /// Folds the stamp of a received message into the clock.
    pub fn observe_remote(&mut self, remote: Hlc, at_micros: u64) -> Hlc {
        self.clock.observe(remote, at_micros)
    }

    /// Renders the retained window as JSONL, oldest first. Each line is
    /// the event's flat JSON with a leading `"hlc"` field spliced in.
    pub fn dump_jsonl(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let mut line = String::new();
        for (h, at, ev) in &self.ring {
            line.clear();
            ev.write_json(*at, &mut line);
            let _ = write!(out, "{{\"hlc\":{},", h.0);
            out.push_str(&line[1..]);
            out.push('\n');
        }
        out
    }

    /// Writes the retained window to `path` (parent directories are
    /// created as needed).
    pub fn dump_to(&self, path: &std::path::Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.dump_jsonl())
    }
}

impl Observer for FlightRecorder {
    fn on_event(&mut self, at_micros: u64, event: &ProtocolEvent) {
        self.record(at_micros, event);
    }
}

/// A cloneable, thread-safe handle to one node's [`FlightRecorder`],
/// shared between the node's event-loop worker (which records events
/// and stamps/merges wire HLCs) and whoever holds the dump trigger.
#[derive(Debug, Clone)]
pub struct SharedRecorder(std::sync::Arc<std::sync::Mutex<FlightRecorder>>);

impl SharedRecorder {
    /// A shared recorder for `node` with the given ring capacity.
    pub fn new(node: NodeId, capacity: usize) -> Self {
        SharedRecorder(std::sync::Arc::new(std::sync::Mutex::new(FlightRecorder::new(
            node, capacity,
        ))))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FlightRecorder> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Ticks the clock for an outgoing wire frame; returns the raw
    /// stamp to carry in the batch header.
    pub fn stamp_send(&self, at_micros: u64) -> u64 {
        self.lock().stamp_send(at_micros).0
    }

    /// Folds a received frame's raw stamp into the clock (zero stamps —
    /// unobserved senders — are ignored).
    pub fn observe_remote(&self, raw: u64, at_micros: u64) {
        if raw != 0 {
            self.lock().observe_remote(Hlc(raw), at_micros);
        }
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Renders the retained window as JSONL (see
    /// [`FlightRecorder::dump_jsonl`]).
    pub fn dump_jsonl(&self) -> String {
        self.lock().dump_jsonl()
    }

    /// Writes the retained window to `path`.
    pub fn dump_to(&self, path: &std::path::Path) -> io::Result<()> {
        self.lock().dump_to(path)
    }

    /// Runs `f` with the recorder locked (tests, custom triggers).
    pub fn with<R>(&self, f: impl FnOnce(&mut FlightRecorder) -> R) -> R {
        f(&mut self.lock())
    }
}

impl Observer for SharedRecorder {
    fn on_event(&mut self, at_micros: u64, event: &ProtocolEvent) {
        self.lock().record(at_micros, event);
    }
}

/// Per-node flight recorders for single-threaded hosts (simulator,
/// model checker) driven by one merged event stream. Message causality
/// is reconstructed from the stream itself: each `message_sent` pushes
/// its stamp onto the link's in-flight queue and the matching
/// `delivered` / `dropped` pops it, merging into the receiver's clock —
/// so cross-node stamps order sends before deliveries exactly as the
/// wire-carried HLC does on the TCP transport. (Under reordering fault
/// injection the FIFO pop pairs a delivery with the *oldest* in-flight
/// send on its link — a conservative, still-causal bound.)
#[derive(Debug, Clone)]
pub struct ClusterRecorder {
    nodes: Vec<FlightRecorder>,
    in_flight: HashMap<(u32, u32), std::collections::VecDeque<Hlc>>,
}

impl ClusterRecorder {
    /// Recorders for nodes `0..n`, each with ring capacity `capacity`.
    pub fn new(n: usize, capacity: usize) -> Self {
        ClusterRecorder {
            nodes: (0..n).map(|i| FlightRecorder::new(NodeId(i as u32), capacity)).collect(),
            in_flight: HashMap::new(),
        }
    }

    /// The per-node recorders.
    pub fn nodes(&self) -> &[FlightRecorder] {
        &self.nodes
    }

    /// Writes every node's window to `dir/flight-node-<i>.jsonl` and
    /// returns the paths written.
    pub fn dump_all(&self, dir: &std::path::Path) -> io::Result<Vec<std::path::PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut paths = Vec::with_capacity(self.nodes.len());
        for (i, rec) in self.nodes.iter().enumerate() {
            let path = dir.join(format!("flight-node-{i}.jsonl"));
            rec.dump_to(&path)?;
            paths.push(path);
        }
        Ok(paths)
    }
}

impl Observer for ClusterRecorder {
    fn on_event(&mut self, at_micros: u64, event: &ProtocolEvent) {
        let n = event.node().0 as usize;
        if n >= self.nodes.len() {
            return;
        }
        match event {
            ProtocolEvent::MessageSent { node, to, .. } => {
                let h = self.nodes[n].record(at_micros, event);
                self.in_flight.entry((node.0, to.0)).or_default().push_back(h);
            }
            ProtocolEvent::Delivered { node, from, .. } => {
                if let Some(h) =
                    self.in_flight.get_mut(&(from.0, node.0)).and_then(|q| q.pop_front())
                {
                    self.nodes[n].observe_remote(h, at_micros);
                }
                self.nodes[n].record(at_micros, event);
            }
            ProtocolEvent::Dropped { node, from, .. } => {
                // The stamp never arrives; discard it so later
                // deliveries pair with their own sends.
                if let Some(q) = self.in_flight.get_mut(&(from.0, node.0)) {
                    q.pop_front();
                }
                self.nodes[n].record(at_micros, event);
            }
            _ => {
                self.nodes[n].record(at_micros, event);
            }
        }
    }
}

/// A fixed-capacity uniform sample of a value stream.
///
/// Exact (keeps everything) while at most `capacity` values have been
/// recorded; beyond that it degrades to a uniform random sample driven
/// by a deterministic xorshift generator, so runs stay reproducible and
/// memory stays bounded — this replaces the previously unbounded
/// percentile buffers in the simulator's metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reservoir {
    cap: usize,
    samples: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
    rng: u64,
}

/// Default reservoir capacity: exact percentiles for runs up to 1024
/// observations, ~8 KiB ceiling beyond.
pub const DEFAULT_RESERVOIR_CAPACITY: usize = 1024;

impl Default for Reservoir {
    fn default() -> Self {
        Reservoir::with_capacity(DEFAULT_RESERVOIR_CAPACITY)
    }
}

impl Reservoir {
    /// A reservoir keeping at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Reservoir {
            cap: capacity,
            samples: Vec::new(),
            count: 0,
            sum: 0,
            max: 0,
            rng: 0x9e37_79b9_7f4a_7c15 ^ capacity as u64,
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*: deterministic, no dependency, plenty for sampling.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
        if self.samples.len() < self.cap {
            self.samples.push(value);
        } else {
            let j = self.next_rand() % self.count;
            if (j as usize) < self.cap {
                self.samples[j as usize] = value;
            }
        }
    }

    /// Values ever recorded (≥ retained sample count).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of every recorded value.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean over *all* recorded values (not just the sample).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (`0.0 ..= 1.0`) of the retained sample;
    /// exact when fewer than `capacity` values were recorded.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&p), "percentile must be within [0, 1]");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        Some(sorted[idx])
    }

    /// Folds another reservoir in. Sums, counts and maxima combine
    /// exactly; the retained sample is the concatenation when it fits,
    /// otherwise a deterministic uniform subsample of both.
    pub fn merge(&mut self, other: &Reservoir) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        if self.samples.len() + other.samples.len() <= self.cap {
            self.samples.extend_from_slice(&other.samples);
            return;
        }
        self.samples.extend_from_slice(&other.samples);
        // Deterministic Fisher–Yates prefix shuffle, then truncate: every
        // retained sample survives with equal probability.
        let n = self.samples.len();
        for i in 0..self.cap.min(n) {
            let j = i + (self.next_rand() as usize) % (n - i);
            self.samples.swap(i, j);
        }
        self.samples.truncate(self.cap);
    }
}

/// Number of message kinds — sizes the per-kind counter arrays.
const KIND_COUNT: usize = MessageKind::ALL.len();

fn kind_index(kind: MessageKind) -> usize {
    MessageKind::ALL.iter().position(|k| *k == kind).unwrap_or(0)
}

fn mode_index(mode: Mode) -> usize {
    mode.wire_tag() as usize
}

#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    start: u64,
    mode: Mode,
    hops: u64,
}

/// Per-shard runtime gauges snapshotted by sharded hosts via
/// [`MetricsRegistry::record_shard`].
///
/// `queue_depth` is a last-observed gauge; `routed` and `parks` are
/// cumulative counters maintained by the host (the deterministic
/// [`crate::ShardedSpace`] or a parallel shard worker thread).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardGauges {
    /// Last observed depth of the shard's inbound queue.
    pub queue_depth: u64,
    /// Messages routed into the shard since start.
    pub routed: u64,
    /// Times the shard's worker parked on an empty queue.
    pub parks: u64,
}

/// An [`Observer`] that aggregates the event stream into Prometheus-text
/// metrics: counters (messages by kind, releases suppressed vs. sent,
/// grants by mode), last-observed gauges (local queue depth and copyset
/// size per node), and reservoir-sampled histograms (request-to-grant
/// latency by mode, freeze duration, token hops per grant).
///
/// Gauges hold the *last observed* value per node — they update when the
/// corresponding event fires, not continuously. Host runtimes fold their
/// [`RuntimeCounters`] in via [`MetricsRegistry::record_runtime`], so
/// frame/coalesce accounting lands in `/metrics` too. Per-node registries
/// combine with [`MetricsRegistry::merge`].
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    messages_by_kind: [u64; KIND_COUNT],
    delivered_by_kind: [u64; KIND_COUNT],
    dropped_by_kind: [u64; KIND_COUNT],
    releases_sent: u64,
    releases_suppressed: u64,
    grants_by_mode: [u64; 5],
    cancellations: u64,
    path_reversals: u64,
    timers_fired: u64,
    audit_violations: u64,
    recoveries_started: u64,
    recoveries_completed: u64,
    recovery_epoch: u64,
    token_regenerations: u64,
    fenced: u64,
    backpressure_drops: u64,
    backpressure_bytes: u64,
    aborts: u64,
    link_down: [u64; LinkDownReason::ALL.len()],
    queue_depth: HashMap<u32, u64>,
    copyset_size: HashMap<u32, u64>,
    latency_by_mode: [Option<Reservoir>; 5],
    freeze_duration: Option<Reservoir>,
    token_hops: Option<Reservoir>,
    recovery_latency: Option<Reservoir>,
    open_spans: HashMap<SpanId, OpenSpan>,
    freeze_since: HashMap<u32, u64>,
    recovery_since: HashMap<u32, u64>,
    runtime: RuntimeCounters,
    shard_gauges: Vec<ShardGauges>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Snapshots a host runtime's counters into the registry (replaces
    /// the previous snapshot — [`RuntimeCounters`] are cumulative).
    pub fn record_runtime(&mut self, counters: &RuntimeCounters) {
        self.runtime = *counters;
    }

    /// Snapshots one shard's gauges (replaces the previous snapshot for
    /// that shard index — the values are cumulative on the host side).
    pub fn record_shard(&mut self, shard: usize, gauges: ShardGauges) {
        if self.shard_gauges.len() <= shard {
            self.shard_gauges.resize(shard + 1, ShardGauges::default());
        }
        self.shard_gauges[shard] = gauges;
    }

    /// The recorded per-shard gauges, indexed by shard (empty when the
    /// host is unsharded).
    pub fn shard_gauges(&self) -> &[ShardGauges] {
        &self.shard_gauges
    }

    /// Messages sent, by kind (indexed per [`MessageKind::ALL`]).
    pub fn messages_by_kind(&self) -> &[u64; KIND_COUNT] {
        &self.messages_by_kind
    }

    /// Recovery rounds started / completed, as observed across nodes.
    pub fn recoveries(&self) -> (u64, u64) {
        (self.recoveries_started, self.recoveries_completed)
    }

    /// The highest installed recovery epoch observed.
    pub fn recovery_epoch(&self) -> u64 {
        self.recovery_epoch
    }

    /// Messages fenced for carrying a stale epoch.
    pub fn fenced_total(&self) -> u64 {
        self.fenced
    }

    /// Frames dropped (and their total bytes) because a transport
    /// outbox hit its bound.
    pub fn backpressure(&self) -> (u64, u64) {
        (self.backpressure_drops, self.backpressure_bytes)
    }

    /// Requests aborted by node death or epoch fencing.
    pub fn aborts_total(&self) -> u64 {
        self.aborts
    }

    /// Transport link teardowns, summed over reasons.
    pub fn link_down_total(&self) -> u64 {
        self.link_down.iter().sum()
    }

    /// Releases suppressed by Rule 5.2.
    pub fn releases_suppressed(&self) -> u64 {
        self.releases_suppressed
    }

    /// Grants observed, summed over modes.
    pub fn grants_total(&self) -> u64 {
        self.grants_by_mode.iter().sum()
    }

    /// Audit findings routed through the event stream.
    pub fn audit_violations(&self) -> u64 {
        self.audit_violations
    }

    /// The request-to-grant latency reservoir for `mode`, if any grant
    /// of that mode was observed.
    pub fn latency(&self, mode: Mode) -> Option<&Reservoir> {
        self.latency_by_mode[mode_index(mode)].as_ref()
    }

    /// Token hops (forward + transfer messages) per granted request.
    pub fn token_hops(&self) -> Option<&Reservoir> {
        self.token_hops.as_ref()
    }

    /// Folds another registry in (counters add, gauges union by node,
    /// reservoirs merge, runtime counters add field-wise).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for i in 0..KIND_COUNT {
            self.messages_by_kind[i] += other.messages_by_kind[i];
            self.delivered_by_kind[i] += other.delivered_by_kind[i];
            self.dropped_by_kind[i] += other.dropped_by_kind[i];
        }
        self.releases_sent += other.releases_sent;
        self.releases_suppressed += other.releases_suppressed;
        for i in 0..5 {
            self.grants_by_mode[i] += other.grants_by_mode[i];
        }
        self.cancellations += other.cancellations;
        self.path_reversals += other.path_reversals;
        self.timers_fired += other.timers_fired;
        self.audit_violations += other.audit_violations;
        self.recoveries_started += other.recoveries_started;
        self.recoveries_completed += other.recoveries_completed;
        self.recovery_epoch = self.recovery_epoch.max(other.recovery_epoch);
        self.token_regenerations += other.token_regenerations;
        self.fenced += other.fenced;
        self.backpressure_drops += other.backpressure_drops;
        self.backpressure_bytes += other.backpressure_bytes;
        self.aborts += other.aborts;
        for i in 0..self.link_down.len() {
            self.link_down[i] += other.link_down[i];
        }
        if let Some(theirs) = &other.recovery_latency {
            self.recovery_latency.get_or_insert_with(Reservoir::default).merge(theirs);
        }
        for (&n, &v) in &other.queue_depth {
            self.queue_depth.insert(n, v);
        }
        for (&n, &v) in &other.copyset_size {
            self.copyset_size.insert(n, v);
        }
        for i in 0..5 {
            if let Some(theirs) = &other.latency_by_mode[i] {
                self.latency_by_mode[i].get_or_insert_with(Reservoir::default).merge(theirs);
            }
        }
        if let Some(theirs) = &other.freeze_duration {
            self.freeze_duration.get_or_insert_with(Reservoir::default).merge(theirs);
        }
        if let Some(theirs) = &other.token_hops {
            self.token_hops.get_or_insert_with(Reservoir::default).merge(theirs);
        }
        self.runtime.absorb(&other.runtime);
        if self.shard_gauges.len() < other.shard_gauges.len() {
            self.shard_gauges.resize(other.shard_gauges.len(), ShardGauges::default());
        }
        for (mine, theirs) in self.shard_gauges.iter_mut().zip(&other.shard_gauges) {
            mine.queue_depth = mine.queue_depth.max(theirs.queue_depth);
            mine.routed += theirs.routed;
            mine.parks += theirs.parks;
        }
    }

    /// Renders the registry in the Prometheus text exposition format.
    /// Histograms render as summaries (quantiles 0.5 / 0.9 / 0.99 /
    /// 0.999 plus `_sum` and `_count`).
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let counter = |out: &mut String, name: &str, help: &str| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
        };

        counter(&mut out, "hlock_messages_total", "Protocol messages sent, by kind.");
        for (i, k) in MessageKind::ALL.iter().enumerate() {
            let _ = writeln!(
                out,
                "hlock_messages_total{{kind=\"{}\"}} {}",
                k.label(),
                self.messages_by_kind[i]
            );
        }
        counter(&mut out, "hlock_delivered_total", "Messages delivered, by kind.");
        for (i, k) in MessageKind::ALL.iter().enumerate() {
            let _ = writeln!(
                out,
                "hlock_delivered_total{{kind=\"{}\"}} {}",
                k.label(),
                self.delivered_by_kind[i]
            );
        }
        counter(&mut out, "hlock_dropped_total", "Messages dropped by fault injection, by kind.");
        for (i, k) in MessageKind::ALL.iter().enumerate() {
            let _ = writeln!(
                out,
                "hlock_dropped_total{{kind=\"{}\"}} {}",
                k.label(),
                self.dropped_by_kind[i]
            );
        }
        counter(&mut out, "hlock_releases_sent_total", "Release notifications sent to parents.");
        let _ = writeln!(out, "hlock_releases_sent_total {}", self.releases_sent);
        counter(
            &mut out,
            "hlock_releases_suppressed_total",
            "Releases suppressed because the owned mode was unchanged (Rule 5.2).",
        );
        let _ = writeln!(out, "hlock_releases_suppressed_total {}", self.releases_suppressed);
        counter(&mut out, "hlock_grants_total", "Local grants, by granted mode.");
        for m in ALL_MODES {
            let _ = writeln!(
                out,
                "hlock_grants_total{{mode=\"{}\"}} {}",
                m.symbol(),
                self.grants_by_mode[mode_index(m)]
            );
        }
        counter(&mut out, "hlock_cancellations_total", "Requests cancelled before grant.");
        let _ = writeln!(out, "hlock_cancellations_total {}", self.cancellations);
        counter(&mut out, "hlock_path_reversals_total", "Parent-pointer reversals observed.");
        let _ = writeln!(out, "hlock_path_reversals_total {}", self.path_reversals);
        counter(&mut out, "hlock_timers_fired_total", "Protocol timers fired.");
        let _ = writeln!(out, "hlock_timers_fired_total {}", self.timers_fired);
        counter(&mut out, "hlock_audit_violations_total", "Quiescence audit findings.");
        let _ = writeln!(out, "hlock_audit_violations_total {}", self.audit_violations);
        counter(&mut out, "hlock_recoveries_started_total", "Recovery rounds started.");
        let _ = writeln!(out, "hlock_recoveries_started_total {}", self.recoveries_started);
        counter(
            &mut out,
            "hlock_recoveries_completed_total",
            "Recovery installs applied (epoch rebuilds completed).",
        );
        let _ = writeln!(out, "hlock_recoveries_completed_total {}", self.recoveries_completed);
        counter(
            &mut out,
            "hlock_token_regenerations_total",
            "Tokens regenerated because their holder died.",
        );
        let _ = writeln!(out, "hlock_token_regenerations_total {}", self.token_regenerations);
        counter(&mut out, "hlock_fenced_total", "Incoming messages fenced for a stale epoch.");
        let _ = writeln!(out, "hlock_fenced_total {}", self.fenced);
        counter(
            &mut out,
            "hlock_backpressure_drops_total",
            "Frames dropped because a transport outbox hit its bound.",
        );
        let _ = writeln!(out, "hlock_backpressure_drops_total {}", self.backpressure_drops);
        counter(
            &mut out,
            "hlock_backpressure_bytes_total",
            "Bytes of frames dropped to outbox backpressure.",
        );
        let _ = writeln!(out, "hlock_backpressure_bytes_total {}", self.backpressure_bytes);
        counter(
            &mut out,
            "hlock_aborts_total",
            "Requests aborted by node death or epoch fencing.",
        );
        let _ = writeln!(out, "hlock_aborts_total {}", self.aborts);
        counter(&mut out, "hlock_link_down_total", "Transport link teardowns, by reason.");
        for (i, r) in LinkDownReason::ALL.iter().enumerate() {
            let _ =
                writeln!(out, "hlock_link_down_total{{reason=\"{}\"}} {}", r.label(), self.link_down[i]);
        }
        let _ = writeln!(out, "# HELP hlock_recovery_epoch Highest installed recovery epoch.");
        let _ = writeln!(out, "# TYPE hlock_recovery_epoch gauge");
        let _ = writeln!(out, "hlock_recovery_epoch {}", self.recovery_epoch);

        let _ =
            writeln!(out, "# HELP hlock_queue_depth Local request queue depth (last observed).");
        let _ = writeln!(out, "# TYPE hlock_queue_depth gauge");
        let mut nodes: Vec<&u32> = self.queue_depth.keys().collect();
        nodes.sort_unstable();
        for n in nodes {
            let _ = writeln!(out, "hlock_queue_depth{{node=\"{n}\"}} {}", self.queue_depth[n]);
        }
        let _ = writeln!(out, "# HELP hlock_copyset_size Copyset size (last observed).");
        let _ = writeln!(out, "# TYPE hlock_copyset_size gauge");
        let mut nodes: Vec<&u32> = self.copyset_size.keys().collect();
        nodes.sort_unstable();
        for n in nodes {
            let _ = writeln!(out, "hlock_copyset_size{{node=\"{n}\"}} {}", self.copyset_size[n]);
        }

        let summary = |out: &mut String, name: &str, help: &str, labels: &str, r: &Reservoir| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} summary");
            let sep = if labels.is_empty() { "" } else { "," };
            for q in [0.5, 0.9, 0.99, 0.999] {
                if let Some(v) = r.percentile(q) {
                    let _ = writeln!(out, "{name}{{{labels}{sep}quantile=\"{q}\"}} {v}");
                }
            }
            if labels.is_empty() {
                let _ = writeln!(out, "{name}_sum {}", r.sum());
                let _ = writeln!(out, "{name}_count {}", r.count());
            } else {
                let _ = writeln!(out, "{name}_sum{{{labels}}} {}", r.sum());
                let _ = writeln!(out, "{name}_count{{{labels}}} {}", r.count());
            }
        };
        for m in ALL_MODES {
            if let Some(r) = &self.latency_by_mode[mode_index(m)] {
                summary(
                    &mut out,
                    "hlock_request_to_grant_micros",
                    "Request-to-grant latency, by requested mode.",
                    &format!("mode=\"{}\"", m.symbol()),
                    r,
                );
            }
        }
        if let Some(r) = &self.freeze_duration {
            summary(
                &mut out,
                "hlock_freeze_duration_micros",
                "Time a node spent with a non-empty frozen set.",
                "",
                r,
            );
        }
        if let Some(r) = &self.token_hops {
            summary(
                &mut out,
                "hlock_token_hops",
                "Forward/transfer messages observed per granted request.",
                "",
                r,
            );
        }
        if let Some(r) = &self.recovery_latency {
            summary(
                &mut out,
                "hlock_recovery_latency_micros",
                "Suspicion-to-install latency per node per recovery round.",
                "",
                r,
            );
        }

        let _ =
            writeln!(out, "# HELP hlock_runtime_steps_total Effectful protocol steps dispatched.");
        let _ = writeln!(out, "# TYPE hlock_runtime_steps_total counter");
        let _ = writeln!(out, "hlock_runtime_steps_total {}", self.runtime.steps);
        let _ = writeln!(
            out,
            "# HELP hlock_runtime_logical_messages_total Logical messages dispatched."
        );
        let _ = writeln!(out, "# TYPE hlock_runtime_logical_messages_total counter");
        let _ =
            writeln!(out, "hlock_runtime_logical_messages_total {}", self.runtime.logical_messages);
        let _ = writeln!(out, "# HELP hlock_runtime_frames_total Coalesced frames dispatched.");
        let _ = writeln!(out, "# TYPE hlock_runtime_frames_total counter");
        let _ = writeln!(out, "hlock_runtime_frames_total {}", self.runtime.frames);
        let _ = writeln!(out, "# HELP hlock_runtime_max_batch Largest batch seen, in messages.");
        let _ = writeln!(out, "# TYPE hlock_runtime_max_batch gauge");
        let _ = writeln!(out, "hlock_runtime_max_batch {}", self.runtime.max_batch);
        let _ = writeln!(out, "# HELP hlock_coalesce_ratio Logical messages per frame.");
        let _ = writeln!(out, "# TYPE hlock_coalesce_ratio gauge");
        let _ = writeln!(out, "hlock_coalesce_ratio {}", self.runtime.coalesce_ratio());
        if !self.shard_gauges.is_empty() {
            let _ = writeln!(
                out,
                "# HELP hlock_shard_queue_depth Shard inbound queue depth (last observed)."
            );
            let _ = writeln!(out, "# TYPE hlock_shard_queue_depth gauge");
            for (s, g) in self.shard_gauges.iter().enumerate() {
                let _ = writeln!(out, "hlock_shard_queue_depth{{shard=\"{s}\"}} {}", g.queue_depth);
            }
            counter(&mut out, "hlock_shard_routed_total", "Messages routed to each shard.");
            for (s, g) in self.shard_gauges.iter().enumerate() {
                let _ = writeln!(out, "hlock_shard_routed_total{{shard=\"{s}\"}} {}", g.routed);
            }
            counter(&mut out, "hlock_shard_parks_total", "Shard worker parks on an empty queue.");
            for (s, g) in self.shard_gauges.iter().enumerate() {
                let _ = writeln!(out, "hlock_shard_parks_total{{shard=\"{s}\"}} {}", g.parks);
            }
        }
        out
    }
}

impl Observer for MetricsRegistry {
    fn on_event(&mut self, at_micros: u64, event: &ProtocolEvent) {
        match event {
            ProtocolEvent::RequestIssued { span, mode, .. } => {
                self.open_spans.insert(*span, OpenSpan { start: at_micros, mode: *mode, hops: 0 });
            }
            ProtocolEvent::RequestForwarded { span, .. }
            | ProtocolEvent::TokenSent { span, .. } => {
                if let Some(s) = self.open_spans.get_mut(span) {
                    s.hops += 1;
                }
            }
            ProtocolEvent::RequestQueued { node, queue_depth, .. } => {
                self.queue_depth.insert(node.0, *queue_depth as u64);
            }
            ProtocolEvent::CopyGranted { node, copyset_size, .. } => {
                self.copyset_size.insert(node.0, *copyset_size as u64);
            }
            ProtocolEvent::CopyRevoked { node, new_owned, .. } => {
                if new_owned.is_none() {
                    let g = self.copyset_size.entry(node.0).or_insert(0);
                    *g = g.saturating_sub(1);
                }
            }
            ProtocolEvent::Granted { span, mode, .. } => {
                self.grants_by_mode[mode_index(*mode)] += 1;
                if let Some(open) = self.open_spans.remove(span) {
                    self.latency_by_mode[mode_index(open.mode)]
                        .get_or_insert_with(Reservoir::default)
                        .record(at_micros.saturating_sub(open.start));
                    self.token_hops.get_or_insert_with(Reservoir::default).record(open.hops);
                }
            }
            ProtocolEvent::RequestCancelled { span, .. } => {
                self.cancellations += 1;
                self.open_spans.remove(span);
            }
            ProtocolEvent::ModeFrozen { node, .. } => {
                self.freeze_since.entry(node.0).or_insert(at_micros);
            }
            ProtocolEvent::ModeUnfrozen { node, modes, .. } => {
                if modes.is_empty() {
                    if let Some(since) = self.freeze_since.remove(&node.0) {
                        self.freeze_duration
                            .get_or_insert_with(Reservoir::default)
                            .record(at_micros.saturating_sub(since));
                    }
                }
            }
            ProtocolEvent::ReleaseSent { .. } => self.releases_sent += 1,
            ProtocolEvent::ReleaseSuppressed { .. } => self.releases_suppressed += 1,
            ProtocolEvent::PathReversal { .. } => self.path_reversals += 1,
            ProtocolEvent::AuditViolation { .. } => self.audit_violations += 1,
            ProtocolEvent::MessageSent { kind, .. } => {
                self.messages_by_kind[kind_index(*kind)] += 1;
            }
            ProtocolEvent::Delivered { kind, .. } => {
                self.delivered_by_kind[kind_index(*kind)] += 1;
            }
            ProtocolEvent::Dropped { kind, .. } => {
                self.dropped_by_kind[kind_index(*kind)] += 1;
            }
            ProtocolEvent::TimerFired { .. } => self.timers_fired += 1,
            ProtocolEvent::RecoveryStarted { node, .. } => {
                self.recoveries_started += 1;
                self.recovery_since.entry(node.0).or_insert(at_micros);
            }
            ProtocolEvent::RecoveryCompleted { node, epoch } => {
                self.recoveries_completed += 1;
                self.recovery_epoch = self.recovery_epoch.max(*epoch);
                if let Some(since) = self.recovery_since.remove(&node.0) {
                    self.recovery_latency
                        .get_or_insert_with(Reservoir::default)
                        .record(at_micros.saturating_sub(since));
                }
            }
            ProtocolEvent::TokenRegenerated { epoch, .. } => {
                self.token_regenerations += 1;
                self.recovery_epoch = self.recovery_epoch.max(*epoch);
            }
            ProtocolEvent::StaleEpochFenced { .. } => self.fenced += 1,
            ProtocolEvent::Backpressure { dropped, .. } => {
                self.backpressure_drops += 1;
                self.backpressure_bytes += *dropped;
            }
            ProtocolEvent::RequestAborted { span, .. } => {
                self.aborts += 1;
                self.open_spans.remove(span);
            }
            ProtocolEvent::LinkDown { reason, .. } => {
                let i = LinkDownReason::ALL.iter().position(|r| r == reason).unwrap_or(0);
                self.link_down[i] += 1;
            }
            ProtocolEvent::TokenReceived { .. } | ProtocolEvent::Released { .. } => {}
        }
    }
}

/// Verifies span accounting over an event stream: every close
/// ([`ProtocolEvent::Granted`] / [`ProtocolEvent::RequestCancelled`] /
/// [`ProtocolEvent::RequestAborted`]) matches a prior open ([`ProtocolEvent::RequestIssued`]) of the same
/// span id, no span is closed more often than opened at any prefix, and
/// every opened span is closed by the end. Sequential ticket reuse
/// (request → grant → request again) is legal, as is re-opening a
/// still-open span after a recovery round started (token regeneration
/// wipes the wait queues, so survivors re-issue wiped requests under
/// the same span — the two opens still end in one close).
pub fn check_span_balance<'a>(
    events: impl IntoIterator<Item = &'a ProtocolEvent>,
) -> Result<(), String> {
    let mut open: HashMap<SpanId, (i64, u64)> = HashMap::new();
    let mut recovery_gen = 0u64;
    for event in events {
        if matches!(event, ProtocolEvent::RecoveryStarted { .. }) {
            recovery_gen += 1;
        }
        if event.opens_span() {
            if let Some(span) = event.span() {
                let (c, gen) = open.entry(span).or_insert((0, recovery_gen));
                if *c > 0 && *gen == recovery_gen {
                    return Err(format!("span {span} opened twice without closing"));
                }
                *c = 1;
                *gen = recovery_gen;
            }
        } else if event.closes_span() {
            if let Some(span) = event.span() {
                let (c, _) = open.entry(span).or_insert((0, recovery_gen));
                *c -= 1;
                if *c < 0 {
                    return Err(format!("span {span} closed without a matching open"));
                }
            }
        }
    }
    let dangling: Vec<String> =
        open.iter().filter(|(_, &(c, _))| c != 0).map(|(s, _)| s.to_string()).collect();
    if dangling.is_empty() {
        Ok(())
    } else {
        let mut d = dangling;
        d.sort();
        Err(format!("spans left open at end of stream: {}", d.join(", ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(o: u32, t: u64) -> SpanId {
        SpanId::new(NodeId(o), Ticket(t))
    }

    fn issued(o: u32, t: u64) -> ProtocolEvent {
        ProtocolEvent::RequestIssued {
            node: NodeId(o),
            lock: LockId(0),
            span: span(o, t),
            mode: Mode::Read,
            priority: Priority::NORMAL,
        }
    }

    fn granted(o: u32, t: u64) -> ProtocolEvent {
        ProtocolEvent::Granted {
            node: NodeId(o),
            lock: LockId(0),
            span: span(o, t),
            mode: Mode::Read,
        }
    }

    #[test]
    fn span_id_packs_and_displays() {
        let s = span(3, 7);
        assert_eq!(s.as_u64(), (3u64 << 32) | 7);
        assert_eq!(s.to_string(), "n3/t7");
    }

    #[test]
    fn event_json_is_flat_and_named() {
        let mut out = String::new();
        issued(1, 2).write_json(5, &mut out);
        assert!(out.starts_with("{\"at\":5,\"event\":\"request_issued\",\"node\":1"));
        assert!(out.contains("\"span_origin\":1"));
        assert!(out.contains("\"span_ticket\":2"));
        assert!(out.contains("\"mode\":\"R\""));
        assert!(out.ends_with('}'));
    }

    #[test]
    fn json_strings_are_escaped() {
        let ev = ProtocolEvent::AuditViolation {
            node: NodeId(0),
            lock: LockId(1),
            detail: "bad \"state\"\nline2".into(),
        };
        let mut out = String::new();
        ev.write_json(0, &mut out);
        assert!(out.contains("bad \\\"state\\\"\\nline2"));
    }

    #[test]
    fn jsonl_observer_writes_lines() {
        let mut obs = JsonlObserver::new(Vec::new());
        obs.on_event(1, &issued(0, 1));
        obs.on_event(2, &granted(0, 1));
        assert_eq!(obs.lines(), 2);
        let bytes = obs.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn chrome_trace_pairs_spans() {
        let mut obs = ChromeTraceObserver::new();
        obs.on_event(1, &issued(0, 1));
        obs.on_event(9, &granted(0, 1));
        let doc = obs.finish();
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"ph\":\"b\""));
        assert!(doc.contains("\"ph\":\"e\""));
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"id\":\"0x1\""));
    }

    #[test]
    fn reservoir_is_exact_below_capacity() {
        let mut r = Reservoir::with_capacity(128);
        for v in 1..=100u64 {
            r.record(v);
        }
        assert_eq!(r.count(), 100);
        assert_eq!(r.max(), 100);
        assert_eq!(r.percentile(0.0), Some(1));
        assert_eq!(r.percentile(1.0), Some(100));
        // idx = round(99 * 0.5) = 50 → the 51st smallest sample.
        assert_eq!(r.percentile(0.5), Some(51));
        assert!((r.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn reservoir_stays_bounded_and_plausible() {
        let mut r = Reservoir::with_capacity(64);
        for v in 0..10_000u64 {
            r.record(v);
        }
        assert_eq!(r.count(), 10_000);
        assert_eq!(r.max(), 9_999);
        let p50 = r.percentile(0.5).unwrap();
        // A uniform sample of a uniform stream: the median should land
        // well inside the middle half.
        assert!(p50 > 1_000 && p50 < 9_000, "implausible p50 {p50}");
    }

    #[test]
    fn reservoir_merge_is_exact_when_it_fits() {
        let mut a = Reservoir::with_capacity(64);
        let mut b = Reservoir::with_capacity(64);
        for v in 1..=10u64 {
            a.record(v);
            b.record(v + 10);
        }
        a.merge(&b);
        assert_eq!(a.count(), 20);
        assert_eq!(a.percentile(1.0), Some(20));
        assert_eq!(a.sum(), (1..=20u128).sum::<u128>());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_reservoir_panics() {
        let _ = Reservoir::with_capacity(0);
    }

    #[test]
    fn registry_tracks_latency_and_hops() {
        let mut reg = MetricsRegistry::new();
        reg.on_event(100, &issued(0, 1));
        reg.on_event(
            150,
            &ProtocolEvent::RequestForwarded {
                node: NodeId(1),
                lock: LockId(0),
                span: span(0, 1),
                mode: Mode::Read,
            },
        );
        reg.on_event(400, &granted(0, 1));
        let lat = reg.latency(Mode::Read).unwrap();
        assert_eq!(lat.count(), 1);
        assert_eq!(lat.percentile(0.5), Some(300));
        assert_eq!(reg.token_hops().unwrap().percentile(0.5), Some(1));
        assert_eq!(reg.grants_total(), 1);
        let text = reg.render();
        assert!(text.contains("hlock_request_to_grant_micros{mode=\"R\",quantile=\"0.5\"} 300"));
        assert!(text.contains("hlock_grants_total{mode=\"R\"} 1"));
    }

    #[test]
    fn registry_counts_messages_and_suppressions() {
        let mut reg = MetricsRegistry::new();
        reg.on_event(
            0,
            &ProtocolEvent::MessageSent {
                node: NodeId(0),
                to: NodeId(1),
                kind: MessageKind::Request,
            },
        );
        reg.on_event(
            0,
            &ProtocolEvent::ReleaseSuppressed { node: NodeId(0), lock: LockId(0), owned: None },
        );
        let text = reg.render();
        assert!(text.contains("hlock_messages_total{kind=\"request\"} 1"));
        assert!(text.contains("hlock_releases_suppressed_total 1"));
    }

    #[test]
    fn registry_merge_combines() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.on_event(0, &issued(0, 1));
        a.on_event(10, &granted(0, 1));
        b.on_event(0, &issued(1, 1));
        b.on_event(30, &granted(1, 1));
        let mut rt = RuntimeCounters::default();
        rt.frames = 2;
        rt.logical_messages = 4;
        a.record_runtime(&rt);
        b.record_runtime(&rt);
        a.merge(&b);
        assert_eq!(a.grants_total(), 2);
        assert_eq!(a.latency(Mode::Read).unwrap().count(), 2);
        let text = a.render();
        assert!(text.contains("hlock_runtime_frames_total 4"));
        assert!(text.contains("hlock_coalesce_ratio 2"));
    }

    #[test]
    fn shard_gauges_render_and_merge() {
        let mut a = MetricsRegistry::new();
        assert!(!a.render().contains("hlock_shard_queue_depth"), "unsharded hosts emit nothing");
        a.record_shard(0, ShardGauges { queue_depth: 3, routed: 10, parks: 2 });
        a.record_shard(1, ShardGauges { queue_depth: 1, routed: 4, parks: 0 });
        let mut b = MetricsRegistry::new();
        b.record_shard(1, ShardGauges { queue_depth: 7, routed: 6, parks: 5 });
        a.merge(&b);
        assert_eq!(a.shard_gauges()[0], ShardGauges { queue_depth: 3, routed: 10, parks: 2 });
        assert_eq!(a.shard_gauges()[1], ShardGauges { queue_depth: 7, routed: 10, parks: 5 });
        let text = a.render();
        assert!(text.contains("hlock_shard_queue_depth{shard=\"0\"} 3"));
        assert!(text.contains("hlock_shard_routed_total{shard=\"1\"} 10"));
        assert!(text.contains("hlock_shard_parks_total{shard=\"1\"} 5"));
    }

    #[test]
    fn freeze_duration_measured_between_freeze_and_empty_unfreeze() {
        let mut reg = MetricsRegistry::new();
        let modes = ModeSet::from_modes([Mode::Read]);
        reg.on_event(100, &ProtocolEvent::ModeFrozen { node: NodeId(2), lock: LockId(0), modes });
        reg.on_event(
            250,
            &ProtocolEvent::ModeUnfrozen {
                node: NodeId(2),
                lock: LockId(0),
                modes: ModeSet::EMPTY,
            },
        );
        let r = reg.freeze_duration.as_ref().unwrap();
        assert_eq!(r.count(), 1);
        assert_eq!(r.percentile(0.5), Some(150));
    }

    #[test]
    fn registry_tracks_recovery_lifecycle() {
        let mut reg = MetricsRegistry::new();
        reg.on_event(100, &ProtocolEvent::RecoveryStarted { node: NodeId(1), epoch: 1, dead: 1 });
        reg.on_event(
            130,
            &ProtocolEvent::TokenRegenerated { node: NodeId(1), lock: LockId(0), epoch: 1 },
        );
        reg.on_event(250, &ProtocolEvent::RecoveryCompleted { node: NodeId(1), epoch: 1 });
        reg.on_event(
            300,
            &ProtocolEvent::StaleEpochFenced { node: NodeId(1), from: NodeId(2), epoch: 0 },
        );
        assert_eq!(reg.recoveries(), (1, 1));
        assert_eq!(reg.recovery_epoch(), 1);
        assert_eq!(reg.fenced_total(), 1);
        let text = reg.render();
        assert!(text.contains("hlock_recoveries_started_total 1"));
        assert!(text.contains("hlock_recoveries_completed_total 1"));
        assert!(text.contains("hlock_token_regenerations_total 1"));
        assert!(text.contains("hlock_fenced_total 1"));
        assert!(text.contains("hlock_recovery_epoch 1"));
        assert!(text.contains("hlock_recovery_latency_micros_count 1"));
        assert!(text.contains("hlock_recovery_latency_micros_sum 150"));
    }

    #[test]
    fn registry_tracks_backpressure() {
        let mut reg = MetricsRegistry::new();
        reg.on_event(
            10,
            &ProtocolEvent::Backpressure { node: NodeId(0), peer: NodeId(3), dropped: 64 },
        );
        reg.on_event(
            20,
            &ProtocolEvent::Backpressure { node: NodeId(0), peer: NodeId(3), dropped: 36 },
        );
        assert_eq!(reg.backpressure(), (2, 100));
        let mut other = MetricsRegistry::new();
        other.on_event(
            30,
            &ProtocolEvent::Backpressure { node: NodeId(1), peer: NodeId(0), dropped: 1 },
        );
        reg.merge(&other);
        assert_eq!(reg.backpressure(), (3, 101));
        let text = reg.render();
        assert!(text.contains("hlock_backpressure_drops_total 3"));
        assert!(text.contains("hlock_backpressure_bytes_total 101"));
        let mut json = String::new();
        ProtocolEvent::Backpressure { node: NodeId(0), peer: NodeId(3), dropped: 64 }
            .write_json(10, &mut json);
        assert!(json.contains("\"event\":\"backpressure\""));
        assert!(json.contains("\"peer\":3"));
        assert!(json.contains("\"dropped\":64"));
    }

    #[test]
    fn balance_accepts_well_formed_streams() {
        let evs = vec![issued(0, 1), granted(0, 1), issued(0, 1), granted(0, 1)];
        assert!(check_span_balance(evs.iter()).is_ok());
    }

    #[test]
    fn balance_rejects_unmatched_close() {
        let evs = vec![granted(0, 1)];
        assert!(check_span_balance(evs.iter()).unwrap_err().contains("without a matching open"));
    }

    #[test]
    fn balance_rejects_dangling_open() {
        let evs = vec![issued(0, 1)];
        assert!(check_span_balance(evs.iter()).unwrap_err().contains("left open"));
    }

    #[test]
    fn balance_rejects_double_open() {
        let evs = vec![issued(0, 1), issued(0, 1)];
        assert!(check_span_balance(evs.iter()).unwrap_err().contains("opened twice"));
    }

    #[test]
    fn hlc_tick_is_monotone_even_when_time_stalls() {
        let mut c = HlcClock::new();
        let a = c.tick(100);
        let b = c.tick(100);
        let d = c.tick(50); // physical time went backwards
        let e = c.tick(200);
        assert!(a < b && b < d && d < e);
        assert_eq!(a.physical_micros(), 100);
        assert_eq!(b.logical(), a.logical() + 1);
        assert_eq!(e, Hlc::pack(200, 0));
    }

    #[test]
    fn hlc_observe_orders_delivery_after_send() {
        let mut sender = HlcClock::new();
        let mut receiver = HlcClock::new();
        let wire = sender.tick(1_000); // sender's clock is far ahead
        let rx = receiver.observe(wire, 10); // receiver's lags behind
        assert!(rx > wire, "delivery stamp must exceed the send stamp");
        let next = receiver.tick(11);
        assert!(next > rx);
    }

    #[test]
    fn hlc_logical_overflow_spills_into_physical() {
        let mut c = HlcClock::new();
        c.tick(7);
        for _ in 0..u16::MAX {
            c.tick(7);
        }
        assert_eq!(c.now(), Hlc::pack(7, u16::MAX));
        let spilled = c.tick(7);
        assert_eq!(spilled, Hlc::pack(8, 0));
    }

    #[test]
    fn flight_recorder_keeps_a_bounded_stamped_tail() {
        let mut rec = FlightRecorder::new(NodeId(0), 4);
        for t in 0..10u64 {
            rec.record(t, &issued(0, t));
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.dropped(), 6);
        let dump = rec.dump_jsonl();
        assert_eq!(dump.lines().count(), 4);
        // Oldest retained line is the 7th event (t=6); hlc leads.
        let first = dump.lines().next().unwrap();
        assert!(first.starts_with("{\"hlc\":"), "dump line: {first}");
        assert!(first.contains("\"at\":6"));
        // Stamps are strictly increasing down the dump.
        let stamps: Vec<u64> = dump
            .lines()
            .map(|l| {
                let rest = &l["{\"hlc\":".len()..];
                rest[..rest.find(',').unwrap()].parse().unwrap()
            })
            .collect();
        assert!(stamps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn cluster_recorder_carries_causality_across_nodes() {
        let mut rec = ClusterRecorder::new(2, 64);
        // Node 0's clock runs hot (large at); node 1 receives later by
        // wall-clock but must still be stamped after the send.
        rec.on_event(5_000, &issued(0, 1));
        rec.on_event(
            5_001,
            &ProtocolEvent::MessageSent {
                node: NodeId(0),
                to: NodeId(1),
                kind: MessageKind::Request,
            },
        );
        rec.on_event(
            3,
            &ProtocolEvent::Delivered {
                node: NodeId(1),
                from: NodeId(0),
                kind: MessageKind::Request,
            },
        );
        let sent = rec.nodes()[0].now();
        let delivered = rec.nodes()[1].now();
        assert!(delivered > sent, "delivered {delivered} !> sent {sent}");
    }

    #[test]
    fn aborted_event_closes_span_and_counts() {
        let aborted = ProtocolEvent::RequestAborted {
            node: NodeId(0),
            lock: LockId(0),
            span: span(0, 1),
        };
        assert!(aborted.closes_span());
        let evs = vec![issued(0, 1), aborted.clone()];
        assert!(check_span_balance(evs.iter()).is_ok());
        let mut reg = MetricsRegistry::new();
        reg.on_event(0, &issued(0, 1));
        reg.on_event(10, &aborted);
        assert_eq!(reg.aborts_total(), 1);
        assert!(reg.latency(Mode::Read).is_none(), "aborts must not record grant latency");
        let text = reg.render();
        assert!(text.contains("hlock_aborts_total 1"));
        let mut json = String::new();
        aborted.write_json(10, &mut json);
        assert!(json.contains("\"event\":\"request_aborted\""));
        assert!(json.contains("\"span_origin\":0"));
    }

    #[test]
    fn link_down_renders_reason_and_counts() {
        let ev = ProtocolEvent::LinkDown {
            node: NodeId(2),
            peer: Some(NodeId(5)),
            reason: LinkDownReason::Eof,
        };
        let mut json = String::new();
        ev.write_json(1, &mut json);
        assert!(json.contains("\"event\":\"link_down\""));
        assert!(json.contains("\"peer\":5"));
        assert!(json.contains("\"reason\":\"eof\""));
        let anon = ProtocolEvent::LinkDown {
            node: NodeId(2),
            peer: None,
            reason: LinkDownReason::DecodeFailed,
        };
        let mut json = String::new();
        anon.write_json(1, &mut json);
        assert!(json.contains("\"peer\":null"));
        let mut reg = MetricsRegistry::new();
        reg.on_event(0, &ev);
        reg.on_event(0, &anon);
        assert_eq!(reg.link_down_total(), 2);
        let text = reg.render();
        assert!(text.contains("hlock_link_down_total{reason=\"eof\"} 1"));
        assert!(text.contains("hlock_link_down_total{reason=\"decode_failed\"} 1"));
    }

    #[test]
    fn render_includes_p999_quantile() {
        let mut reg = MetricsRegistry::new();
        for t in 0..100u64 {
            reg.on_event(t, &issued(0, t));
            reg.on_event(t + 1, &granted(0, t));
        }
        let text = reg.render();
        assert!(text.contains("quantile=\"0.999\""), "missing p99.9 in:\n{text}");
    }

    #[test]
    fn null_and_vec_observers() {
        let mut null = NullObserver;
        null.on_event(0, &issued(0, 1));
        let mut v = VecObserver::default();
        v.on_event(7, &issued(0, 1));
        assert_eq!(v.events.len(), 1);
        assert_eq!(v.events[0].0, 7);
        let mut n = 0u32;
        {
            let mut f = |_at: u64, _e: &ProtocolEvent| n += 1;
            f.on_event(0, &granted(0, 1));
        }
        assert_eq!(n, 1);
    }
}
