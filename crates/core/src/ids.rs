//! Identifier newtypes shared across the workspace.
//!
//! All identifiers are small `Copy` integers wrapped in newtypes
//! ([`NodeId`], [`LockId`], [`Ticket`], [`Stamp`]) so that the type system
//! keeps "which node" and "which lock" apart (C-NEWTYPE).

use core::fmt;

/// Identity of a participant (process/host) in the distributed system.
///
/// Nodes are numbered densely from zero; the initial token holder for every
/// lock is the node given to [`crate::LockSpace::new`].
///
/// ```
/// use hlock_core::NodeId;
/// let a = NodeId(3);
/// assert_eq!(a.index(), 3);
/// assert_eq!(a.to_string(), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the raw index as a `usize`, convenient for vector indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identity of one lock object (one token) in the system.
///
/// In the paper's evaluation, lock 0 is the whole-table lock and locks
/// `1..=E` guard the `E` individual table entries.
///
/// ```
/// use hlock_core::LockId;
/// assert_eq!(LockId(7).to_string(), "L7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LockId(pub u32);

impl LockId {
    /// Returns the raw index as a `usize`, convenient for vector indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl From<u32> for LockId {
    fn from(v: u32) -> Self {
        LockId(v)
    }
}

/// Caller-chosen identifier correlating a lock request with its grant.
///
/// The protocol is sans-I/O: `request` is asynchronous and the eventual
/// grant is reported as an [`crate::Effect::Granted`] carrying the same
/// ticket. Tickets must be unique among the *outstanding* requests of one
/// node; reuse after release is fine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ticket(pub u64);

impl fmt::Display for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for Ticket {
    fn from(v: u64) -> Self {
        Ticket(v)
    }
}

/// Request priority: higher values are served first; ties are FIFO by
/// Lamport stamp. The default ([`Priority::NORMAL`] = 0) reproduces the
/// paper's pure FIFO arbitration; non-zero priorities implement the
/// "strict priority ordering" arbitration of the paper's §1 (following
/// Mueller's prioritized token protocols, the paper's refs \[11, 12\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Priority(pub u8);

impl Priority {
    /// The default, FIFO-only priority.
    pub const NORMAL: Priority = Priority(0);
    /// The highest priority.
    pub const URGENT: Priority = Priority(u8::MAX);
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Lamport-style logical timestamp used to merge request queues FIFO.
///
/// Every node keeps a scalar clock; a request is stamped at its origin and
/// the `(stamp, origin)` pair totally orders requests when the local queue
/// of an old token node is merged into the new token node's queue
/// (footnote c of the paper's Figure 4, referring to \[11\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Stamp(pub u64);

impl Stamp {
    /// The zero timestamp (before any event).
    pub const ZERO: Stamp = Stamp(0);

    /// Returns the successor timestamp.
    #[must_use]
    pub fn next(self) -> Stamp {
        Stamp(self.0 + 1)
    }

    /// Lamport receive rule: `max(self, other) + 1`.
    #[must_use]
    pub fn merged(self, other: Stamp) -> Stamp {
        Stamp(self.0.max(other.0) + 1)
    }
}

impl fmt::Display for Stamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip_and_display() {
        let n: NodeId = 5u32.into();
        assert_eq!(n, NodeId(5));
        assert_eq!(n.index(), 5);
        assert_eq!(format!("{n}"), "n5");
    }

    #[test]
    fn lock_id_roundtrip_and_display() {
        let l: LockId = 9u32.into();
        assert_eq!(l, LockId(9));
        assert_eq!(l.index(), 9);
        assert_eq!(format!("{l}"), "L9");
    }

    #[test]
    fn ticket_display() {
        assert_eq!(Ticket(42).to_string(), "t42");
        assert_eq!(Ticket::from(1u64), Ticket(1));
    }

    #[test]
    fn stamp_ordering_and_merge() {
        assert!(Stamp(1) < Stamp(2));
        assert_eq!(Stamp(3).next(), Stamp(4));
        assert_eq!(Stamp(3).merged(Stamp(7)), Stamp(8));
        assert_eq!(Stamp(9).merged(Stamp(2)), Stamp(10));
        assert_eq!(Stamp::ZERO, Stamp(0));
    }

    #[test]
    fn ids_are_ordered_for_map_keys() {
        let mut v = vec![NodeId(3), NodeId(1), NodeId(2)];
        v.sort();
        assert_eq!(v, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }
}
