//! Crash recovery: epoch-stamped quorum elections that regenerate lost
//! tokens and rebuild copysets from surviving per-node state.
//!
//! The paper's protocol assumes fail-free nodes: if the token node for a
//! lock crashes, the token is gone and every waiter blocks forever. This
//! module wraps any lock space in a [`RecoverySpace`] that adds a
//! recovery protocol on top, without touching the inner state machines:
//!
//! 1. **Suspicion.** The host's failure detector (the simulator's
//!    liveness watchdog, the model checker's `Suspect` step, an operator
//!    signal on the TCP cluster) calls
//!    [`ConcurrencyProtocol::on_suspect`] on the live nodes with the set
//!    of suspected-dead peers.
//! 2. **Freeze + report.** Each suspicious node freezes its inner
//!    protocol (application messages are dropped, local API calls are
//!    deferred) and broadcasts a [`RecoveryBody::Report`] of its
//!    per-lock survivor state — token possession and strongest held
//!    mode — stamped with the *target* epoch (current + 1). Freezing is
//!    what makes reports trustworthy: a reported state cannot change
//!    between report and install.
//! 3. **Election.** The coordinator — the smallest live node id — waits
//!    for matching reports from **every** node in its live view, and
//!    requires that view to be a **majority** of the cluster. Dead-set
//!    disagreements merge monotonically: any report naming new suspects
//!    restarts the round with the union, so all survivors converge on
//!    one view. Restarting after a view change always moves to a target
//!    **strictly above** any this node has reported under: a node never
//!    reports two different views at the same target, so a coordinator
//!    can only complete an election whose entire majority view agreed on
//!    that exact (target, view) pair — two conflicting elections (e.g. a
//!    coordinator that installed and was then falsely suspected before
//!    its install propagated) can never install the same epoch, making
//!    installs totally ordered.
//! 4. **Install.** Per lock, the unique live reporter holding the token
//!    stays its home; if none survives the token is **regenerated** at
//!    the coordinator ([`crate::ProtocolEvent::TokenRegenerated`]). The
//!    logical tree flattens: every survivor with an owned mode becomes a
//!    direct child of the new home. The coordinator broadcasts the
//!    [`RecoveryBody::Install`], everyone rebuilds, re-issues its
//!    not-yet-granted requests under the same tickets, and replays the
//!    API calls deferred during the freeze.
//! 5. **Fencing.** All application traffic is stamped with the sender's
//!    epoch ([`RecoveryEnvelope`]); [`crate::HostRuntime::deliver`]
//!    drops anything older than the receiver's epoch. A fenced sender is
//!    *taught* the cached install so false-positive suspects (a node
//!    paused past the watchdog timeout, say) rejoin cleanly at the new
//!    epoch: their stale grants are voided and their outstanding
//!    requests re-issued, never two live tokens for one lock.
//!
//! **Liveness requires a majority.** A minority partition never
//! completes an election (step 3), so it can neither regenerate a token
//! nor serve requests that need one — the price of never regenerating a
//! token twice. **Safety caveat:** voiding is the model's lease expiry.
//! A falsely-suspected node that is *inside* a critical section when the
//! survivors recover around it keeps running that section until it
//! learns of the new epoch; real deployments must pair recovery with
//! resource-side fencing tokens (the install epoch is exactly that) as
//! documented in `docs/FAULT_TOLERANCE.md`.

use crate::config::ProtocolConfig;
use crate::effect::{Effect, EffectSink};
use crate::error::ProtocolError;
use crate::ids::{LockId, NodeId, Priority, Ticket};
use crate::message::{Envelope, LockReport, RecoveryBody, RecoveryEnvelope};
use crate::mode::Mode;
use crate::observe::ProtocolEvent;
use crate::protocol::{CancelOutcome, ConcurrencyProtocol, Inspect};
use crate::shard::ShardedSpace;
use crate::space::LockSpace;
use std::collections::{BTreeMap, BTreeSet};

/// A lock space that can be frozen, reported and rebuilt by the
/// recovery layer. Implemented by [`LockSpace`] and (per shard) by
/// [`ShardedSpace`], so both the flat and the sharded runtimes recover
/// with the same election.
pub trait Recoverable: ConcurrencyProtocol<Message = Envelope> + Inspect {
    /// Number of locks managed (reports are indexed by dense lock id).
    fn lock_count(&self) -> usize;

    /// This node's survivor state for `lock`: token possession plus the
    /// strongest locally held mode.
    fn survivor_report(&self, lock: LockId) -> LockReport;

    /// Outstanding (not yet granted) work for `lock`: plain requests as
    /// `(ticket, mode, priority)` plus tickets with a pending Rule-7
    /// upgrade. Re-issued under the same tickets after a rebuild.
    fn outstanding(&self, lock: LockId) -> (Vec<(Ticket, Mode, Priority)>, Vec<Ticket>);

    /// Replaces all per-lock state with the install's flat rebuild:
    /// `homes[l]` is lock `l`'s token home, `copysets[l]` its surviving
    /// children. Local held entries survive iff `keep_held`.
    fn rebuild(&mut self, homes: &[NodeId], copysets: &[Vec<(NodeId, Mode)>], keep_held: bool);
}

impl Recoverable for LockSpace {
    fn lock_count(&self) -> usize {
        LockSpace::lock_count(self)
    }

    fn survivor_report(&self, lock: LockId) -> LockReport {
        self.lock_state(lock).survivor_report()
    }

    fn outstanding(&self, lock: LockId) -> (Vec<(Ticket, Mode, Priority)>, Vec<Ticket>) {
        self.lock_state(lock).outstanding_snapshot()
    }

    fn rebuild(&mut self, homes: &[NodeId], copysets: &[Vec<(NodeId, Mode)>], keep_held: bool) {
        self.rebuild_from_install(homes, copysets, keep_held);
    }
}

impl Recoverable for ShardedSpace {
    fn lock_count(&self) -> usize {
        ShardedSpace::lock_count(self)
    }

    fn survivor_report(&self, lock: LockId) -> LockReport {
        self.shard_for(lock).lock_state(lock).survivor_report()
    }

    fn outstanding(&self, lock: LockId) -> (Vec<(Ticket, Mode, Priority)>, Vec<Ticket>) {
        self.shard_for(lock).lock_state(lock).outstanding_snapshot()
    }

    fn rebuild(&mut self, homes: &[NodeId], copysets: &[Vec<(NodeId, Mode)>], keep_held: bool) {
        self.rebuild_from_install(homes, copysets, keep_held);
    }
}

/// Where this node stands in the recovery protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Phase {
    /// Normal operation: application traffic flows to the inner space.
    Idle,
    /// Frozen, electing `target`: application messages are dropped
    /// (their information is subsumed by the senders' frozen reports),
    /// API calls are deferred and replayed after the install.
    Recovering {
        /// The epoch being elected.
        target: u64,
    },
}

/// An API call accepted during a freeze, replayed in order after the
/// install. Replay errors are swallowed: the pre-freeze validation a
/// caller would have seen cannot be reconstructed post-rebuild.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum DeferredOp {
    Request { lock: LockId, mode: Mode, ticket: Ticket, priority: Priority },
    Release { lock: LockId, ticket: Ticket },
    Upgrade { lock: LockId, ticket: Ticket },
    Downgrade { lock: LockId, ticket: Ticket, new_mode: Mode },
    Cancel { lock: LockId, ticket: Ticket },
}

/// A crash-recovery wrapper around a [`Recoverable`] lock space.
///
/// Implements [`ConcurrencyProtocol`] over [`RecoveryEnvelope`]s: all
/// inner traffic is epoch-stamped, [`fence_epoch`] enables stale-message
/// fencing at dispatch, and [`on_suspect`] runs the election documented
/// at the module level. Hosts that never inject failures pay one enum
/// wrap per message and nothing else.
///
/// [`fence_epoch`]: ConcurrencyProtocol::fence_epoch
/// [`on_suspect`]: ConcurrencyProtocol::on_suspect
#[derive(Debug, Clone)]
pub struct RecoverySpace<P = LockSpace> {
    inner: P,
    /// All node ids in the cluster, sorted.
    cluster: Vec<NodeId>,
    /// Current epoch; also the fence: anything older is dropped.
    epoch: u64,
    phase: Phase,
    /// Peers this node currently believes dead.
    dead: BTreeSet<NodeId>,
    /// Survivor reports collected by the coordinator for the current
    /// target epoch (cleared whenever the dead view changes), keyed by
    /// reporter and carrying each reporter's base epoch — only the
    /// highest base contributes token/ownership state to the install.
    reports: BTreeMap<NodeId, (u64, Vec<LockReport>)>,
    /// API calls accepted while frozen, in order.
    deferred: Vec<DeferredOp>,
    /// Grants voided by an install that excluded this node: the caller
    /// still believes it holds them, so release/downgrade/cancel succeed
    /// silently and upgrade re-requests `W` from scratch.
    voided: BTreeSet<(LockId, Ticket)>,
    /// The newest install applied here, re-sent to teach stale peers.
    last_install: Option<RecoveryEnvelope>,
    /// App traffic this node cannot process yet — from an epoch ahead
    /// of ours (we are the straggler) or from the current epoch while
    /// frozen. Held instead of dropped: a dropped current-epoch request
    /// is never re-issued by anyone (the sender only re-issues when *it*
    /// applies a newer install), so dropping here loses it forever.
    /// Replayed — or answered with a teach if superseded — when the
    /// next install lands.
    future: Vec<(NodeId, u64, Envelope)>,
    /// Keepalive probing (see [`RecoverySpace::with_probe_interval`]):
    /// while requests are outstanding, an epoch-stamped probe goes to one
    /// cluster peer per interval. `None` disables probing.
    probe_interval_micros: Option<u64>,
    /// Whether a probe timer is currently pending at the host.
    probe_armed: bool,
    /// Round-robin cursor over cluster peers for probe targets.
    probe_cursor: usize,
    scratch: EffectSink<Envelope>,
}

/// The timer token [`RecoverySpace`] reserves for its keepalive probe
/// when probing is enabled. The wrapped protocol must not use it.
pub const PROBE_TIMER_TOKEN: u64 = u64::MAX;

impl RecoverySpace<LockSpace> {
    /// A recovery-wrapped [`LockSpace`]: `lock_count` locks at node
    /// `id`, all tokens initially at `token_home`, in a cluster of
    /// `nodes` nodes (`NodeId(0)..NodeId(nodes)`).
    pub fn new(
        id: NodeId,
        lock_count: usize,
        token_home: NodeId,
        nodes: u32,
        config: ProtocolConfig,
    ) -> Self {
        Self::wrap(LockSpace::new(id, lock_count, token_home, config), (0..nodes).map(NodeId))
    }

    /// Like [`RecoverySpace::new`] with one initial token home per lock.
    pub fn with_homes(id: NodeId, homes: &[NodeId], nodes: u32, config: ProtocolConfig) -> Self {
        Self::wrap(LockSpace::with_homes(id, homes, config), (0..nodes).map(NodeId))
    }
}

impl<P: Recoverable> RecoverySpace<P> {
    /// Wraps an existing space. `cluster` must contain the inner node's
    /// id and be identical (as a set) on every node.
    pub fn wrap(inner: P, cluster: impl IntoIterator<Item = NodeId>) -> Self {
        let mut cluster: Vec<NodeId> = cluster.into_iter().collect();
        cluster.sort_unstable();
        cluster.dedup();
        assert!(cluster.contains(&inner.node_id()), "cluster must include this node");
        RecoverySpace {
            inner,
            cluster,
            epoch: 0,
            phase: Phase::Idle,
            dead: BTreeSet::new(),
            reports: BTreeMap::new(),
            deferred: Vec::new(),
            voided: BTreeSet::new(),
            last_install: None,
            future: Vec::new(),
            probe_interval_micros: None,
            probe_armed: false,
            probe_cursor: 0,
            scratch: EffectSink::new(),
        }
    }

    /// Enables keepalive probing: while this node has requests
    /// outstanding, it sends one epoch-stamped probe per `micros` to a
    /// cluster peer (round-robin). A node that resumed from a false
    /// suspicion has no reason to speak otherwise — its probe is what
    /// gets fenced at a current-epoch peer, triggering the teach that
    /// pulls it into the new epoch and re-issues its requests. Probing
    /// reserves the timer token [`PROBE_TIMER_TOKEN`].
    #[must_use]
    pub fn with_probe_interval(mut self, micros: u64) -> Self {
        self.probe_interval_micros = Some(micros);
        self
    }

    /// The current recovery epoch (0 until the first install).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether this node is frozen in an ongoing election.
    pub fn is_recovering(&self) -> bool {
        matches!(self.phase, Phase::Recovering { .. })
    }

    /// Peers this node currently believes dead.
    pub fn suspected(&self) -> Vec<NodeId> {
        self.dead.iter().copied().collect()
    }

    /// The wrapped space.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    fn me(&self) -> NodeId {
        self.inner.node_id()
    }

    /// Live view: the cluster minus the currently suspected dead.
    fn live(&self) -> Vec<NodeId> {
        self.cluster.iter().copied().filter(|n| !self.dead.contains(n)).collect()
    }

    /// The election coordinator under this node's live view: the
    /// smallest live id (cluster ids are sorted).
    fn coordinator(&self) -> NodeId {
        self.cluster
            .iter()
            .copied()
            .find(|n| !self.dead.contains(n))
            .expect("this node is never in its own dead set")
    }

    fn take_scratch(&mut self, fx: &EffectSink<RecoveryEnvelope>) -> EffectSink<Envelope> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.set_observing(fx.observing());
        scratch
    }

    /// Re-emits inner effects, stamping every send with the current
    /// epoch; grants, timers and events pass through unchanged.
    fn flush(&mut self, fx: &mut EffectSink<RecoveryEnvelope>) {
        self.scratch.forward_events_into(fx);
        let epoch = self.epoch;
        for effect in self.scratch.drain() {
            match effect {
                Effect::Send { to, message } => {
                    fx.send(to, RecoveryEnvelope { epoch, body: RecoveryBody::App(message) });
                }
                Effect::Granted { lock, ticket, mode } => fx.granted(lock, ticket, mode),
                Effect::SetTimer { token, delay_micros } => fx.set_timer(token, delay_micros),
            }
        }
    }

    /// Re-sends the cached install to a peer observed sending stale
    /// traffic, pulling it into the current epoch. Idempotent at the
    /// receiver (old installs are ignored), so teaching per stale
    /// message needs no rate limiting.
    fn teach(&mut self, peer: NodeId, fx: &mut EffectSink<RecoveryEnvelope>) {
        if let Some(install) = &self.last_install {
            fx.send(peer, install.clone());
        }
    }

    /// Whether anything is waiting on this node: deferred API calls or
    /// in-flight requests/upgrades of the inner space.
    fn has_outstanding(&self) -> bool {
        if !self.deferred.is_empty() {
            return true;
        }
        (0..self.inner.lock_count()).any(|l| {
            let (requests, upgrades) = self.inner.outstanding(LockId(l as u32));
            !requests.is_empty() || !upgrades.is_empty()
        })
    }

    /// Arms the keepalive probe timer if probing is enabled, no probe is
    /// pending, and something is outstanding to keep alive for.
    fn maybe_arm_probe(&mut self, fx: &mut EffectSink<RecoveryEnvelope>) {
        let Some(interval) = self.probe_interval_micros else { return };
        if self.probe_armed || !self.has_outstanding() {
            return;
        }
        self.probe_armed = true;
        fx.set_timer(PROBE_TIMER_TOKEN, interval);
    }

    /// Whether evidence of a suspected peer's life may heal the
    /// suspicion right now. Always when idle; while frozen, only if the
    /// live view has lost its cluster majority (a stalled minority
    /// election *needs* the heal to regain quorum). A majority election
    /// completes without the suspect, and the install's teach-back
    /// re-admits it at the new epoch — healing mid-election instead
    /// would let life/death evidence arriving in alternation flip the
    /// view (and bump the target) without bound.
    fn may_heal(&self) -> bool {
        match self.phase {
            Phase::Idle => true,
            Phase::Recovering { .. } => self.live().len() * 2 <= self.cluster.len(),
        }
    }

    /// Buffers app traffic that cannot be processed yet, keeping a
    /// canonical (sender, epoch) order — arrival order across senders
    /// carries no meaning (only per-link FIFO does, which the stable
    /// sort preserves), and a canonical form keeps the model checker's
    /// state space small.
    fn buffer_future(&mut self, from: NodeId, epoch: u64, envelope: Envelope) {
        self.future.push((from, epoch, envelope));
        self.future.sort_by_key(|&(f, e, _)| (f, e));
    }

    /// (Re)starts the election for `target`: freeze, clear collected
    /// reports, broadcast this node's survivor report to the live view.
    fn enter_election(&mut self, target: u64, fx: &mut EffectSink<RecoveryEnvelope>) {
        let me = self.me();
        if self.phase == Phase::Idle {
            let dead = self.dead.len();
            fx.emit_with(|| ProtocolEvent::RecoveryStarted { node: me, epoch: target, dead });
        }
        self.phase = Phase::Recovering { target };
        self.reports.clear();
        let state: Vec<LockReport> = (0..self.inner.lock_count())
            .map(|l| self.inner.survivor_report(LockId(l as u32)))
            .collect();
        let dead_vec: Vec<NodeId> = self.dead.iter().copied().collect();
        // A majority election involves only the live view. A minority-
        // stalled one cannot complete as-is — its only hope is that a
        // suspected peer is actually alive — so it solicits the whole
        // cluster: a report reaching a live "dead" peer prompts a reply
        // whose life evidence heals the suspicion (crashed peers simply
        // never answer).
        let live = self.live();
        let recipients: Vec<NodeId> =
            if live.len() * 2 <= self.cluster.len() { self.cluster.clone() } else { live };
        for peer in recipients {
            if peer != me {
                fx.send(
                    peer,
                    RecoveryEnvelope {
                        epoch: target,
                        body: RecoveryBody::Report {
                            dead: dead_vec.clone(),
                            base: self.epoch,
                            state: state.clone(),
                        },
                    },
                );
            }
        }
        if self.coordinator() == me {
            self.reports.insert(me, (self.epoch, state));
        }
    }

    /// Coordinator side: if every node in the live view has reported
    /// *and* the live view is a cluster majority, build and broadcast
    /// the install. Without a majority the election stalls — a minority
    /// partition must never regenerate a token the majority side may
    /// also regenerate.
    fn check_completion(&mut self, fx: &mut EffectSink<RecoveryEnvelope>) {
        let Phase::Recovering { target } = self.phase else { return };
        let me = self.me();
        if self.coordinator() != me {
            return;
        }
        let live = self.live();
        if live.len() * 2 <= self.cluster.len() {
            return;
        }
        if !live.iter().all(|n| self.reports.contains_key(n)) {
            return;
        }
        // Reports may come from nodes at different epochs (a falsely
        // suspected node recovered around at an older epoch can join a
        // later election). Only the newest base epoch's state is real:
        // every older base was superseded by an install its reporter
        // never saw, so fusing it in could resurrect a voided grant
        // alongside the newer epoch's regenerated token.
        let max_base = live.iter().map(|n| self.reports[n].0).max().unwrap_or(0);
        let current: Vec<NodeId> =
            live.iter().copied().filter(|n| self.reports[n].0 == max_base).collect();
        let lock_count = self.inner.lock_count();
        let mut homes = Vec::with_capacity(lock_count);
        let mut copysets: Vec<Vec<(NodeId, Mode)>> = Vec::with_capacity(lock_count);
        for l in 0..lock_count {
            let lock = LockId(l as u32);
            let holders: Vec<NodeId> =
                current.iter().copied().filter(|n| self.reports[n].1[l].holds_token).collect();
            let home = match holders[..] {
                [h] => h,
                [] => {
                    // The token went down with a crashed node: regenerate
                    // it here. Safe because every survivor is frozen and
                    // reported not holding it; stale in-flight copies are
                    // fenced by the epoch bump.
                    fx.emit_with(|| ProtocolEvent::TokenRegenerated {
                        node: me,
                        lock,
                        epoch: target,
                    });
                    me
                }
                _ => {
                    debug_assert!(false, "two live token holders for {lock}");
                    holders[0]
                }
            };
            homes.push(home);
            copysets.push(
                current
                    .iter()
                    .copied()
                    .filter(|&n| n != home)
                    .filter_map(|n| self.reports[&n].1[l].owned.map(|m| (n, m)))
                    .collect(),
            );
        }
        let install = RecoveryEnvelope {
            epoch: target,
            body: RecoveryBody::Install {
                live: live.clone(),
                base: max_base,
                homes: homes.clone(),
                copysets: copysets.clone(),
            },
        };
        for &peer in &live {
            if peer != me {
                fx.send(peer, install.clone());
            }
        }
        self.apply_install(target, max_base, live, homes, copysets, fx);
    }

    /// Rebuilds at `target` from the coordinator's install, re-issues
    /// outstanding requests under their original tickets, replays
    /// deferred API calls, and unfreezes.
    fn apply_install(
        &mut self,
        target: u64,
        base: u64,
        live: Vec<NodeId>,
        homes: Vec<NodeId>,
        copysets: Vec<Vec<(NodeId, Mode)>>,
        fx: &mut EffectSink<RecoveryEnvelope>,
    ) {
        debug_assert!(target > self.epoch);
        let me = self.me();
        // Our grants survive only if we are in the live view *and* our
        // state was part of the epoch the install was built from: an
        // older base means some install we never saw already superseded
        // (voided) us, even though we are live again now.
        let fresh = live.contains(&me) && self.epoch >= base;
        let lock_count = self.inner.lock_count();
        // Snapshot outstanding work before the rebuild wipes it.
        let outstanding: Vec<_> =
            (0..lock_count).map(|l| self.inner.outstanding(LockId(l as u32))).collect();
        if !fresh {
            // Recovered around (false-positive suspicion): our grants
            // were voided by the survivors. Remember the tickets so the
            // caller's eventual release/cancel succeeds silently.
            for l in 0..lock_count {
                let lock = LockId(l as u32);
                if let Some(node) = self.inner.lock_node(lock) {
                    for &(ticket, _) in node.held() {
                        self.voided.insert((lock, ticket));
                    }
                }
            }
        }
        self.inner.rebuild(&homes, &copysets, fresh);
        self.epoch = target;
        self.phase = Phase::Idle;
        self.dead =
            self.cluster.iter().copied().filter(|&n| !live.contains(&n) && n != me).collect();
        self.reports.clear();
        self.last_install = Some(RecoveryEnvelope {
            epoch: target,
            body: RecoveryBody::Install { live, base, homes, copysets },
        });
        // Re-issue everything not yet granted, under the original
        // tickets so waiting callers are served transparently. Pending
        // upgrades still hold `U` at live nodes (kept by the rebuild);
        // at a voided node the `U` is gone, so the upgrade becomes a
        // plain `W` request.
        let mut scratch = self.take_scratch(fx);
        for (l, (requests, upgrades)) in outstanding.into_iter().enumerate() {
            let lock = LockId(l as u32);
            for (ticket, mode, priority) in requests {
                let _ =
                    self.inner.request_with_priority(lock, mode, ticket, priority, &mut scratch);
            }
            for ticket in upgrades {
                if fresh {
                    let _ = self.inner.upgrade(lock, ticket, &mut scratch);
                } else {
                    self.voided.remove(&(lock, ticket));
                    let _ = self.inner.request(lock, Mode::Write, ticket, &mut scratch);
                }
            }
        }
        self.scratch = scratch;
        self.flush(fx);
        // Replay API calls accepted during the freeze, in order.
        for op in std::mem::take(&mut self.deferred) {
            match op {
                DeferredOp::Request { lock, mode, ticket, priority } => {
                    let _ = self.request_with_priority(lock, mode, ticket, priority, fx);
                }
                DeferredOp::Release { lock, ticket } => {
                    let _ = self.release(lock, ticket, fx);
                }
                DeferredOp::Upgrade { lock, ticket } => {
                    let _ = self.upgrade(lock, ticket, fx);
                }
                DeferredOp::Downgrade { lock, ticket, new_mode } => {
                    let _ = self.downgrade(lock, ticket, new_mode, fx);
                }
                DeferredOp::Cancel { lock, ticket } => {
                    let _ = self.cancel(lock, ticket, fx);
                }
            }
        }
        // Replay app traffic held while this node was behind or frozen.
        // Messages from the epoch just installed feed the rebuilt state;
        // superseded ones instead teach their (now stale) sender so it
        // rejoins and re-issues; anything still ahead stays buffered.
        for (from, e, envelope) in std::mem::take(&mut self.future) {
            use std::cmp::Ordering;
            match e.cmp(&self.epoch) {
                Ordering::Less => self.teach(from, fx),
                Ordering::Greater => self.future.push((from, e, envelope)),
                Ordering::Equal => {
                    self.dead.remove(&from);
                    let mut scratch = self.take_scratch(fx);
                    self.inner.on_message(from, envelope, &mut scratch);
                    self.scratch = scratch;
                    self.flush(fx);
                }
            }
        }
        self.maybe_arm_probe(fx);
        fx.emit_with(|| ProtocolEvent::RecoveryCompleted { node: me, epoch: target });
    }

    fn handle_app(
        &mut self,
        from: NodeId,
        epoch: u64,
        envelope: Envelope,
        fx: &mut EffectSink<RecoveryEnvelope>,
    ) {
        use std::cmp::Ordering;
        match epoch.cmp(&self.epoch) {
            Ordering::Less => {
                // Hosts routing through `HostRuntime::deliver` fence
                // stale traffic before it gets here; handle direct
                // delivery identically.
                self.teach(from, fx);
            }
            Ordering::Greater => {
                // We are the straggler: hold the message (the sender
                // will not re-issue it until *it* applies a newer
                // install, so dropping would lose it) and surface our
                // stale epoch so the sender fences it and teaches us
                // the current install, which replays the buffer.
                self.buffer_future(from, epoch, envelope);
                fx.send(from, RecoveryEnvelope { epoch: self.epoch, body: RecoveryBody::Nack });
            }
            Ordering::Equal => {
                if let Phase::Recovering { target } = self.phase {
                    // Frozen: hold the message until the install lands
                    // (mutating now would break the freeze invariant
                    // behind our survivor report; dropping could lose a
                    // request from an already-installed peer outside
                    // this election). It is also proof of life: heal
                    // any suspicion of the sender, and if that revives
                    // a stalled minority election, restart it at a
                    // fresh target so the regained majority completes.
                    self.buffer_future(from, epoch, envelope);
                    if self.may_heal() && self.dead.remove(&from) {
                        self.enter_election(target + 1, fx);
                        self.check_completion(fx);
                    }
                    return;
                }
                // Current-epoch traffic from a suspected peer proves the
                // suspicion false: heal it so future elections count it.
                self.dead.remove(&from);
                let mut scratch = self.take_scratch(fx);
                self.inner.on_message(from, envelope, &mut scratch);
                self.scratch = scratch;
                self.flush(fx);
            }
        }
    }

    fn handle_report(
        &mut self,
        from: NodeId,
        target: u64,
        dead: Vec<NodeId>,
        base: u64,
        state: Vec<LockReport>,
        fx: &mut EffectSink<RecoveryEnvelope>,
    ) {
        if target <= self.epoch {
            // The sender is frozen in an election this node already
            // completed (it was excluded from that install's live set,
            // say): teach it the install so it rejoins instead of
            // resending stale reports forever, mirroring the stale-App
            // and stale-Nack paths.
            self.teach(from, fx);
            // The report is also proof the sender is alive: heal any
            // suspicion of it, and if that revives a stalled minority
            // election, restart at a fresh target so the regained
            // majority can complete it.
            if self.may_heal() && self.dead.remove(&from) {
                if let Phase::Recovering { target: t } = self.phase {
                    self.enter_election(t + 1, fx);
                    self.check_completion(fx);
                }
            }
            return;
        }
        if state.len() != self.inner.lock_count() {
            return;
        }
        let me = self.me();
        // A report is evidence of both life (the sender) and death (its
        // suspects). Deaths merge monotonically; life heals only when
        // [`Self::may_heal`] allows, so a majority election's view can
        // only grow and its target stays bounded.
        let mut changed = self.may_heal() && self.dead.remove(&from);
        for d in &dead {
            if *d != me && *d != from && self.cluster.contains(d) {
                changed |= self.dead.insert(*d);
            }
        }
        let view_changed = changed;
        let my_target = match self.phase {
            Phase::Idle => {
                changed = true;
                target.max(self.epoch + 1)
            }
            Phase::Recovering { target: t } => {
                if target > t {
                    changed = true;
                }
                // A view change at an unchanged target must move to a
                // fresh epoch: this node already reported the old view
                // under `t`, and a coordinator elsewhere may complete
                // (or have completed) `t` with it — reporting a second
                // view at `t` could let two conflicting elections
                // install the same epoch.
                let adopted = target.max(t);
                if view_changed && adopted == t {
                    adopted + 1
                } else {
                    adopted
                }
            }
        };
        if changed {
            self.enter_election(my_target, fx);
        }
        // Collect only reports that exactly match this node's view:
        // mismatched reporters re-broadcast once our own report (sent
        // just above, on change) updates their view.
        let matches_view = target == my_target
            && dead.len() == self.dead.len()
            && dead.iter().all(|d| self.dead.contains(d));
        if self.coordinator() == me && matches_view {
            self.reports.insert(from, (base, state));
        }
        self.check_completion(fx);
    }

    fn handle_install(
        &mut self,
        from: NodeId,
        target: u64,
        live: Vec<NodeId>,
        base: u64,
        homes: Vec<NodeId>,
        copysets: Vec<Vec<(NodeId, Mode)>>,
        fx: &mut EffectSink<RecoveryEnvelope>,
    ) {
        if target < self.epoch {
            // Superseded: the sender is a straggler (e.g. a coordinator
            // whose install the cluster moved past) — teach it the
            // newer install. Strictly-older only: installs are unique
            // per epoch, so `target == epoch` is a duplicate of our own
            // install and teaching back would ping-pong forever.
            self.teach(from, fx);
            return;
        }
        if target == self.epoch {
            return; // duplicate of the install already applied here
        }
        if homes.len() != self.inner.lock_count() || copysets.len() != self.inner.lock_count() {
            return;
        }
        if let Phase::Recovering { target: t } = self.phase {
            if target < t {
                // Superseded by the election in progress: applying it
                // would unfreeze (and mutate) state this node already
                // reported under `t`, breaking the freeze invariant the
                // coordinator of `t` relies on. The install is evidence
                // its coordinator is alive, though — if this election
                // has stalled in a minority, heal the suspicion and
                // restart at a fresh target so the converged election
                // counts it.
                if self.may_heal() && self.dead.remove(&from) {
                    self.enter_election(t + 1, fx);
                    self.check_completion(fx);
                }
                return;
            }
        }
        self.apply_install(target, base, live, homes, copysets, fx);
    }
}

impl<P: Recoverable> ConcurrencyProtocol for RecoverySpace<P> {
    type Message = RecoveryEnvelope;

    fn node_id(&self) -> NodeId {
        self.inner.node_id()
    }

    fn request(
        &mut self,
        lock: LockId,
        mode: Mode,
        ticket: Ticket,
        fx: &mut EffectSink<RecoveryEnvelope>,
    ) -> Result<(), ProtocolError> {
        self.request_with_priority(lock, mode, ticket, Priority::NORMAL, fx)
    }

    fn request_with_priority(
        &mut self,
        lock: LockId,
        mode: Mode,
        ticket: Ticket,
        priority: Priority,
        fx: &mut EffectSink<RecoveryEnvelope>,
    ) -> Result<(), ProtocolError> {
        if lock.index() >= self.inner.lock_count() {
            return Err(ProtocolError::UnknownLock { lock });
        }
        if self.is_recovering() {
            self.deferred.push(DeferredOp::Request { lock, mode, ticket, priority });
            return Ok(());
        }
        let mut scratch = self.take_scratch(fx);
        let result = self.inner.request_with_priority(lock, mode, ticket, priority, &mut scratch);
        self.scratch = scratch;
        self.flush(fx);
        self.maybe_arm_probe(fx);
        result
    }

    fn release(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        fx: &mut EffectSink<RecoveryEnvelope>,
    ) -> Result<(), ProtocolError> {
        if self.voided.remove(&(lock, ticket)) {
            return Ok(()); // the grant was voided by recovery; nothing to release
        }
        if self.is_recovering() {
            self.deferred.push(DeferredOp::Release { lock, ticket });
            return Ok(());
        }
        let mut scratch = self.take_scratch(fx);
        let result = self.inner.release(lock, ticket, &mut scratch);
        self.scratch = scratch;
        self.flush(fx);
        result
    }

    fn upgrade(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        fx: &mut EffectSink<RecoveryEnvelope>,
    ) -> Result<(), ProtocolError> {
        if self.voided.remove(&(lock, ticket)) {
            // The held `U` is gone; acquire `W` from scratch so the
            // caller's pending upgrade still completes with a grant.
            return self.request(lock, Mode::Write, ticket, fx);
        }
        if self.is_recovering() {
            self.deferred.push(DeferredOp::Upgrade { lock, ticket });
            return Ok(());
        }
        let mut scratch = self.take_scratch(fx);
        let result = self.inner.upgrade(lock, ticket, &mut scratch);
        self.scratch = scratch;
        self.flush(fx);
        self.maybe_arm_probe(fx);
        result
    }

    fn try_request(
        &mut self,
        lock: LockId,
        mode: Mode,
        ticket: Ticket,
        fx: &mut EffectSink<RecoveryEnvelope>,
    ) -> Result<bool, ProtocolError> {
        if lock.index() >= self.inner.lock_count() {
            return Err(ProtocolError::UnknownLock { lock });
        }
        if self.is_recovering() {
            return Ok(false); // frozen nodes cannot grant locally right now
        }
        let mut scratch = self.take_scratch(fx);
        let result = self.inner.try_request(lock, mode, ticket, &mut scratch);
        self.scratch = scratch;
        self.flush(fx);
        result
    }

    fn downgrade(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        new_mode: Mode,
        fx: &mut EffectSink<RecoveryEnvelope>,
    ) -> Result<(), ProtocolError> {
        if self.voided.contains(&(lock, ticket)) {
            return Ok(()); // voided grants weaken to nothing for free
        }
        if self.is_recovering() {
            self.deferred.push(DeferredOp::Downgrade { lock, ticket, new_mode });
            return Ok(());
        }
        let mut scratch = self.take_scratch(fx);
        let result = self.inner.downgrade(lock, ticket, new_mode, &mut scratch);
        self.scratch = scratch;
        self.flush(fx);
        result
    }

    fn cancel(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        fx: &mut EffectSink<RecoveryEnvelope>,
    ) -> Result<CancelOutcome, ProtocolError> {
        if self.is_recovering() {
            // Cancelling an op still sitting in the deferred buffer
            // never reached the protocol: unwind it locally.
            if let Some(pos) = self.deferred.iter().position(
                |op| matches!(op, DeferredOp::Request { lock: l, ticket: t, .. } if *l == lock && *t == ticket),
            ) {
                self.deferred.remove(pos);
                return Ok(CancelOutcome::Cancelled);
            }
            self.deferred.push(DeferredOp::Cancel { lock, ticket });
            return Ok(CancelOutcome::WillAbort);
        }
        if self.voided.remove(&(lock, ticket)) {
            return Ok(CancelOutcome::Cancelled);
        }
        let mut scratch = self.take_scratch(fx);
        let result = self.inner.cancel(lock, ticket, &mut scratch);
        self.scratch = scratch;
        self.flush(fx);
        result
    }

    fn on_message(
        &mut self,
        from: NodeId,
        message: RecoveryEnvelope,
        fx: &mut EffectSink<RecoveryEnvelope>,
    ) {
        let RecoveryEnvelope { epoch, body } = message;
        match body {
            RecoveryBody::App(envelope) => self.handle_app(from, epoch, envelope, fx),
            RecoveryBody::Report { dead, base, state } => {
                self.handle_report(from, epoch, dead, base, state, fx)
            }
            RecoveryBody::Install { live, base, homes, copysets } => {
                self.handle_install(from, epoch, live, base, homes, copysets, fx)
            }
            // A Nack doubles as straggler signal and keepalive probe.
            // Stale ones are converted to `on_stale_message` → teach by
            // fencing hosts; handle direct delivery identically. A Nack
            // from a *newer* epoch means this node is the straggler:
            // answer with our own epoch so the sender fences it and
            // teaches us. Same-epoch Nacks are pure keepalive.
            RecoveryBody::Nack => {
                use std::cmp::Ordering;
                match epoch.cmp(&self.epoch) {
                    Ordering::Less => self.teach(from, fx),
                    Ordering::Greater => fx.send(
                        from,
                        RecoveryEnvelope { epoch: self.epoch, body: RecoveryBody::Nack },
                    ),
                    Ordering::Equal => {}
                }
            }
        }
    }

    fn on_timer(&mut self, token: u64, fx: &mut EffectSink<RecoveryEnvelope>) {
        if token == PROBE_TIMER_TOKEN && self.probe_interval_micros.is_some() {
            self.probe_armed = false;
            if self.is_recovering() || !self.has_outstanding() {
                return; // an install or completion re-arms when needed
            }
            let me = self.me();
            let peers: Vec<NodeId> = self.cluster.iter().copied().filter(|&n| n != me).collect();
            if !peers.is_empty() {
                let target = peers[self.probe_cursor % peers.len()];
                self.probe_cursor = self.probe_cursor.wrapping_add(1);
                fx.send(target, RecoveryEnvelope { epoch: self.epoch, body: RecoveryBody::Nack });
            }
            self.maybe_arm_probe(fx);
            return;
        }
        if self.is_recovering() {
            return;
        }
        let mut scratch = self.take_scratch(fx);
        self.inner.on_timer(token, &mut scratch);
        self.scratch = scratch;
        self.flush(fx);
    }

    fn on_link_reset(&mut self, peer: NodeId, fx: &mut EffectSink<RecoveryEnvelope>) {
        let mut scratch = self.take_scratch(fx);
        self.inner.on_link_reset(peer, &mut scratch);
        self.scratch = scratch;
        self.flush(fx);
    }

    fn is_quiescent(&self) -> bool {
        self.phase == Phase::Idle
            && self.deferred.is_empty()
            && self.future.is_empty()
            && self.inner.is_quiescent()
    }

    fn fence_epoch(&self) -> Option<u64> {
        Some(self.epoch)
    }

    fn on_suspect(&mut self, dead: &[NodeId], fx: &mut EffectSink<RecoveryEnvelope>) -> bool {
        let me = self.me();
        let mut changed = false;
        for &d in dead {
            if d != me && self.cluster.contains(&d) {
                changed |= self.dead.insert(d);
            }
        }
        if changed {
            let target = match self.phase {
                // A new suspect mid-election: the current target may
                // already have been installed under the old view — e.g.
                // by a coordinator that completed and was then falsely
                // suspected before its install reached us. Re-electing
                // the same target under the shrunk view could install
                // that epoch a second time with conflicting token
                // assignments, so restart strictly above it.
                Phase::Recovering { target } => target + 1,
                Phase::Idle => self.epoch + 1,
            };
            self.enter_election(target, fx);
            self.check_completion(fx);
        }
        true
    }

    fn on_stale_message(
        &mut self,
        from: NodeId,
        _epoch: u64,
        fx: &mut EffectSink<RecoveryEnvelope>,
    ) {
        self.teach(from, fx);
    }
}

impl<P: Recoverable> Inspect for RecoverySpace<P> {
    fn held_modes(&self, lock: LockId) -> Vec<Mode> {
        self.inner.held_modes(lock)
    }

    fn holds_token(&self, lock: LockId) -> bool {
        self.inner.holds_token(lock)
    }

    fn lock_node(&self, lock: LockId) -> Option<&crate::LockNode> {
        self.inner.lock_node(lock)
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn suspects(&self, peer: NodeId) -> bool {
        self.dead.contains(&peer)
    }

    fn frozen(&self) -> bool {
        self.is_recovering()
    }

    fn open_requests(&self) -> Vec<(LockId, Ticket)> {
        self.inner.open_requests()
    }
}

/// Equality and hashing over recovery-relevant state (the scratch sink
/// is excluded, as in [`LockSpace`]); used by the model checker's state
/// fingerprints.
impl<P: Recoverable + PartialEq> PartialEq for RecoverySpace<P> {
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
            && self.cluster == other.cluster
            && self.epoch == other.epoch
            && self.phase == other.phase
            && self.dead == other.dead
            && self.reports == other.reports
            && self.deferred == other.deferred
            && self.voided == other.voided
            && self.last_install == other.last_install
            && self.future == other.future
            && self.probe_armed == other.probe_armed
            && self.probe_cursor == other.probe_cursor
    }
}

impl<P: Recoverable + Eq> Eq for RecoverySpace<P> {}

impl<P: Recoverable + std::hash::Hash> std::hash::Hash for RecoverySpace<P> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.inner.hash(state);
        self.epoch.hash(state);
        self.phase.hash(state);
        self.dead.hash(state);
        self.reports.hash(state);
        self.deferred.hash(state);
        self.voided.hash(state);
        self.last_install.hash(state);
        self.future.hash(state);
        self.probe_armed.hash(state);
        self.probe_cursor.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::HostRuntime;
    use std::collections::VecDeque;

    type Net = VecDeque<(NodeId, NodeId, RecoveryEnvelope)>;

    fn cluster(nodes: u32, locks: usize) -> Vec<RecoverySpace> {
        let cfg = ProtocolConfig::default();
        (0..nodes).map(|i| RecoverySpace::new(NodeId(i), locks, NodeId(0), nodes, cfg)).collect()
    }

    fn drain_into(
        from: NodeId,
        fx: &mut EffectSink<RecoveryEnvelope>,
        net: &mut Net,
        granted: &mut Vec<(NodeId, LockId, Ticket)>,
    ) {
        for effect in fx.drain() {
            match effect {
                Effect::Send { to, message } => net.push_back((from, to, message)),
                Effect::Granted { lock, ticket, .. } => granted.push((from, lock, ticket)),
                Effect::SetTimer { .. } => {}
            }
        }
    }

    /// Delivers everything in flight (dropping traffic to `crashed`)
    /// through the fencing dispatch path, until the network is quiet.
    fn pump(
        spaces: &mut [RecoverySpace],
        runtimes: &mut [HostRuntime<RecoveryEnvelope>],
        crashed: &[NodeId],
        net: &mut Net,
        granted: &mut Vec<(NodeId, LockId, Ticket)>,
    ) {
        let mut hops = 0;
        while let Some((from, to, message)) = net.pop_front() {
            hops += 1;
            assert!(hops < 10_000, "recovery message storm");
            if crashed.contains(&to) {
                continue;
            }
            let mut fx = EffectSink::new();
            runtimes[to.index()].deliver(&mut spaces[to.index()], from, vec![message], &mut fx);
            drain_into(to, &mut fx, net, granted);
        }
    }

    /// Like [`pump`], but only delivers frames `deliver` approves; the
    /// rest stay queued (in order) for a later pump.
    fn pump_filtered(
        spaces: &mut [RecoverySpace],
        runtimes: &mut [HostRuntime<RecoveryEnvelope>],
        crashed: &[NodeId],
        net: &mut Net,
        granted: &mut Vec<(NodeId, LockId, Ticket)>,
        deliver: impl Fn(NodeId, NodeId) -> bool,
    ) {
        let mut held = Net::new();
        let mut hops = 0;
        while let Some((from, to, message)) = net.pop_front() {
            hops += 1;
            assert!(hops < 10_000, "recovery message storm");
            if crashed.contains(&to) {
                continue;
            }
            if !deliver(from, to) {
                held.push_back((from, to, message));
                continue;
            }
            let mut fx = EffectSink::new();
            runtimes[to.index()].deliver(&mut spaces[to.index()], from, vec![message], &mut fx);
            drain_into(to, &mut fx, net, granted);
        }
        *net = held;
    }

    fn suspect(
        spaces: &mut [RecoverySpace],
        node: NodeId,
        dead: &[NodeId],
        net: &mut Net,
        granted: &mut Vec<(NodeId, LockId, Ticket)>,
    ) {
        let mut fx = EffectSink::new();
        assert!(spaces[node.index()].on_suspect(dead, &mut fx));
        drain_into(node, &mut fx, net, granted);
    }

    #[test]
    fn crashed_token_home_is_regenerated_at_coordinator() {
        let mut spaces = cluster(3, 2);
        let mut rts: Vec<_> = (0..3).map(|_| HostRuntime::new()).collect();
        let mut net = Net::new();
        let mut granted = Vec::new();
        // Node 1 acquires R on lock 0 (a copy grant from home 0).
        let mut fx = EffectSink::new();
        spaces[1].request(LockId(0), Mode::Read, Ticket(1), &mut fx).unwrap();
        drain_into(NodeId(1), &mut fx, &mut net, &mut granted);
        pump(&mut spaces, &mut rts, &[], &mut net, &mut granted);
        assert_eq!(granted, vec![(NodeId(1), LockId(0), Ticket(1))]);
        // Node 0 crashes; survivors are told.
        let crashed = [NodeId(0)];
        suspect(&mut spaces, NodeId(1), &crashed, &mut net, &mut granted);
        suspect(&mut spaces, NodeId(2), &crashed, &mut net, &mut granted);
        pump(&mut spaces, &mut rts, &crashed, &mut net, &mut granted);
        // Coordinator (node 1) regenerated both tokens; epoch bumped.
        for s in &spaces[1..] {
            assert_eq!(s.epoch(), 1);
            assert!(!s.is_recovering());
        }
        assert!(spaces[1].holds_token(LockId(0)));
        assert!(spaces[1].holds_token(LockId(1)));
        assert!(!spaces[2].holds_token(LockId(0)));
        // The surviving R grant is intact at the new home.
        assert_eq!(spaces[1].held_modes(LockId(0)), vec![Mode::Read]);
        // Post-recovery traffic flows: node 2 acquires W on lock 1.
        granted.clear();
        let mut fx = EffectSink::new();
        spaces[2].request(LockId(1), Mode::Write, Ticket(5), &mut fx).unwrap();
        drain_into(NodeId(2), &mut fx, &mut net, &mut granted);
        pump(&mut spaces, &mut rts, &crashed, &mut net, &mut granted);
        assert_eq!(granted, vec![(NodeId(2), LockId(1), Ticket(5))]);
    }

    #[test]
    fn in_flight_request_is_reissued_and_granted_after_recovery() {
        let mut spaces = cluster(3, 1);
        let mut rts: Vec<_> = (0..3).map(|_| HostRuntime::new()).collect();
        let mut net = Net::new();
        let mut granted = Vec::new();
        // Node 2's request is in flight toward home 0 when 0 crashes:
        // the message dies with it.
        let mut fx = EffectSink::new();
        spaces[2].request(LockId(0), Mode::Write, Ticket(9), &mut fx).unwrap();
        drain_into(NodeId(2), &mut fx, &mut net, &mut granted);
        net.clear(); // the crash eats the in-flight request
        let crashed = [NodeId(0)];
        suspect(&mut spaces, NodeId(1), &crashed, &mut net, &mut granted);
        suspect(&mut spaces, NodeId(2), &crashed, &mut net, &mut granted);
        pump(&mut spaces, &mut rts, &crashed, &mut net, &mut granted);
        // The rebuild re-issued ticket 9 to the regenerated home, which
        // granted it — the waiter never noticed the crash.
        assert_eq!(granted, vec![(NodeId(2), LockId(0), Ticket(9))]);
        assert!(spaces[1].is_quiescent() && spaces[2].is_quiescent());
    }

    #[test]
    fn falsely_suspected_node_is_fenced_taught_and_rejoins() {
        let mut spaces = cluster(3, 1);
        let mut rts: Vec<_> = (0..3).map(|_| HostRuntime::new()).collect();
        let mut net = Net::new();
        let mut granted = Vec::new();
        // Node 1 holds an R copy (child of home 0) when it is *wrongly*
        // suspected — e.g. paused past the watchdog timeout.
        let mut fx = EffectSink::new();
        spaces[1].request(LockId(0), Mode::Read, Ticket(1), &mut fx).unwrap();
        drain_into(NodeId(1), &mut fx, &mut net, &mut granted);
        pump(&mut spaces, &mut rts, &[], &mut net, &mut granted);
        assert_eq!(granted, vec![(NodeId(1), LockId(0), Ticket(1))]);
        granted.clear();
        let suspects = [NodeId(1)];
        suspect(&mut spaces, NodeId(0), &suspects, &mut net, &mut granted);
        suspect(&mut spaces, NodeId(2), &suspects, &mut net, &mut granted);
        // Recovery proceeds without node 1 (messages to it are NOT
        // delivered while "paused").
        pump(&mut spaces, &mut rts, &suspects, &mut net, &mut granted);
        assert_eq!(spaces[0].epoch(), 1);
        assert!(spaces[0].holds_token(LockId(0)), "surviving token home stays home");
        assert!(spaces[0].lock_node(LockId(0)).unwrap().children().is_empty(), "copyset pruned");
        // Node 1 resumes at epoch 0 and releases its (now voided) grant:
        // the Release travels at epoch 0, is fenced at node 0, and
        // node 0 teaches node 1 the install.
        let mut fx = EffectSink::new();
        spaces[1].release(LockId(0), Ticket(1), &mut fx).unwrap();
        drain_into(NodeId(1), &mut fx, &mut net, &mut granted);
        pump(&mut spaces, &mut rts, &[], &mut net, &mut granted);
        assert!(rts[0].counters().fenced >= 1, "stale release must be fenced");
        assert_eq!(spaces[1].epoch(), 1, "straggler pulled into the new epoch");
        assert!(spaces[1].held_modes(LockId(0)).is_empty());
        // The rejoiner is a full participant at the new epoch.
        granted.clear();
        let mut fx = EffectSink::new();
        spaces[1].request(LockId(0), Mode::Write, Ticket(2), &mut fx).unwrap();
        drain_into(NodeId(1), &mut fx, &mut net, &mut granted);
        pump(&mut spaces, &mut rts, &[], &mut net, &mut granted);
        assert_eq!(granted, vec![(NodeId(1), LockId(0), Ticket(2))]);
    }

    #[test]
    fn staggered_suspicion_converges_on_merged_dead_set() {
        let mut spaces = cluster(5, 1);
        let mut rts: Vec<_> = (0..5).map(|_| HostRuntime::new()).collect();
        let mut net = Net::new();
        let mut granted = Vec::new();
        let crashed = [NodeId(0), NodeId(4)];
        // Node 1 only knows about node 0; nodes 2 and 3 know both.
        suspect(&mut spaces, NodeId(1), &[NodeId(0)], &mut net, &mut granted);
        suspect(&mut spaces, NodeId(2), &crashed, &mut net, &mut granted);
        suspect(&mut spaces, NodeId(3), &crashed, &mut net, &mut granted);
        pump(&mut spaces, &mut rts, &crashed, &mut net, &mut granted);
        // Reports merged the views; the install excludes both dead. The
        // mid-election view merge restarts at a fresh target (installs
        // are totally ordered), so the final epoch may exceed 1 — what
        // matters is that every survivor converged on the same one.
        let epoch = spaces[1].epoch();
        assert!(epoch >= 1);
        for i in 1..=3 {
            assert_eq!(spaces[i].epoch(), epoch, "node {i}");
            assert!(!spaces[i].is_recovering(), "node {i}");
            assert_eq!(spaces[i].suspected(), vec![NodeId(0), NodeId(4)], "node {i}");
        }
        // Exactly one live token.
        let tokens = (1..=3).filter(|&i| spaces[i].holds_token(LockId(0))).count();
        assert_eq!(tokens, 1);
    }

    #[test]
    fn reelection_around_installed_coordinator_uses_fresh_epoch() {
        // Regression for the same-epoch double install: coordinator n1
        // completes the install for epoch 1 (n0 crashed) and is then
        // falsely suspected — e.g. across a severed link — before that
        // install reaches n2..n4. The survivors {2,3,4} (a majority of
        // 5) re-elect around it; their install must land on a FRESH
        // epoch, never epoch 1 again, or n1 and the new coordinator
        // would both hold a live token at the same unfenced epoch.
        let mut spaces = cluster(5, 1);
        let mut rts: Vec<_> = (0..5).map(|_| HostRuntime::new()).collect();
        let mut net = Net::new();
        let mut granted = Vec::new();
        let crashed = [NodeId(0)];
        for i in 1..5 {
            suspect(&mut spaces, NodeId(i), &crashed, &mut net, &mut granted);
        }
        // Deliver only traffic TO the coordinator: n1 collects every
        // report and installs epoch 1 locally; the install frames to
        // n2..n4 stay in flight.
        pump_filtered(&mut spaces, &mut rts, &crashed, &mut net, &mut granted, |_, to| {
            to == NodeId(1)
        });
        assert_eq!(spaces[1].epoch(), 1, "coordinator installed epoch 1");
        assert!(spaces[1].holds_token(LockId(0)), "token regenerated at n1");
        assert!(spaces[2].is_recovering(), "survivors have not seen the install");
        // n2's detector falsely names n1 dead; the suspicion spreads to
        // n3/n4 through report merging. Nothing flows to or from n1 (the
        // severed link), so it cannot teach them out of the re-election.
        suspect(&mut spaces, NodeId(2), &[NodeId(0), NodeId(1)], &mut net, &mut granted);
        pump_filtered(&mut spaces, &mut rts, &crashed, &mut net, &mut granted, |from, to| {
            from != NodeId(1) && to != NodeId(1)
        });
        let reelected = spaces[2].epoch();
        assert!(!spaces[2].is_recovering() && !spaces[3].is_recovering());
        assert!(reelected > 1, "conflicting election must install a fresh epoch, got {reelected}");
        // Both tokens exist transiently, but at different epochs — n1's
        // is fenced on any contact, so never two live at one epoch.
        assert!(spaces[1].holds_token(LockId(0)));
        let holders: Vec<usize> = (2..5).filter(|&i| spaces[i].holds_token(LockId(0))).collect();
        assert_eq!(holders, vec![2], "new coordinator holds the regenerated token");
        // Release everything held back (including the stale epoch-1
        // installs): n1 is taught, voids its token, and exactly one
        // live token remains cluster-wide.
        pump(&mut spaces, &mut rts, &crashed, &mut net, &mut granted);
        assert_eq!(spaces[1].epoch(), reelected, "n1 rejoined at the superseding epoch");
        let tokens = (1..5).filter(|&i| spaces[i].holds_token(LockId(0))).count();
        assert_eq!(tokens, 1, "exactly one live token once epochs converge");
    }

    #[test]
    fn straggler_report_is_taught_not_dropped() {
        // Regression: a node frozen in an election the cluster already
        // completed (it was excluded from that install's live set)
        // keeps resending Reports at the installed epoch. Receivers
        // must answer with the cached install instead of silently
        // dropping them, or the straggler stays frozen forever.
        let mut spaces = cluster(5, 1);
        let mut rts: Vec<_> = (0..5).map(|_| HostRuntime::new()).collect();
        let mut net = Net::new();
        let mut granted = Vec::new();
        let crashed = [NodeId(0)];
        // n4's detector saw only the real crash; its reports are delayed.
        suspect(&mut spaces, NodeId(4), &[NodeId(0)], &mut net, &mut granted);
        let mut delayed = std::mem::take(&mut net);
        // n1..n3 — a majority — falsely suspect n4 as well and complete
        // the install without it.
        for i in 1..4 {
            suspect(&mut spaces, NodeId(i), &[NodeId(0), NodeId(4)], &mut net, &mut granted);
        }
        pump(&mut spaces, &mut rts, &crashed, &mut net, &mut granted);
        assert_eq!(spaces[1].epoch(), 1);
        assert!(spaces[4].is_recovering(), "the straggler is still frozen in its election");
        // The delayed reports arrive at nodes already at epoch 1.
        net.append(&mut delayed);
        pump(&mut spaces, &mut rts, &crashed, &mut net, &mut granted);
        assert!(!spaces[4].is_recovering(), "the straggler must be taught and unfrozen");
        assert_eq!(spaces[4].epoch(), spaces[1].epoch(), "straggler rejoined the installed epoch");
        // And it is a full participant again.
        granted.clear();
        let mut fx = EffectSink::new();
        spaces[4].request(LockId(0), Mode::Write, Ticket(7), &mut fx).unwrap();
        drain_into(NodeId(4), &mut fx, &mut net, &mut granted);
        pump(&mut spaces, &mut rts, &crashed, &mut net, &mut granted);
        assert_eq!(granted, vec![(NodeId(4), LockId(0), Ticket(7))]);
    }

    #[test]
    fn deferred_api_calls_replay_after_install() {
        let mut spaces = cluster(3, 1);
        let mut rts: Vec<_> = (0..3).map(|_| HostRuntime::new()).collect();
        let mut net = Net::new();
        let mut granted = Vec::new();
        let crashed = [NodeId(0)];
        // Node 2 freezes first, then the app issues a request mid-recovery.
        suspect(&mut spaces, NodeId(2), &crashed, &mut net, &mut granted);
        assert!(spaces[2].is_recovering());
        let mut fx = EffectSink::new();
        spaces[2].request(LockId(0), Mode::Read, Ticket(3), &mut fx).unwrap();
        drain_into(NodeId(2), &mut fx, &mut net, &mut granted);
        assert!(granted.is_empty(), "frozen node defers");
        assert!(!spaces[2].is_quiescent(), "deferred work is in flight");
        suspect(&mut spaces, NodeId(1), &crashed, &mut net, &mut granted);
        pump(&mut spaces, &mut rts, &crashed, &mut net, &mut granted);
        assert_eq!(granted, vec![(NodeId(2), LockId(0), Ticket(3))]);
        assert!(spaces[2].is_quiescent());
    }

    #[test]
    fn minority_partition_never_installs() {
        let mut spaces = cluster(5, 1);
        let mut rts: Vec<_> = (0..5).map(|_| HostRuntime::new()).collect();
        let mut net = Net::new();
        let mut granted = Vec::new();
        // Only nodes 3 and 4 are live: 2 of 5 is not a majority.
        let crashed = [NodeId(0), NodeId(1), NodeId(2)];
        suspect(&mut spaces, NodeId(3), &crashed, &mut net, &mut granted);
        suspect(&mut spaces, NodeId(4), &crashed, &mut net, &mut granted);
        pump(&mut spaces, &mut rts, &crashed, &mut net, &mut granted);
        assert!(spaces[3].is_recovering() && spaces[4].is_recovering());
        assert_eq!(spaces[3].epoch(), 0, "no install without a quorum");
        assert!(!spaces[3].holds_token(LockId(0)), "no token regeneration in a minority");
    }

    #[test]
    fn sharded_space_recovers_like_flat() {
        use crate::shard::ShardSpec;
        let cfg = ProtocolConfig::default();
        let ids: Vec<NodeId> = (0..3).map(NodeId).collect();
        let mut spaces: Vec<RecoverySpace<ShardedSpace>> = (0..3)
            .map(|i| {
                RecoverySpace::wrap(
                    ShardedSpace::new(NodeId(i), 4, NodeId(0), cfg, ShardSpec::new(2)),
                    ids.clone(),
                )
            })
            .collect();
        let mut net: VecDeque<(NodeId, NodeId, RecoveryEnvelope)> = VecDeque::new();
        let mut granted = Vec::new();
        let crashed = [NodeId(0)];
        let mut fx = EffectSink::new();
        assert!(spaces[1].on_suspect(&crashed, &mut fx));
        drain_into(NodeId(1), &mut fx, &mut net, &mut granted);
        let mut fx = EffectSink::new();
        assert!(spaces[2].on_suspect(&crashed, &mut fx));
        drain_into(NodeId(2), &mut fx, &mut net, &mut granted);
        let mut rts: Vec<HostRuntime<RecoveryEnvelope>> =
            (0..3).map(|_| HostRuntime::new()).collect();
        let mut hops = 0;
        while let Some((from, to, message)) = net.pop_front() {
            hops += 1;
            assert!(hops < 10_000);
            if crashed.contains(&to) {
                continue;
            }
            let mut fx = EffectSink::new();
            rts[to.index()].deliver(&mut spaces[to.index()], from, vec![message], &mut fx);
            drain_into(to, &mut fx, &mut net, &mut granted);
        }
        for l in 0..4u32 {
            assert!(spaces[1].holds_token(LockId(l)), "all tokens regenerated at coordinator");
        }
        assert_eq!(spaces[1].epoch(), 1);
        assert_eq!(spaces[2].epoch(), 1);
        // Sharded routing still works at the new epoch.
        granted.clear();
        let mut fx = EffectSink::new();
        spaces[2].request(LockId(3), Mode::Write, Ticket(1), &mut fx).unwrap();
        drain_into(NodeId(2), &mut fx, &mut net, &mut granted);
        while let Some((from, to, message)) = net.pop_front() {
            if crashed.contains(&to) {
                continue;
            }
            let mut fx = EffectSink::new();
            rts[to.index()].deliver(&mut spaces[to.index()], from, vec![message], &mut fx);
            drain_into(to, &mut fx, &mut net, &mut granted);
        }
        assert_eq!(granted, vec![(NodeId(2), LockId(3), Ticket(1))]);
    }
}
