//! # hlock-core
//!
//! A faithful implementation of the decentralized, token-based protocol
//! for **hierarchical (multi-granularity) distributed locking** from
//!
//! > Nirmit Desai and Frank Mueller. *Scalable Distributed Concurrency
//! > Services for Hierarchical Locking.* ICDCS 2003.
//!
//! The protocol provides the five CORBA Concurrency Service lock modes —
//! intention read (`IR`), read (`R`), upgrade (`U`), intention write
//! (`IW`) and write (`W`) — with an average message overhead that stays
//! *constant* (≈3 messages per request) as the system grows, by combining:
//!
//! * a dynamic logical tree whose root holds the lock *token*,
//! * *copysets* of children holding concurrently granted compatible modes,
//! * *local queues* that absorb requests along the path (Rule 4),
//! * *release suppression* — a parent is told only when its subtree's
//!   owned mode actually weakens (Rule 5), and
//! * *mode freezing* at the token node to preserve FIFO fairness (Rule 6).
//!
//! ## Architecture
//!
//! Everything is **sans-I/O**: [`LockNode`] (one lock) and [`LockSpace`]
//! (all locks of one node) consume API calls and messages and emit
//! [`Effect`]s — messages to send and grants to report. Hosts (the
//! `hlock-sim` discrete-event simulator, the `hlock-check` model checker,
//! the `hlock-net` TCP transport) execute those effects.
//!
//! ## Quick start
//!
//! ```
//! use hlock_core::{ConcurrencyProtocol, Effect, EffectSink, LockId, LockSpace,
//!                  Mode, NodeId, ProtocolConfig, Ticket};
//!
//! # fn main() -> Result<(), hlock_core::ProtocolError> {
//! // Two nodes, one lock; node 0 is the initial token home.
//! let cfg = ProtocolConfig::default();
//! let mut n0 = LockSpace::new(NodeId(0), 1, NodeId(0), cfg);
//! let mut n1 = LockSpace::new(NodeId(1), 1, NodeId(0), cfg);
//! let mut fx = EffectSink::new();
//!
//! // Node 1 asks for a read lock; the request must travel to node 0.
//! n1.request(LockId(0), Mode::Read, Ticket(1), &mut fx)?;
//! let Some(Effect::Send { to, message }) = fx.drain().next() else { panic!() };
//! assert_eq!(to, NodeId(0));
//!
//! // Node 0 serves it (a copy grant under the default lazy-transfer policy).
//! n0.on_message(NodeId(1), message, &mut fx);
//! let Some(Effect::Send { message, .. }) = fx.drain().next() else { panic!() };
//! n1.on_message(NodeId(0), message, &mut fx);
//! assert!(matches!(fx.drain().next(), Some(Effect::Granted { .. })));
//!
//! n1.release(LockId(0), Ticket(1), &mut fx)?;
//! # Ok(()) }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod audit;
mod config;
mod effect;
mod error;
mod hierarchy;
mod ids;
mod message;
mod mode;
mod node;
mod observe;
mod protocol;
mod queue;
mod recovery;
mod runtime;
mod shard;
mod space;

pub use audit::{
    audit_lock, mean_tree_depth, tree_depths, AuditFinding, InvariantAuditor, LiveAuditFinding,
    RecordingAuditor, SharedAuditor,
};
pub use config::ProtocolConfig;
pub use effect::{Effect, EffectSink, StepEffect};
pub use error::ProtocolError;
pub use hierarchy::{HierarchyStep, LockPlan, PlanTracker};
pub use ids::{LockId, NodeId, Priority, Stamp, Ticket};
pub use message::{
    Classify, Envelope, LockReport, MessageKind, Payload, RecoveryBody, RecoveryEnvelope,
};
pub use mode::{
    can_downgrade, child_grant_table, compatibility_table, compatible_owned, freeze_table,
    frozen_modes, grantable, grantable_set, owned_strength, queue_forward_table, queue_or_forward,
    stronger, token_can_serve, token_serve, Mode, ModeSet, QueueDecision, TokenServe, ALL_MODES,
};
pub use node::LockNode;
pub use observe::{
    check_span_balance, ChromeTraceObserver, ClusterRecorder, FlightRecorder, Hlc, HlcClock,
    JsonlObserver, LinkDownReason, MetricsRegistry, NullObserver, Observer, ProtocolEvent,
    Reservoir, ShardGauges, SharedRecorder, SpanId, VecObserver, DEFAULT_FLIGHT_CAPACITY,
    DEFAULT_RESERVOIR_CAPACITY,
};
pub use protocol::{CancelOutcome, ConcurrencyProtocol, Inspect};
pub use queue::{QueueEntry, RequestQueue, Waiter};
pub use recovery::{Recoverable, RecoverySpace, PROBE_TIMER_TOKEN};
pub use runtime::{BatchHost, HostRuntime, RuntimeCounters};
pub use shard::{ShardCounters, ShardSpec, ShardedSpace};
pub use space::LockSpace;
