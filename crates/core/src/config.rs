//! Protocol configuration and ablation flags.

/// Tunable switches for the hierarchical locking protocol.
///
/// The defaults reproduce the paper's protocol exactly. Each flag turns
/// off one of the paper's design ingredients so its contribution can be
/// measured (the `ablations` bench):
///
/// ```
/// use hlock_core::ProtocolConfig;
/// let cfg = ProtocolConfig::default();
/// assert!(cfg.absorb_requests && cfg.suppress_releases && cfg.freezing);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProtocolConfig {
    /// Rule 4.1: absorb requests into local queues along the path
    /// (Table 2(a)). When `false`, every non-grantable request is
    /// forwarded straight toward the token node (the "eager variant"
    /// the paper compares against in prose).
    pub absorb_requests: bool,
    /// Rule 5.2: send a release to the parent only when the subtree's
    /// owned mode actually weakens. When `false`, every release is
    /// propagated eagerly ("one message suffices, irrespective of the
    /// number of grandchildren" — this flag measures that saving).
    pub suppress_releases: bool,
    /// Rule 6: freeze modes at the token node to preserve FIFO fairness.
    /// When `false`, compatible newcomers may starve queued requests.
    pub freezing: bool,
    /// Naimi-style probable-owner path compression for *inactive*
    /// forwarders (nodes owning nothing, with no pending request and an
    /// empty queue may repoint their parent to the request origin).
    pub path_compression: bool,
    /// Token-transfer policy at the token node for a compatible request
    /// stronger than the owned mode. `true` follows Rule 3.2 literally
    /// (transfer whenever `owned < requested`); `false` (default)
    /// transfers only for `U` and `W` — the modes that *cannot* be served
    /// by a copy grant — keeping the token pinned and request paths
    /// short. The paper's measured behavior (Figure 7: transfer-token
    /// messages decline to a small constant while copy grants dominate)
    /// corresponds to the lazy policy.
    pub eager_transfers: bool,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            absorb_requests: true,
            suppress_releases: true,
            freezing: true,
            path_compression: true,
            eager_transfers: false,
        }
    }
}

impl ProtocolConfig {
    /// The paper's protocol (all ingredients on).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Returns a copy with request absorption (Rule 4.1) disabled.
    #[must_use]
    pub fn without_absorption(mut self) -> Self {
        self.absorb_requests = false;
        self
    }

    /// Returns a copy with release suppression (Rule 5.2) disabled.
    #[must_use]
    pub fn without_release_suppression(mut self) -> Self {
        self.suppress_releases = false;
        self
    }

    /// Returns a copy with freezing (Rule 6) disabled.
    #[must_use]
    pub fn without_freezing(mut self) -> Self {
        self.freezing = false;
        self
    }

    /// Returns a copy with path compression disabled.
    #[must_use]
    pub fn without_path_compression(mut self) -> Self {
        self.path_compression = false;
        self
    }

    /// Returns a copy with literal Rule 3.2 transfers (`owned < requested`
    /// always moves the token).
    #[must_use]
    pub fn with_eager_transfers(mut self) -> Self {
        self.eager_transfers = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_protocol() {
        assert_eq!(ProtocolConfig::default(), ProtocolConfig::paper());
    }

    #[test]
    fn builders_flip_single_flags() {
        let c = ProtocolConfig::paper().without_freezing();
        assert!(!c.freezing);
        assert!(c.absorb_requests && c.suppress_releases && c.path_compression);

        let c = ProtocolConfig::paper().without_absorption();
        assert!(!c.absorb_requests);
        assert!(c.freezing);

        let c = ProtocolConfig::paper().without_release_suppression();
        assert!(!c.suppress_releases);

        let c = ProtocolConfig::paper().without_path_compression();
        assert!(!c.path_compression);
    }
}
