//! Multi-lock multiplexing: one [`LockSpace`] per node manages a
//! [`crate::LockNode`] state machine for every lock in the system.

use crate::config::ProtocolConfig;
use crate::effect::{Effect, EffectSink};
use crate::error::ProtocolError;
use crate::ids::{LockId, NodeId, Priority, Ticket};
use crate::message::{Envelope, Payload};
use crate::mode::Mode;
use crate::node::LockNode;
use crate::protocol::{CancelOutcome, ConcurrencyProtocol, Inspect};

/// All per-lock protocol state of one node.
///
/// Lock ids are dense (`0..lock_count`); every lock starts with the same
/// token home. The type implements [`ConcurrencyProtocol`], wrapping each
/// per-lock [`Payload`] into an [`Envelope`].
///
/// ```
/// use hlock_core::{ConcurrencyProtocol, EffectSink, LockId, LockSpace, Mode,
///                  NodeId, ProtocolConfig, Ticket};
/// let mut space = LockSpace::new(NodeId(0), 2, NodeId(0), ProtocolConfig::default());
/// let mut fx = EffectSink::new();
/// space.request(LockId(1), Mode::Write, Ticket(1), &mut fx)?;
/// assert_eq!(fx.len(), 1); // granted locally: node 0 is the token home
/// # Ok::<(), hlock_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LockSpace {
    id: NodeId,
    locks: Vec<LockNode>,
    scratch: EffectSink<Payload>,
}

impl LockSpace {
    /// Creates the state for `lock_count` locks at node `id`, with
    /// `token_home` initially holding every token.
    pub fn new(id: NodeId, lock_count: usize, token_home: NodeId, config: ProtocolConfig) -> Self {
        Self::with_homes(id, &vec![token_home; lock_count], config)
    }

    /// Like [`LockSpace::new`] but with one initial token home per lock
    /// (`homes[l]` holds lock `l`'s token). Spreading homes across nodes
    /// avoids a single hot root when many locks are busy at once.
    ///
    /// Every node in the system must be constructed with the *same*
    /// `homes` slice.
    pub fn with_homes(id: NodeId, homes: &[NodeId], config: ProtocolConfig) -> Self {
        let locks = homes
            .iter()
            .enumerate()
            .map(|(l, &home)| LockNode::new(id, LockId(l as u32), home, config))
            .collect();
        LockSpace { id, locks, scratch: EffectSink::new() }
    }

    /// Number of locks managed.
    pub fn lock_count(&self) -> usize {
        self.locks.len()
    }

    /// Read-only access to one lock's state machine.
    ///
    /// # Panics
    ///
    /// Panics if `lock` is out of range.
    pub fn lock_state(&self, lock: LockId) -> &LockNode {
        &self.locks[lock.index()]
    }

    fn lock_mut(&mut self, lock: LockId) -> Result<&mut LockNode, ProtocolError> {
        let idx = lock.index();
        if idx >= self.locks.len() {
            return Err(ProtocolError::UnknownLock { lock });
        }
        Ok(&mut self.locks[idx])
    }

    /// Issues a whole multi-lock acquisition plan as **one protocol
    /// step**: every `(lock, mode, ticket)` request is processed in
    /// order, with all effects accumulated in the same sink. Drained
    /// through [`EffectSink::drain_batched`], the step yields at most one
    /// batch per peer — a hierarchical CCS acquire that sends IR + R
    /// along a shared path costs one wire frame, not one per level.
    ///
    /// # Errors
    ///
    /// Unknown locks are rejected up front (before any request is
    /// issued). A duplicate ticket surfaces mid-plan: requests before it
    /// have already taken effect, exactly as if issued individually.
    pub fn request_batch(
        &mut self,
        steps: &[(LockId, Mode, Ticket)],
        fx: &mut EffectSink<Envelope>,
    ) -> Result<(), ProtocolError> {
        for &(lock, ..) in steps {
            if lock.index() >= self.locks.len() {
                return Err(ProtocolError::UnknownLock { lock });
            }
        }
        for &(lock, mode, ticket) in steps {
            self.request(lock, mode, ticket, fx)?;
        }
        Ok(())
    }

    /// Replaces every per-lock state machine with its post-recovery
    /// rebuild ([`LockNode::recovered`]): `homes[l]` is lock `l`'s new
    /// token home and `copysets[l]` its surviving children. Local
    /// critical-section entries survive when `keep_held` is true (this
    /// node is in the install's live set) and are voided otherwise.
    /// Lamport clocks carry over so stamps never regress across epochs.
    pub(crate) fn rebuild_from_install(
        &mut self,
        homes: &[NodeId],
        copysets: &[Vec<(NodeId, Mode)>],
        keep_held: bool,
    ) {
        for (l, node) in self.locks.iter_mut().enumerate() {
            let held = if keep_held { node.held().to_vec() } else { Vec::new() };
            *node = LockNode::recovered(
                self.id,
                LockId(l as u32),
                node.config(),
                homes[l],
                &copysets[l],
                held,
                node.clock(),
            );
        }
    }

    /// Takes the scratch sink for one per-lock call, mirroring the outer
    /// sink's observing flag so [`crate::ProtocolEvent`]s are collected
    /// exactly when the host asked for them.
    fn take_scratch(&mut self, fx: &EffectSink<Envelope>) -> EffectSink<Payload> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.set_observing(fx.observing());
        scratch
    }

    /// Re-emits scratch effects, wrapping payloads in envelopes; protocol
    /// events pass through unchanged (they already carry their lock id).
    fn flush(&mut self, lock: LockId, fx: &mut EffectSink<Envelope>) {
        self.scratch.forward_events_into(fx);
        for effect in self.scratch.drain() {
            match effect {
                Effect::Send { to, message } => {
                    fx.send(to, Envelope { lock, payload: message });
                }
                Effect::Granted { lock, ticket, mode } => fx.granted(lock, ticket, mode),
                Effect::SetTimer { token, delay_micros } => fx.set_timer(token, delay_micros),
            }
        }
    }
}

impl ConcurrencyProtocol for LockSpace {
    type Message = Envelope;

    fn node_id(&self) -> NodeId {
        self.id
    }

    fn request(
        &mut self,
        lock: LockId,
        mode: Mode,
        ticket: Ticket,
        fx: &mut EffectSink<Envelope>,
    ) -> Result<(), ProtocolError> {
        let mut scratch = self.take_scratch(fx);
        let result = self.lock_mut(lock)?.request(mode, ticket, &mut scratch);
        self.scratch = scratch;
        self.flush(lock, fx);
        result
    }

    fn request_with_priority(
        &mut self,
        lock: LockId,
        mode: Mode,
        ticket: Ticket,
        priority: Priority,
        fx: &mut EffectSink<Envelope>,
    ) -> Result<(), ProtocolError> {
        let mut scratch = self.take_scratch(fx);
        let result =
            self.lock_mut(lock)?.request_with_priority(mode, ticket, priority, &mut scratch);
        self.scratch = scratch;
        self.flush(lock, fx);
        result
    }

    fn release(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        fx: &mut EffectSink<Envelope>,
    ) -> Result<(), ProtocolError> {
        let mut scratch = self.take_scratch(fx);
        let result = self.lock_mut(lock)?.release(ticket, &mut scratch).map(|_| ());
        self.scratch = scratch;
        self.flush(lock, fx);
        result
    }

    fn upgrade(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        fx: &mut EffectSink<Envelope>,
    ) -> Result<(), ProtocolError> {
        let mut scratch = self.take_scratch(fx);
        let result = self.lock_mut(lock)?.upgrade(ticket, &mut scratch);
        self.scratch = scratch;
        self.flush(lock, fx);
        result
    }

    fn try_request(
        &mut self,
        lock: LockId,
        mode: Mode,
        ticket: Ticket,
        fx: &mut EffectSink<Envelope>,
    ) -> Result<bool, ProtocolError> {
        let mut scratch = self.take_scratch(fx);
        let result = self.lock_mut(lock)?.try_request(mode, ticket, &mut scratch);
        self.scratch = scratch;
        self.flush(lock, fx);
        result
    }

    fn downgrade(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        new_mode: Mode,
        fx: &mut EffectSink<Envelope>,
    ) -> Result<(), ProtocolError> {
        let mut scratch = self.take_scratch(fx);
        let result = self.lock_mut(lock)?.downgrade(ticket, new_mode, &mut scratch);
        self.scratch = scratch;
        self.flush(lock, fx);
        result
    }

    fn cancel(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        fx: &mut EffectSink<Envelope>,
    ) -> Result<CancelOutcome, ProtocolError> {
        let mut scratch = self.take_scratch(fx);
        let result = self.lock_mut(lock)?.cancel(ticket, &mut scratch);
        self.scratch = scratch;
        self.flush(lock, fx);
        result
    }

    fn on_message(&mut self, from: NodeId, message: Envelope, fx: &mut EffectSink<Envelope>) {
        let lock = message.lock;
        let idx = lock.index();
        debug_assert!(idx < self.locks.len(), "message for unknown lock {lock}");
        if idx >= self.locks.len() {
            return;
        }
        let mut scratch = self.take_scratch(fx);
        self.locks[idx].on_message(from, message.payload, &mut scratch);
        self.scratch = scratch;
        self.flush(lock, fx);
    }

    fn is_quiescent(&self) -> bool {
        self.locks.iter().all(LockNode::is_quiescent)
    }
}

impl PartialEq for LockSpace {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id && self.locks == other.locks
    }
}

impl Eq for LockSpace {}

impl std::hash::Hash for LockSpace {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
        self.locks.hash(state);
    }
}

impl Inspect for LockSpace {
    fn held_modes(&self, lock: LockId) -> Vec<Mode> {
        self.locks
            .get(lock.index())
            .map(|l| l.held().iter().map(|&(_, m)| m).collect())
            .unwrap_or_default()
    }

    fn holds_token(&self, lock: LockId) -> bool {
        self.locks.get(lock.index()).is_some_and(LockNode::is_token)
    }

    fn lock_node(&self, lock: LockId) -> Option<&LockNode> {
        self.locks.get(lock.index())
    }

    fn open_requests(&self) -> Vec<(LockId, Ticket)> {
        let mut out = Vec::new();
        for (i, node) in self.locks.iter().enumerate() {
            let (requests, upgrades) = node.outstanding_snapshot();
            let lock = LockId(i as u32);
            out.extend(requests.into_iter().map(|(t, _, _)| (lock, t)));
            out.extend(upgrades.into_iter().map(|t| (lock, t)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locks_are_independent() {
        let cfg = ProtocolConfig::default();
        let mut a = LockSpace::new(NodeId(0), 3, NodeId(0), cfg);
        let mut fx = EffectSink::new();
        a.request(LockId(0), Mode::Write, Ticket(1), &mut fx).unwrap();
        a.request(LockId(1), Mode::Write, Ticket(1), &mut fx).unwrap();
        let grants = fx.drain().filter(|e| matches!(e, Effect::Granted { .. })).count();
        assert_eq!(grants, 2, "same ticket on different locks is fine");
        assert!(a.lock_state(LockId(0)).is_token());
        assert_eq!(a.lock_state(LockId(2)).owned(), None);
    }

    #[test]
    fn unknown_lock_is_rejected() {
        let cfg = ProtocolConfig::default();
        let mut a = LockSpace::new(NodeId(0), 1, NodeId(0), cfg);
        let mut fx = EffectSink::new();
        let err = a.request(LockId(5), Mode::Read, Ticket(1), &mut fx).unwrap_err();
        assert_eq!(err, ProtocolError::UnknownLock { lock: LockId(5) });
    }

    #[test]
    fn envelopes_round_trip_between_spaces() {
        let cfg = ProtocolConfig::default();
        let mut a = LockSpace::new(NodeId(0), 2, NodeId(0), cfg);
        let mut b = LockSpace::new(NodeId(1), 2, NodeId(0), cfg);
        let mut fx = EffectSink::new();
        b.request(LockId(1), Mode::Write, Ticket(7), &mut fx).unwrap();
        let msgs: Vec<_> = fx
            .drain()
            .filter_map(|e| match e {
                Effect::Send { to, message } => Some((to, message)),
                _ => None,
            })
            .collect();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].0, NodeId(0));
        assert_eq!(msgs[0].1.lock, LockId(1));
        a.on_message(NodeId(1), msgs[0].1.clone(), &mut fx);
        let msgs: Vec<_> = fx
            .drain()
            .filter_map(|e| match e {
                Effect::Send { to, message } => Some((to, message)),
                _ => None,
            })
            .collect();
        b.on_message(NodeId(0), msgs[0].1.clone(), &mut fx);
        let granted: Vec<_> = fx
            .drain()
            .filter_map(|e| match e {
                Effect::Granted { lock, ticket, mode } => Some((lock, ticket, mode)),
                _ => None,
            })
            .collect();
        assert_eq!(granted, vec![(LockId(1), Ticket(7), Mode::Write)]);
        assert!(b.lock_state(LockId(1)).is_token());
        assert!(a.lock_state(LockId(0)).is_token());
    }

    #[test]
    fn try_request_never_sends_messages() {
        let cfg = ProtocolConfig::default();
        let mut home = LockSpace::new(NodeId(0), 1, NodeId(0), cfg);
        let mut other = LockSpace::new(NodeId(1), 1, NodeId(0), cfg);
        let mut fx = EffectSink::new();
        // Token home: immediate local grant.
        assert!(home.try_request(LockId(0), Mode::Read, Ticket(1), &mut fx).unwrap());
        assert_eq!(fx.drain().count(), 1, "grant only, no sends");
        // Non-owner: immediate refusal, zero messages.
        assert!(!other.try_request(LockId(0), Mode::Read, Ticket(1), &mut fx).unwrap());
        assert!(fx.is_empty());
        // Incompatible at the token: refusal, not a queue entry.
        assert!(!home.try_request(LockId(0), Mode::Write, Ticket(2), &mut fx).unwrap());
        assert!(home.is_quiescent());
        // Duplicate ticket detection still applies.
        assert_eq!(
            home.try_request(LockId(0), Mode::Read, Ticket(1), &mut fx).unwrap_err(),
            ProtocolError::DuplicateTicket { ticket: Ticket(1) }
        );
    }

    #[test]
    fn token_homes_can_be_distributed() {
        let cfg = ProtocolConfig::default();
        let homes = [NodeId(0), NodeId(1), NodeId(2)];
        let spaces: Vec<LockSpace> =
            (0..3).map(|i| LockSpace::with_homes(NodeId(i), &homes, cfg)).collect();
        for (i, s) in spaces.iter().enumerate() {
            for l in 0..3u32 {
                assert_eq!(s.lock_state(LockId(l)).is_token(), l as usize == i);
            }
        }
        // Each node can locally grant on its own lock.
        let mut fx = EffectSink::new();
        let mut s1 = spaces[1].clone();
        assert!(s1.try_request(LockId(1), Mode::Write, Ticket(1), &mut fx).unwrap());
    }

    #[test]
    fn request_batch_coalesces_shared_path_into_one_batch_per_peer() {
        use crate::effect::StepEffect;
        let cfg = ProtocolConfig::default();
        // Both locks' tokens live at node 0; node 1 acquires IR on the
        // table plus R on an entry — the paper's CCS lock-set pattern.
        let mut b = LockSpace::new(NodeId(1), 2, NodeId(0), cfg);
        let mut fx = EffectSink::new();
        b.request_batch(
            &[(LockId(0), Mode::IntentRead, Ticket(1)), (LockId(1), Mode::Read, Ticket(2))],
            &mut fx,
        )
        .unwrap();
        assert_eq!(fx.len(), 2, "two logical request messages");
        let batched = fx.drain_batched();
        assert_eq!(batched.len(), 1, "one frame to the shared token home");
        let StepEffect::Batch { to, messages } = &batched[0] else { panic!("expected batch") };
        assert_eq!(*to, NodeId(0));
        assert_eq!(messages.len(), 2);
        assert_eq!(messages[0].lock, LockId(0));
        assert_eq!(messages[1].lock, LockId(1));
    }

    #[test]
    fn request_batch_rejects_unknown_lock_before_any_side_effect() {
        let cfg = ProtocolConfig::default();
        let mut b = LockSpace::new(NodeId(1), 1, NodeId(0), cfg);
        let mut fx = EffectSink::new();
        let err = b
            .request_batch(
                &[(LockId(0), Mode::Read, Ticket(1)), (LockId(9), Mode::Read, Ticket(2))],
                &mut fx,
            )
            .unwrap_err();
        assert_eq!(err, ProtocolError::UnknownLock { lock: LockId(9) });
        assert!(fx.is_empty(), "no request was issued");
        assert!(b.is_quiescent());
    }

    #[test]
    fn quiescence_tracks_all_locks() {
        let cfg = ProtocolConfig::default();
        let mut b = LockSpace::new(NodeId(1), 2, NodeId(0), cfg);
        assert!(b.is_quiescent());
        let mut fx = EffectSink::new();
        b.request(LockId(0), Mode::Read, Ticket(1), &mut fx).unwrap();
        assert!(!b.is_quiescent());
    }
}
