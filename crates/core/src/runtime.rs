//! The shared batched host runtime.
//!
//! Every host (simulator, model checker, TCP transport) used to hand-roll
//! its own `match Effect` dispatch loop, and the copies drifted. The
//! [`HostRuntime`] owns that loop once: it drains an [`EffectSink`]
//! through the step/flush boundary ([`EffectSink::drain_batched_into`]),
//! hands each coalesced [`StepEffect`] to a host-specific [`BatchHost`]
//! callback, and keeps per-step counters (logical messages, frames,
//! coalesce ratio) so every host reports batching the same way.
//!
//! ```
//! use hlock_core::{BatchHost, EffectSink, HostRuntime, LockId, Mode, NodeId, Ticket};
//!
//! #[derive(Default)]
//! struct Recorder(Vec<(NodeId, Vec<u8>)>);
//! impl BatchHost<u8> for Recorder {
//!     fn on_batch(&mut self, to: NodeId, messages: Vec<u8>) {
//!         self.0.push((to, messages));
//!     }
//!     fn on_granted(&mut self, _: LockId, _: Ticket, _: Mode) {}
//!     fn on_set_timer(&mut self, _: u64, _: u64) {}
//! }
//!
//! let mut fx = EffectSink::new();
//! fx.send(NodeId(1), 10);
//! fx.send(NodeId(1), 11);
//! let mut rt = HostRuntime::new();
//! let mut host = Recorder::default();
//! rt.dispatch(&mut fx, &mut host);
//! assert_eq!(host.0, vec![(NodeId(1), vec![10, 11])]);
//! assert_eq!(rt.counters().logical_messages, 2);
//! assert_eq!(rt.counters().frames, 1);
//! ```

use crate::effect::{EffectSink, StepEffect};
use crate::ids::{LockId, NodeId, Ticket};
use crate::message::Classify;
use crate::mode::Mode;
use crate::observe::{Observer, ProtocolEvent};

/// Host-specific handlers for the three step-effect kinds.
///
/// Implementations decide what "deliver a batch" means — enqueue a
/// simulated hop, push a model-checker flight, or encode one wire frame —
/// while the [`HostRuntime`] owns ordering, coalescing and accounting.
pub trait BatchHost<M> {
    /// Deliver `messages` to `to` as one unit. Never called with an
    /// empty vector; messages are in per-link emission order.
    fn on_batch(&mut self, to: NodeId, messages: Vec<M>);

    /// A local request was granted.
    fn on_granted(&mut self, lock: LockId, ticket: Ticket, mode: Mode);

    /// The protocol asked for a timer.
    fn on_set_timer(&mut self, token: u64, delay_micros: u64);
}

/// Per-step accounting kept by a [`HostRuntime`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeCounters {
    /// Dispatched steps that produced at least one effect.
    pub steps: u64,
    /// Protocol messages sent (what the paper's figures count).
    pub logical_messages: u64,
    /// Transfer units actually emitted (batches); `frames <=
    /// logical_messages` always holds.
    pub frames: u64,
    /// Grants delivered to local callers.
    pub grants: u64,
    /// Timer registrations.
    pub timers: u64,
    /// Largest single batch seen, in messages.
    pub max_batch: u64,
    /// Incoming messages dropped by epoch fencing in
    /// [`HostRuntime::deliver`] (stale traffic from before a recovery).
    pub fenced: u64,
}

impl RuntimeCounters {
    /// Folds another snapshot in field-wise (sums, `max_batch` takes the
    /// max). Sharded hosts run one [`HostRuntime`] per shard worker and
    /// absorb the per-shard snapshots into one node- or cluster-level
    /// total.
    pub fn absorb(&mut self, other: &RuntimeCounters) {
        self.steps += other.steps;
        self.logical_messages += other.logical_messages;
        self.frames += other.frames;
        self.grants += other.grants;
        self.timers += other.timers;
        self.max_batch = self.max_batch.max(other.max_batch);
        self.fenced += other.fenced;
    }

    /// Logical messages per frame — 1.0 when nothing coalesced, higher
    /// when multi-message steps shared destinations.
    pub fn coalesce_ratio(&self) -> f64 {
        if self.frames == 0 {
            1.0
        } else {
            self.logical_messages as f64 / self.frames as f64
        }
    }
}

/// The one dispatch loop shared by every host.
///
/// Owns a reusable scratch vector (no per-step allocation once warm) and
/// the [`RuntimeCounters`]. Hosts call [`HostRuntime::dispatch`] after
/// every protocol step; the runtime batches, counts and forwards.
#[derive(Debug, Clone)]
pub struct HostRuntime<M> {
    scratch: Vec<StepEffect<M>>,
    counters: RuntimeCounters,
}

impl<M> Default for HostRuntime<M> {
    fn default() -> Self {
        HostRuntime::new()
    }
}

impl<M> HostRuntime<M> {
    /// Creates a runtime with zeroed counters.
    pub fn new() -> Self {
        HostRuntime { scratch: Vec::new(), counters: RuntimeCounters::default() }
    }

    /// Drains one step's effects from `fx`, coalescing sends per
    /// destination, and invokes `host` for each resulting step effect in
    /// order. The whole sink is flushed: batches never split a step and
    /// never span two steps.
    pub fn dispatch<H: BatchHost<M>>(&mut self, fx: &mut EffectSink<M>, host: &mut H) {
        if fx.is_empty() {
            return;
        }
        self.counters.steps += 1;
        debug_assert!(self.scratch.is_empty(), "scratch leaked from a previous dispatch");
        fx.drain_batched_into(&mut self.scratch);
        for effect in self.scratch.drain(..) {
            match effect {
                StepEffect::Batch { to, messages } => {
                    self.counters.frames += 1;
                    self.counters.logical_messages += messages.len() as u64;
                    self.counters.max_batch = self.counters.max_batch.max(messages.len() as u64);
                    host.on_batch(to, messages);
                }
                StepEffect::Granted { lock, ticket, mode } => {
                    self.counters.grants += 1;
                    host.on_granted(lock, ticket, mode);
                }
                StepEffect::SetTimer { token, delay_micros } => {
                    self.counters.timers += 1;
                    host.on_set_timer(token, delay_micros);
                }
            }
        }
    }

    /// Like [`HostRuntime::dispatch`], but also drains the sink's
    /// recorded [`ProtocolEvent`]s into `obs` (stamped `now_micros`) and
    /// emits one [`ProtocolEvent::MessageSent`] per logical message of
    /// every batch, so per-kind message counters are identical across
    /// hosts with zero per-host code.
    ///
    /// Events are drained even when the step produced no effects (a
    /// suppressed release, for instance, is an event without an effect);
    /// such steps still do not count toward [`RuntimeCounters::steps`].
    pub fn dispatch_observed<H, O>(
        &mut self,
        fx: &mut EffectSink<M>,
        host: &mut H,
        node: NodeId,
        obs: &mut O,
        now_micros: u64,
    ) where
        H: BatchHost<M>,
        O: Observer + ?Sized,
        M: Classify,
    {
        for event in fx.take_events() {
            obs.on_event(now_micros, &event);
        }
        if fx.is_empty() {
            return;
        }
        self.counters.steps += 1;
        debug_assert!(self.scratch.is_empty(), "scratch leaked from a previous dispatch");
        fx.drain_batched_into(&mut self.scratch);
        for effect in self.scratch.drain(..) {
            match effect {
                StepEffect::Batch { to, messages } => {
                    self.counters.frames += 1;
                    self.counters.logical_messages += messages.len() as u64;
                    self.counters.max_batch = self.counters.max_batch.max(messages.len() as u64);
                    if fx.observing() {
                        for m in &messages {
                            obs.on_event(
                                now_micros,
                                &ProtocolEvent::MessageSent { node, to, kind: m.kind() },
                            );
                        }
                    }
                    host.on_batch(to, messages);
                }
                StepEffect::Granted { lock, ticket, mode } => {
                    self.counters.grants += 1;
                    host.on_granted(lock, ticket, mode);
                }
                StepEffect::SetTimer { token, delay_micros } => {
                    self.counters.timers += 1;
                    host.on_set_timer(token, delay_micros);
                }
            }
        }
    }

    /// Delivers an incoming batch to `protocol`, fencing stale epochs.
    ///
    /// When the protocol exposes a
    /// [`fence_epoch`](crate::ConcurrencyProtocol::fence_epoch), every
    /// message stamped with an older [`Classify::epoch`] is dropped
    /// before the protocol sees it: a [`ProtocolEvent::StaleEpochFenced`]
    /// is emitted, [`RuntimeCounters::fenced`] is bumped, and the
    /// protocol's `on_stale_message` hook runs (so it can re-teach the
    /// straggler). The surviving messages are forwarded as one batch.
    /// Epoch-free protocols (no fence) take a zero-copy fast path.
    ///
    /// All hosts route incoming traffic through this method so fencing
    /// behaves identically in the simulator, the model checker and the
    /// TCP transport.
    pub fn deliver<P>(
        &mut self,
        protocol: &mut P,
        from: NodeId,
        messages: Vec<M>,
        fx: &mut EffectSink<M>,
    ) where
        P: crate::ConcurrencyProtocol<Message = M>,
        M: Classify + Clone,
    {
        let Some(fence) = protocol.fence_epoch() else {
            protocol.on_message_batch(from, messages, fx);
            return;
        };
        let mut live = Vec::with_capacity(messages.len());
        for message in messages {
            match message.epoch() {
                Some(epoch) if epoch < fence => {
                    self.counters.fenced += 1;
                    let node = protocol.node_id();
                    fx.emit_with(|| ProtocolEvent::StaleEpochFenced { node, from, epoch });
                    protocol.on_stale_message(from, epoch, fx);
                }
                _ => live.push(message),
            }
        }
        if !live.is_empty() {
            protocol.on_message_batch(from, live, fx);
        }
    }

    /// The accumulated counters.
    pub fn counters(&self) -> &RuntimeCounters {
        &self.counters
    }

    /// Resets the counters (the scratch buffer is kept).
    pub fn reset_counters(&mut self) {
        self.counters = RuntimeCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        batches: Vec<(NodeId, Vec<u8>)>,
        grants: Vec<(LockId, Ticket, Mode)>,
        timers: Vec<(u64, u64)>,
    }

    impl BatchHost<u8> for Recorder {
        fn on_batch(&mut self, to: NodeId, messages: Vec<u8>) {
            self.batches.push((to, messages));
        }
        fn on_granted(&mut self, lock: LockId, ticket: Ticket, mode: Mode) {
            self.grants.push((lock, ticket, mode));
        }
        fn on_set_timer(&mut self, token: u64, delay_micros: u64) {
            self.timers.push((token, delay_micros));
        }
    }

    #[test]
    fn dispatch_batches_and_counts() {
        let mut fx = EffectSink::new();
        fx.send(NodeId(1), 10);
        fx.send(NodeId(2), 20);
        fx.send(NodeId(1), 11);
        fx.granted(LockId(0), Ticket(3), Mode::Write);
        fx.set_timer(9, 500);
        let mut rt = HostRuntime::new();
        let mut host = Recorder::default();
        rt.dispatch(&mut fx, &mut host);
        assert!(fx.is_empty());
        assert_eq!(host.batches, vec![(NodeId(1), vec![10, 11]), (NodeId(2), vec![20])]);
        assert_eq!(host.grants, vec![(LockId(0), Ticket(3), Mode::Write)]);
        assert_eq!(host.timers, vec![(9, 500)]);
        let c = rt.counters();
        assert_eq!(c.steps, 1);
        assert_eq!(c.logical_messages, 3);
        assert_eq!(c.frames, 2);
        assert_eq!(c.grants, 1);
        assert_eq!(c.timers, 1);
        assert_eq!(c.max_batch, 2);
        assert!((c.coalesce_ratio() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_step_is_not_counted() {
        let mut fx: EffectSink<u8> = EffectSink::new();
        let mut rt = HostRuntime::new();
        let mut host = Recorder::default();
        rt.dispatch(&mut fx, &mut host);
        assert_eq!(rt.counters().steps, 0);
        assert_eq!(rt.counters().coalesce_ratio(), 1.0);
    }

    #[test]
    fn steps_never_share_a_batch() {
        let mut fx = EffectSink::new();
        let mut rt = HostRuntime::new();
        let mut host = Recorder::default();
        fx.send(NodeId(1), 1);
        rt.dispatch(&mut fx, &mut host);
        fx.send(NodeId(1), 2);
        rt.dispatch(&mut fx, &mut host);
        assert_eq!(host.batches, vec![(NodeId(1), vec![1]), (NodeId(1), vec![2])]);
        assert_eq!(rt.counters().frames, 2);
    }

    impl crate::Classify for u8 {
        fn kind(&self) -> crate::MessageKind {
            crate::MessageKind::Request
        }
    }

    #[test]
    fn dispatch_observed_emits_message_sent_and_drains_events() {
        use crate::observe::{ProtocolEvent, VecObserver};
        let mut fx = EffectSink::new();
        fx.set_observing(true);
        fx.emit_with(|| ProtocolEvent::ReleaseSuppressed {
            node: NodeId(0),
            lock: LockId(0),
            owned: None,
        });
        fx.send(NodeId(1), 10u8);
        fx.send(NodeId(1), 11u8);
        let mut rt = HostRuntime::new();
        let mut host = Recorder::default();
        let mut obs = VecObserver::default();
        rt.dispatch_observed(&mut fx, &mut host, NodeId(0), &mut obs, 42);
        assert!(fx.events().is_empty());
        let names: Vec<&str> = obs.events.iter().map(|(_, e)| e.name()).collect();
        assert_eq!(names, vec!["release_suppressed", "message_sent", "message_sent"]);
        assert!(obs.events.iter().all(|(at, _)| *at == 42));
        assert_eq!(rt.counters().logical_messages, 2);
    }

    #[test]
    fn dispatch_observed_drains_events_without_effects() {
        use crate::observe::{ProtocolEvent, VecObserver};
        let mut fx: EffectSink<u8> = EffectSink::new();
        fx.set_observing(true);
        fx.emit_with(|| ProtocolEvent::TimerFired { node: NodeId(3), token: 7 });
        let mut rt = HostRuntime::new();
        let mut host = Recorder::default();
        let mut obs = VecObserver::default();
        rt.dispatch_observed(&mut fx, &mut host, NodeId(3), &mut obs, 0);
        assert_eq!(obs.events.len(), 1);
        assert_eq!(rt.counters().steps, 0, "event-only steps are not effectful");
    }
}
