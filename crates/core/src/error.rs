//! Error types.

use crate::ids::{LockId, Ticket};
use crate::mode::Mode;
use core::fmt;

/// Errors returned by the protocol's public API.
///
/// All variants indicate caller mistakes; the protocol state is left
/// unchanged when an error is returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// The ticket is already used by an outstanding request or held lock.
    DuplicateTicket {
        /// The offending ticket.
        ticket: Ticket,
    },
    /// The ticket holds nothing (it may still be waiting for a grant).
    NotHeld {
        /// The offending ticket.
        ticket: Ticket,
    },
    /// `upgrade` was called on a ticket holding a mode other than `U`.
    UpgradeRequiresUpgradeLock {
        /// The offending ticket.
        ticket: Ticket,
        /// The mode it actually holds.
        held: Mode,
    },
    /// The referenced lock does not exist in this [`crate::LockSpace`].
    UnknownLock {
        /// The offending lock id.
        lock: LockId,
    },
    /// `cancel` was called on a ticket that already holds the lock;
    /// release it instead.
    NotCancellable {
        /// The offending ticket.
        ticket: Ticket,
    },
    /// The requested mode change is not a legal downgrade (it would
    /// constrain concurrency more than the held mode).
    InvalidDowngrade {
        /// The offending ticket.
        ticket: Ticket,
        /// Currently held mode.
        from: Mode,
        /// Requested mode.
        to: Mode,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::DuplicateTicket { ticket } => {
                write!(f, "ticket {ticket} is already in use")
            }
            ProtocolError::NotHeld { ticket } => {
                write!(f, "ticket {ticket} does not hold the lock")
            }
            ProtocolError::UpgradeRequiresUpgradeLock { ticket, held } => {
                write!(f, "ticket {ticket} holds {held}, not U; only U can be upgraded")
            }
            ProtocolError::UnknownLock { lock } => write!(f, "unknown lock {lock}"),
            ProtocolError::NotCancellable { ticket } => {
                write!(f, "ticket {ticket} already holds the lock; release it instead")
            }
            ProtocolError::InvalidDowngrade { ticket, from, to } => {
                write!(f, "ticket {ticket} cannot change {from} to {to}: not a downgrade")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ProtocolError::DuplicateTicket { ticket: Ticket(3) }.to_string(),
            "ticket t3 is already in use"
        );
        assert!(ProtocolError::NotHeld { ticket: Ticket(1) }.to_string().contains("t1"));
        assert!(ProtocolError::UpgradeRequiresUpgradeLock { ticket: Ticket(2), held: Mode::Read }
            .to_string()
            .contains("holds R"));
        assert!(ProtocolError::UnknownLock { lock: LockId(7) }.to_string().contains("L7"));
        assert!(ProtocolError::NotCancellable { ticket: Ticket(4) }
            .to_string()
            .contains("release it instead"));
        assert!(ProtocolError::InvalidDowngrade {
            ticket: Ticket(4),
            from: Mode::Read,
            to: Mode::Write
        }
        .to_string()
        .contains("not a downgrade"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ProtocolError>();
    }
}
