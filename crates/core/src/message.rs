//! Protocol messages.
//!
//! Six message types, exactly as enumerated in the paper's §3.4:
//! *request*, *grant*, *token*, *release*, *freeze* and *update*.
//! Each message is scoped to one lock by the [`Envelope`] wrapper.

use crate::ids::{LockId, NodeId, Priority, Stamp, Ticket};
use crate::mode::{Mode, ModeSet};
use crate::queue::QueueEntry;
use core::fmt;

/// Coarse classification of messages, shared by all protocols in the
/// workspace so the simulator can count per-kind overhead (Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// A lock request travelling toward a granter.
    Request,
    /// A copy grant from a (token or non-token) granter.
    Grant,
    /// A token transfer.
    Token,
    /// A release notification from child to parent.
    Release,
    /// A freeze notification (Rule 6).
    Freeze,
    /// A frozen-set update (unfreeze) notification.
    Update,
    /// A standalone cumulative acknowledgement from the reliable session
    /// layer (`hlock-session`); carries no protocol payload.
    Ack,
    /// A crash-recovery control message (`hlock-core`'s recovery layer):
    /// survivor state reports, epoch installs, and stale-epoch nacks.
    Recovery,
}

impl MessageKind {
    /// All kinds, in the order used by the Figure 7 breakdown.
    pub const ALL: [MessageKind; 8] = [
        MessageKind::Request,
        MessageKind::Grant,
        MessageKind::Token,
        MessageKind::Release,
        MessageKind::Freeze,
        MessageKind::Update,
        MessageKind::Ack,
        MessageKind::Recovery,
    ];

    /// Stable label used in benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            MessageKind::Request => "request",
            MessageKind::Grant => "grant",
            MessageKind::Token => "token",
            MessageKind::Release => "release",
            MessageKind::Freeze => "freeze",
            MessageKind::Update => "update",
            MessageKind::Ack => "ack",
            MessageKind::Recovery => "recovery",
        }
    }
}

impl fmt::Display for MessageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Anything the simulator or transport can count by [`MessageKind`].
pub trait Classify {
    /// The kind of this message, for metrics.
    fn kind(&self) -> MessageKind;

    /// The recovery epoch this message was sent at, if the protocol
    /// stamps its traffic with epochs. [`crate::HostRuntime::deliver`]
    /// fences messages whose epoch is older than the receiver's
    /// [`crate::ConcurrencyProtocol::fence_epoch`], which is what makes
    /// "never two live tokens" an invariant across recoveries rather
    /// than luck. `None` (the default) disables fencing.
    fn epoch(&self) -> Option<u64> {
        None
    }
}

/// One protocol message about a single lock.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Payload {
    /// A request by `origin` for the lock in `mode`, stamped at the origin
    /// (Rule 2); relayed hop-by-hop toward the token (Rule 4.1).
    Request {
        /// The node that wants the lock (not necessarily the sender — the
        /// message may have been forwarded).
        origin: NodeId,
        /// The requested mode.
        mode: Mode,
        /// Lamport stamp assigned at the origin, for FIFO queue merges.
        stamp: Stamp,
        /// Request priority (higher served first, FIFO within).
        priority: Priority,
        /// Causal span ticket: the ticket the origin assigned to this
        /// request, carried across hops so observers at every node can
        /// attribute forwarding/queueing/grant events to one span
        /// (`SpanId { origin, ticket: span }`).
        span: Ticket,
    },
    /// A granted copy: the requester becomes a child of the sender holding
    /// `mode` (Rules 3.1, 3.2 copy case). Carries the granter's current
    /// frozen set so the new child obeys Rule 6 immediately.
    Grant {
        /// The granted mode.
        mode: Mode,
        /// Frozen modes in effect at the granter.
        frozen: ModeSet,
    },
    /// The token moves to the receiver, which becomes the new token node
    /// (Rule 3.2 transfer case).
    Token {
        /// The mode the receiver had requested (its grant).
        mode: Mode,
        /// The old token node's remaining local queue, merged FIFO into
        /// the receiver's queue (Figure 4, footnote c).
        queue: Vec<QueueEntry>,
        /// The mode the sender still owns, if any; `Some` makes the sender
        /// a child of the new token node (Figure 4, footnote b).
        sender_owned: Option<Mode>,
    },
    /// Child-to-parent notification that the child subtree's owned mode
    /// weakened to `new_owned` (Rule 5.2); `None` removes the child from
    /// the parent's copyset.
    Release {
        /// The child's new owned mode (`None` = fully released).
        new_owned: Option<Mode>,
    },
    /// Token-to-children notification that `modes` are now frozen (Rule 6).
    Freeze {
        /// Modes newly frozen.
        modes: ModeSet,
    },
    /// Replacement of the receiver's frozen set (unfreeze propagation).
    Update {
        /// The complete new frozen set.
        frozen: ModeSet,
    },
}

impl Classify for Payload {
    fn kind(&self) -> MessageKind {
        match self {
            Payload::Request { .. } => MessageKind::Request,
            Payload::Grant { .. } => MessageKind::Grant,
            Payload::Token { .. } => MessageKind::Token,
            Payload::Release { .. } => MessageKind::Release,
            Payload::Freeze { .. } => MessageKind::Freeze,
            Payload::Update { .. } => MessageKind::Update,
        }
    }
}

/// A [`Payload`] addressed to a specific lock instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Envelope {
    /// The lock this message concerns.
    pub lock: LockId,
    /// The protocol message.
    pub payload: Payload,
}

impl Classify for Envelope {
    fn kind(&self) -> MessageKind {
        self.payload.kind()
    }
}

impl fmt::Display for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {:?}", self.lock, self.payload)
    }
}

/// One node's per-lock survivor state, reported to the recovery
/// coordinator during an epoch election (`crate::RecoverySpace`).
///
/// Reports are indexed by dense [`LockId`]: the `i`-th entry of a
/// report vector describes `LockId(i)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LockReport {
    /// Whether the reporter possesses this lock's token.
    pub holds_token: bool,
    /// The strongest mode the reporter currently holds (its post-recovery
    /// owned mode as a direct child of the new token home), if any.
    pub owned: Option<Mode>,
}

/// Body of a [`RecoveryEnvelope`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RecoveryBody {
    /// An ordinary protocol message, stamped with the sender's epoch so
    /// stale traffic from before a recovery can be fenced at dispatch.
    App(Envelope),
    /// A survivor's state report to the election coordinator. The
    /// envelope epoch is the *target* epoch being elected.
    Report {
        /// The suspected-dead set this report responds to.
        dead: Vec<NodeId>,
        /// The epoch the reported state belongs to (the reporter's
        /// current epoch). Reporters can be split across epochs — e.g.
        /// a falsely-suspected node recovered around at an older epoch
        /// joining a later election — and their grants may then overlap
        /// legitimately. The coordinator reconstructs token/ownership
        /// state only from the highest base among its reporters; older
        /// bases were superseded by the install that created the newer
        /// one, so their grants are void.
        base: u64,
        /// Per-lock survivor state, indexed by dense lock id.
        state: Vec<LockReport>,
    },
    /// The coordinator's decision, broadcast to all survivors: rebuild
    /// at the envelope's (new) epoch. Trees flatten to depth one: every
    /// survivor with an owned mode becomes a direct child of the lock's
    /// new home.
    Install {
        /// Nodes considered live at the new epoch.
        live: Vec<NodeId>,
        /// The base epoch the install's state was reconstructed from
        /// (the highest reporter base). A receiver whose own epoch is
        /// older than this voids its held grants: they were superseded
        /// by the base install it never saw.
        base: u64,
        /// Token home per lock, indexed by dense lock id.
        homes: Vec<NodeId>,
        /// Copyset per lock: surviving `(child, owned)` pairs.
        copysets: Vec<Vec<(NodeId, Mode)>>,
    },
    /// "You are ahead of me" — sent by a node that received traffic from
    /// a *newer* epoch than its own. The envelope carries the sender's
    /// (stale) epoch, so the receiver fences it and re-teaches the
    /// cached install, pulling the straggler into the current epoch.
    Nack,
}

/// An epoch-stamped message: either wrapped application traffic or a
/// recovery-control message. The message type of [`crate::RecoverySpace`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RecoveryEnvelope {
    /// The sender's epoch (for `App`/`Nack`) or the epoch being
    /// elected/installed (for `Report`/`Install`).
    pub epoch: u64,
    /// The actual content.
    pub body: RecoveryBody,
}

impl Classify for RecoveryEnvelope {
    fn kind(&self) -> MessageKind {
        match &self.body {
            RecoveryBody::App(env) => env.kind(),
            RecoveryBody::Report { .. } | RecoveryBody::Install { .. } | RecoveryBody::Nack => {
                MessageKind::Recovery
            }
        }
    }

    fn epoch(&self) -> Option<u64> {
        Some(self.epoch)
    }
}

impl fmt::Display for RecoveryEnvelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.body {
            RecoveryBody::App(env) => write!(f, "e{} {env}", self.epoch),
            body => write!(f, "e{} {body:?}", self.epoch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LockId, NodeId, Priority, Stamp, Ticket};
    use crate::mode::Mode;

    #[test]
    fn kinds_classify() {
        let req = Payload::Request {
            origin: NodeId(1),
            mode: Mode::Read,
            stamp: Stamp(4),
            priority: Priority::NORMAL,
            span: Ticket(9),
        };
        assert_eq!(req.kind(), MessageKind::Request);
        assert_eq!(
            Payload::Grant { mode: Mode::Read, frozen: ModeSet::EMPTY }.kind(),
            MessageKind::Grant
        );
        assert_eq!(
            Payload::Token { mode: Mode::Write, queue: vec![], sender_owned: None }.kind(),
            MessageKind::Token
        );
        assert_eq!(Payload::Release { new_owned: None }.kind(), MessageKind::Release);
        assert_eq!(Payload::Freeze { modes: ModeSet::ALL }.kind(), MessageKind::Freeze);
        assert_eq!(Payload::Update { frozen: ModeSet::EMPTY }.kind(), MessageKind::Update);
    }

    #[test]
    fn envelope_classifies_via_payload() {
        let env = Envelope {
            lock: LockId(2),
            payload: Payload::Release { new_owned: Some(Mode::IntentRead) },
        };
        assert_eq!(env.kind(), MessageKind::Release);
        assert!(env.to_string().contains("L2"));
    }

    #[test]
    fn recovery_envelope_classifies_and_stamps_epoch() {
        let app = RecoveryEnvelope {
            epoch: 3,
            body: RecoveryBody::App(Envelope {
                lock: LockId(0),
                payload: Payload::Release { new_owned: None },
            }),
        };
        // App traffic keeps its inner kind so per-kind metrics still work.
        assert_eq!(app.kind(), MessageKind::Release);
        assert_eq!(app.epoch(), Some(3));
        let ctl = RecoveryEnvelope { epoch: 4, body: RecoveryBody::Nack };
        assert_eq!(ctl.kind(), MessageKind::Recovery);
        assert_eq!(ctl.epoch(), Some(4));
        // Plain envelopes are not epoch-stamped: fencing stays off.
        let plain = Envelope { lock: LockId(0), payload: Payload::Release { new_owned: None } };
        assert_eq!(plain.epoch(), None);
    }

    #[test]
    fn kind_labels_are_unique() {
        let mut labels: Vec<&str> = MessageKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), MessageKind::ALL.len());
    }
}
