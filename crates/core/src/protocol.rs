//! The protocol abstraction shared by every locking implementation in
//! this workspace.
//!
//! Both the paper's hierarchical protocol ([`crate::LockSpace`]) and the
//! Naimi–Trehel baseline (`hlock-naimi`) implement [`ConcurrencyProtocol`],
//! so the simulator, the model checker and the TCP transport can drive
//! either without knowing which one they host.

use crate::effect::EffectSink;
use crate::error::ProtocolError;
use crate::ids::{LockId, NodeId, Priority, Ticket};
use crate::message::Classify;
use crate::mode::Mode;
use core::fmt;

/// Result of cancelling an outstanding request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The request was still queued locally and is gone; no grant will
    /// ever arrive for this ticket.
    Cancelled,
    /// The request is already in flight toward a granter; the grant will
    /// be absorbed and relinquished automatically when it arrives (no
    /// `Granted` effect will be emitted).
    WillAbort,
}

/// A sans-I/O distributed locking protocol instance living at one node.
///
/// All operations are asynchronous: grants arrive later as
/// [`crate::Effect::Granted`] effects carrying the caller's ticket.
pub trait ConcurrencyProtocol {
    /// The wire message type exchanged between nodes.
    type Message: Clone + fmt::Debug + Classify;

    /// The node this instance lives at.
    fn node_id(&self) -> NodeId;

    /// Requests `lock` in `mode` on behalf of `ticket`.
    ///
    /// # Errors
    ///
    /// Implementations reject duplicate tickets and unknown locks.
    fn request(
        &mut self,
        lock: LockId,
        mode: Mode,
        ticket: Ticket,
        fx: &mut EffectSink<Self::Message>,
    ) -> Result<(), ProtocolError>;

    /// Like [`ConcurrencyProtocol::request`] with an explicit priority:
    /// higher priorities are served first, FIFO within a priority.
    /// Protocols without priority support ignore it (the default).
    ///
    /// # Errors
    ///
    /// As for `request`.
    fn request_with_priority(
        &mut self,
        lock: LockId,
        mode: Mode,
        ticket: Ticket,
        priority: Priority,
        fx: &mut EffectSink<Self::Message>,
    ) -> Result<(), ProtocolError> {
        let _ = priority;
        self.request(lock, mode, ticket, fx)
    }

    /// Releases the grant held by `ticket` on `lock`.
    ///
    /// # Errors
    ///
    /// Fails if the ticket holds nothing on that lock.
    fn release(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        fx: &mut EffectSink<Self::Message>,
    ) -> Result<(), ProtocolError>;

    /// Upgrades a held `U` lock to `W` (Rule 7). Protocols without an
    /// upgrade notion (exclusive-only baselines) report an immediate
    /// grant of `W`.
    ///
    /// # Errors
    ///
    /// Fails if the ticket does not hold an upgradable lock.
    fn upgrade(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        fx: &mut EffectSink<Self::Message>,
    ) -> Result<(), ProtocolError>;

    /// Attempts a **message-free** acquisition: succeeds only if this
    /// node can grant locally right now (Rule 2 fast path); never queues
    /// or sends. Returns whether the lock was granted (if `true`, a
    /// `Granted` effect was emitted).
    ///
    /// # Errors
    ///
    /// Duplicate tickets and unknown locks, as for `request`.
    fn try_request(
        &mut self,
        lock: LockId,
        mode: Mode,
        ticket: Ticket,
        fx: &mut EffectSink<Self::Message>,
    ) -> Result<bool, ProtocolError>;

    /// Downgrades a held lock to a weaker mode (the safe direction of
    /// CCS `change_mode`). Exclusive-only baselines treat any target
    /// mode as a no-op (they have no modes to weaken).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::NotHeld`] if the ticket holds nothing;
    /// [`ProtocolError::InvalidDowngrade`] if the change could admit an
    /// incompatible holder.
    fn downgrade(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        new_mode: Mode,
        fx: &mut EffectSink<Self::Message>,
    ) -> Result<(), ProtocolError>;

    /// Cancels an outstanding (not yet granted) request.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::NotCancellable`] if the ticket already holds the
    /// lock, [`ProtocolError::NotHeld`] if the ticket is unknown.
    fn cancel(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        fx: &mut EffectSink<Self::Message>,
    ) -> Result<CancelOutcome, ProtocolError>;

    /// Delivers one message from node `from`.
    fn on_message(
        &mut self,
        from: NodeId,
        message: Self::Message,
        fx: &mut EffectSink<Self::Message>,
    );

    /// Delivers a whole batch (one wire frame / one simulated hop) from
    /// node `from`, in order.
    ///
    /// The default processes the messages one by one, so plain protocols
    /// are batch-transparent for free. Layers that keep per-link state
    /// (e.g. the session layer) override this to treat the batch as one
    /// sequenced unit — acknowledging once per batch instead of once per
    /// message — while emitting all resulting effects into the same step
    /// so the reply coalesces too.
    fn on_message_batch(
        &mut self,
        from: NodeId,
        messages: Vec<Self::Message>,
        fx: &mut EffectSink<Self::Message>,
    ) {
        for message in messages {
            self.on_message(from, message, fx);
        }
    }

    /// Fires a timer previously requested via [`crate::Effect::SetTimer`].
    ///
    /// Hosts echo back the protocol-chosen `token`. Timers are not
    /// cancellable, so a fired token may refer to a condition that has
    /// already passed; implementations must treat stale or unknown tokens
    /// as no-ops. The default implementation ignores all timers (the base
    /// protocols are purely message-driven).
    fn on_timer(&mut self, token: u64, fx: &mut EffectSink<Self::Message>) {
        let _ = (token, fx);
    }

    /// Notifies the protocol that the transport link to `peer` was torn
    /// down and re-established (e.g. a TCP reconnect). Reliability layers
    /// use this to resend unacknowledged traffic; the base protocols,
    /// which assume reliable links, ignore it.
    fn on_link_reset(&mut self, peer: NodeId, fx: &mut EffectSink<Self::Message>) {
        let _ = (peer, fx);
    }

    /// Whether this node has no protocol work in flight (no pending or
    /// queued requests). Used by hosts to detect system quiescence.
    fn is_quiescent(&self) -> bool;

    /// The minimum epoch this node accepts: [`crate::HostRuntime::deliver`]
    /// drops ("fences") any incoming message whose
    /// [`Classify::epoch`](crate::Classify::epoch) is older. `None` (the
    /// default) disables fencing — plain protocols are epoch-free.
    fn fence_epoch(&self) -> Option<u64> {
        None
    }

    /// A host's failure detector suspects `dead` of having crashed.
    ///
    /// Recovery-capable protocols start (or join) an epoch election and
    /// return `true`; the default ignores the suspicion and returns
    /// `false`, telling the host that a lost token stays lost.
    fn on_suspect(&mut self, dead: &[NodeId], fx: &mut EffectSink<Self::Message>) -> bool {
        let _ = (dead, fx);
        false
    }

    /// A message from `from` stamped with stale `epoch` was fenced at
    /// dispatch. Recovery-capable protocols re-teach the sender the
    /// current epoch's install so stragglers (false-positive suspects,
    /// healed pauses) rejoin instead of spinning on dead state.
    fn on_stale_message(&mut self, from: NodeId, epoch: u64, fx: &mut EffectSink<Self::Message>) {
        let _ = (from, epoch, fx);
    }
}

/// Read-only introspection for invariant checking.
///
/// Hosts (the simulator and the model checker) use this to assert global
/// safety: all concurrently held modes must be pairwise compatible, and
/// exactly one token may exist per lock (counting in-flight transfers).
pub trait Inspect {
    /// The modes currently held (inside critical sections) at this node
    /// for `lock`.
    fn held_modes(&self, lock: LockId) -> Vec<Mode>;

    /// Whether this node currently possesses the token for `lock`.
    fn holds_token(&self, lock: LockId) -> bool;

    /// The full per-lock state machine, when the protocol is the
    /// hierarchical one (enables the global [`crate::audit_lock`] checks);
    /// `None` for other protocols.
    fn lock_node(&self, lock: LockId) -> Option<&crate::LockNode> {
        let _ = lock;
        None
    }

    /// The recovery epoch this node's state belongs to (0 for epoch-free
    /// protocols). Hosts compare states only within the newest live
    /// epoch: a straggler still rebuilding from an older epoch carries
    /// state the current epoch has already superseded.
    fn epoch(&self) -> u64 {
        0
    }

    /// Whether this node's failure detector currently considers `peer`
    /// dead (always `false` for protocols without one). Checkers use
    /// this to re-arm the modeled watchdog: a survivor whose suspicion
    /// of a crashed peer was healed by a pre-crash in-flight message
    /// must be able to suspect it again, exactly as a real watchdog
    /// re-fires while requests stay outstanding.
    fn suspects(&self, peer: NodeId) -> bool {
        let _ = peer;
        false
    }

    /// Whether this node is frozen mid-recovery (always `false` for
    /// protocols without a recovery layer). A terminal state with a
    /// live node still frozen is a liveness violation in itself.
    fn frozen(&self) -> bool {
        false
    }

    /// Requests issued locally that have not yet been granted or
    /// cancelled, as `(lock, ticket)` pairs. Hosts use this to close
    /// observability spans when a node dies or is fenced behind a new
    /// epoch: each open request gets a terminal
    /// [`crate::observe::ProtocolEvent::RequestAborted`] event so span
    /// balance holds under crash-recovery runs. The default reports
    /// none (for protocols without local introspection).
    fn open_requests(&self) -> Vec<(LockId, Ticket)> {
        Vec::new()
    }
}
