//! Global consistency auditing.
//!
//! At *quiescence* (no pending requests, empty queues, no in-flight
//! messages) the distributed state of one lock must be mutually
//! consistent across nodes. [`audit_lock`] checks, given every node's
//! [`LockNode`] for the same lock:
//!
//! 1. exactly one token node exists, and only it has no parent;
//! 2. copysets and parent pointers agree: `C ∈ children(P)` iff
//!    `parent(C) = P ∧ owned(C) ≠ ∅`, and the recorded mode equals `C`'s
//!    actual owned mode — in particular **no node is accounted in two
//!    copysets** (the "phantom child" failure mode);
//! 3. the parent graph is a tree rooted at the token node (no cycles);
//! 4. owned-mode dominance: a parent's owned mode is at least as strong
//!    as each child's, and all concurrently held modes in the whole
//!    system are pairwise compatible;
//! 5. frozen bookkeeping has drained: with no queued requests anywhere,
//!    no mode may remain frozen.
//!
//! Hosts run this after a run completes (the simulator when safety
//! checking is on; the model checker in every terminal state).

use crate::ids::NodeId;
use crate::mode::owned_strength;
use crate::node::LockNode;
use std::collections::BTreeMap;

/// One inconsistency found by [`audit_lock`]; the string is a
/// human-readable description precise enough to debug from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFinding(pub String);

impl std::fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Audits the quiescent global state of one lock. `nodes` must contain
/// the [`LockNode`] of **every** node in the system, in any order.
///
/// Returns all findings (empty = consistent). Callers should only invoke
/// this at quiescence; with messages in flight the checks do not hold.
pub fn audit_lock<'a>(nodes: impl IntoIterator<Item = &'a LockNode>) -> Vec<AuditFinding> {
    let nodes: Vec<&LockNode> = nodes.into_iter().collect();
    let mut findings = Vec::new();
    let mut f = |msg: String| findings.push(AuditFinding(msg));

    let lock = match nodes.first() {
        Some(n) => n.lock(),
        None => return findings,
    };
    let by_id: BTreeMap<NodeId, &LockNode> = nodes.iter().map(|n| (n.id(), *n)).collect();

    // 1. Exactly one token; token iff parentless.
    let tokens: Vec<NodeId> = nodes.iter().filter(|n| n.is_token()).map(|n| n.id()).collect();
    if tokens.len() != 1 {
        f(format!("{lock}: expected exactly one token node, found {tokens:?}"));
    }
    for n in &nodes {
        if n.is_token() != n.parent().is_none() {
            f(format!("{lock}: {} token={} but parent={:?}", n.id(), n.is_token(), n.parent()));
        }
    }

    // 2. Copyset/parent agreement and single accounting.
    let mut accounted_at: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    for p in &nodes {
        for (&c, &mode) in p.children() {
            if let Some(prev) = accounted_at.insert(c, p.id()) {
                f(format!("{lock}: {c} is accounted in two copysets ({prev} and {})", p.id()));
            }
            match by_id.get(&c) {
                None => f(format!("{lock}: {} lists unknown child {c}", p.id())),
                Some(child) => {
                    if child.parent() != Some(p.id()) {
                        f(format!(
                            "{lock}: {} believes {c} is its child, but {c}'s parent is {:?}",
                            p.id(),
                            child.parent()
                        ));
                    }
                    if child.owned() != Some(mode) {
                        f(format!(
                            "{lock}: {} records child {c} as {mode}, but {c} owns {:?}",
                            p.id(),
                            child.owned()
                        ));
                    }
                }
            }
        }
    }
    // Conversely: every node owning something (except the token) must be
    // accounted exactly once.
    for n in &nodes {
        if !n.is_token() && n.owned().is_some() && !accounted_at.contains_key(&n.id()) {
            f(format!("{lock}: {} owns {:?} but no copyset accounts for it", n.id(), n.owned()));
        }
    }

    // 3. Parent graph acyclic and rooted at the token.
    for n in &nodes {
        let mut cur = *n;
        let mut hops = 0usize;
        while let Some(p) = cur.parent() {
            match by_id.get(&p) {
                Some(next) => cur = next,
                None => {
                    f(format!("{lock}: {} has unknown parent {p}", cur.id()));
                    break;
                }
            }
            hops += 1;
            if hops > nodes.len() {
                f(format!("{lock}: parent chain from {} does not terminate (cycle)", n.id()));
                break;
            }
        }
        if hops <= nodes.len() && !cur.is_token() && cur.parent().is_none() && !tokens.is_empty() {
            f(format!("{lock}: chain from {} ends at non-token {}", n.id(), cur.id()));
        }
    }

    // 4. Dominance and global pairwise compatibility.
    for p in &nodes {
        for (&c, &mode) in p.children() {
            if owned_strength(p.owned()) < mode.strength() {
                f(format!(
                    "{lock}: {} owns {:?} but child {c} owns {mode} (dominance violated)",
                    p.id(),
                    p.owned()
                ));
            }
        }
    }
    let held: Vec<(NodeId, crate::Mode)> =
        nodes.iter().flat_map(|n| n.held().iter().map(move |&(_, m)| (n.id(), m))).collect();
    for i in 0..held.len() {
        for j in i + 1..held.len() {
            let (na, ma) = held[i];
            let (nb, mb) = held[j];
            if na != nb && !ma.compatible(mb) {
                f(format!("{lock}: incompatible holders {na}:{ma} vs {nb}:{mb}"));
            }
        }
    }

    // 5. With no queued work anywhere, nothing may stay frozen.
    let any_queued = nodes.iter().any(|n| n.queue_len() > 0);
    if !any_queued {
        for n in &nodes {
            if !n.frozen().is_empty() {
                f(format!(
                    "{lock}: {} still has frozen modes {} with no queued requests anywhere",
                    n.id(),
                    n.frozen()
                ));
            }
        }
    }

    findings
}

/// Depth of every node in the parent tree (root = 0), in node order.
/// Returns `None` for nodes whose chain does not resolve (corrupt state).
///
/// Shallow trees mean short request paths; the lazy transfer policy keeps
/// the tree a near-star while eager (literal Rule 3.2) transfers let
/// depths grow with the transfer history.
pub fn tree_depths<'a>(nodes: impl IntoIterator<Item = &'a LockNode>) -> Vec<Option<usize>> {
    let nodes: Vec<&LockNode> = nodes.into_iter().collect();
    let by_id: BTreeMap<NodeId, &LockNode> = nodes.iter().map(|n| (n.id(), *n)).collect();
    nodes
        .iter()
        .map(|n| {
            let mut cur = *n;
            let mut depth = 0usize;
            while let Some(p) = cur.parent() {
                cur = by_id.get(&p)?;
                depth += 1;
                if depth > nodes.len() {
                    return None;
                }
            }
            cur.is_token().then_some(depth)
        })
        .collect()
}

/// Mean tree depth over all resolvable nodes (0.0 for an empty system).
pub fn mean_tree_depth<'a>(nodes: impl IntoIterator<Item = &'a LockNode>) -> f64 {
    let depths: Vec<usize> = tree_depths(nodes).into_iter().flatten().collect();
    if depths.is_empty() {
        0.0
    } else {
        depths.iter().sum::<usize>() as f64 / depths.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use crate::effect::{Effect, EffectSink};
    use crate::ids::{LockId, Ticket};
    use crate::message::Payload;
    use crate::mode::Mode;

    const L: LockId = LockId(0);

    fn fresh(n: usize) -> Vec<LockNode> {
        (0..n as u32)
            .map(|i| LockNode::new(NodeId(i), L, NodeId(0), ProtocolConfig::default()))
            .collect()
    }

    /// Delivers all pending messages between nodes until quiet.
    fn pump(nodes: &mut [LockNode], fx: &mut EffectSink<Payload>, from: NodeId) {
        let mut queue: Vec<(NodeId, NodeId, Payload)> = fx
            .drain()
            .filter_map(|e| match e {
                Effect::Send { to, message } => Some((from, to, message)),
                _ => None,
            })
            .collect();
        while let Some((src, dst, msg)) = queue.pop() {
            nodes[dst.index()].on_message(src, msg, fx);
            queue.extend(fx.drain().filter_map(|e| match e {
                Effect::Send { to, message } => Some((dst, to, message)),
                _ => None,
            }));
        }
    }

    #[test]
    fn initial_state_is_consistent() {
        let nodes = fresh(4);
        assert!(audit_lock(nodes.iter()).is_empty());
    }

    #[test]
    fn post_exchange_state_is_consistent() {
        let mut nodes = fresh(4);
        let mut fx = EffectSink::new();
        // Node 1 takes R, node 2 takes IR, node 3 takes and releases W.
        for (i, mode, t) in
            [(1usize, Mode::Read, 1u64), (2, Mode::IntentRead, 2), (3, Mode::Write, 3)]
        {
            // Release previous holders first for the W request to go through.
            if mode == Mode::Write {
                nodes[1].release(Ticket(1), &mut fx).unwrap();
                pump(&mut nodes, &mut fx, NodeId(1));
                nodes[2].release(Ticket(2), &mut fx).unwrap();
                pump(&mut nodes, &mut fx, NodeId(2));
            }
            nodes[i].request(mode, Ticket(t), &mut fx).unwrap();
            pump(&mut nodes, &mut fx, NodeId(i as u32));
        }
        nodes[3].release(Ticket(3), &mut fx).unwrap();
        pump(&mut nodes, &mut fx, NodeId(3));
        let findings = audit_lock(nodes.iter());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn tree_depths_of_initial_star() {
        let nodes = fresh(5);
        let depths = tree_depths(nodes.iter());
        assert_eq!(depths[0], Some(0), "token home is the root");
        assert!(depths[1..].iter().all(|d| *d == Some(1)), "{depths:?}");
        assert!((mean_tree_depth(nodes.iter()) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn audit_detects_empty_system() {
        let nodes: Vec<LockNode> = Vec::new();
        assert!(audit_lock(nodes.iter()).is_empty());
    }

    #[test]
    fn audit_detects_two_tokens() {
        // Two separately-initialized "token homes" — an illegal global state.
        let a = LockNode::new(NodeId(0), L, NodeId(0), ProtocolConfig::default());
        let b = LockNode::new(NodeId(1), L, NodeId(1), ProtocolConfig::default());
        let findings = audit_lock([&a, &b]);
        assert!(findings.iter().any(|f| f.0.contains("exactly one token")), "{findings:?}");
    }

    #[test]
    fn audit_detects_phantom_child() {
        // A child was granted by node 0 but then re-pointed elsewhere
        // without node 0 learning — fabricate it via raw message plays.
        let mut nodes = fresh(3);
        let mut fx = EffectSink::new();
        // Node 1 obtains R from the token (copy grant).
        nodes[1].request(Mode::Read, Ticket(1), &mut fx).unwrap();
        pump(&mut nodes, &mut fx, NodeId(1));
        fx.drain().count();
        // Corrupt: node 1 releases, but we drop its release message.
        nodes[1].release(Ticket(1), &mut fx).unwrap();
        let _dropped = fx.drain().count();
        let findings = audit_lock(nodes.iter());
        assert!(
            findings.iter().any(|f| f.0.contains("records child") || f.0.contains("owns")),
            "stale copyset entry must be flagged: {findings:?}"
        );
    }
}
