//! Global consistency auditing.
//!
//! At *quiescence* (no pending requests, empty queues, no in-flight
//! messages) the distributed state of one lock must be mutually
//! consistent across nodes. [`audit_lock`] checks, given every node's
//! [`LockNode`] for the same lock:
//!
//! 1. exactly one token node exists, and only it has no parent;
//! 2. copysets and parent pointers agree: `C ∈ children(P)` iff
//!    `parent(C) = P ∧ owned(C) ≠ ∅`, and the recorded mode equals `C`'s
//!    actual owned mode — in particular **no node is accounted in two
//!    copysets** (the "phantom child" failure mode);
//! 3. the parent graph is a tree rooted at the token node (no cycles);
//! 4. owned-mode dominance: a parent's owned mode is at least as strong
//!    as each child's, and all concurrently held modes in the whole
//!    system are pairwise compatible;
//! 5. frozen bookkeeping has drained: with no queued requests anywhere,
//!    no mode may remain frozen.
//!
//! Hosts run this after a run completes (the simulator when safety
//! checking is on; the model checker in every terminal state).
//!
//! [`InvariantAuditor`] complements the quiescent audit with *online*
//! checking: it is an [`Observer`] that watches the live event stream
//! and verifies, as events arrive, the invariants the model checker
//! proves offline — at most one live token per lock, no grant without
//! token or copyset membership, span open/close balance, no
//! never-sent delivery per link, and epoch-fencing consistency. On a
//! violation it records a structured [`LiveAuditFinding`] and (when
//! composed with a flight recorder) triggers a dump of the event
//! window around the violation.

use crate::ids::{LockId, NodeId};
use crate::message::MessageKind;
use crate::mode::owned_strength;
use crate::node::LockNode;
use crate::observe::{ClusterRecorder, Observer, ProtocolEvent, SharedRecorder, SpanId};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// One inconsistency found by [`audit_lock`]; the string is a
/// human-readable description precise enough to debug from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFinding(pub String);

impl std::fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Audits the quiescent global state of one lock. `nodes` must contain
/// the [`LockNode`] of **every** node in the system, in any order.
///
/// Returns all findings (empty = consistent). Callers should only invoke
/// this at quiescence; with messages in flight the checks do not hold.
pub fn audit_lock<'a>(nodes: impl IntoIterator<Item = &'a LockNode>) -> Vec<AuditFinding> {
    let nodes: Vec<&LockNode> = nodes.into_iter().collect();
    let mut findings = Vec::new();
    let mut f = |msg: String| findings.push(AuditFinding(msg));

    let lock = match nodes.first() {
        Some(n) => n.lock(),
        None => return findings,
    };
    let by_id: BTreeMap<NodeId, &LockNode> = nodes.iter().map(|n| (n.id(), *n)).collect();

    // 1. Exactly one token; token iff parentless.
    let tokens: Vec<NodeId> = nodes.iter().filter(|n| n.is_token()).map(|n| n.id()).collect();
    if tokens.len() != 1 {
        f(format!("{lock}: expected exactly one token node, found {tokens:?}"));
    }
    for n in &nodes {
        if n.is_token() != n.parent().is_none() {
            f(format!("{lock}: {} token={} but parent={:?}", n.id(), n.is_token(), n.parent()));
        }
    }

    // 2. Copyset/parent agreement and single accounting.
    let mut accounted_at: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    for p in &nodes {
        for (&c, &mode) in p.children() {
            if let Some(prev) = accounted_at.insert(c, p.id()) {
                f(format!("{lock}: {c} is accounted in two copysets ({prev} and {})", p.id()));
            }
            match by_id.get(&c) {
                None => f(format!("{lock}: {} lists unknown child {c}", p.id())),
                Some(child) => {
                    if child.parent() != Some(p.id()) {
                        f(format!(
                            "{lock}: {} believes {c} is its child, but {c}'s parent is {:?}",
                            p.id(),
                            child.parent()
                        ));
                    }
                    if child.owned() != Some(mode) {
                        f(format!(
                            "{lock}: {} records child {c} as {mode}, but {c} owns {:?}",
                            p.id(),
                            child.owned()
                        ));
                    }
                }
            }
        }
    }
    // Conversely: every node owning something (except the token) must be
    // accounted exactly once.
    for n in &nodes {
        if !n.is_token() && n.owned().is_some() && !accounted_at.contains_key(&n.id()) {
            f(format!("{lock}: {} owns {:?} but no copyset accounts for it", n.id(), n.owned()));
        }
    }

    // 3. Parent graph acyclic and rooted at the token.
    for n in &nodes {
        let mut cur = *n;
        let mut hops = 0usize;
        while let Some(p) = cur.parent() {
            match by_id.get(&p) {
                Some(next) => cur = next,
                None => {
                    f(format!("{lock}: {} has unknown parent {p}", cur.id()));
                    break;
                }
            }
            hops += 1;
            if hops > nodes.len() {
                f(format!("{lock}: parent chain from {} does not terminate (cycle)", n.id()));
                break;
            }
        }
        if hops <= nodes.len() && !cur.is_token() && cur.parent().is_none() && !tokens.is_empty() {
            f(format!("{lock}: chain from {} ends at non-token {}", n.id(), cur.id()));
        }
    }

    // 4. Dominance and global pairwise compatibility.
    for p in &nodes {
        for (&c, &mode) in p.children() {
            if owned_strength(p.owned()) < mode.strength() {
                f(format!(
                    "{lock}: {} owns {:?} but child {c} owns {mode} (dominance violated)",
                    p.id(),
                    p.owned()
                ));
            }
        }
    }
    let held: Vec<(NodeId, crate::Mode)> =
        nodes.iter().flat_map(|n| n.held().iter().map(move |&(_, m)| (n.id(), m))).collect();
    for i in 0..held.len() {
        for j in i + 1..held.len() {
            let (na, ma) = held[i];
            let (nb, mb) = held[j];
            if na != nb && !ma.compatible(mb) {
                f(format!("{lock}: incompatible holders {na}:{ma} vs {nb}:{mb}"));
            }
        }
    }

    // 5. With no queued work anywhere, nothing may stay frozen.
    let any_queued = nodes.iter().any(|n| n.queue_len() > 0);
    if !any_queued {
        for n in &nodes {
            if !n.frozen().is_empty() {
                f(format!(
                    "{lock}: {} still has frozen modes {} with no queued requests anywhere",
                    n.id(),
                    n.frozen()
                ));
            }
        }
    }

    findings
}

/// Depth of every node in the parent tree (root = 0), in node order.
/// Returns `None` for nodes whose chain does not resolve (corrupt state).
///
/// Shallow trees mean short request paths; the lazy transfer policy keeps
/// the tree a near-star while eager (literal Rule 3.2) transfers let
/// depths grow with the transfer history.
pub fn tree_depths<'a>(nodes: impl IntoIterator<Item = &'a LockNode>) -> Vec<Option<usize>> {
    let nodes: Vec<&LockNode> = nodes.into_iter().collect();
    let by_id: BTreeMap<NodeId, &LockNode> = nodes.iter().map(|n| (n.id(), *n)).collect();
    nodes
        .iter()
        .map(|n| {
            let mut cur = *n;
            let mut depth = 0usize;
            while let Some(p) = cur.parent() {
                cur = by_id.get(&p)?;
                depth += 1;
                if depth > nodes.len() {
                    return None;
                }
            }
            cur.is_token().then_some(depth)
        })
        .collect()
}

/// Mean tree depth over all resolvable nodes (0.0 for an empty system).
pub fn mean_tree_depth<'a>(nodes: impl IntoIterator<Item = &'a LockNode>) -> f64 {
    let depths: Vec<usize> = tree_depths(nodes).into_iter().flatten().collect();
    if depths.is_empty() {
        0.0
    } else {
        depths.iter().sum::<usize>() as f64 / depths.len() as f64
    }
}

/// One violation found by the online [`InvariantAuditor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveAuditFinding {
    /// Host time at which the violating event was observed.
    pub at: u64,
    /// Which invariant was violated (stable snake_case label):
    /// `token_unique`, `grant_legitimacy`, `span_balance`, `link_fifo`
    /// or `epoch_fencing`.
    pub invariant: &'static str,
    /// Human-readable description precise enough to debug from.
    pub detail: String,
}

impl std::fmt::Display for LiveAuditFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] at={}: {}", self.invariant, self.at, self.detail)
    }
}

/// Where one lock's token is, as far as the stream has taught us.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TokenWhere {
    /// No token event observed yet (lazy learning — never a violation).
    Unknown,
    /// Last seen held at this node.
    Held(NodeId),
    /// Sent by this node, receipt not yet observed.
    InFlight(NodeId),
}

/// Per-directed-link delivery bookkeeping for the never-sent check.
#[derive(Debug, Clone, Default)]
struct LinkState {
    /// Kinds sent and not yet matched to a delivery (oldest first).
    sent: VecDeque<MessageKind>,
    /// Recently matched kinds — tolerated as session retransmissions
    /// when delivered again (bounded window).
    recent: VecDeque<MessageKind>,
}

/// How many matched deliveries each link remembers for duplicate
/// (retransmission) tolerance.
const LINK_RECENT_WINDOW: usize = 64;

/// Findings retained before the auditor starts suppressing (a broken
/// run can violate on every event; the first few findings carry all
/// the signal).
const MAX_FINDINGS: usize = 256;

/// A streaming [`Observer`] that audits protocol invariants on the live
/// event stream — the online counterpart of the model checker's offline
/// proofs. Feed it the *merged* cluster stream (all nodes), in dispatch
/// order:
///
/// 1. **Token uniqueness** — at most one live token per lock. Holders
///    are learned lazily from `token_received` / `token_regenerated`;
///    a `token_sent` by a non-holder or a `token_received` while
///    another node demonstrably holds the token is a violation.
///    Recovery events reset holder knowledge (the dead may have held
///    tokens), so clean crash-recovery runs stay silent.
/// 2. **Grant legitimacy** — a local grant requires the token or a
///    copyset membership. Membership is learned from `copy_granted`
///    (the span origin joins) and dropped on `copy_revoked` with no
///    remaining owned mode. Only *positive* contradictions are flagged
///    (the token is known to be elsewhere and the node is not a
///    member), so attaching the auditor mid-run is safe.
/// 3. **Span balance** — streaming open/close accounting: a span that
///    opens twice without closing, or closes (`granted` /
///    `request_cancelled` / `request_aborted`) without a matching open,
///    is a violation. A re-open is tolerated when a recovery round
///    started in between: token regeneration wipes the wait queues, so
///    survivors legitimately re-issue a still-open request under the
///    same span.
/// 4. **Per-link never-sent delivery** — each delivery must match a
///    prior send of the same kind on its directed link. Out-of-order
///    matches are treated as loss (fault injection reorders links on
///    purpose; the session layer restores order above), and a bounded
///    window of matched kinds tolerates retransmission duplicates —
///    but a kind that was *never* sent on the link is a violation.
/// 5. **Epoch fencing** — `stale_epoch_fenced` must name an epoch
///    strictly below the fencing node's installed epoch, and installed
///    epochs (`recovery_completed`) must be monotone per node.
#[derive(Debug, Clone, Default)]
pub struct InvariantAuditor {
    findings: Vec<LiveAuditFinding>,
    suppressed: u64,
    token: HashMap<LockId, TokenWhere>,
    members: HashMap<LockId, HashSet<NodeId>>,
    /// Open spans, each tagged with the recovery generation at (re-)open.
    open: HashMap<SpanId, u64>,
    links: HashMap<(u32, u32), LinkState>,
    installed: HashMap<u32, u64>,
    /// Bumped on every `recovery_started`; lets span balance tell a
    /// legitimate post-recovery re-issue from a true double open.
    recovery_gen: u64,
}

impl InvariantAuditor {
    /// A fresh auditor with no knowledge of the system.
    pub fn new() -> Self {
        InvariantAuditor::default()
    }

    /// All findings so far (empty = clean).
    pub fn findings(&self) -> &[LiveAuditFinding] {
        &self.findings
    }

    /// Whether no invariant has been violated.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings dropped beyond the retention cap.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Takes the findings, leaving the auditor's learned state intact.
    pub fn take_findings(&mut self) -> Vec<LiveAuditFinding> {
        std::mem::take(&mut self.findings)
    }

    fn flag(&mut self, at: u64, invariant: &'static str, detail: String) {
        if self.findings.len() < MAX_FINDINGS {
            self.findings.push(LiveAuditFinding { at, invariant, detail });
        } else {
            self.suppressed += 1;
        }
    }

    fn token_state(&self, lock: LockId) -> TokenWhere {
        self.token.get(&lock).copied().unwrap_or(TokenWhere::Unknown)
    }
}

impl Observer for InvariantAuditor {
    fn on_event(&mut self, at: u64, event: &ProtocolEvent) {
        // Streaming span balance.
        if event.opens_span() {
            if let Some(span) = event.span() {
                let gen = self.recovery_gen;
                if let Some(opened_gen) = self.open.insert(span, gen) {
                    if opened_gen == gen {
                        self.flag(
                            at,
                            "span_balance",
                            format!("span {span} opened twice without closing"),
                        );
                    }
                    // Else: a recovery round ran since the first open —
                    // the survivor re-issued its wiped request.
                }
            }
        } else if event.closes_span() {
            if let Some(span) = event.span() {
                if self.open.remove(&span).is_none() {
                    self.flag(
                        at,
                        "span_balance",
                        format!("span {span} closed ({}) without a matching open", event.name()),
                    );
                }
            }
        }

        match event {
            ProtocolEvent::TokenSent { node, lock, .. } => {
                match self.token_state(*lock) {
                    TokenWhere::Held(h) if h != *node => self.flag(
                        at,
                        "token_unique",
                        format!("{lock}: {node} sent the token but {h} holds it"),
                    ),
                    TokenWhere::InFlight(from) => self.flag(
                        at,
                        "token_unique",
                        format!(
                            "{lock}: {node} sent the token while it is already \
                             in flight from {from}"
                        ),
                    ),
                    _ => {}
                }
                self.token.insert(*lock, TokenWhere::InFlight(*node));
            }
            ProtocolEvent::TokenReceived { node, lock, .. } => {
                if let TokenWhere::Held(h) = self.token_state(*lock) {
                    if h != *node {
                        self.flag(
                            at,
                            "token_unique",
                            format!("{lock}: {node} received the token while {h} holds it"),
                        );
                    }
                }
                self.token.insert(*lock, TokenWhere::Held(*node));
            }
            ProtocolEvent::TokenRegenerated { node, lock, .. } => {
                // Regeneration is only legal when no live node holds the
                // token; holder knowledge was reset at recovery_started,
                // so just adopt the new holder.
                self.token.insert(*lock, TokenWhere::Held(*node));
            }
            ProtocolEvent::RecoveryStarted { .. } => {
                // Suspected-dead nodes may have held tokens or copies;
                // the stream does not say which nodes died, so forget
                // holder and membership knowledge rather than risk
                // false positives across the epoch boundary.
                self.token.clear();
                self.members.clear();
                self.recovery_gen += 1;
            }
            ProtocolEvent::RecoveryCompleted { node, epoch } => {
                if let Some(&prev) = self.installed.get(&node.0) {
                    if *epoch <= prev {
                        self.flag(
                            at,
                            "epoch_fencing",
                            format!(
                                "{node} installed epoch {epoch} after already \
                                 installing {prev} (epochs must be monotone)"
                            ),
                        );
                    }
                }
                self.installed.insert(node.0, *epoch);
            }
            ProtocolEvent::StaleEpochFenced { node, from, epoch } => {
                if let Some(&installed) = self.installed.get(&node.0) {
                    if *epoch >= installed {
                        self.flag(
                            at,
                            "epoch_fencing",
                            format!(
                                "{node} fenced a message from {from} at epoch {epoch}, \
                                 but its installed epoch is only {installed}"
                            ),
                        );
                    }
                }
            }
            ProtocolEvent::CopyGranted { lock, span, .. } => {
                self.members.entry(*lock).or_default().insert(span.origin);
            }
            ProtocolEvent::CopyRevoked { lock, child, new_owned, .. } => {
                if new_owned.is_none() {
                    if let Some(m) = self.members.get_mut(lock) {
                        m.remove(child);
                    }
                }
            }
            ProtocolEvent::Granted { node, lock, .. } => {
                if let TokenWhere::Held(h) = self.token_state(*lock) {
                    let member =
                        self.members.get(lock).map(|m| m.contains(node)).unwrap_or(false);
                    if h != *node && !member {
                        self.flag(
                            at,
                            "grant_legitimacy",
                            format!(
                                "{lock}: {node} granted locally without the token \
                                 (held by {h}) or a copyset membership"
                            ),
                        );
                    }
                }
            }
            ProtocolEvent::MessageSent { node, to, kind } => {
                self.links.entry((node.0, to.0)).or_default().sent.push_back(*kind);
            }
            ProtocolEvent::Delivered { node, from, kind } => {
                let link = self.links.entry((from.0, node.0)).or_default();
                if let Some(pos) = link.sent.iter().position(|k| k == kind) {
                    // Everything before the match is treated as lost
                    // (reordering fault injection skips; the session
                    // layer restores order above this check).
                    link.sent.drain(..=pos);
                    if link.recent.len() == LINK_RECENT_WINDOW {
                        link.recent.pop_front();
                    }
                    link.recent.push_back(*kind);
                } else if !link.recent.contains(kind) {
                    self.flag(
                        at,
                        "link_fifo",
                        format!(
                            "{node} delivered a {} from {from} that {from} \
                             never sent on this link",
                            kind.label()
                        ),
                    );
                }
            }
            ProtocolEvent::Dropped { node, from, kind } => {
                let link = self.links.entry((from.0, node.0)).or_default();
                if let Some(pos) = link.sent.iter().position(|k| k == kind) {
                    link.sent.remove(pos);
                }
            }
            _ => {}
        }
    }
}

/// Composition observer for single-threaded hosts (simulator, model
/// checker): feeds every event to a [`ClusterRecorder`] *and* an
/// [`InvariantAuditor`], and dumps the flight windows of every node the
/// first time the auditor flags a violation.
#[derive(Debug)]
pub struct RecordingAuditor {
    /// The per-node flight recorders.
    pub recorder: ClusterRecorder,
    /// The streaming auditor.
    pub auditor: InvariantAuditor,
    dump_dir: Option<PathBuf>,
    dumped: bool,
}

impl RecordingAuditor {
    /// Recorders for `n` nodes with the given ring capacity; violations
    /// dump to `dump_dir` (pass `None` to only collect findings).
    pub fn new(n: usize, capacity: usize, dump_dir: Option<PathBuf>) -> Self {
        RecordingAuditor {
            recorder: ClusterRecorder::new(n, capacity),
            auditor: InvariantAuditor::new(),
            dump_dir,
            dumped: false,
        }
    }

    /// Whether a violation has triggered a dump.
    pub fn dumped(&self) -> bool {
        self.dumped
    }
}

impl Observer for RecordingAuditor {
    fn on_event(&mut self, at: u64, event: &ProtocolEvent) {
        self.recorder.on_event(at, event);
        let before = self.auditor.findings().len();
        self.auditor.on_event(at, event);
        if self.auditor.findings().len() > before && !self.dumped {
            if let Some(dir) = &self.dump_dir {
                let _ = self.recorder.dump_all(dir);
                self.dumped = true;
            }
        }
    }
}

/// A cloneable, thread-safe auditor handle for multi-threaded hosts
/// (the mux TCP transport): every node's worker feeds its events into
/// one shared [`InvariantAuditor`], and the first violation dumps every
/// attached node's [`SharedRecorder`] window to the dump directory.
#[derive(Debug, Clone)]
pub struct SharedAuditor(Arc<Mutex<SharedAuditorInner>>);

#[derive(Debug)]
struct SharedAuditorInner {
    auditor: InvariantAuditor,
    recorders: Vec<SharedRecorder>,
    dump_dir: Option<PathBuf>,
    dumped: bool,
}

impl SharedAuditor {
    /// A fresh shared auditor; violations dump attached recorders to
    /// `dump_dir` (pass `None` to only collect findings).
    pub fn new(dump_dir: Option<PathBuf>) -> Self {
        SharedAuditor(Arc::new(Mutex::new(SharedAuditorInner {
            auditor: InvariantAuditor::new(),
            recorders: Vec::new(),
            dump_dir,
            dumped: false,
        })))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SharedAuditorInner> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a node's flight recorder for dump-on-violation.
    pub fn attach_recorder(&self, recorder: SharedRecorder) {
        self.lock().recorders.push(recorder);
    }

    /// All findings so far.
    pub fn findings(&self) -> Vec<LiveAuditFinding> {
        self.lock().auditor.findings().to_vec()
    }

    /// Whether no invariant has been violated.
    pub fn is_clean(&self) -> bool {
        self.lock().auditor.is_clean()
    }

    /// Whether a violation has triggered a dump.
    pub fn dumped(&self) -> bool {
        self.lock().dumped
    }
}

impl Observer for SharedAuditor {
    fn on_event(&mut self, at: u64, event: &ProtocolEvent) {
        let mut inner = self.lock();
        let before = inner.auditor.findings().len();
        inner.auditor.on_event(at, event);
        if inner.auditor.findings().len() > before && !inner.dumped {
            if let Some(dir) = inner.dump_dir.clone() {
                let _ = std::fs::create_dir_all(&dir);
                for rec in &inner.recorders {
                    let node = rec.with(|r| r.node());
                    let _ = rec.dump_to(&dir.join(format!("flight-node-{}.jsonl", node.0)));
                }
                inner.dumped = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use crate::effect::{Effect, EffectSink};
    use crate::ids::{LockId, Ticket};
    use crate::message::Payload;
    use crate::mode::Mode;

    const L: LockId = LockId(0);

    fn fresh(n: usize) -> Vec<LockNode> {
        (0..n as u32)
            .map(|i| LockNode::new(NodeId(i), L, NodeId(0), ProtocolConfig::default()))
            .collect()
    }

    /// Delivers all pending messages between nodes until quiet.
    fn pump(nodes: &mut [LockNode], fx: &mut EffectSink<Payload>, from: NodeId) {
        let mut queue: Vec<(NodeId, NodeId, Payload)> = fx
            .drain()
            .filter_map(|e| match e {
                Effect::Send { to, message } => Some((from, to, message)),
                _ => None,
            })
            .collect();
        while let Some((src, dst, msg)) = queue.pop() {
            nodes[dst.index()].on_message(src, msg, fx);
            queue.extend(fx.drain().filter_map(|e| match e {
                Effect::Send { to, message } => Some((dst, to, message)),
                _ => None,
            }));
        }
    }

    #[test]
    fn initial_state_is_consistent() {
        let nodes = fresh(4);
        assert!(audit_lock(nodes.iter()).is_empty());
    }

    #[test]
    fn post_exchange_state_is_consistent() {
        let mut nodes = fresh(4);
        let mut fx = EffectSink::new();
        // Node 1 takes R, node 2 takes IR, node 3 takes and releases W.
        for (i, mode, t) in
            [(1usize, Mode::Read, 1u64), (2, Mode::IntentRead, 2), (3, Mode::Write, 3)]
        {
            // Release previous holders first for the W request to go through.
            if mode == Mode::Write {
                nodes[1].release(Ticket(1), &mut fx).unwrap();
                pump(&mut nodes, &mut fx, NodeId(1));
                nodes[2].release(Ticket(2), &mut fx).unwrap();
                pump(&mut nodes, &mut fx, NodeId(2));
            }
            nodes[i].request(mode, Ticket(t), &mut fx).unwrap();
            pump(&mut nodes, &mut fx, NodeId(i as u32));
        }
        nodes[3].release(Ticket(3), &mut fx).unwrap();
        pump(&mut nodes, &mut fx, NodeId(3));
        let findings = audit_lock(nodes.iter());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn tree_depths_of_initial_star() {
        let nodes = fresh(5);
        let depths = tree_depths(nodes.iter());
        assert_eq!(depths[0], Some(0), "token home is the root");
        assert!(depths[1..].iter().all(|d| *d == Some(1)), "{depths:?}");
        assert!((mean_tree_depth(nodes.iter()) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn audit_detects_empty_system() {
        let nodes: Vec<LockNode> = Vec::new();
        assert!(audit_lock(nodes.iter()).is_empty());
    }

    #[test]
    fn audit_detects_two_tokens() {
        // Two separately-initialized "token homes" — an illegal global state.
        let a = LockNode::new(NodeId(0), L, NodeId(0), ProtocolConfig::default());
        let b = LockNode::new(NodeId(1), L, NodeId(1), ProtocolConfig::default());
        let findings = audit_lock([&a, &b]);
        assert!(findings.iter().any(|f| f.0.contains("exactly one token")), "{findings:?}");
    }

    fn span_of(o: u32, t: u64) -> crate::observe::SpanId {
        crate::observe::SpanId::new(NodeId(o), Ticket(t))
    }

    fn issued(o: u32, t: u64) -> ProtocolEvent {
        ProtocolEvent::RequestIssued {
            node: NodeId(o),
            lock: L,
            span: span_of(o, t),
            mode: Mode::Read,
            priority: crate::ids::Priority::NORMAL,
        }
    }

    fn granted_ev(o: u32, t: u64) -> ProtocolEvent {
        ProtocolEvent::Granted { node: NodeId(o), lock: L, span: span_of(o, t), mode: Mode::Read }
    }

    fn token_recv(n: u32) -> ProtocolEvent {
        ProtocolEvent::TokenReceived {
            node: NodeId(n),
            lock: L,
            span: span_of(n, 1),
            mode: Mode::Write,
        }
    }

    fn feed(auditor: &mut InvariantAuditor, evs: &[ProtocolEvent]) {
        for (i, e) in evs.iter().enumerate() {
            auditor.on_event(i as u64, e);
        }
    }

    #[test]
    fn live_auditor_is_silent_on_a_clean_stream() {
        let mut a = InvariantAuditor::new();
        feed(
            &mut a,
            &[
                issued(1, 1),
                ProtocolEvent::MessageSent {
                    node: NodeId(1),
                    to: NodeId(0),
                    kind: MessageKind::Request,
                },
                ProtocolEvent::Delivered {
                    node: NodeId(0),
                    from: NodeId(1),
                    kind: MessageKind::Request,
                },
                ProtocolEvent::CopyGranted {
                    node: NodeId(0),
                    lock: L,
                    span: span_of(1, 1),
                    mode: Mode::Read,
                    copyset_size: 1,
                },
                granted_ev(1, 1),
            ],
        );
        assert!(a.is_clean(), "{:?}", a.findings());
    }

    #[test]
    fn live_auditor_flags_double_token() {
        let mut a = InvariantAuditor::new();
        feed(&mut a, &[token_recv(1), token_recv(2)]);
        assert_eq!(a.findings().len(), 1);
        assert_eq!(a.findings()[0].invariant, "token_unique");
        assert!(a.findings()[0].detail.contains("received the token while"));
    }

    #[test]
    fn live_auditor_flags_token_sent_by_non_holder() {
        let mut a = InvariantAuditor::new();
        feed(
            &mut a,
            &[
                token_recv(1),
                ProtocolEvent::TokenSent {
                    node: NodeId(2),
                    lock: L,
                    span: span_of(2, 1),
                    mode: Mode::Write,
                    queue_len: 0,
                },
            ],
        );
        assert_eq!(a.findings().len(), 1);
        assert_eq!(a.findings()[0].invariant, "token_unique");
    }

    #[test]
    fn live_auditor_accepts_token_handoff_and_recovery_reset() {
        let mut a = InvariantAuditor::new();
        feed(
            &mut a,
            &[
                token_recv(1),
                ProtocolEvent::TokenSent {
                    node: NodeId(1),
                    lock: L,
                    span: span_of(2, 1),
                    mode: Mode::Write,
                    queue_len: 0,
                },
                token_recv(2),
                ProtocolEvent::RecoveryStarted { node: NodeId(3), epoch: 1, dead: 1 },
                ProtocolEvent::TokenRegenerated { node: NodeId(3), lock: L, epoch: 1 },
                ProtocolEvent::RecoveryCompleted { node: NodeId(3), epoch: 1 },
            ],
        );
        assert!(a.is_clean(), "{:?}", a.findings());
    }

    #[test]
    fn live_auditor_flags_grant_without_token_or_membership() {
        let mut a = InvariantAuditor::new();
        feed(&mut a, &[token_recv(1), issued(2, 1), granted_ev(2, 1)]);
        let grant_findings: Vec<_> =
            a.findings().iter().filter(|f| f.invariant == "grant_legitimacy").collect();
        assert_eq!(grant_findings.len(), 1, "{:?}", a.findings());
    }

    #[test]
    fn live_auditor_flags_span_imbalance() {
        let mut a = InvariantAuditor::new();
        feed(&mut a, &[issued(1, 1), issued(1, 1)]);
        assert_eq!(a.findings()[0].invariant, "span_balance");
        let mut b = InvariantAuditor::new();
        feed(&mut b, &[granted_ev(1, 1)]);
        assert!(b.findings().iter().any(|f| f.invariant == "grant_legitimacy"
            || f.invariant == "span_balance"));
        assert!(b.findings().iter().any(|f| f.detail.contains("without a matching open")));
    }

    #[test]
    fn live_auditor_flags_never_sent_delivery_but_tolerates_dups_and_reorder() {
        let sent = |k: MessageKind| ProtocolEvent::MessageSent {
            node: NodeId(0),
            to: NodeId(1),
            kind: k,
        };
        let delivered = |k: MessageKind| ProtocolEvent::Delivered {
            node: NodeId(1),
            from: NodeId(0),
            kind: k,
        };
        // Reorder: request sent then grant sent; grant arrives first.
        let mut a = InvariantAuditor::new();
        feed(
            &mut a,
            &[
                sent(MessageKind::Request),
                sent(MessageKind::Grant),
                delivered(MessageKind::Grant),
                // Duplicate delivery of the grant (session retransmit).
                delivered(MessageKind::Grant),
            ],
        );
        assert!(a.is_clean(), "{:?}", a.findings());
        // A token was never sent on this link.
        a.on_event(99, &delivered(MessageKind::Token));
        assert_eq!(a.findings().len(), 1);
        assert_eq!(a.findings()[0].invariant, "link_fifo");
    }

    #[test]
    fn live_auditor_flags_epoch_inconsistencies() {
        let mut a = InvariantAuditor::new();
        feed(
            &mut a,
            &[
                ProtocolEvent::RecoveryCompleted { node: NodeId(0), epoch: 2 },
                // Clean fence: epoch 1 < installed 2.
                ProtocolEvent::StaleEpochFenced { node: NodeId(0), from: NodeId(1), epoch: 1 },
            ],
        );
        assert!(a.is_clean(), "{:?}", a.findings());
        // Fencing a current-epoch message is a violation.
        a.on_event(
            10,
            &ProtocolEvent::StaleEpochFenced { node: NodeId(0), from: NodeId(1), epoch: 2 },
        );
        // Epoch regression is a violation.
        a.on_event(11, &ProtocolEvent::RecoveryCompleted { node: NodeId(0), epoch: 2 });
        assert_eq!(a.findings().len(), 2);
        assert!(a.findings().iter().all(|f| f.invariant == "epoch_fencing"));
    }

    #[test]
    fn recording_auditor_dumps_on_violation() {
        let dir = std::env::temp_dir().join(format!("hlock-audit-dump-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut ra = RecordingAuditor::new(3, 64, Some(dir.clone()));
        ra.on_event(0, &token_recv(1));
        assert!(!ra.dumped());
        ra.on_event(1, &token_recv(2));
        assert!(ra.dumped());
        let dump = std::fs::read_to_string(dir.join("flight-node-2.jsonl")).unwrap();
        assert!(dump.contains("\"event\":\"token_received\""));
        assert!(dump.starts_with("{\"hlc\":"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn audit_detects_phantom_child() {
        // A child was granted by node 0 but then re-pointed elsewhere
        // without node 0 learning — fabricate it via raw message plays.
        let mut nodes = fresh(3);
        let mut fx = EffectSink::new();
        // Node 1 obtains R from the token (copy grant).
        nodes[1].request(Mode::Read, Ticket(1), &mut fx).unwrap();
        pump(&mut nodes, &mut fx, NodeId(1));
        fx.drain().count();
        // Corrupt: node 1 releases, but we drop its release message.
        nodes[1].release(Ticket(1), &mut fx).unwrap();
        let _dropped = fx.drain().count();
        let findings = audit_lock(nodes.iter());
        assert!(
            findings.iter().any(|f| f.0.contains("records child") || f.0.contains("owns")),
            "stale copyset entry must be flagged: {findings:?}"
        );
    }
}
