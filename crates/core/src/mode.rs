//! Lock modes and the paper's rule tables.
//!
//! This module is the data heart of the protocol: the five CORBA
//! Concurrency Service lock modes, their *compatibility* (Table 1(a)),
//! their *strength* order (Definition 1), the non-token *grant* legality
//! (Table 1(b) / Rule 3.1), the *queue-or-forward* decision (Table 2(a) /
//! Rule 4.1) and the *frozen-mode* sets (Table 2(b) / Rule 6).
//!
//! All tables are exposed both as predicate functions and as printable
//! matrices (see [`compatibility_table`] and friends) so the benchmark
//! harness can regenerate the paper's Tables 1 and 2 verbatim.

use core::fmt;

/// One of the five hierarchical lock modes of the CORBA Concurrency
/// Service (the paper's §3.1).
///
/// The "no lock" state `∅` is represented as `Option<Mode>::None` by the
/// owned-mode helpers ([`compatible_owned`], [`grantable`], …), matching
/// the `∅` rows of the paper's tables.
///
/// ```
/// use hlock_core::Mode;
/// assert!(Mode::IntentRead < Mode::Read);          // strength order
/// assert!(Mode::Read.compatible(Mode::Upgrade));   // Table 1(a)
/// assert!(!Mode::Upgrade.compatible(Mode::Upgrade));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Intention to read at a finer granularity (`IR`).
    IntentRead,
    /// Shared read (`R`).
    Read,
    /// Upgrade (`U`): an exclusive read that will later become a write.
    Upgrade,
    /// Intention to write at a finer granularity (`IW`).
    IntentWrite,
    /// Exclusive write (`W`).
    Write,
}

/// All five modes in strength order (weakest first).
pub const ALL_MODES: [Mode; 5] =
    [Mode::IntentRead, Mode::Read, Mode::Upgrade, Mode::IntentWrite, Mode::Write];

impl Mode {
    /// Strength per Definition 1: `∅ < IR < R < U = IW < W`.
    ///
    /// `∅` (no lock) has strength 0 and is handled by the `Option<Mode>`
    /// helpers. Note that `U` and `IW` have *equal* strength but are
    /// distinct modes.
    pub fn strength(self) -> u8 {
        match self {
            Mode::IntentRead => 1,
            Mode::Read => 2,
            Mode::Upgrade | Mode::IntentWrite => 3,
            Mode::Write => 4,
        }
    }

    /// Whether `self` is at least as strong as `other`.
    pub fn at_least(self, other: Mode) -> bool {
        self.strength() >= other.strength()
    }

    /// Table 1(a): may `self` and `other` be held concurrently?
    ///
    /// This is the standard multi-granularity matrix of the CORBA
    /// Concurrency Service the paper builds on (its references \[5\], \[6\]):
    /// compatibility is symmetric, `W` conflicts with everything,
    /// `IR` conflicts only with `W`.
    pub fn compatible(self, other: Mode) -> bool {
        use Mode::*;
        match (self, other) {
            (IntentRead, Write) | (Write, IntentRead) => false,
            (IntentRead, _) | (_, IntentRead) => true,
            (Read, Read) | (Read, Upgrade) | (Upgrade, Read) => true,
            (IntentWrite, IntentWrite) => true,
            _ => false,
        }
    }

    /// The intention mode required on a *coarser* granule before
    /// requesting `self` on a finer one (multi-granularity discipline):
    /// `IR` for read-like modes, `IW` for write-like modes.
    pub fn intention(self) -> Mode {
        match self {
            Mode::IntentRead | Mode::Read => Mode::IntentRead,
            Mode::Upgrade | Mode::IntentWrite | Mode::Write => Mode::IntentWrite,
        }
    }

    /// Short table symbol used when printing the paper's tables.
    pub fn symbol(self) -> &'static str {
        match self {
            Mode::IntentRead => "IR",
            Mode::Read => "R",
            Mode::Upgrade => "U",
            Mode::IntentWrite => "IW",
            Mode::Write => "W",
        }
    }

    /// Compact single-byte tag used by the wire codec.
    pub fn wire_tag(self) -> u8 {
        match self {
            Mode::IntentRead => 0,
            Mode::Read => 1,
            Mode::Upgrade => 2,
            Mode::IntentWrite => 3,
            Mode::Write => 4,
        }
    }

    /// Inverse of [`Mode::wire_tag`].
    pub fn from_wire_tag(tag: u8) -> Option<Mode> {
        Some(match tag {
            0 => Mode::IntentRead,
            1 => Mode::Read,
            2 => Mode::Upgrade,
            3 => Mode::IntentWrite,
            4 => Mode::Write,
            _ => return None,
        })
    }
}

impl PartialOrd for Mode {
    /// Partial order by strength; `U` and `IW` compare equal in strength
    /// but are different modes, so they are *incomparable* (`None`)
    /// unless identical.
    fn partial_cmp(&self, other: &Mode) -> Option<core::cmp::Ordering> {
        if self == other {
            return Some(core::cmp::Ordering::Equal);
        }
        match self.strength().cmp(&other.strength()) {
            core::cmp::Ordering::Equal => None,
            ord => Some(ord),
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Strength of an *owned* mode where `None` is `∅` (strength 0).
pub fn owned_strength(owned: Option<Mode>) -> u8 {
    owned.map_or(0, Mode::strength)
}

/// Table 1(a) extended with the `∅` row: `∅` is compatible with everything.
pub fn compatible_owned(owned: Option<Mode>, requested: Mode) -> bool {
    owned.is_none_or(|o| o.compatible(requested))
}

/// The stronger of two optional modes (by Definition 1 strength; ties keep
/// the first argument, which is correct because equal-strength modes only
/// matter for *strength* comparisons downstream).
pub fn stronger(a: Option<Mode>, b: Option<Mode>) -> Option<Mode> {
    match (a, b) {
        (None, b) => b,
        (a, None) => a,
        (Some(x), Some(y)) => {
            if y.strength() > x.strength() {
                Some(y)
            } else {
                Some(x)
            }
        }
    }
}

/// Rule 3.1 / Table 1(b): may a **non-token** node that *owns* `owned`
/// grant a request for `requested`?
///
/// Legal iff the modes are compatible **and** the owner's mode is at least
/// as strong: `compatible(owned, requested) ∧ owned ≥ requested`.
/// Consequently children can only ever grant `IR`, `R` and `IW`;
/// `U` and `W` requests always travel to the token node.
pub fn grantable(owned: Option<Mode>, requested: Mode) -> bool {
    match owned {
        None => false,
        Some(o) => o.compatible(requested) && o.at_least(requested),
    }
}

/// Rule 3.2: may the **token** node owning `owned` serve a request for
/// `requested` (either by copy grant or token transfer)?
///
/// Compatibility is necessary and sufficient at the token node; the
/// owned/requested strength comparison then picks the serving flavour,
/// see [`TokenServe`] and [`token_serve`].
pub fn token_can_serve(owned: Option<Mode>, requested: Mode) -> bool {
    compatible_owned(owned, requested)
}

/// How the token node serves a request it can serve (operational part of
/// Rule 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenServe {
    /// `owned < requested`: the token itself moves to the requester, which
    /// becomes the new token node (and parent of the old token node).
    Transfer,
    /// `owned ≥ requested`: the requester receives a granted copy and
    /// becomes a child of the token node.
    Copy,
}

/// Decides transfer-vs-copy for a servable request (Rule 3.2).
///
/// Returns `None` when the request cannot be served at all (incompatible).
/// `U` and `IW` have equal strength; a request *equal* in strength to the
/// owned mode is copy-granted (the rule transfers only on `owned < requested`).
pub fn token_serve(owned: Option<Mode>, requested: Mode) -> Option<TokenServe> {
    if !token_can_serve(owned, requested) {
        return None;
    }
    if owned_strength(owned) < requested.strength() {
        Some(TokenServe::Transfer)
    } else {
        Some(TokenServe::Copy)
    }
}

/// Rule 4.1 / Table 2(a): when a non-token node with a pending request for
/// `pending` receives a request for `incoming` that it cannot grant, does
/// it **queue** the request locally (`true`) or **forward** it to its
/// parent (`false`)?
///
/// Derivation (see DESIGN.md — the scanned table is partially illegible):
/// the node queues exactly when it is *guaranteed* to be able to serve the
/// request later, namely when
///
/// * it will be able to copy-grant once its own pending mode is held
///   (`grantable(pending, incoming)`), or
/// * its pending mode is `U` or `W`. Such requests always receive the
///   *token* (no mode that is both ≥ `U`/`W` and compatible exists, so a
///   copy grant is impossible), hence the node will become the token node
///   and serve its queue under token rules, including freezing.
///
/// Everything else is forwarded so it reaches the token node, whose freeze
/// mechanism (Rule 6) guarantees FIFO fairness. With `pending = ∅` (no
/// pending request) every non-grantable request is forwarded.
pub fn queue_or_forward(pending: Option<Mode>, incoming: Mode) -> QueueDecision {
    let queue =
        grantable(pending, incoming) || matches!(pending, Some(Mode::Upgrade) | Some(Mode::Write));
    if queue {
        QueueDecision::Queue
    } else {
        QueueDecision::Forward
    }
}

/// Outcome of the Table 2(a) decision, see [`queue_or_forward`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDecision {
    /// Absorb the request into the local queue (serve it later).
    Queue,
    /// Relay the request one hop toward the token node.
    Forward,
}

/// The set of modes a node owning `owned` could grant to a child
/// (the complement of an owned-mode row of Table 1(b)).
///
/// Used to decide which children are *potential granters* of a frozen
/// mode and therefore must be sent a freeze notification (the paper's
/// Figure 4, footnote a).
pub fn grantable_set(owned: Option<Mode>) -> ModeSet {
    ModeSet::from_modes(ALL_MODES.into_iter().filter(|m| grantable(owned, *m)))
}

/// May a held lock change from `old` to `new` without consulting anyone?
///
/// Safe iff `new` constrains concurrency no more than `old` did — every
/// mode compatible with `old` must also be compatible with `new` (the
/// compatibility set only widens). Locally checkable, so a *downgrade*
/// needs no messages beyond the usual owned-mode weakening release.
///
/// The resulting lattice of legal downgrades:
/// `W → {U, IW, R, IR}`, `U → {R, IR}`, `R → {IR}`, `IW → {IR}`.
///
/// ```
/// use hlock_core::{can_downgrade, Mode};
/// assert!(can_downgrade(Mode::Write, Mode::Read));
/// assert!(can_downgrade(Mode::Upgrade, Mode::Read));
/// assert!(!can_downgrade(Mode::Upgrade, Mode::IntentWrite)); // R-holders would break
/// assert!(!can_downgrade(Mode::Read, Mode::Write));
/// ```
pub fn can_downgrade(old: Mode, new: Mode) -> bool {
    if old == new {
        return true;
    }
    ALL_MODES.into_iter().all(|m| !m.compatible(old) || m.compatible(new))
}

/// Rule 6 / Table 2(b): the set of modes frozen while a request for
/// `waiting` sits in the token node's queue.
///
/// Freezing must stop *any* grant that could further delay the queued
/// request, so exactly the modes incompatible with it are frozen:
/// `frozen(M) = { m : ¬compatible(m, M) }`. This matches the paper's
/// worked example (an `R` request queued while the token owns `IW`
/// freezes `IW`) and its observation that at most five modes can be
/// frozen (for a waiting `W`).
pub fn frozen_modes(waiting: Mode) -> ModeSet {
    let mut set = ModeSet::EMPTY;
    for m in ALL_MODES {
        if !m.compatible(waiting) {
            set.insert(m);
        }
    }
    set
}

/// A small set of [`Mode`]s backed by a bit mask.
///
/// Used for frozen-mode bookkeeping and freeze/update messages.
///
/// ```
/// use hlock_core::{Mode, ModeSet};
/// let mut s = ModeSet::EMPTY;
/// s.insert(Mode::Write);
/// s.insert(Mode::Upgrade);
/// assert!(s.contains(Mode::Write));
/// assert!(!s.contains(Mode::Read));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.to_string(), "{U,W}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ModeSet(u8);

impl ModeSet {
    /// The empty set.
    pub const EMPTY: ModeSet = ModeSet(0);

    /// The set of all five modes.
    pub const ALL: ModeSet = ModeSet(0b1_1111);

    /// Builds a set from an iterator of modes.
    pub fn from_modes<I: IntoIterator<Item = Mode>>(modes: I) -> ModeSet {
        let mut s = ModeSet::EMPTY;
        for m in modes {
            s.insert(m);
        }
        s
    }

    /// Inserts a mode; returns `true` if it was newly inserted.
    pub fn insert(&mut self, m: Mode) -> bool {
        let bit = 1 << m.wire_tag();
        let new = self.0 & bit == 0;
        self.0 |= bit;
        new
    }

    /// Removes a mode; returns `true` if it was present.
    pub fn remove(&mut self, m: Mode) -> bool {
        let bit = 1 << m.wire_tag();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Membership test.
    pub fn contains(self, m: Mode) -> bool {
        self.0 & (1 << m.wire_tag()) != 0
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: ModeSet) -> ModeSet {
        ModeSet(self.0 | other.0)
    }

    /// Set difference (`self \ other`).
    #[must_use]
    pub fn difference(self, other: ModeSet) -> ModeSet {
        ModeSet(self.0 & !other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(self, other: ModeSet) -> ModeSet {
        ModeSet(self.0 & other.0)
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of modes in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates the members in strength order.
    pub fn iter(self) -> impl Iterator<Item = Mode> {
        ALL_MODES.into_iter().filter(move |m| self.contains(*m))
    }

    /// Raw bit mask (for the wire codec).
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Rebuilds a set from a raw bit mask, rejecting unknown bits.
    pub fn from_bits(bits: u8) -> Option<ModeSet> {
        if bits & !Self::ALL.0 != 0 {
            None
        } else {
            Some(ModeSet(bits))
        }
    }
}

impl fmt::Display for ModeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for m in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Mode> for ModeSet {
    fn from_iter<I: IntoIterator<Item = Mode>>(iter: I) -> Self {
        ModeSet::from_modes(iter)
    }
}

impl Extend<Mode> for ModeSet {
    fn extend<I: IntoIterator<Item = Mode>>(&mut self, iter: I) {
        for m in iter {
            self.insert(m);
        }
    }
}

/// Renders Table 1(a) (compatibility; `X` marks a conflict) as text.
pub fn compatibility_table() -> String {
    render_table("Table 1(a): incompatible mode pairs (X = conflict)", |o, r| {
        if compatible_owned(o, r) {
            " "
        } else {
            "X"
        }
    })
}

/// Renders Table 1(b) (non-token grant legality; `X` = may NOT grant).
pub fn child_grant_table() -> String {
    render_table("Table 1(b): owned modes that may NOT grant a child request (X)", |o, r| {
        if grantable(o, r) {
            " "
        } else {
            "X"
        }
    })
}

/// Renders Table 2(a) (queue `Q` vs forward `F` at a non-token node).
pub fn queue_forward_table() -> String {
    render_table("Table 2(a): queue (Q) or forward (F) at a non-token node", |p, r| {
        match queue_or_forward(p, r) {
            QueueDecision::Queue => "Q",
            QueueDecision::Forward => "F",
        }
    })
}

/// Renders Table 2(b) (frozen modes while a request waits at the token).
pub fn freeze_table() -> String {
    let mut out = String::from("Table 2(b): modes frozen while a request waits at the token\n");
    out.push_str("waiting | frozen\n");
    for m in ALL_MODES {
        out.push_str(&format!("{:>7} | {}\n", m.symbol(), frozen_modes(m)));
    }
    out
}

fn render_table(title: &str, cell: impl Fn(Option<Mode>, Mode) -> &'static str) -> String {
    let mut out = format!("{title}\nM1\\M2 |");
    for r in ALL_MODES {
        out.push_str(&format!(" {:>2} |", r.symbol()));
    }
    out.push('\n');
    let rows: [Option<Mode>; 6] = [
        None,
        Some(Mode::IntentRead),
        Some(Mode::Read),
        Some(Mode::Upgrade),
        Some(Mode::IntentWrite),
        Some(Mode::Write),
    ];
    for o in rows {
        let label = o.map_or("0", Mode::symbol);
        out.push_str(&format!("{label:>5} |"));
        for r in ALL_MODES {
            out.push_str(&format!(" {:>2} |", cell(o, r)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use Mode::*;

    /// Table 1(a) as stated by the CORBA CCS spec / Gray et al.
    #[test]
    fn compatibility_matrix_exact() {
        let expect = [
            // (a, b, compatible)
            (IntentRead, IntentRead, true),
            (IntentRead, Read, true),
            (IntentRead, Upgrade, true),
            (IntentRead, IntentWrite, true),
            (IntentRead, Write, false),
            (Read, Read, true),
            (Read, Upgrade, true),
            (Read, IntentWrite, false),
            (Read, Write, false),
            (Upgrade, Upgrade, false),
            (Upgrade, IntentWrite, false),
            (Upgrade, Write, false),
            (IntentWrite, IntentWrite, true),
            (IntentWrite, Write, false),
            (Write, Write, false),
        ];
        for (a, b, c) in expect {
            assert_eq!(a.compatible(b), c, "{a} vs {b}");
            assert_eq!(b.compatible(a), c, "symmetry {b} vs {a}");
        }
    }

    #[test]
    fn compatibility_is_symmetric() {
        for a in ALL_MODES {
            for b in ALL_MODES {
                assert_eq!(a.compatible(b), b.compatible(a));
            }
        }
    }

    /// Definition 1: ∅ < IR < R < U = IW < W.
    #[test]
    fn strength_order() {
        assert_eq!(owned_strength(None), 0);
        assert!(IntentRead.strength() < Read.strength());
        assert!(Read.strength() < Upgrade.strength());
        assert_eq!(Upgrade.strength(), IntentWrite.strength());
        assert!(IntentWrite.strength() < Write.strength());
    }

    /// Definition 1 says "stronger = compatible with fewer other modes";
    /// verify the strength order is consistent with that characterization.
    #[test]
    fn strength_consistent_with_compatibility_count() {
        let compat_count = |m: Mode| ALL_MODES.iter().filter(|o| m.compatible(**o)).count();
        for a in ALL_MODES {
            for b in ALL_MODES {
                if a.strength() > b.strength() {
                    assert!(
                        compat_count(a) <= compat_count(b),
                        "{a} stronger than {b} but more compatible"
                    );
                }
            }
        }
    }

    #[test]
    fn partial_order_matches_strength() {
        assert!(IntentRead < Read);
        assert!(Read < Write);
        assert_eq!(Upgrade.partial_cmp(&IntentWrite), None);
        assert_eq!(Upgrade.partial_cmp(&Upgrade), Some(core::cmp::Ordering::Equal));
    }

    /// Table 1(b): children can grant only IR, R, IW; ∅ and W rows grant nothing.
    #[test]
    fn child_grant_matrix_exact() {
        // (owned, [grantable requested modes])
        let rows: [(Option<Mode>, &[Mode]); 6] = [
            (None, &[]),
            (Some(IntentRead), &[IntentRead]),
            (Some(Read), &[IntentRead, Read]),
            (Some(Upgrade), &[IntentRead, Read]),
            (Some(IntentWrite), &[IntentRead, IntentWrite]),
            (Some(Write), &[]),
        ];
        for (owned, legal) in rows {
            for r in ALL_MODES {
                assert_eq!(
                    grantable(owned, r),
                    legal.contains(&r),
                    "owned={owned:?} requested={r}"
                );
            }
        }
    }

    /// U and W can never be granted by a non-token node (they always
    /// travel to the token) — the premise behind Table 2(a)'s U/W rows.
    #[test]
    fn upgrade_and_write_always_reach_token() {
        for o in ALL_MODES {
            assert!(!grantable(Some(o), Upgrade));
            assert!(!grantable(Some(o), Write));
        }
        // ... and at the token they always cause a *transfer*:
        for o in ALL_MODES {
            if let Some(serve) = token_serve(Some(o), Upgrade) {
                assert_eq!(serve, TokenServe::Transfer);
            }
            if let Some(serve) = token_serve(Some(o), Write) {
                assert_eq!(serve, TokenServe::Transfer);
            }
        }
        assert_eq!(token_serve(None, Write), Some(TokenServe::Transfer));
    }

    /// Rule 3.2 operational: transfer iff owned < requested.
    #[test]
    fn token_serve_flavour() {
        assert_eq!(token_serve(None, IntentRead), Some(TokenServe::Transfer));
        assert_eq!(token_serve(Some(IntentRead), Read), Some(TokenServe::Transfer));
        assert_eq!(token_serve(Some(Read), Read), Some(TokenServe::Copy));
        assert_eq!(token_serve(Some(Upgrade), Read), Some(TokenServe::Copy));
        assert_eq!(token_serve(Some(IntentWrite), IntentWrite), Some(TokenServe::Copy));
        // Incompatible: cannot serve at all.
        assert_eq!(token_serve(Some(IntentWrite), Read), None);
        assert_eq!(token_serve(Some(Write), Read), None);
        assert_eq!(token_serve(Some(Upgrade), Upgrade), None);
    }

    /// Table 2(a) rows that are legible in the paper scan.
    #[test]
    fn queue_forward_matches_legible_rows() {
        use QueueDecision::*;
        // ∅ row: all forward.
        for r in ALL_MODES {
            assert_eq!(queue_or_forward(None, r), Forward);
        }
        // IR row: Q F F F F.
        assert_eq!(queue_or_forward(Some(IntentRead), IntentRead), Queue);
        for r in [Read, Upgrade, IntentWrite, Write] {
            assert_eq!(queue_or_forward(Some(IntentRead), r), Forward);
        }
        // W row: all queue.
        for r in ALL_MODES {
            assert_eq!(queue_or_forward(Some(Write), r), Queue);
        }
        // U row: all queue (pending U is guaranteed the token).
        for r in ALL_MODES {
            assert_eq!(queue_or_forward(Some(Upgrade), r), Queue);
        }
    }

    /// Derived rows: queue exactly when later service is guaranteed.
    #[test]
    fn queue_forward_derived_rows() {
        use QueueDecision::*;
        assert_eq!(queue_or_forward(Some(Read), IntentRead), Queue);
        assert_eq!(queue_or_forward(Some(Read), Read), Queue);
        assert_eq!(queue_or_forward(Some(Read), Upgrade), Forward);
        assert_eq!(queue_or_forward(Some(Read), IntentWrite), Forward);
        assert_eq!(queue_or_forward(Some(Read), Write), Forward);
        assert_eq!(queue_or_forward(Some(IntentWrite), IntentRead), Queue);
        assert_eq!(queue_or_forward(Some(IntentWrite), Read), Forward);
        assert_eq!(queue_or_forward(Some(IntentWrite), Upgrade), Forward);
        assert_eq!(queue_or_forward(Some(IntentWrite), IntentWrite), Queue);
        assert_eq!(queue_or_forward(Some(IntentWrite), Write), Forward);
    }

    /// Table 2(b): the paper's worked example — R queued at a token owning
    /// IW freezes IW — plus the full derived table.
    #[test]
    fn frozen_modes_table() {
        assert!(frozen_modes(Read).contains(IntentWrite)); // the Fig. 3 example
        assert_eq!(frozen_modes(IntentRead), ModeSet::from_modes([Write]));
        assert_eq!(frozen_modes(Read), ModeSet::from_modes([IntentWrite, Write]));
        assert_eq!(frozen_modes(Upgrade), ModeSet::from_modes([Upgrade, IntentWrite, Write]));
        assert_eq!(frozen_modes(IntentWrite), ModeSet::from_modes([Read, Upgrade, Write]));
        assert_eq!(frozen_modes(Write), ModeSet::ALL);
    }

    /// "There are a constant number of modes that can be frozen (at most five)."
    #[test]
    fn at_most_five_frozen() {
        for m in ALL_MODES {
            assert!(frozen_modes(m).len() <= 5);
        }
        assert_eq!(frozen_modes(Write).len(), 5);
    }

    #[test]
    fn intention_modes() {
        assert_eq!(Read.intention(), IntentRead);
        assert_eq!(IntentRead.intention(), IntentRead);
        assert_eq!(Write.intention(), IntentWrite);
        assert_eq!(Upgrade.intention(), IntentWrite);
        assert_eq!(IntentWrite.intention(), IntentWrite);
    }

    #[test]
    fn mode_set_basics() {
        let mut s = ModeSet::EMPTY;
        assert!(s.is_empty());
        assert!(s.insert(Read));
        assert!(!s.insert(Read));
        assert!(s.contains(Read));
        assert_eq!(s.len(), 1);
        assert!(s.remove(Read));
        assert!(!s.remove(Read));
        assert!(s.is_empty());
    }

    #[test]
    fn mode_set_algebra() {
        let a = ModeSet::from_modes([IntentRead, Read]);
        let b = ModeSet::from_modes([Read, Write]);
        assert_eq!(a.union(b), ModeSet::from_modes([IntentRead, Read, Write]));
        assert_eq!(a.intersection(b), ModeSet::from_modes([Read]));
        assert_eq!(a.difference(b), ModeSet::from_modes([IntentRead]));
        assert_eq!(ModeSet::ALL.len(), 5);
    }

    #[test]
    fn mode_set_iter_in_strength_order() {
        let s = ModeSet::from_modes([Write, IntentRead, Upgrade]);
        let v: Vec<Mode> = s.iter().collect();
        assert_eq!(v, vec![IntentRead, Upgrade, Write]);
    }

    #[test]
    fn mode_set_bits_roundtrip() {
        for bits in 0u8..=0b1_1111 {
            let s = ModeSet::from_bits(bits).unwrap();
            assert_eq!(s.bits(), bits);
        }
        assert_eq!(ModeSet::from_bits(0b10_0000), None);
    }

    #[test]
    fn mode_set_display() {
        assert_eq!(ModeSet::EMPTY.to_string(), "{}");
        assert_eq!(ModeSet::from_modes([IntentRead, Write]).to_string(), "{IR,W}");
    }

    #[test]
    fn wire_tags_roundtrip() {
        for m in ALL_MODES {
            assert_eq!(Mode::from_wire_tag(m.wire_tag()), Some(m));
        }
        assert_eq!(Mode::from_wire_tag(5), None);
    }

    #[test]
    fn stronger_picks_by_strength() {
        assert_eq!(stronger(None, Some(Read)), Some(Read));
        assert_eq!(stronger(Some(Read), None), Some(Read));
        assert_eq!(stronger(Some(Read), Some(Write)), Some(Write));
        assert_eq!(stronger(Some(Upgrade), Some(IntentWrite)), Some(Upgrade));
        assert_eq!(stronger(None, None), None);
    }

    #[test]
    fn printable_tables_contain_all_modes() {
        for table in
            [compatibility_table(), child_grant_table(), queue_forward_table(), freeze_table()]
        {
            for m in ALL_MODES {
                assert!(table.contains(m.symbol()), "{table}");
            }
        }
    }
}
