//! # hlock-suzuki
//!
//! The **Suzuki–Kasami broadcast algorithm** for distributed mutual
//! exclusion (*A distributed mutual exclusion algorithm*, ACM TOCS 3(4),
//! 1985) — reference \[20\] of the paper. Its §2 dismisses broadcast
//! protocols as "generally suffer\[ing\] from limited scalability due to
//! … their message overhead"; this crate exists so the `baselines` bench
//! can *measure* that claim: every acquisition broadcasts a request to
//! all `n − 1` peers, so message overhead grows **linearly** with the
//! system size, against the logarithmic/constant token-tree protocols.
//!
//! State per node: `RN[j]` — the highest request sequence number heard
//! from node `j`. The token carries `LN[j]` — the sequence number of
//! `j`'s last *served* request — plus a FIFO queue of nodes with
//! outstanding requests. A node holding the idle token serves `j`
//! directly when `RN[j] = LN[j] + 1`; on release, the holder enqueues
//! every such `j` and passes the token to the queue head.
//!
//! Exclusive-only, sans-I/O, implementing the workspace-wide
//! [`ConcurrencyProtocol`] trait.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use hlock_core::{
    CancelOutcome, Classify, ConcurrencyProtocol, EffectSink, Inspect, LockId, MessageKind, Mode,
    NodeId, ProtocolError, Ticket,
};
use std::collections::VecDeque;

/// A Suzuki–Kasami message about one lock.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SuzukiPayload {
    /// Broadcast: `origin`'s `seq`-th request.
    Request {
        /// The requesting node.
        origin: NodeId,
        /// Its request sequence number.
        seq: u64,
    },
    /// The token: last-served sequence numbers and the waiter queue.
    Token {
        /// `LN[j]`: sequence number of node `j`'s last served request.
        last_served: Vec<u64>,
        /// FIFO queue of nodes awaiting the token.
        queue: Vec<NodeId>,
    },
}

impl Classify for SuzukiPayload {
    fn kind(&self) -> MessageKind {
        match self {
            SuzukiPayload::Request { .. } => MessageKind::Request,
            SuzukiPayload::Token { .. } => MessageKind::Token,
        }
    }
}

/// A [`SuzukiPayload`] addressed to one lock instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SuzukiEnvelope {
    /// The lock concerned.
    pub lock: LockId,
    /// The protocol message.
    pub payload: SuzukiPayload,
}

impl Classify for SuzukiEnvelope {
    fn kind(&self) -> MessageKind {
        self.payload.kind()
    }
}

/// The token's contents.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TokenState {
    last_served: Vec<u64>,
    queue: VecDeque<NodeId>,
}

/// Per-lock Suzuki–Kasami state at one node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SuzukiLock {
    /// `RN[j]`: highest request sequence number heard from node `j`.
    request_numbers: Vec<u64>,
    token: Option<TokenState>,
    in_cs: Option<Ticket>,
    /// Ticket whose broadcast is outstanding.
    requesting: Option<Ticket>,
    waiting: VecDeque<Ticket>,
    cancelled: bool,
}

impl SuzukiLock {
    fn new(id: NodeId, nodes: usize, token_home: NodeId) -> Self {
        SuzukiLock {
            request_numbers: vec![0; nodes],
            token: (id == token_home)
                .then(|| TokenState { last_served: vec![0; nodes], queue: VecDeque::new() }),
            in_cs: None,
            requesting: None,
            waiting: VecDeque::new(),
            cancelled: false,
        }
    }
}

/// All per-lock Suzuki–Kasami state of one node.
///
/// ```
/// use hlock_core::{ConcurrencyProtocol, Effect, EffectSink, LockId, Mode, NodeId, Ticket};
/// use hlock_suzuki::SuzukiSpace;
///
/// # fn main() -> Result<(), hlock_core::ProtocolError> {
/// let mut home = SuzukiSpace::new(NodeId(0), 3, 1, NodeId(0));
/// let mut fx = EffectSink::new();
/// home.request(LockId(0), Mode::Write, Ticket(1), &mut fx)?;
/// assert!(matches!(fx.drain().next(), Some(Effect::Granted { .. })));
/// home.release(LockId(0), Ticket(1), &mut fx)?;
/// # Ok(()) }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SuzukiSpace {
    id: NodeId,
    nodes: usize,
    locks: Vec<SuzukiLock>,
}

impl SuzukiSpace {
    /// Creates the state for `lock_count` locks at node `id` in a system
    /// of `nodes` nodes, with `token_home` initially holding every token.
    ///
    /// # Panics
    ///
    /// Panics if `id` or `token_home` is outside `0..nodes`.
    pub fn new(id: NodeId, nodes: usize, lock_count: usize, token_home: NodeId) -> Self {
        assert!(id.index() < nodes && token_home.index() < nodes);
        SuzukiSpace {
            id,
            nodes,
            locks: (0..lock_count).map(|_| SuzukiLock::new(id, nodes, token_home)).collect(),
        }
    }

    /// Number of locks managed.
    pub fn lock_count(&self) -> usize {
        self.locks.len()
    }

    /// Whether this node currently holds the token for `lock`.
    ///
    /// # Panics
    ///
    /// Panics if `lock` is out of range.
    pub fn has_token(&self, lock: LockId) -> bool {
        self.locks[lock.index()].token.is_some()
    }

    fn lock_mut(&mut self, lock: LockId) -> Result<&mut SuzukiLock, ProtocolError> {
        self.locks.get_mut(lock.index()).ok_or(ProtocolError::UnknownLock { lock })
    }

    fn enter_cs(
        lock: LockId,
        state: &mut SuzukiLock,
        ticket: Ticket,
        fx: &mut EffectSink<SuzukiEnvelope>,
    ) {
        debug_assert!(state.token.is_some() && state.in_cs.is_none());
        state.in_cs = Some(ticket);
        fx.granted(lock, ticket, Mode::Write);
    }

    /// Broadcasts our next request to every peer.
    fn broadcast_request(
        id: NodeId,
        nodes: usize,
        lock: LockId,
        state: &mut SuzukiLock,
        ticket: Ticket,
        fx: &mut EffectSink<SuzukiEnvelope>,
    ) {
        let seq = state.request_numbers[id.index()] + 1;
        state.request_numbers[id.index()] = seq;
        state.requesting = Some(ticket);
        for j in 0..nodes {
            if j != id.index() {
                fx.send(
                    NodeId(j as u32),
                    SuzukiEnvelope { lock, payload: SuzukiPayload::Request { origin: id, seq } },
                );
            }
        }
    }

    /// On release (or absorbed cancel): update `LN`, collect newly
    /// outstanding requesters into the token queue, pass the token on.
    fn release_token(
        id: NodeId,
        lock: LockId,
        state: &mut SuzukiLock,
        fx: &mut EffectSink<SuzukiEnvelope>,
    ) {
        let rn = state.request_numbers.clone();
        let token = state.token.as_mut().expect("release requires the token");
        token.last_served[id.index()] = rn[id.index()];
        for (j, &r) in rn.iter().enumerate() {
            let nj = NodeId(j as u32);
            if r == token.last_served[j] + 1 && !token.queue.contains(&nj) && j != id.index() {
                token.queue.push_back(nj);
            }
        }
        if let Some(next) = token.queue.pop_front() {
            let token = state.token.take().expect("still here");
            fx.send(
                next,
                SuzukiEnvelope {
                    lock,
                    payload: SuzukiPayload::Token {
                        last_served: token.last_served,
                        queue: token.queue.into_iter().collect(),
                    },
                },
            );
        }
    }
}

impl Inspect for SuzukiSpace {
    fn held_modes(&self, lock: LockId) -> Vec<Mode> {
        self.locks
            .get(lock.index())
            .and_then(|s| s.in_cs)
            .map(|_| vec![Mode::Write])
            .unwrap_or_default()
    }

    fn holds_token(&self, lock: LockId) -> bool {
        self.locks.get(lock.index()).is_some_and(|s| s.token.is_some())
    }

    fn open_requests(&self) -> Vec<(LockId, Ticket)> {
        let mut out = Vec::new();
        for (i, s) in self.locks.iter().enumerate() {
            let lock = LockId(i as u32);
            if !s.cancelled {
                out.extend(s.requesting.map(|t| (lock, t)));
            }
            out.extend(s.waiting.iter().map(|&t| (lock, t)));
        }
        out
    }
}

impl ConcurrencyProtocol for SuzukiSpace {
    type Message = SuzukiEnvelope;

    fn node_id(&self) -> NodeId {
        self.id
    }

    fn request(
        &mut self,
        lock: LockId,
        _mode: Mode,
        ticket: Ticket,
        fx: &mut EffectSink<SuzukiEnvelope>,
    ) -> Result<(), ProtocolError> {
        let id = self.id;
        let nodes = self.nodes;
        let state = self.lock_mut(lock)?;
        let dup = state.in_cs == Some(ticket)
            || state.requesting == Some(ticket)
            || state.waiting.contains(&ticket);
        if dup {
            return Err(ProtocolError::DuplicateTicket { ticket });
        }
        if state.in_cs.is_some() || state.requesting.is_some() {
            state.waiting.push_back(ticket);
        } else if state.token.is_some() {
            Self::enter_cs(lock, state, ticket, fx);
        } else {
            Self::broadcast_request(id, nodes, lock, state, ticket, fx);
        }
        Ok(())
    }

    fn release(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        fx: &mut EffectSink<SuzukiEnvelope>,
    ) -> Result<(), ProtocolError> {
        let id = self.id;
        let nodes = self.nodes;
        let state = self.lock_mut(lock)?;
        if state.in_cs != Some(ticket) {
            return Err(ProtocolError::NotHeld { ticket });
        }
        state.in_cs = None;
        Self::release_token(id, lock, state, fx);
        if let Some(next) = state.waiting.pop_front() {
            if state.token.is_some() {
                Self::enter_cs(lock, state, next, fx);
            } else {
                Self::broadcast_request(id, nodes, lock, state, next, fx);
            }
        }
        Ok(())
    }

    fn upgrade(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        fx: &mut EffectSink<SuzukiEnvelope>,
    ) -> Result<(), ProtocolError> {
        let state = self.lock_mut(lock)?;
        if state.in_cs != Some(ticket) {
            return Err(ProtocolError::NotHeld { ticket });
        }
        fx.granted(lock, ticket, Mode::Write);
        Ok(())
    }

    fn try_request(
        &mut self,
        lock: LockId,
        _mode: Mode,
        ticket: Ticket,
        fx: &mut EffectSink<SuzukiEnvelope>,
    ) -> Result<bool, ProtocolError> {
        let state = self.lock_mut(lock)?;
        if state.token.is_some() && state.in_cs.is_none() && state.requesting.is_none() {
            Self::enter_cs(lock, state, ticket, fx);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn downgrade(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        _new_mode: Mode,
        _fx: &mut EffectSink<SuzukiEnvelope>,
    ) -> Result<(), ProtocolError> {
        let state = self.lock_mut(lock)?;
        if state.in_cs != Some(ticket) {
            return Err(ProtocolError::NotHeld { ticket });
        }
        Ok(())
    }

    fn cancel(
        &mut self,
        lock: LockId,
        ticket: Ticket,
        _fx: &mut EffectSink<SuzukiEnvelope>,
    ) -> Result<CancelOutcome, ProtocolError> {
        let state = self.lock_mut(lock)?;
        if state.in_cs == Some(ticket) {
            return Err(ProtocolError::NotCancellable { ticket });
        }
        let before = state.waiting.len();
        state.waiting.retain(|&t| t != ticket);
        if state.waiting.len() < before {
            return Ok(CancelOutcome::Cancelled);
        }
        if state.requesting == Some(ticket) {
            state.cancelled = true;
            return Ok(CancelOutcome::WillAbort);
        }
        Err(ProtocolError::NotHeld { ticket })
    }

    fn on_message(
        &mut self,
        _from: NodeId,
        message: SuzukiEnvelope,
        fx: &mut EffectSink<SuzukiEnvelope>,
    ) {
        let id = self.id;
        let nodes = self.nodes;
        let lock = message.lock;
        let Some(state) = self.locks.get_mut(lock.index()) else {
            debug_assert!(false, "message for unknown lock {lock}");
            return;
        };
        match message.payload {
            SuzukiPayload::Request { origin, seq } => {
                let rn = &mut state.request_numbers[origin.index()];
                *rn = (*rn).max(seq);
                // An idle token holder serves the outstanding request.
                let can_serve = state.in_cs.is_none()
                    && state.requesting.is_none()
                    && state.token.as_ref().is_some_and(|t| {
                        state.request_numbers[origin.index()] == t.last_served[origin.index()] + 1
                    });
                if can_serve {
                    let mut token = state.token.take().expect("checked");
                    // Our own LN is already current (set at release time).
                    token.queue.retain(|&n| n != origin);
                    fx.send(
                        origin,
                        SuzukiEnvelope {
                            lock,
                            payload: SuzukiPayload::Token {
                                last_served: token.last_served,
                                queue: token.queue.into_iter().collect(),
                            },
                        },
                    );
                }
            }
            SuzukiPayload::Token { last_served, queue } => {
                debug_assert!(state.token.is_none(), "duplicate token");
                state.token = Some(TokenState { last_served, queue: queue.into_iter().collect() });
                let ticket =
                    state.requesting.take().expect("token arrives only in response to a request");
                if state.cancelled {
                    state.cancelled = false;
                    // Serve our sequence number (the request is consumed)
                    // but skip the critical section; pass the token along.
                    Self::release_token(id, lock, state, fx);
                    if let Some(next) = state.waiting.pop_front() {
                        if state.token.is_some() {
                            Self::enter_cs(lock, state, next, fx);
                        } else {
                            Self::broadcast_request(id, nodes, lock, state, next, fx);
                        }
                    }
                } else {
                    Self::enter_cs(lock, state, ticket, fx);
                }
            }
        }
    }

    fn is_quiescent(&self) -> bool {
        self.locks.iter().all(|s| s.requesting.is_none() && s.waiting.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlock_core::Effect;

    const L: LockId = LockId(0);

    fn sends(fx: &mut EffectSink<SuzukiEnvelope>) -> Vec<(NodeId, SuzukiEnvelope)> {
        fx.drain()
            .filter_map(|e| match e {
                Effect::Send { to, message } => Some((to, message)),
                _ => None,
            })
            .collect()
    }

    fn grants(fx: &mut EffectSink<SuzukiEnvelope>) -> Vec<Ticket> {
        fx.drain()
            .filter_map(|e| match e {
                Effect::Granted { ticket, .. } => Some(ticket),
                _ => None,
            })
            .collect()
    }

    fn pump(nodes: &mut [SuzukiSpace], fx: &mut EffectSink<SuzukiEnvelope>, from: NodeId) {
        let mut wire: Vec<(NodeId, NodeId, SuzukiEnvelope)> = fx
            .drain()
            .filter_map(|e| match e {
                Effect::Send { to, message } => Some((from, to, message)),
                _ => None,
            })
            .collect();
        while !wire.is_empty() {
            let (src, dst, msg) = wire.remove(0);
            nodes[dst.index()].on_message(src, msg, fx);
            wire.extend(fx.drain().filter_map(|e| match e {
                Effect::Send { to, message } => Some((dst, to, message)),
                _ => None,
            }));
        }
    }

    #[test]
    fn request_broadcasts_to_all_peers() {
        let mut nodes: Vec<SuzukiSpace> =
            (0..5).map(|i| SuzukiSpace::new(NodeId(i), 5, 1, NodeId(0))).collect();
        let mut fx = EffectSink::new();
        nodes[3].request(L, Mode::Write, Ticket(1), &mut fx).unwrap();
        let m = sends(&mut fx);
        assert_eq!(m.len(), 4, "broadcast to every peer: O(n) messages");
        let mut to: Vec<u32> = m.iter().map(|(n, _)| n.0).collect();
        to.sort_unstable();
        assert_eq!(to, vec![0, 1, 2, 4]);
    }

    #[test]
    fn token_moves_to_requester() {
        let mut nodes: Vec<SuzukiSpace> =
            (0..3).map(|i| SuzukiSpace::new(NodeId(i), 3, 1, NodeId(0))).collect();
        let mut fx = EffectSink::new();
        nodes[2].request(L, Mode::Write, Ticket(1), &mut fx).unwrap();
        pump(&mut nodes, &mut fx, NodeId(2));
        assert_eq!(nodes[2].held_modes(L), vec![Mode::Write], "node 2 entered its CS");
        assert!(nodes[2].has_token(L));
        assert!(!nodes[0].has_token(L));
    }

    #[test]
    fn contention_serves_everyone_once() {
        let n = 6;
        let mut nodes: Vec<SuzukiSpace> =
            (0..n as u32).map(|i| SuzukiSpace::new(NodeId(i), n, 1, NodeId(0))).collect();
        let mut fx = EffectSink::new();
        for i in 0..n {
            nodes[i].request(L, Mode::Write, Ticket(100 + i as u64), &mut fx).unwrap();
            pump(&mut nodes, &mut fx, NodeId(i as u32));
        }
        let mut served = 0;
        for _ in 0..50 {
            let Some(h) = (0..n).find(|&i| !nodes[i].held_modes(L).is_empty()) else { break };
            nodes[h].release(L, Ticket(100 + h as u64), &mut fx).unwrap();
            served += 1;
            pump(&mut nodes, &mut fx, NodeId(h as u32));
        }
        assert_eq!(served, n);
        assert!(nodes.iter().all(|s| s.is_quiescent()));
        assert_eq!(nodes.iter().filter(|s| s.has_token(L)).count(), 1);
    }

    #[test]
    fn stale_rebroadcasts_are_ignored() {
        // A request already served (RN == LN) must not win the token again.
        let mut nodes: Vec<SuzukiSpace> =
            (0..3).map(|i| SuzukiSpace::new(NodeId(i), 3, 1, NodeId(0))).collect();
        let mut fx = EffectSink::new();
        nodes[1].request(L, Mode::Write, Ticket(1), &mut fx).unwrap();
        pump(&mut nodes, &mut fx, NodeId(1));
        fx.drain().count();
        nodes[1].release(L, Ticket(1), &mut fx).unwrap();
        pump(&mut nodes, &mut fx, NodeId(1));
        // Replay node 1's old request at node 1 (which holds the token).
        nodes[1].on_message(
            NodeId(0),
            SuzukiEnvelope {
                lock: L,
                payload: SuzukiPayload::Request { origin: NodeId(0), seq: 0 },
            },
            &mut fx,
        );
        assert!(sends(&mut fx).is_empty(), "stale request must not move the token");
        assert!(nodes[1].has_token(L));
    }

    #[test]
    fn local_fifo_and_errors() {
        let mut a = SuzukiSpace::new(NodeId(0), 2, 1, NodeId(0));
        let mut fx = EffectSink::new();
        a.request(L, Mode::Write, Ticket(1), &mut fx).unwrap();
        a.request(L, Mode::Write, Ticket(2), &mut fx).unwrap();
        assert_eq!(grants(&mut fx), vec![Ticket(1)]);
        assert_eq!(
            a.request(L, Mode::Write, Ticket(2), &mut fx).unwrap_err(),
            ProtocolError::DuplicateTicket { ticket: Ticket(2) }
        );
        a.release(L, Ticket(1), &mut fx).unwrap();
        assert_eq!(grants(&mut fx), vec![Ticket(2)]);
        a.release(L, Ticket(2), &mut fx).unwrap();
        assert!(a.is_quiescent());
        assert_eq!(
            a.release(L, Ticket(9), &mut fx).unwrap_err(),
            ProtocolError::NotHeld { ticket: Ticket(9) }
        );
    }

    #[test]
    fn cancel_semantics() {
        let mut nodes: Vec<SuzukiSpace> =
            (0..3).map(|i| SuzukiSpace::new(NodeId(i), 3, 1, NodeId(0))).collect();
        let mut fx = EffectSink::new();
        nodes[1].request(L, Mode::Write, Ticket(1), &mut fx).unwrap();
        assert_eq!(nodes[1].cancel(L, Ticket(1), &mut fx).unwrap(), CancelOutcome::WillAbort);
        pump(&mut nodes, &mut fx, NodeId(1));
        assert!(nodes[1].held_modes(L).is_empty(), "no CS entry for a cancelled ticket");
        assert!(nodes[1].is_quiescent());
        // Whoever holds the token, the system stays usable.
        let holder = (0..3).find(|&i| nodes[i].has_token(L)).unwrap();
        nodes[holder].request(L, Mode::Write, Ticket(7), &mut fx).unwrap();
        assert_eq!(grants(&mut fx), vec![Ticket(7)]);
    }

    #[test]
    fn try_request_is_local_only() {
        let mut a = SuzukiSpace::new(NodeId(0), 3, 1, NodeId(0));
        let mut b = SuzukiSpace::new(NodeId(1), 3, 1, NodeId(0));
        let mut fx = EffectSink::new();
        assert!(a.try_request(L, Mode::Write, Ticket(1), &mut fx).unwrap());
        assert!(!b.try_request(L, Mode::Write, Ticket(1), &mut fx).unwrap());
        assert!(fx.drain().all(|e| !matches!(e, Effect::Send { .. })));
    }

    #[test]
    fn message_kinds() {
        assert_eq!(
            SuzukiPayload::Request { origin: NodeId(0), seq: 1 }.kind(),
            MessageKind::Request
        );
        assert_eq!(
            SuzukiEnvelope {
                lock: L,
                payload: SuzukiPayload::Token { last_served: vec![], queue: vec![] }
            }
            .kind(),
            MessageKind::Token
        );
    }
}
